"""EDA-agent loop (paper Fig. 1): break → tool feedback → repair → verify.

A design is mutated the way the repair dataset is built, the yosys-style
checker produces real feedback, the finetuned model proposes repairs, and
the simulator verdicts them against the benchmark testbench:

    python examples/repair_agent.py
"""

from repro.bench import rtllm_suite
from repro.checker import check_source
from repro.eval import make_broken_case
from repro.llm import get_model
from repro.sim import run_testbench


def main() -> None:
    problem = next(p for p in rtllm_suite() if p.name == "counter_12")
    case = make_broken_case(problem, seed=11)

    print(f"design under repair: {problem.name}")
    print(f"tool feedback:       {case.feedback}")
    print()

    for model_name in ("ours-13b", "llama2-13b"):
        model = get_model(model_name)
        attempts = model.repair_verilog(case.broken, case.feedback,
                                        problem.reference,
                                        problem.difficulty,
                                        n_samples=5,
                                        problem_name=problem.name)
        fixed = 0
        syntax_bad = 0
        for attempt in attempts:
            if not check_source(attempt).ok:
                syntax_bad += 1
                continue
            verdict = run_testbench(attempt, problem.testbench)
            if verdict.all_passed:
                fixed += 1
        print(f"{model_name:<12} 5 attempts: {syntax_bad} syntax-broken, "
              f"{fixed} fully repaired "
              f"({'repaired' if fixed else 'NOT repaired'})")


if __name__ == "__main__":
    main()
