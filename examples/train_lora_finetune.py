"""Finetune the numpy transformer with LoRA on augmented data.

Mirrors the paper's training setup at laptop scale: build an augmented
dataset with the pipeline, "pre-train" the tiny transformer on completion
data, then LoRA-finetune on the aligned NL→Verilog pairs (only low-rank
adapter factors receive gradients, like the paper's LoraNet on Llama-2):

    python examples/train_lora_finetune.py
"""

from repro.core import AugmentationPipeline, PipelineConfig
from repro.corpus import generate_corpus
from repro.llm import (TinyTransformerLM, TransformerConfig, Tokenizer,
                       TransformerTrainConfig, attach_lora,
                       count_lora_params, records_to_text, split_dataset,
                       train_transformer)


def main() -> None:
    corpus = generate_corpus(8, seed=0)
    completion = AugmentationPipeline(PipelineConfig.completion_only()) \
        .run(corpus).dataset.trimmed(120)
    aligned = AugmentationPipeline(PipelineConfig.nl_only()) \
        .run(corpus).dataset.trimmed(200)
    print(f"completion records: {len(completion)}, "
          f"aligned records: {len(aligned)}")

    tokenizer = Tokenizer.train(records_to_text(completion)
                                + records_to_text(aligned),
                                vocab_size=768)
    model = TinyTransformerLM(TransformerConfig(
        vocab_size=len(tokenizer), d_model=32, n_heads=2, n_layers=2,
        d_ff=64, max_len=96, seed=0))
    print(f"model parameters: {model.num_parameters():,}")

    # Stage 1: base training on completion data (the paper's stage 1).
    train, val = split_dataset(completion, val_fraction=0.15)
    stage1 = train_transformer(model, train, val, tokenizer,
                               TransformerTrainConfig(
                                   epochs=2, max_batches_per_epoch=30))
    print(f"stage 1 (completion): val loss "
          f"{stage1.val_losses[0]:.3f} -> {stage1.val_losses[-1]:.3f}")

    # Stage 2: LoRA finetuning on aligned data (base weights frozen).
    adapters = attach_lora(model, rank=4, alpha=8, seed=1)
    print(f"LoRA trainable parameters: "
          f"{count_lora_params(adapters):,} "
          f"({count_lora_params(adapters) / model.num_parameters():.2%} "
          f"of base)")
    train2, val2 = split_dataset(aligned, val_fraction=0.2)
    stage2 = train_transformer(model, train2, val2, tokenizer,
                               TransformerTrainConfig(
                                   epochs=3, lr=5e-3,
                                   max_batches_per_epoch=30))
    print(f"stage 2 (LoRA on aligned): val loss "
          f"{stage2.val_losses[0]:.3f} -> {stage2.val_losses[-1]:.3f}")
    improved = stage2.val_losses[-1] < stage2.val_losses[0]
    print("LoRA finetuning reduced aligned-task loss:",
          "yes" if improved else "no")


if __name__ == "__main__":
    main()
