"""DAG flows + the scenario zoo in one sitting.

Three stops:

1. Define an arbitrary DAG as a plain dict — ``foreach`` fan-out
   templates, ``after`` edges, ``@flow:`` result references — and run
   it topologically in-process with ``run_flow_direct``.
2. The same spec runs unchanged through the daemon (``repro dag
   spec.json``) or the gateway; results are byte-identical.
3. The scenario registry turns such specs into regression gates:
   declared expected ranges, one machine-readable report, violations
   fail CI (``repro scenarios run --tag ci``).

    python examples/scenarios_quickstart.py
"""

import json
import os
import tempfile

from repro.flow import run_flow_direct, validate_flow
from repro.scenarios import (Scenario, all_scenarios, register,
                             run_scenarios, unregister)

DFF = """module dff(input clk, input d, output reg q);
  always @(posedge clk) q <= d;
endmodule
"""


def main() -> None:
    root = tempfile.mkdtemp(prefix="scenario-demo-")
    corpus = os.path.join(root, "corpus")
    os.makedirs(corpus)
    with open(os.path.join(corpus, "dff.v"), "w",
              encoding="utf-8") as handle:
        handle.write(DFF)

    print("=" * 70)
    print("1. A DAG spec: fan-out template + downstream join")
    print("=" * 70)
    # aug-0 / aug-1 expand from one template node; "report" starts only
    # after both finish.  The same dict could be dumped to spec.json
    # and submitted with `repro dag spec.json`.
    flow = {"name": "demo", "nodes": [
        {"name": "aug-{seed}", "kind": "augment",
         "spec": {"paths": [corpus], "seed": "{seed}"},
         "foreach": {"seed": [0, 1]}},
        {"name": "report", "kind": "probe",
         "spec": {"payload": "both seeds done"},
         "after": ["aug-0", "aug-1"]}]}
    for node in validate_flow(flow):
        after = f" after {', '.join(node.after)}" if node.after else ""
        print(f"  {node.name:10} ({node.kind}){after}")
    results = run_flow_direct(flow, os.path.join(root, "work"))
    for name in ("aug-0", "aug-1"):
        blob = results[name]
        print(f"  {name}: {blob['records']} records, "
              f"sha {blob['sha256'][:12]}")
    assert results["aug-0"]["sha256"] != results["aug-1"]["sha256"]

    print()
    print("=" * 70)
    print("2. The built-in zoo: every scenario is spec + ranges")
    print("=" * 70)
    for scenario in all_scenarios():
        print(f"  {scenario.name:24} {scenario.family:6} "
              f"[{','.join(scenario.tags)}]")

    print()
    print("=" * 70)
    print("3. Register a gate of your own and run a selection")
    print("=" * 70)
    register(Scenario(
        name="demo-seed-gate", family="sweep",
        description="two seeds must diverge",
        build=lambda ctx: {"nodes": [
            {"name": "a-{s}", "kind": "augment",
             "spec": {"paths": [ctx.corpus()], "seed": "{s}"},
             "foreach": {"s": [0, 1]}}]},
        extract=lambda blobs, ctx: {
            "distinct": len({b["sha256"] for b in blobs.values()})},
        expected={"distinct": (2, 2)}))
    try:
        report = run_scenarios(
            names=["demo-seed-gate", "aug-seed-grid"],
            root=os.path.join(root, "scenarios"))
    finally:
        unregister("demo-seed-gate")
    print(report.render())
    print()
    print(f"report ok={report.ok}; CI gates on exactly this blob:")
    blob = report.to_dict()
    print(json.dumps({key: blob[key] for key in
                      ("version", "ok", "violations")}, indent=2))


if __name__ == "__main__":
    main()
