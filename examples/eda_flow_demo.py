"""Drive the mini SiliconCompiler through the full RTL-to-GDS flow.

Builds a chip from a generated script (as the script dataset does), runs
synthesis → floorplan → place → CTS → route → STA → power → export on the
sky130-like PDK, and prints the PPA report plus the GDS summary:

    python examples/eda_flow_demo.py
"""

from repro.eda import BENCHMARK_SCRIPTS, Chip, run_script
from repro.llm import DescriptionOracle


def main() -> None:
    print("=" * 70)
    print("Direct Chip API (what generated scripts drive)")
    print("=" * 70)
    chip = Chip("counter")
    chip.input("counter.v")
    chip.clock("clk", period=8)
    chip.set("constraint", "density", 55)
    chip.load_target("skywater130_demo")
    result = chip.run()
    print(chip.summary())
    print(f"\nGDS: {result.gds['cell_count']} cells placed on a "
          f"{result.gds['die'][2]} x {result.gds['die'][3]} um die")

    print()
    print("=" * 70)
    print("Script-level path: describe + execute (Sec 3.3 / Table 4)")
    print("=" * 70)
    script = BENCHMARK_SCRIPTS["Mixed"]
    description = DescriptionOracle().describe(script)
    print(f"oracle description:\n  {description}\n")
    check = run_script(script)
    print(f"script verdict: syntax={check.syntax_ok} "
          f"function={check.function_ok}")


if __name__ == "__main__":
    main()
