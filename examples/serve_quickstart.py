"""Quickstart: the crash-safe job service (``repro serve``).

Boots a daemon in-process on an ephemeral port, submits one job of
each kind over the HTTP API, waits for the results, prints the health
report, then restarts the daemon on the same store to show that the
journal makes everything durable:

    python examples/serve_quickstart.py

The CLI equivalent, against a long-lived daemon::

    repro serve --store /tmp/serve-store --workers 2 &
    repro submit simulate my_tb.v
    repro submit --priority 5 augment rtl/
    repro submit evaluate --suite scripts --models ours-13b
    repro status                # all jobs + queue depths + cache hits
    repro result job-000001     # rendered report / result blob
"""

import os
import tempfile
import threading

from repro.serve import Daemon, ServeClient, make_server

TB = """module tb;
  reg [3:0] n;
  initial begin
    n = 4'd7;
    $display("PASS %0d", n);
    $finish;
  end
endmodule
"""

DFF = """module dff(input clk, input d, output reg q);
  always @(posedge clk) q <= d;
endmodule
"""


def boot(store: str):
    """One daemon + HTTP server on an ephemeral port."""
    daemon = Daemon(store, workers=2)
    server = make_server(daemon, port=0)
    daemon.start()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return daemon, server, ServeClient(url)


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-serve-")
    corpus = os.path.join(root, "corpus")
    os.makedirs(corpus)
    with open(os.path.join(corpus, "dff.v"), "w",
              encoding="utf-8") as handle:
        handle.write(DFF)
    store = os.path.join(root, "store")

    print("=" * 70)
    print("1. Submit one job of each kind")
    print("=" * 70)
    daemon, server, client = boot(store)
    ids = [
        client.submit("simulate", {"source": TB})["id"],
        client.submit("augment", {"paths": [corpus]},
                      priority=5)["id"],
        client.submit("evaluate", {"suite": "scripts",
                                   "models": ["ours-13b"],
                                   "samples": 3})["id"],
        client.submit("experiment", {"name": "table1"})["id"],
    ]
    for job_id, job in sorted(client.wait(ids, timeout=300).items()):
        print(f"  {job_id}: {job['kind']:<10} -> {job['state']}")

    print()
    print("=" * 70)
    print("2. Results (simulate output / augment counts / a table)")
    print("=" * 70)
    print(f"  simulate: {client.result(ids[0])['output']!r}")
    print(f"  augment:  {client.result(ids[1])['records']} records")
    print("  evaluate:")
    for line in client.result(ids[2])["rendered"].splitlines()[:4]:
        print(f"    {line}")

    print()
    print("=" * 70)
    print("3. Health: queues, budgets, cache hit rates, sim backend")
    print("=" * 70)
    health = client.health()
    print(f"  jobs:   {health['jobs']}")
    print(f"  queues: {health['queue_depths']} "
          f"(budgets {health['budgets']})")
    print(f"  caches: {health['caches']}")
    print(f"  sim:    {health['sim_backend']['summary']}")

    server.shutdown()
    server.server_close()
    daemon.stop()

    print()
    print("=" * 70)
    print("4. Restart on the same store: the journal survives")
    print("=" * 70)
    daemon, server, client = boot(store)
    for job in client.jobs():
        print(f"  {job['id']}: {job['kind']:<10} {job['state']} "
              f"(still served from the journal)")
    server.shutdown()
    server.server_close()
    daemon.stop()


if __name__ == "__main__":
    main()
