"""Quickstart: the augment → train → evaluate pipeline (``repro pipeline``).

Boots the job daemon in-process, submits the three stages as one
dependency DAG, waits, and prints the trained model's loss curve and
its benchmark column next to a paper baseline.  Then resubmits the
identical DAG to show the warm path: the augment shard cache, the
train checkpoint store and the eval cell cache mean the whole loop
replays with zero recomputation (``misses == 0`` everywhere):

    python examples/pipeline_quickstart.py

The CLI equivalent, against a long-lived daemon::

    repro serve --store /tmp/pipe-store --workers 2 &
    repro pipeline rtl/ --suite thakur --register-as ours-tiny \\
        --models ours-tiny,llama2-13b --samples 2 --levels middle

Or without a daemon (direct, still checkpointed and resumable)::

    repro train rtl/ --cache-dir /tmp/aug --checkpoint-dir /tmp/ck \\
        --out ours-tiny.json
    repro evaluate --suite thakur --artifact ours-tiny.json
"""

import json
import os
import tempfile
import threading

from repro.serve import Daemon, ServeClient, make_server

DFF = """module dff(input clk, input d, output reg q);
  always @(posedge clk) q <= d;
endmodule
"""

MUX = """module mux2(input a, input b, input sel, output y);
  assign y = sel ? b : a;
endmodule
"""

TRAIN_KNOBS = {"epochs": 2, "batch_size": 4, "micro_batch": 2,
               "seq_len": 32, "vocab_size": 160, "d_model": 16,
               "n_heads": 2, "n_layers": 1, "d_ff": 32,
               "max_records": 32, "checkpoint_every": 4,
               "register_as": "ours-tiny"}


def boot(store: str):
    daemon = Daemon(store, workers=2)
    server = make_server(daemon, port=0)
    daemon.start()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    return daemon, server, ServeClient(url)


def run_dag(client: ServeClient, corpus: str) -> tuple[dict, dict]:
    """Submit the three stages as a DAG and wait for the results."""
    augment = client.submit("augment", {"paths": [corpus]})
    train = client.submit("train", {"paths": [corpus], **TRAIN_KNOBS},
                          after=[augment["id"]])
    evaluate = client.submit(
        "evaluate",
        {"suite": "thakur", "models": ["ours-tiny", "llama2-13b"],
         "samples": 2, "levels": ["middle"], "k": 2,
         "trained": {"name": "ours-tiny", "job": train["id"]}},
        after=[train["id"]])
    ids = [augment["id"], train["id"], evaluate["id"]]
    for job_id, job in sorted(client.wait(ids, timeout=300).items()):
        print(f"  {job_id}: {job['kind']:<9} -> {job['state']}")
    return client.result(train["id"]), client.result(evaluate["id"])


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-pipeline-")
    corpus = os.path.join(root, "corpus")
    os.makedirs(corpus)
    for name, text in (("dff.v", DFF), ("mux2.v", MUX)):
        with open(os.path.join(corpus, name), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
    store = os.path.join(root, "store")

    print("=" * 70)
    print("1. Cold run: augment -> train -> evaluate as one DAG")
    print("=" * 70)
    daemon, server, client = boot(store)
    train_blob, eval_blob = run_dag(client, corpus)

    print()
    print("=" * 70)
    print("2. The trained model")
    print("=" * 70)
    print(f"  records:    {train_blob['records']} "
          f"({train_blob['trained_tokens']} tokens)")
    curve = " -> ".join(f"{loss:.3f}"
                        for loss in train_blob["losses"][:6])
    print(f"  loss curve: {curve} ...")
    print(f"  final loss: {train_blob['final_loss']:.4f}")
    print(f"  weights:    {train_blob['weights_sha256'][:16]}")

    print()
    print("=" * 70)
    print("3. Scored next to a paper baseline (Table-5 renderer)")
    print("=" * 70)
    print(eval_blob["rendered"])

    print()
    print("=" * 70)
    print("4. Warm rerun: identical DAG, zero recomputation")
    print("=" * 70)
    run_dag(client, corpus)
    health = client.health()
    print(f"  cache manifests: "
          f"{json.dumps(health['caches'], sort_keys=True)}")

    server.shutdown()
    server.server_close()
    daemon.stop()


if __name__ == "__main__":
    main()
