"""Autotune the trainer for this machine, then train with the winner.

``repro tune`` profiles a grid of (jobs, pool, micro_batch, checkpoint
cadence) candidates — each one an ordinary service job dispatched
through the scheduler — and persists the fastest configuration to
``work/tune.json``.  Every later ``repro train`` (and the training
benchmark) picks that file up automatically, so the flow is: tune once
per machine, then stop thinking about pool flags:

    python examples/tune_quickstart.py

The equivalent CLI session::

    repro tune data/corpus            # writes work/tune.json
    repro train data/corpus ...       # uses the tuned jobs/pool
    repro train data/corpus --no-tuned --jobs 1   # explicit override
"""

import os
import tempfile

from repro.train import (TrainConfig, corpus_dataset, default_grid,
                         load_tuned, save_tuned, train_run, tune_corpus)


def make_corpus(root: str) -> str:
    corpus = os.path.join(root, "corpus")
    os.makedirs(corpus, exist_ok=True)
    for index in range(4):
        with open(os.path.join(corpus, f"unit{index}.v"), "w",
                  encoding="utf-8") as handle:
            handle.write(
                f"module unit{index}(input clk, input [3:0] d, "
                f"output reg [3:0] q);\n"
                f"  always @(posedge clk) q <= d + {index};\n"
                f"endmodule\n")
    return corpus


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-tune-demo-") as root:
        corpus = make_corpus(root)

        print("=" * 70)
        print("1. Profile the candidate grid (service jobs)")
        print("=" * 70)
        report = tune_corpus([corpus], grid=default_grid(),
                             max_records=24, batch_size=4,
                             log=lambda line: print(f"   {line}"))
        tune_path = os.path.join(root, "tune.json")
        save_tuned(report, tune_path)
        print(f"\nwinner persisted to {tune_path}")

        print()
        print("=" * 70)
        print("2. Train under the tuned configuration")
        print("=" * 70)
        tuned = load_tuned(tune_path)
        print(f"tuned config: {tuned}")
        dataset, _ = corpus_dataset([corpus])
        config = TrainConfig(epochs=1, batch_size=4,
                             micro_batch=tuned["micro_batch"],
                             seq_len=32, vocab_size=192, d_model=16,
                             n_heads=2, n_layers=1, d_ff=32,
                             max_records=24)
        run = train_run(dataset, config, jobs=tuned["jobs"],
                        use_threads=tuned["pool"] == "threads")
        print(f"trained {run.steps} step(s) via the {run.transport} "
              f"transport; final loss {run.final_loss:.4f}")
        print(f"weights {run.weights_sha256[:12]} — byte-identical to "
              f"a serial run, whatever the tuner picked")


if __name__ == "__main__":
    main()
