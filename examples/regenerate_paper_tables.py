"""Regenerate every table and figure of the paper in one go.

    python examples/regenerate_paper_tables.py           # quick sweeps
    python examples/regenerate_paper_tables.py --full    # full sweeps
"""

import sys

from repro.experiments import run_all


def main() -> None:
    quick = "--full" not in sys.argv
    for name, text in run_all(quick=quick).items():
        print(f"\n{'=' * 72}\n{name.upper()}\n{'=' * 72}")
        print(text)


if __name__ == "__main__":
    main()
