"""Quickstart: augment one Verilog file end-to-end.

Runs every stage of the design-data augmentation framework (paper Fig. 4)
on a single counter module and prints the records it produces:

    python examples/quickstart.py
"""

from repro.checker import check_source
from repro.core import (alignment_records, completion_records,
                        feedback_repair_records, make_broken_variant,
                        repair_records)
from repro.nl import describe_source

COUNTER = """module counter (clk, rst, en, count);
  input clk, rst, en;
  output reg [1:0] count;
  always @(posedge clk)
    if (rst) count <= 2'd0;
    else if (en) count <= count + 2'd1;
endmodule
"""


def main() -> None:
    print("=" * 70)
    print("1. Program-analysis natural language (Sec 3.1.2, Fig 5)")
    print("=" * 70)
    print(describe_source(COUNTER).annotated())

    print()
    print("=" * 70)
    print("2. Multi-level completion records (Sec 3.1.1)")
    print("=" * 70)
    for record in completion_records(COUNTER, statement_cap=2,
                                     token_cap=2):
        print(f"[{record.task.value}]")
        print(f"  instruct: {record.instruct.strip()}")
        print(f"  input:    ...{record.input[-40:]!r}")
        print(f"  output:   {record.output[:60]!r}")

    print()
    print("=" * 70)
    print("3. Aligned (NL, Verilog) record (Sec 3.1.2)")
    print("=" * 70)
    record = next(alignment_records(COUNTER, include_partial=False))
    print(f"  instruct: {record.instruct.strip()}")
    print(f"  input:    {record.input[:100]}...")

    print()
    print("=" * 70)
    print("4. Rule-based error injection + yosys feedback (Sec 3.2)")
    print("=" * 70)
    broken = make_broken_variant(COUNTER, seed=7, count=2)
    for applied in broken.applied:
        print(f"  injected: {applied.rule} at line {applied.line} "
              f"({applied.description})")
    result = check_source(broken.mutated, "./counter.v")
    print(f"  checker:  {result.first_error() or 'clean (semantic bug)'}")

    plain = list(repair_records(COUNTER, seed=1, variants=2))
    with_feedback = list(feedback_repair_records(COUNTER, seed=1,
                                                 variants=4))
    print(f"  repair records: {len(plain)} plain, "
          f"{len(with_feedback)} with EDA feedback")
    if with_feedback:
        feedback_line = with_feedback[0].input.split(',\n', 1)[0]
        print(f"  sample feedback: {feedback_line}")


if __name__ == "__main__":
    main()
