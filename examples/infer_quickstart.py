"""Quickstart: checkpoint → ``repro infer`` → ``repro evaluate``.

The inference loop end-to-end at laptop scale: finetune the tiny
transformer on an augmented corpus (checkpointed), write the trained
artefact — which now embeds a portable weights bundle — then decode
completions from it with the batched KV-cache sampler and score the
*sampled* model on a benchmark suite:

    python examples/infer_quickstart.py

The CLI equivalent::

    repro train rtl/ --checkpoint-dir /tmp/ck --register-as ours-tiny \\
        --max-records 32 --seq-len 32 --vocab-size 160 --d-model 16 \\
        --out ours-tiny.json
    repro infer ours-tiny.json --prompt "### instruct: Write Verilog" \\
        --max-tokens 24 --temperature 0.8
    repro evaluate --suite thakur --artifact ours-tiny.json \\
        --models ours-tiny --samples 2 --levels middle

Or through the daemon, as one decode job batched by weights digest::

    repro serve --store /tmp/infer-store &
    repro submit infer <train-job-id> --trained-name ours-tiny \\
        --prompt "### instruct: Write Verilog for a counter"
"""

import json
import os
import tempfile

from repro.cli import main as repro
from repro.train import (TrainConfig, build_artifact, corpus_dataset,
                         train_run)

DESIGNS = {
    "dff.v": "module dff(input clk, input d, output reg q);\n"
             "  always @(posedge clk) q <= d;\nendmodule\n",
    "mux2.v": "module mux2(input a, input b, input sel, output y);\n"
              "  assign y = sel ? b : a;\nendmodule\n",
}


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        rtl = os.path.join(root, "rtl")
        os.makedirs(rtl)
        for name, text in DESIGNS.items():
            with open(os.path.join(rtl, name), "w",
                      encoding="utf-8") as handle:
                handle.write(text)

        # 1. Finetune (checkpointed) and build the weights-carrying
        #    artefact — the single JSON handoff every later stage uses.
        dataset, _ = corpus_dataset([rtl])
        report = train_run(
            dataset,
            TrainConfig(epochs=1, batch_size=4, micro_batch=2,
                        seq_len=32, vocab_size=160, d_model=16,
                        n_heads=2, n_layers=1, d_ff=32,
                        max_records=32, checkpoint_every=4),
            checkpoint_dir=os.path.join(root, "ckpt"))
        print(f"trained: {report.summary()}")
        artifact = build_artifact("ours-tiny", report, dataset)
        artifact_path = os.path.join(root, "ours-tiny.json")
        with open(artifact_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
        print(f"artefact embeds weights: "
              f"{artifact['weights']['weights_sha256'][:12]}…\n")

        # 2. Decode completions from the artefact (KV-cache sampler;
        #    same blob the daemon's infer jobs produce).
        print("== repro infer ==")
        repro(["infer", artifact_path,
               "--prompt", "### instruct: Write Verilog for a flip "
                           "flop\n### input: \n### output:",
               "--max-tokens", "24", "--temperature", "0.8"])

        # 3. Score the sampled transformer on a benchmark suite — the
        #    eval cells key on the weights digest, not the name.
        print("\n== repro evaluate --artifact ==")
        repro(["evaluate", "--suite", "thakur",
               "--artifact", artifact_path, "--models", "ours-tiny",
               "--samples", "2", "--levels", "middle", "--k", "2"])


if __name__ == "__main__":
    main()
