"""The paper's Fig. 1: the finetuned model as an EDA-tool agent.

Natural-language prompt in → checked, simulated, synthesized design out,
with the model reacting to real tool feedback along the way:

    python examples/agent_demo.py
"""

from repro.agent import ChipAgent
from repro.bench import thakur_suite


def main() -> None:
    problems = {p.name: p for p in thakur_suite()}
    problem = problems["intermediate3"]   # 3-state FSM
    print(f"prompt ({problem.name}, high detail):")
    print(f"  {problem.prompt('high')[:160]}...\n")

    for model_name in ("ours-13b", "llama2-13b"):
        print(f"--- agent backed by {model_name} ---")
        agent = ChipAgent(model_name, max_rounds=2, run_flow=True)
        result = agent.build(problem)
        print(result.transcript)
        verdict = "design delivered" if result.passed else "gave up"
        print(f"=> {verdict} after {result.rounds} round(s)\n")


if __name__ == "__main__":
    main()
