"""Quickstart: the asyncio multi-tenant serving gateway.

Boots a :class:`~repro.serve.GatewayServer` in front of a daemon with
three tenant tiers, then walks the gateway's contract end to end:

1. tenant routing — requests carry ``X-Repro-Tenant`` and inherit that
   tenant's rate limit / quota / priority boost;
2. backpressure — a tiny token bucket turns the fourth rapid submit
   into a ``429`` whose ``Retry-After`` header says when to come back;
3. live progress — ``GET /api/events/<id>`` streams job state
   transitions as Server-Sent Events until the job is terminal;
4. observability — ``GET /api/gateway`` reports per-tenant admission
   counters next to the global queue depth.

Run it with::

    python examples/gateway_quickstart.py

The CLI equivalent, against a long-lived gateway::

    repro serve --gateway --store /tmp/serve-store --workers 2 \
        --tenant 'vip=50:100:256:10' --tenant 'batch=5:10' &
    repro submit --tenant vip probe --payload smoke-test
    repro status
"""

import json
import socket
import tempfile
from urllib.parse import urlsplit

from repro.serve import (Daemon, GatewayConfig, GatewayServer,
                         ServeClient, ServeError, TenantPolicy)


def stream_events(url: str, job_id: str, tenant: str) -> list[str]:
    """Read the SSE stream for one job until a terminal state arrives."""
    parts = urlsplit(url)
    states = []
    with socket.create_connection((parts.hostname, parts.port),
                                  timeout=30) as sock:
        sock.sendall((f"GET /api/events/{job_id} HTTP/1.1\r\n"
                      f"Host: quickstart\r\n"
                      f"X-Repro-Tenant: {tenant}\r\n\r\n")
                     .encode("latin-1"))
        buffer = b""
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            buffer += chunk
            # SSE frames are newline-delimited; only parse whole lines.
            complete, _, buffer = buffer.rpartition(b"\n")
            for line in complete.splitlines():
                if not line.startswith(b"data:"):
                    continue
                event = json.loads(line[5:])
                states.append(event["state"])
                if event["state"] in ("done", "failed", "cancelled"):
                    return states
    return states


def main() -> None:
    store = tempfile.mkdtemp(prefix="repro-gateway-")

    daemon = Daemon(store, workers=2)
    daemon.start()
    config = GatewayConfig(
        max_queue_depth=256,
        tenants={
            # Paid tier: fast refill, deep quota, scheduler boost.
            "vip": TenantPolicy(name="vip", rate=50.0, burst=100,
                                max_active=128, priority_boost=10),
            # Best-effort batch tier: 3-token bucket, slow refill.
            "batch": TenantPolicy(name="batch", rate=2.0, burst=3),
        },
    )
    server = GatewayServer(daemon, config=config).start()
    print(f"gateway listening on {server.url}")

    print()
    print("=" * 70)
    print("1. Tenant routing: vip submits outrank batch in the queue")
    print("=" * 70)
    vip = ServeClient(server.url, tenant="vip")
    batch = ServeClient(server.url, tenant="batch")
    job = vip.submit("probe", {"payload": "hello"}, priority=1)
    print(f"  vip submit    -> {job['id']} "
          f"priority {job['priority']} (1 + boost 10)")
    job_id = job["id"]

    print()
    print("=" * 70)
    print("2. Backpressure: the batch bucket empties after 3 submits")
    print("=" * 70)
    for index in range(4):
        try:
            job = batch.submit("probe", {"payload": index})
            print(f"  batch submit {index} -> 200 {job['id']}")
        except ServeError as error:
            print(f"  batch submit {index} -> {error.status} "
                  f"rate limited, Retry-After {error.retry_after}s")

    print()
    print("=" * 70)
    print("3. SSE progress: every transition for one job, streamed")
    print("=" * 70)
    states = stream_events(server.url, job_id, "vip")
    print(f"  {job_id}: " + " -> ".join(states))
    print(f"  result sha256: {vip.result(job_id)['sha256'][:16]}…")

    print()
    print("=" * 70)
    print("4. Gateway stats: admission counters per tenant")
    print("=" * 70)
    stats = vip.gateway()
    print(f"  active jobs: {stats['active_jobs']} / "
          f"{stats['max_queue_depth']}")
    for name, tenant in sorted(stats["tenants"].items()):
        print(f"  {name:<7} submitted {tenant['submitted']:>2}  "
              f"rate-throttled {tenant['throttled']}  "
              f"quota-blocked {tenant['rejected']}")

    vip.wait([job_id], timeout=60)
    server.stop()
    daemon.stop()


if __name__ == "__main__":
    main()
