"""Tests for the real LMs: tokenizer, n-gram, transformer, LoRA."""

import numpy as np
import pytest

from repro.core import Dataset, Task, make_record
from repro.llm import (Adam, NGramModel, TinyTransformerLM, Tokenizer,
                       TransformerConfig, attach_lora, count_lora_params,
                       merge_lora, pretokenize, scaling_curve,
                       split_dataset, train_ngram)


def tiny_dataset(n=30):
    """Shared-vocabulary dataset: more data covers more of the val set."""
    dataset = Dataset()
    widths = (2, 4, 8, 16)
    gates = ("&", "|", "^")
    for i in range(n):
        width = widths[i % len(widths)]
        gate = gates[i % len(gates)]
        dataset.add(make_record(
            Task.NL_VERILOG,
            f"module gate has two {width} bit inputs and one output "
            f"using {gate}",
            f"module gate (input [{width - 1}:0] a, "
            f"input [{width - 1}:0] b, output [{width - 1}:0] y); "
            f"assign y = a {gate} b; endmodule"))
    return dataset


class TestTokenizer:
    def test_pretokenize_verilog(self):
        pieces = pretokenize("assign y = a & b;")
        assert pieces == ["assign", "y", "=", "a", "&", "b", ";"]

    def test_roundtrip_known_words(self):
        tok = Tokenizer.train(["assign y = a ;"])
        ids = tok.encode("assign y = a ;")
        assert tok.decode(ids) == "assign y = a ;"

    def test_unknown_word_char_backoff(self):
        tok = Tokenizer.train(["abc def"])
        ids = tok.encode("fed")  # unseen word, chars known
        assert tok.unk_id not in ids
        assert tok.decode(ids).replace(" ", "") == "fed"

    def test_special_ids_distinct(self):
        tok = Tokenizer.train(["x"])
        assert len({tok.pad_id, tok.unk_id, tok.bos_id, tok.eos_id}) == 4

    def test_vocab_size_limit(self):
        texts = [f"word{i}" for i in range(5000)]
        tok = Tokenizer.train(texts, vocab_size=300)
        assert len(tok) <= 300


class TestNGram:
    def test_learns_deterministic_sequence(self):
        model = NGramModel(order=3)
        seq = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        model.fit([seq], vocab_size=5)
        assert model.prob([1, 2], 3) > model.prob([1, 2], 4)

    def test_loss_decreases_with_data(self):
        val = [[1, 2, 3, 4, 1, 2, 3, 4]]
        small = NGramModel(order=3).fit([[1, 2, 3, 4] * 2], vocab_size=6)
        large = NGramModel(order=3).fit([[1, 2, 3, 4] * 50], vocab_size=6)
        assert large.cross_entropy(val) <= small.cross_entropy(val)

    def test_perplexity_positive(self):
        model = NGramModel(order=2).fit([[1, 2, 1, 2]], vocab_size=3)
        assert model.perplexity([[1, 2, 1]]) >= 1.0

    def test_generation_follows_counts(self):
        model = NGramModel(order=2).fit([[5, 6] * 20], vocab_size=8)
        out = model.generate([5], max_tokens=3, seed=0)
        assert out[1] == 6

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            NGramModel(order=0)


class TestTransformer:
    @pytest.fixture(scope="class")
    def model(self):
        return TinyTransformerLM(TransformerConfig(
            vocab_size=32, d_model=16, n_heads=2, n_layers=1, d_ff=32,
            max_len=16, seed=0))

    def test_forward_shapes(self, model):
        logits = model.forward(np.array([[1, 2, 3]]))
        assert logits.shape == (1, 3, 32)

    def test_loss_decreases_when_overfitting(self):
        model = TinyTransformerLM(TransformerConfig(
            vocab_size=16, d_model=16, n_heads=2, n_layers=1, d_ff=32,
            max_len=8, seed=1))
        optimizer = Adam(model.params(), lr=1e-2)
        ids = np.array([[1, 2, 3, 4, 5]])
        targets = np.array([[2, 3, 4, 5, 6]])
        first = model.loss_and_backward(ids, targets)
        for _ in range(60):
            optimizer.zero_grad()
            loss = model.loss_and_backward(ids, targets)
            optimizer.step()
        assert loss < first * 0.5

    def test_gradient_check_numeric(self):
        """Numeric gradient check on a tiny model (the backprop is real)."""
        model = TinyTransformerLM(TransformerConfig(
            vocab_size=8, d_model=4, n_heads=1, n_layers=1, d_ff=8,
            max_len=4, seed=2))
        ids = np.array([[1, 2, 3]])
        targets = np.array([[2, 3, 4]])
        for p in model.params():
            p.zero_grad()
        model.loss_and_backward(ids, targets)
        param = model.blocks[0].mlp.fc1.weight
        analytic = param.grad[0, 0]
        eps = 1e-5
        param.value[0, 0] += eps
        plus = model.evaluate_loss(ids, targets)
        param.value[0, 0] -= 2 * eps
        minus = model.evaluate_loss(ids, targets)
        param.value[0, 0] += eps
        numeric = (plus - minus) / (2 * eps)
        assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_padding_ignored_in_loss(self, model):
        ids = np.array([[1, 2, 0, 0]])
        targets = np.array([[2, 3, -1, -1]])
        loss_padded = model.evaluate_loss(ids, targets)
        loss_short = model.evaluate_loss(np.array([[1, 2]]),
                                         np.array([[2, 3]]))
        assert loss_padded == pytest.approx(loss_short, rel=1e-6)

    def test_generate_deterministic_greedy(self, model):
        out1 = model.generate([1, 2], max_tokens=4)
        out2 = model.generate([1, 2], max_tokens=4)
        assert out1 == out2

    def test_too_long_sequence_rejected(self, model):
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 999), dtype=int))


class TestLoRA:
    def make_model(self):
        return TinyTransformerLM(TransformerConfig(
            vocab_size=16, d_model=8, n_heads=2, n_layers=1, d_ff=16,
            max_len=8, seed=3))

    def test_adapter_starts_as_identity(self):
        model = self.make_model()
        ids = np.array([[1, 2, 3]])
        before = model.forward(ids).copy()
        attach_lora(model, rank=2, seed=0)
        after = model.forward(ids)
        assert np.allclose(before, after)

    def test_freeze_base_trains_only_adapters(self):
        model = self.make_model()
        adapters = attach_lora(model, rank=2, seed=0, freeze_base=True)
        trainable = model.trainable_params()
        assert len(trainable) == 2 * len(adapters)
        assert count_lora_params(adapters) == \
            sum(p.value.size for p in trainable)

    def test_lora_training_reduces_loss(self):
        model = self.make_model()
        attach_lora(model, rank=4, alpha=8, seed=0)
        optimizer = Adam(model.params(), lr=5e-2)
        ids = np.array([[1, 2, 3, 4]])
        targets = np.array([[2, 3, 4, 5]])
        first = model.evaluate_loss(ids, targets)
        for _ in range(80):
            optimizer.zero_grad()
            model.loss_and_backward(ids, targets)
            optimizer.step()
        assert model.evaluate_loss(ids, targets) < first * 0.8

    def test_merge_preserves_function(self):
        model = self.make_model()
        attach_lora(model, rank=2, seed=1)
        # nudge adapters so the delta is nonzero
        for linear in model.attention_linears():
            linear.lora.B.value += 0.05
        ids = np.array([[1, 2, 3]])
        with_adapters = model.forward(ids).copy()
        merge_lora(model)
        merged = model.forward(ids)
        assert all(linear.lora is None
                   for linear in model.attention_linears())
        assert np.allclose(with_adapters, merged, atol=1e-8)


class TestTrainerAndScaling:
    def test_train_ngram_returns_finite_loss(self):
        train, val = split_dataset(tiny_dataset(), val_fraction=0.2)
        model, result, tok = train_ngram(train, val)
        assert result.final_loss > 0
        assert result.trained_tokens > 0

    def test_scaling_curve_loss_decreases(self):
        """Fig. 3 shape: more data → lower validation loss."""
        points = scaling_curve(tiny_dataset(60), [0.1, 0.4, 1.0], seed=0)
        tokens = [p[0] for p in points]
        losses = [p[1] for p in points]
        assert tokens == sorted(tokens)
        assert losses[-1] < losses[0]

    def test_split_deterministic(self):
        d = tiny_dataset(20)
        a1, b1 = split_dataset(d, seed=5)
        a2, b2 = split_dataset(d, seed=5)
        assert [r.input for r in a1] == [r.input for r in a2]
        assert len(b1) == len(b2)
