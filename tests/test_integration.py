"""Cross-module integration: end-to-end paths the paper's Fig. 4 draws."""

from repro.bench import rtllm_suite, thakur_suite
from repro.checker import check_source
from repro.core import (AugmentationPipeline, PipelineConfig, Task)
from repro.corpus import generate_corpus
from repro.eda import reference_corpus, run_script
from repro.llm import DescriptionOracle
from repro.verilog import parse, unparse


class TestFig4EndToEnd:
    """Corpus → augmentation → dataset with EDA scripts, all stages on."""

    def test_full_pipeline_with_scripts(self):
        corpus = generate_corpus(6, seed=11)
        scripts = reference_corpus(25, seed=3)
        report = AugmentationPipeline(PipelineConfig(
            statement_cap=4, token_cap=8)).run(corpus,
                                               eda_scripts=scripts)
        counts = report.per_task
        assert counts[Task.EDA_SCRIPT] == 25
        assert Task.NL_VERILOG in counts
        assert Task.DEBUG in counts

    def test_script_records_roundtrip_through_runner(self):
        """Every (description, script) record's output actually runs."""
        scripts = reference_corpus(10, seed=5)
        oracle = DescriptionOracle()
        for script in scripts[:4]:
            description = oracle.describe(script)
            assert description                      # oracle understood it
            check = run_script(script)
            assert check.function_ok, check.summary

    def test_debug_records_repair_to_lintable_output(self):
        corpus = generate_corpus(4, seed=13)
        report = AugmentationPipeline(PipelineConfig(
            completion=False, alignment=False,
            eda_scripts=False)).run(corpus)
        for record in report.dataset.by_task(Task.DEBUG)[:6]:
            # output (the "right" file) must lint clean
            assert check_source(record.output).ok
            # input's embedded broken file must not
            _, wrong = record.input.split(",\n", 1)
            assert not check_source(wrong).ok


class TestBenchmarkReferencesRoundTrip:
    def test_all_references_unparse_stably(self):
        for problem in list(thakur_suite()) + list(rtllm_suite()):
            first = unparse(parse(problem.reference))
            second = unparse(parse(first))
            assert first == second, problem.name

    def test_all_references_lint_clean(self):
        for problem in list(thakur_suite()) + list(rtllm_suite()):
            assert check_source(problem.reference).ok, problem.name

    def test_all_testbenches_parse(self):
        for problem in list(thakur_suite()) + list(rtllm_suite()):
            parse(problem.reference + "\n" + problem.testbench)

    def test_high_prompts_describe_their_reference(self):
        for problem in thakur_suite():
            assert f"<{problem.name}>" in problem.prompt("high"), \
                problem.name
