"""Unit tests for the generic WorkPool layer (repro.scale.runner).

Covers the persistent-executor sizing contract, completion callbacks
under worker faults, clean close/reopen after faults, and the
single-worker affinity lanes the resident trainer builds on.
"""

import os
import threading

import pytest

from repro.scale.runner import WorkPool


def _double(value):
    return value * 2


def _maybe_fail(value):
    if value < 0:
        raise ValueError(f"bad item {value}")
    return value * 10


def _thread_ident(_value):
    return threading.get_ident()


def _worker_pid(_value):
    return os.getpid()


def test_serial_map_runs_inline_with_on_done():
    pool = WorkPool(jobs=1)
    seen = []
    out = pool.map(_double, {"a": 1, "b": 2},
                   on_done=lambda key, result: seen.append((key, result)))
    assert out == {"a": 2, "b": 4}
    assert seen == [("a", 2), ("b", 4)]


def test_persistent_executor_sized_lazily_and_reused():
    with WorkPool(jobs=4, use_threads=True) as pool:
        pool.map(_double, {0: 0, 1: 1})
        first = pool._executor
        assert pool._executor_workers == 2    # min(jobs, width), not jobs
        pool.map(_double, {0: 0, 1: 1})
        assert pool._executor is first        # reused, not respawned
        pool.map(_double, {index: index for index in range(6)})
        assert pool._executor_workers == 4    # grew, capped at jobs
        grown = pool._executor
        pool.map(_double, {0: 0})
        assert pool._executor is grown        # never shrinks
    assert pool._executor is None


def test_on_done_fires_for_successes_despite_sibling_fault():
    done = []
    pool = WorkPool(jobs=2, use_threads=True)
    with pytest.raises(ValueError, match="bad item -1"):
        pool.map(_maybe_fail, {"ok1": 1, "boom": -1, "ok2": 2},
                 on_done=lambda key, result: done.append(key))
    assert sorted(done) == ["ok1", "ok2"]


def test_first_error_in_submission_order_wins():
    pool = WorkPool(jobs=2, use_threads=True)
    for _ in range(5):                        # completion order varies
        with pytest.raises(ValueError, match="bad item -7"):
            pool.map(_maybe_fail, {"a": -7, "b": -9, "c": 3})


def test_close_after_fault_then_reuse():
    pool = WorkPool(jobs=2, use_threads=True).open()
    with pytest.raises(ValueError):
        pool.map(_maybe_fail, {"boom": -1, "ok": 1})
    pool.close()
    assert pool._executor is None and pool._slots == []
    # The pool object stays usable after close — fresh one-shot maps.
    assert pool.map(_double, {"x": 3}) == {"x": 6}


def test_ensure_slots_capped_at_jobs_and_additive():
    pool = WorkPool(jobs=2, use_threads=True)
    try:
        assert pool.ensure_slots(5) == 2      # capped at jobs
        assert len(pool._slots) == 2
        first = list(pool._slots)
        assert pool.ensure_slots(1) == 1      # never recycles lanes
        assert pool._slots[:2] == first
    finally:
        pool.close()


def test_slot_map_thread_affinity_across_rounds():
    pool = WorkPool(jobs=2, use_threads=True)
    try:
        width = pool.ensure_slots(2)
        rounds = [pool.slot_map(_thread_ident,
                                {slot: None for slot in range(width)})
                  for _ in range(3)]
        for later in rounds[1:]:
            assert later == rounds[0]         # slot s -> same thread
        assert rounds[0][0] != rounds[0][1]   # distinct lanes
    finally:
        pool.close()


def test_slot_map_process_affinity_across_rounds():
    pool = WorkPool(jobs=2)
    try:
        width = pool.ensure_slots(2)
        rounds = [pool.slot_map(_worker_pid,
                                {slot: None for slot in range(width)})
                  for _ in range(3)]
        for later in rounds[1:]:
            assert later == rounds[0]         # slot s -> same process
        assert rounds[0][0] != rounds[0][1]
    finally:
        pool.close()


def test_slot_map_rejects_unprovisioned_slot():
    pool = WorkPool(jobs=4, use_threads=True)
    try:
        pool.ensure_slots(2)
        with pytest.raises(ValueError, match="not provisioned"):
            pool.slot_map(_double, {3: 1})
    finally:
        pool.close()


def test_slot_map_lowest_slot_error_wins_and_lanes_survive():
    pool = WorkPool(jobs=4, use_threads=True)
    try:
        pool.ensure_slots(3)
        with pytest.raises(ValueError, match="bad item -1"):
            pool.slot_map(_maybe_fail, {0: 1, 1: -1, 2: -2})
        # Every lane finished its round; the pool is immediately usable.
        assert pool.slot_map(_maybe_fail, {0: 1, 1: 2, 2: 3}) \
            == {0: 10, 1: 20, 2: 30}
    finally:
        pool.close()
