"""Golden end-to-end proof of the augment → train → evaluate pipeline.

A tiny corpus flows through the daemon as a dependency DAG; the final
evaluation report and trained weights are pinned against
``tests/golden/pipeline_report.json`` (regenerate by deleting the file
and running this test with ``REPRO_REGEN_GOLDEN=1``).  A warm rerun of
the identical DAG must then report ``misses == 0`` in every cache
manifest the work dir accumulated (augment shards, eval cells, and —
when any design is compile-unsupported — sim verdicts), proving the
train stage re-augments nothing and the evaluate stage recomputes no
cells.

Plus the DAG-layer units: dependency gating and doom propagation in
the scheduler, ``after`` persistence through the journal, and train /
trained-evaluate spec validation.
"""

import hashlib
import json
import os
import re
import signal
import subprocess
import sys
import threading

import pytest

from repro.llm import unregister_profile
from repro.serve import (Daemon, Job, Scheduler, ServeClient, SpecError,
                         execute_job, make_server, validate_spec)
from repro.serve.jobs import CANCELLED, DONE, FAILED, QUEUED

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
GOLDEN_PATH = os.path.join(REPO, "tests", "golden",
                           "pipeline_report.json")

MODULE_A = """module dff(input clk, input d, output reg q);
  always @(posedge clk) q <= d;
endmodule
"""

MODULE_B = """module mux2(input a, input b, input sel, output y);
  assign y = sel ? b : a;
endmodule
"""

#: The pinned pipeline: any change to these specs (or to augmentation,
#: training or evaluation semantics) must regenerate the golden file.
TRAIN_SPEC = {"seed": 0, "completion_only": False, "epochs": 1,
              "batch_size": 4, "micro_batch": 2, "seq_len": 32,
              "vocab_size": 160, "d_model": 16, "n_heads": 2,
              "n_layers": 1, "d_ff": 32, "max_records": 32,
              "checkpoint_every": 4, "register_as": "pipe-tiny"}
EVAL_SPEC = {"suite": "thakur", "models": ["pipe-tiny"], "samples": 2,
             "levels": ["middle"], "k": 2}


def _corpus(root) -> str:
    corpus = os.path.join(str(root), "corpus")
    os.makedirs(corpus, exist_ok=True)
    for name, text in (("dff.v", MODULE_A), ("mux2.v", MODULE_B)):
        with open(os.path.join(corpus, name), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
    return corpus


def _start_daemon(store: str):
    daemon = Daemon(store, workers=2, configure_sim_cache=False)
    server = make_server(daemon, port=0)
    daemon.start()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServeClient(f"http://127.0.0.1:{server.server_address[1]}")
    return daemon, server, client


def _stop_daemon(daemon, server) -> None:
    server.shutdown()
    server.server_close()
    daemon.stop()


def _submit_dag(client: ServeClient, corpus: str) -> dict[str, str]:
    augment = client.submit("augment", {"paths": [corpus], "seed": 0})
    train = client.submit("train", {"paths": [corpus], **TRAIN_SPEC},
                          after=[augment["id"]])
    evaluate = client.submit(
        "evaluate",
        {**EVAL_SPEC, "trained": {"name": "pipe-tiny",
                                  "job": train["id"]}},
        after=[train["id"]])
    return {"augment": augment["id"], "train": train["id"],
            "evaluate": evaluate["id"]}


def _run_dag(client: ServeClient, corpus: str) -> tuple[dict, dict]:
    ids = _submit_dag(client, corpus)
    jobs = client.wait(list(ids.values()), timeout=300)
    for job in jobs.values():
        assert job["state"] == "done", job
    return client.result(ids["train"]), client.result(ids["evaluate"])


def _manifest_counters(workdir: str) -> dict[str, dict]:
    """``relative dir → last_run`` for every cache manifest found."""
    counters = {}
    for root, _, names in os.walk(workdir):
        if "manifest.json" not in names:
            continue
        with open(os.path.join(root, "manifest.json"),
                  encoding="utf-8") as handle:
            blob = json.load(handle)
        if "last_run" in blob:
            counters[os.path.relpath(root, workdir)] = blob["last_run"]
    return counters


class TestPipelineGolden:
    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        yield
        unregister_profile("pipe-tiny")

    def test_pipeline_end_to_end_and_warm_rerun(self, tmp_path):
        corpus = _corpus(tmp_path)
        store = str(tmp_path / "store")

        daemon, server, client = _start_daemon(store)
        try:
            train_blob, eval_blob = _run_dag(client, corpus)
        finally:
            _stop_daemon(daemon, server)

        # -- golden pin: the loop's final artefacts are reproducible --
        observed = {
            "report_sha256": hashlib.sha256(
                eval_blob["rendered"].encode("utf-8")).hexdigest(),
            "weights_sha256": train_blob["weights_sha256"],
            "dataset_digest": train_blob["dataset_digest"],
            "final_loss": train_blob["final_loss"],
            "steps": train_blob["steps"],
        }
        if (os.environ.get("REPRO_REGEN_GOLDEN")
                or not os.path.exists(GOLDEN_PATH)):
            with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
                json.dump(observed, handle, indent=2, sort_keys=True)
                handle.write("\n")
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert observed == golden, (
            "pipeline output drifted from tests/golden/"
            "pipeline_report.json; if the change is intentional, "
            "rerun with REPRO_REGEN_GOLDEN=1")

        # -- warm rerun through a fresh daemon on the same store ------
        unregister_profile("pipe-tiny")
        daemon, server, client = _start_daemon(store)
        try:
            warm_train, warm_eval = _run_dag(client, corpus)
            health = client.health()
        finally:
            _stop_daemon(daemon, server)
        assert warm_train == train_blob     # byte-identical results
        assert warm_eval == eval_blob
        counters = _manifest_counters(os.path.join(store, "work"))
        assert any(name.startswith("aug-") for name in counters)
        assert "eval-cache" in counters
        for name, last_run in counters.items():
            assert last_run["misses"] == 0, (name, counters)
            assert last_run["hits"] > 0, (name, counters)
        # The daemon's health endpoint reports the same counters.
        for name, last_run in health["caches"].items():
            if "misses" in last_run:
                assert last_run["misses"] == 0, (name, health["caches"])

    def test_direct_execution_matches_daemon(self, tmp_path):
        """Same specs, no daemon/store: byte-identical blobs."""
        corpus = _corpus(tmp_path)
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        train_blob = execute_job(
            "train", {"paths": [corpus], **TRAIN_SPEC},
            str(tmp_path / "w1"))
        assert train_blob["weights_sha256"] == golden["weights_sha256"]
        assert train_blob["final_loss"] == golden["final_loss"]
        unregister_profile("pipe-tiny")
        eval_blob = execute_job(
            "evaluate",
            {**EVAL_SPEC, "trained": {"name": "pipe-tiny",
                                      "job": "job-000042"}},
            str(tmp_path / "w2"),
            resolve={"job-000042": train_blob}.get)
        assert hashlib.sha256(
            eval_blob["rendered"].encode("utf-8")).hexdigest() == \
            golden["report_sha256"]


def _spawn_daemon(store: str, env_extra: dict | None = None,
                  jobs: int = 1):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_TRAIN_CRASH_AFTER", None)
    env.pop("REPRO_TRAIN_CRASH_MODE", None)
    env.update(env_extra or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", store,
         "--port", "0", "--workers", "2", "--jobs", str(jobs)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=REPO)
    url = None
    while True:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            url = match.group(1)
            break
    return proc, url


class TestPipelineSigkillResume:
    """The acceptance criterion: a pipeline SIGKILL'd at a training
    checkpoint resumes to byte-identical weights and report."""

    @pytest.mark.parametrize("crash_after,jobs", [(1, 1), (2, 2)])
    def test_daemon_killed_mid_training_resumes_identically(
            self, tmp_path, crash_after, jobs):
        corpus = _corpus(tmp_path)
        store = str(tmp_path / f"store-{crash_after}-{jobs}")
        proc, url = _spawn_daemon(
            store, {"REPRO_TRAIN_CRASH_AFTER": str(crash_after),
                    "REPRO_TRAIN_CRASH_MODE": "kill"})
        try:
            assert url is not None
            client = ServeClient(url, timeout=10.0)
            _submit_dag(client, corpus)
            # The Nth checkpoint write SIGKILLs the daemon mid-train.
            proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            proc.stdout.close()

        proc, url = _spawn_daemon(store, jobs=jobs)
        try:
            assert url is not None, "restarted daemon failed to serve"
            client = ServeClient(url, timeout=10.0)
            jobs_by_id = {job["id"]: job for job in client.jobs()}
            done = client.wait(list(jobs_by_id), timeout=300)
            assert all(job["state"] == "done"
                       for job in done.values()), done
            train_id = next(job["id"] for job in done.values()
                            if job["kind"] == "train")
            eval_id = next(job["id"] for job in done.values()
                           if job["kind"] == "evaluate")
            train_blob = client.result(train_id)
            eval_blob = client.result(eval_id)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)     # clean stop
                proc.wait(timeout=30)
            proc.stdout.close()
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert train_blob["weights_sha256"] == golden["weights_sha256"]
        assert train_blob["steps"] == golden["steps"]
        assert hashlib.sha256(
            eval_blob["rendered"].encode("utf-8")).hexdigest() == \
            golden["report_sha256"]


def _randomized_cases(seed: int = 77) -> list[tuple[int, int]]:
    import random
    rng = random.Random(seed)
    return [(point, rng.choice([1, 2, 3]))
            for point in sorted(rng.sample(range(1, 3), 2))]


@pytest.mark.tier2
class TestPipelineSigkillResumeRandomized:
    """Randomized crash points / jobs settings (``pytest -m tier2``)."""

    @pytest.mark.parametrize("crash_after,jobs", _randomized_cases())
    def test_randomized(self, tmp_path, crash_after, jobs):
        TestPipelineSigkillResume() \
            .test_daemon_killed_mid_training_resumes_identically(
                tmp_path, crash_after, jobs)


class TestPipelineCli:
    """`repro pipeline` against a daemon subprocess."""

    def test_cli_pipeline_roundtrip(self, tmp_path):
        corpus = _corpus(tmp_path)
        store = str(tmp_path / "store")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--store", store,
             "--port", "0", "--workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO)
        url = None
        try:
            while True:
                line = daemon.stdout.readline()
                if not line:
                    break
                match = re.search(r"serving on (http://\S+)", line)
                if match:
                    url = match.group(1)
                    break
            assert url is not None
            out = str(tmp_path / "report.txt")
            result = subprocess.run(
                [sys.executable, "-m", "repro", "pipeline", corpus,
                 "--url", url, "--suite", "thakur", "--samples", "2",
                 "--levels", "middle", "--k", "2", "--epochs", "1",
                 "--batch-size", "4", "--micro-batch", "2",
                 "--seq-len", "32", "--vocab-size", "160",
                 "--d-model", "16", "--n-heads", "2", "--n-layers", "1",
                 "--d-ff", "32", "--max-records", "32",
                 "--checkpoint-every", "4", "--register-as",
                 "pipe-tiny", "--timeout", "240", "--out", out],
                env=env, cwd=REPO, capture_output=True, text=True,
                timeout=300)
            assert result.returncode == 0, result.stdout + result.stderr
            assert "Trained(pipe-tiny)" in result.stdout
            with open(GOLDEN_PATH, encoding="utf-8") as handle:
                golden = json.load(handle)
            with open(out, encoding="utf-8") as handle:
                rendered = handle.read().rstrip("\n")
            assert hashlib.sha256(
                rendered.encode("utf-8")).hexdigest() == \
                golden["report_sha256"]
        finally:
            if daemon.poll() is None:
                daemon.terminate()
                daemon.wait(timeout=30)
            daemon.stdout.close()


# --------------------------------------------------------------------------
# DAG-layer units
# --------------------------------------------------------------------------

def _job(seq: int, kind: str = "simulate",
         after: list[str] | None = None) -> Job:
    return Job(id=f"job-{seq:06d}", seq=seq, kind=kind, spec={},
               after=list(after or ()))


class TestSchedulerDependencies:
    def _scheduler(self, states: dict[str, str]) -> Scheduler:
        return Scheduler(compat_fn=lambda job: job.kind,
                         state_fn=states.get)

    def test_jobs_wait_for_dependencies(self):
        states = {"job-000001": QUEUED}
        scheduler = self._scheduler(states)
        scheduler.submit(_job(2, after=["job-000001"]))
        assert scheduler.next_batch() is None
        states["job-000001"] = DONE
        batch = scheduler.next_batch()
        assert batch is not None and batch.ids == ["job-000002"]

    def test_gated_jobs_never_join_batches(self):
        states = {"job-000001": QUEUED}
        scheduler = self._scheduler(states)
        scheduler.submit(_job(2))
        scheduler.submit(_job(3, after=["job-000001"]))
        batch = scheduler.next_batch()
        assert batch.ids == ["job-000002"]       # mate was not ready

    def test_doomed_lists_failed_and_unknown_deps(self):
        states = {"job-000001": FAILED}
        scheduler = self._scheduler(states)
        scheduler.submit(_job(2, after=["job-000001"]))
        scheduler.submit(_job(3, after=["job-999999"]))
        scheduler.submit(_job(4))
        assert [job.id for job in scheduler.doomed()] == \
            ["job-000002", "job-000003"]

    def test_after_round_trips_through_job_dict(self):
        job = _job(5, after=["job-000001", "job-000002"])
        assert Job.from_dict(job.to_dict()).after == job.after

    def test_deep_chain_drains_in_order(self):
        """A 40-deep ``after`` chain dispatches strictly in dependency
        order, and the waiter index never re-polls a dependency after
        observing it done (terminal states are memoised)."""
        depth = 40
        states = {f"job-{seq:06d}": QUEUED for seq in range(1, depth + 1)}
        done_served: set[str] = set()

        def state_fn(job_id: str) -> str | None:
            assert job_id not in done_served, \
                f"{job_id} polled again after it resolved done"
            state = states.get(job_id)
            if state == DONE:
                done_served.add(job_id)
            return state

        scheduler = Scheduler(compat_fn=lambda job: job.id,
                              state_fn=state_fn)
        for seq in range(1, depth + 1):
            after = [f"job-{seq - 1:06d}"] if seq > 1 else []
            scheduler.submit(_job(seq, after=after))
        drained = []
        while True:
            batch = scheduler.next_batch()
            if batch is None:
                break
            assert len(batch.ids) == 1      # successor is still gated
            drained.extend(batch.ids)
            states[batch.ids[0]] = DONE
            scheduler.finish(batch)
        assert drained == [f"job-{seq:06d}"
                           for seq in range(1, depth + 1)]
        # The index is fully drained: nothing left to poll or dispatch.
        assert scheduler.next_batch() is None
        assert scheduler.doomed() == []

    def test_shared_dependency_is_polled_once_for_all_waiters(self):
        """A fan-out (many jobs after one dependency) resolves every
        waiter with a single done observation of the shared dep."""
        states = {"job-000001": QUEUED}
        polls = {"job-000001": 0}

        def state_fn(job_id: str) -> str | None:
            polls[job_id] = polls.get(job_id, 0) + 1
            return states.get(job_id)

        scheduler = Scheduler(compat_fn=lambda job: job.kind,
                              state_fn=state_fn)
        for seq in range(2, 8):
            scheduler.submit(_job(seq, after=["job-000001"]))
        assert scheduler.next_batch() is None
        blocked_polls = polls["job-000001"]
        assert blocked_polls == 1           # one poll, not one per waiter
        states["job-000001"] = DONE
        batch = scheduler.next_batch()
        assert batch is not None and len(batch.ids) == 6
        assert polls["job-000001"] == blocked_polls + 1
        scheduler.finish(batch)
        # Resolved for good: later dispatch attempts poll nothing.
        scheduler.submit(_job(99))
        scheduler.next_batch()
        assert polls["job-000001"] == blocked_polls + 1

    def test_doom_propagates_through_the_chain(self):
        """Failing a middle dependency dooms the whole downstream chain
        as the daemon's cancel-and-mark loop walks it."""
        states = {"job-000001": FAILED}
        scheduler = Scheduler(compat_fn=lambda job: job.kind,
                              state_fn=states.get)
        for seq in (2, 3, 4):
            scheduler.submit(_job(seq, after=[f"job-{seq - 1:06d}"]))
        seen = []
        while True:     # mirror Daemon._fail_doomed_locked
            doomed = scheduler.doomed()
            if not doomed:
                break
            for job in doomed:
                seen.append(job.id)
                scheduler.cancel(job.id)
                states[job.id] = CANCELLED
        assert seen == ["job-000002", "job-000003", "job-000004"]
        assert scheduler.next_batch() is None


class TestTrainSpecValidation:
    def test_train_spec_is_canonicalised(self, tmp_path):
        corpus = _corpus(tmp_path)
        spec = validate_spec("train", {"paths": [corpus]})
        assert spec["register_as"] == "trained"
        assert spec["epochs"] >= 1 and spec["batch_size"] >= 1
        assert isinstance(spec["lr"], float)

    def test_bad_train_specs_are_rejected(self, tmp_path):
        corpus = _corpus(tmp_path)
        with pytest.raises(SpecError):
            validate_spec("train", {"paths": [corpus],
                                    "register_as": "ours-13b"})
        with pytest.raises(SpecError):
            validate_spec("train", {"paths": [corpus], "lr": -1})
        with pytest.raises(SpecError):
            validate_spec("train", {"paths": [corpus], "d_model": 15,
                                    "n_heads": 2})
        with pytest.raises(SpecError):
            validate_spec("train", {"paths": []})

    def test_trained_evaluate_spec(self):
        spec = validate_spec(
            "evaluate", {"suite": "thakur", "models": ["fresh"],
                         "trained": {"name": "fresh",
                                     "job": "job-000001"}})
        assert spec["trained"] == {"name": "fresh", "job": "job-000001"}
        with pytest.raises(SpecError):
            validate_spec("evaluate",
                          {"suite": "thakur", "models": ["fresh"]})
        with pytest.raises(SpecError):
            validate_spec("evaluate", {"suite": "thakur",
                                       "trained": {"name": "fresh"}})
