"""Weight bundles, the model-host LRU, and sampled-model eval keying.

Covers the checkpoint → inference handoff (``repro.train.weights``),
the digest-keyed :class:`repro.infer.ModelHost`, and the ISSUE-6
regression: two trained artefacts registered under the *same* name must
never share eval cells — the weights digest, not the name, is the cache
identity.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.eval.engine import EvalEngine, EvalTask, profile_digest
from repro.bench.problems import Problem
from repro.infer import (LoadedModel, ModelHost, SampledModel,
                         forward_logits, sample_tokens)
from repro.llm import get_model, register_artifact, unregister_profile
from repro.llm.behavioral import PROFILES, BehavioralModel
from repro.llm.lora import attach_lora, merge_lora
from repro.llm.tiny_transformer import (TinyTransformerLM,
                                        TransformerConfig)
from repro.llm.tokenizer import Tokenizer
from repro.train import model_from_bundle, model_weights_bundle
from repro.train.checkpoint import CheckpointStore, encode_array
from repro.train.weights import bundle_from_checkpoint


def _logits(model: TinyTransformerLM, ids: list[int]) -> np.ndarray:
    return forward_logits(model, np.array([ids], dtype=np.int64))


def _model(seed: int = 0) -> TinyTransformerLM:
    return TinyTransformerLM(TransformerConfig(
        vocab_size=32, d_model=16, n_heads=2, n_layers=1, d_ff=32,
        max_len=16, seed=seed))


def _tokenizer() -> Tokenizer:
    return Tokenizer.train(["module adder endmodule wire input output"],
                           vocab_size=32)


def _bundle(seed: int = 0) -> dict:
    return model_weights_bundle(_model(seed), _tokenizer())


class TestWeightsBundle:
    def test_round_trip_preserves_logits_and_tokenizer(self):
        model, tokenizer = _model(3), _tokenizer()
        restored, restored_tok = model_from_bundle(
            model_weights_bundle(model, tokenizer))
        ids = [1, 5, 9, 2]
        np.testing.assert_array_equal(_logits(model, ids),
                                      _logits(restored, ids))
        assert restored_tok.inverse == tokenizer.inverse

    def test_digest_mismatch_is_an_error(self):
        bundle = _bundle()
        bundle["weights_sha256"] = "0" * 64
        with pytest.raises(ValueError, match="digest mismatch"):
            model_from_bundle(bundle)

    def test_missing_fields_are_an_error(self):
        bundle = _bundle()
        del bundle["params"]
        with pytest.raises(ValueError, match="missing 'params'"):
            model_from_bundle(bundle)

    def test_lora_is_reattached_and_merged_at_load(self):
        model, tokenizer = _model(7), _tokenizer()
        attach_lora(model, rank=2, alpha=4.0, seed=11)
        # Give the B factors real values so the merge is observable.
        rng = np.random.default_rng(5)
        for param in model.params():
            if param.value.ndim == 2 and not param.value.any():
                param.value[...] = rng.normal(
                    scale=0.05, size=param.value.shape)
        bundle = model_weights_bundle(
            model, tokenizer, lora={"rank": 2, "alpha": 4.0,
                                    "seed": 11})
        restored, _ = model_from_bundle(bundle, merge=True)
        ids = [2, 4, 6, 8, 1]
        reference = _logits(model, ids)    # adapter path
        merge_lora(model)
        np.testing.assert_allclose(_logits(restored, ids),
                                   _logits(model, ids),
                                   rtol=0, atol=1e-12)
        np.testing.assert_allclose(_logits(restored, ids),
                                   reference, rtol=0, atol=1e-9)

    def test_bundle_from_checkpoint_reads_the_manifest(self, tmp_path):
        root = str(tmp_path / "ckpt")
        os.makedirs(root)
        model, tokenizer = _model(1), _tokenizer()
        store = CheckpointStore(root, "fp-test")
        store.save(4, {
            "steps_done": 4, "val_done": 0, "losses": [], "val_losses":
            [], "params": [encode_array(p.value)
                           for p in model.params()],
            "adam_m": [], "adam_v": [], "adam_step": 4,
            "model_config": {"vocab_size": 32, "d_model": 16,
                             "n_heads": 2, "n_layers": 1, "d_ff": 32,
                             "max_len": 16, "seed": 1},
            "tokenizer": list(tokenizer.inverse)})
        bundle = bundle_from_checkpoint(root)
        restored, restored_tok = model_from_bundle(bundle)
        ids = [3, 1, 4]
        np.testing.assert_array_equal(_logits(model, ids),
                                      _logits(restored, ids))
        assert restored_tok.inverse == tokenizer.inverse


class TestModelHost:
    def test_cold_load_then_hit(self):
        host = ModelHost(capacity=2)
        bundle = _bundle()
        first = host.load_bundle(bundle)
        second = host.load_bundle(bundle)
        assert first is second          # one live model per digest
        assert isinstance(first, LoadedModel)
        assert host.stats.to_dict() == {"hits": 1, "misses": 1}
        assert host.resident == 1

    def test_lru_eviction_is_capacity_bounded(self):
        host = ModelHost(capacity=2)
        bundles = [_bundle(seed) for seed in (1, 2, 3)]
        for bundle in bundles:
            host.load_bundle(bundle)
        assert host.resident == 2
        assert host.stats.misses == 3
        # Oldest (seed 1) was evicted: loading it again is a miss,
        # the most recent (seed 3) is still a hit.
        host.load_bundle(bundles[2])
        assert host.stats.hits == 1
        host.load_bundle(bundles[0])
        assert host.stats.misses == 4

    def test_bundle_without_digest_is_refused(self):
        host = ModelHost()
        with pytest.raises(ValueError, match="no weights_sha256"):
            host.load_bundle({"model": {}, "params": []})

    def test_load_checkpoint_round_trip(self, tmp_path):
        root = str(tmp_path / "ckpt")
        os.makedirs(root)
        model, tokenizer = _model(9), _tokenizer()
        store = CheckpointStore(root, "fp-host")
        store.save(1, {
            "steps_done": 1, "val_done": 0, "losses": [],
            "val_losses": [],
            "params": [encode_array(p.value) for p in model.params()],
            "adam_m": [], "adam_v": [], "adam_step": 1,
            "model_config": {"vocab_size": 32, "d_model": 16,
                             "n_heads": 2, "n_layers": 1, "d_ff": 32,
                             "max_len": 16, "seed": 9},
            "tokenizer": list(tokenizer.inverse)})
        host = ModelHost()
        loaded = host.load_checkpoint(root)
        np.testing.assert_array_equal(
            _logits(model, [1, 2, 3]),
            _logits(loaded.model, [1, 2, 3]))


def _trained_profile(name: str):
    return dataclasses.replace(PROFILES["llama2-13b"], name=name,
                               display=f"Trained({name})")


def _problem() -> Problem:
    return Problem(name="unit_and", suite="thakur", tier="basic",
                   difficulty=0.25,
                   prompts={"middle": "Write a 2-input AND gate "
                                      "module named unit_and."},
                   reference="module unit_and(input a, input b, "
                             "output y); assign y = a & b; endmodule",
                   testbench="module unit_and_tb;\n"
                             "  reg a, b; wire y;\n"
                             "  unit_and dut(.a(a), .b(b), .y(y));\n"
                             "  initial begin a = 0; b = 0; #1; "
                             "$finish; end\n"
                             "endmodule\n")


class TestSampledEvalKeying:
    """Two artefacts under one registered name never share eval cells."""

    def test_same_name_different_weights_have_distinct_cells(self):
        profile = _trained_profile("keying-test")
        one = SampledModel(profile, _bundle(1))
        two = SampledModel(profile, _bundle(2))
        assert one.name == two.name
        assert one.weights_sha256 != two.weights_sha256
        assert profile_digest(one) != profile_digest(two)
        task_one = EvalTask(kind="generation", model=one,
                            payload=_problem(), n_samples=1)
        task_two = EvalTask(kind="generation", model=two,
                            payload=_problem(), n_samples=1)
        assert task_one.slot() != task_two.slot()
        assert task_one.key() != task_two.key()

    def test_decode_knobs_are_part_of_the_identity(self):
        profile = _trained_profile("keying-test")
        bundle = _bundle(1)
        base = SampledModel(profile, bundle)
        hotter = SampledModel(profile, bundle, temperature=1.3)
        assert profile_digest(base) != profile_digest(hotter)

    def test_engine_cache_never_aliases_across_artifacts(self, tmp_path):
        profile = _trained_profile("keying-test")
        tasks = [EvalTask(kind="generation",
                          model=SampledModel(profile, _bundle(seed)),
                          payload=_problem(), n_samples=1)
                 for seed in (1, 2)]
        cache_dir = str(tmp_path / "cells")
        engine = EvalEngine(cache_dir=cache_dir)
        engine.run(tasks)
        assert engine.stats.cache_misses == 2     # no aliasing
        rerun = EvalEngine(cache_dir=cache_dir)
        rerun.run(tasks)
        assert rerun.stats.cache_misses == 0
        assert rerun.stats.cache_hits == 2

    def test_registry_resolves_weighted_artifacts_to_sampled_models(self):
        name = "registry-sampled-test"
        profile = _trained_profile(name)
        artifact = {"name": name,
                    "profile": dataclasses.asdict(profile),
                    "weights": _bundle(4)}
        try:
            register_artifact(artifact)
            model = get_model(name)
            assert isinstance(model, SampledModel)
            assert model.weights_sha256 == \
                artifact["weights"]["weights_sha256"]
            # Re-registering without weights falls back to behavioural.
            del artifact["weights"]
            register_artifact(artifact)
            assert isinstance(get_model(name), BehavioralModel)
        finally:
            unregister_profile(name)

    def test_sampled_model_round_trips_through_pickle(self):
        import pickle
        model = SampledModel(_trained_profile("pickle-test"),
                             _bundle(6))
        clone = pickle.loads(pickle.dumps(model))
        assert clone.eval_fingerprint == model.eval_fingerprint
        out = clone.generate_verilog("", "basic", 0.2, n_samples=2,
                                     problem_name="pickled",
                                     prompt="Write Verilog for a "
                                            "buffer.")
        assert out == model.generate_verilog(
            "", "basic", 0.2, n_samples=2, problem_name="pickled",
            prompt="Write Verilog for a buffer.")
