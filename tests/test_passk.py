"""Directed edge-case coverage for pass@k and ManifestCache degradation.

Both were previously exercised only incidentally (through full report
sweeps / engine runs); these tests pin the boundary behaviour down
explicitly.
"""

import json
import os

import pytest

from repro.eval.passk import format_pct, pass_at_k, success_rate
from repro.scale.cache import ManifestCache


class TestPassAtK:
    def test_k_at_least_n_degenerates_to_any_pass(self):
        # k >= n: the estimator is exactly "did any sample pass".
        assert pass_at_k(5, 0, 5) == 0.0
        assert pass_at_k(5, 1, 5) == 1.0
        assert pass_at_k(5, 5, 5) == 1.0
        assert pass_at_k(3, 2, 10) == 1.0      # k > n samples
        assert pass_at_k(3, 0, 10) == 0.0

    def test_zero_passes_and_all_passes(self):
        for n in (1, 2, 7):
            for k in range(1, n + 1):
                assert pass_at_k(n, 0, k) == 0.0
                assert pass_at_k(n, n, k) == 1.0

    def test_no_samples(self):
        assert pass_at_k(0, 0, 1) == 0.0
        assert pass_at_k(0, 0, 5) == 0.0

    def test_guaranteed_hit_when_failures_fit_under_k(self):
        # n - c < k: every k-subset must contain a passing sample.
        assert pass_at_k(10, 9, 2) == 1.0
        assert pass_at_k(10, 8, 3) == 1.0

    def test_unbiased_estimator_value(self):
        # 1 - C(n-c, k)/C(n, k); e.g. n=4, c=1, k=2 → 1 - 3/6.
        assert pass_at_k(4, 1, 2) == pytest.approx(0.5)
        # n=10, c=2, k=3 → 1 - C(8,3)/C(10,3) = 1 - 56/120.
        assert pass_at_k(10, 2, 3) == pytest.approx(1 - 56 / 120)

    def test_monotonic_in_k_and_c(self):
        for c in range(0, 7):
            values = [pass_at_k(6, min(c, 6), k) for k in range(1, 7)]
            assert values == sorted(values)
        for k in (1, 3, 6):
            values = [pass_at_k(6, c, k) for c in range(0, 7)]
            assert values == sorted(values)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)          # c > n
        with pytest.raises(ValueError):
            pass_at_k(-1, 0, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, -1, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 2, 0)          # k must be positive
        with pytest.raises(ValueError):
            pass_at_k(5, 2, -3)

    def test_success_rate_and_formatting(self):
        assert success_rate(0, 0) == 0.0
        assert success_rate(3, -1) == 0.0
        assert success_rate(3, 4) == pytest.approx(0.75)
        assert format_pct(0.706) == "70.6%"
        assert format_pct(1.0, 0) == "100%"


class _JsonCache(ManifestCache):
    """Minimal concrete ManifestCache for degradation tests."""

    def _encode(self, payload) -> str:
        return json.dumps(payload, sort_keys=True) + "\n"

    def _decode(self, text: str):
        blob = json.loads(text)
        if not isinstance(blob, dict):
            raise ValueError("expected an object payload")
        return blob


class TestManifestCacheDegradation:
    def _warm(self, root) -> _JsonCache:
        cache = _JsonCache(str(root), "fp-1")
        cache.store("alpha", "key-a", {"value": 1})
        cache.store("beta", "key-b", {"value": 2})
        cache.flush()
        return cache

    def _entry_path(self, cache: _JsonCache, slot: str) -> str:
        entry = cache._entries[slot]
        return os.path.join(cache.root, entry["file"])

    def test_corrupt_entry_degrades_to_miss_not_crash(self, tmp_path):
        self._warm(tmp_path)
        fresh = _JsonCache(str(tmp_path), "fp-1")
        with open(self._entry_path(fresh, "alpha"), "w",
                  encoding="utf-8") as handle:
            handle.write("{not json at all")
        assert fresh.lookup("alpha", "key-a") is None
        assert fresh.lookup("beta", "key-b") == {"value": 2}
        assert (fresh.hits, fresh.misses) == (1, 1)
        # Recomputing and re-storing the slot heals the cache.
        fresh.store("alpha", "key-a", {"value": 1})
        fresh.flush()
        healed = _JsonCache(str(tmp_path), "fp-1")
        assert healed.lookup("alpha", "key-a") == {"value": 1}

    def test_wrong_shape_entry_degrades_to_miss(self, tmp_path):
        self._warm(tmp_path)
        fresh = _JsonCache(str(tmp_path), "fp-1")
        with open(self._entry_path(fresh, "alpha"), "w",
                  encoding="utf-8") as handle:
            handle.write('[1, 2, 3]\n')       # valid JSON, wrong shape
        assert fresh.lookup("alpha", "key-a") is None
        assert fresh.misses == 1

    def test_missing_entry_file_degrades_to_miss(self, tmp_path):
        self._warm(tmp_path)
        fresh = _JsonCache(str(tmp_path), "fp-1")
        os.unlink(self._entry_path(fresh, "beta"))
        assert fresh.lookup("beta", "key-b") is None
        assert fresh.lookup("alpha", "key-a") == {"value": 1}

    def test_corrupt_manifest_starts_clean(self, tmp_path):
        self._warm(tmp_path)
        with open(os.path.join(str(tmp_path), "manifest.json"), "w",
                  encoding="utf-8") as handle:
            handle.write("{torn manife")
        fresh = _JsonCache(str(tmp_path), "fp-1")
        assert fresh.lookup("alpha", "key-a") is None
        assert fresh.misses == 1

    def test_fingerprint_change_discards_and_prunes(self, tmp_path):
        cache = self._warm(tmp_path)
        alpha_file = self._entry_path(cache, "alpha")
        assert os.path.exists(alpha_file)
        changed = _JsonCache(str(tmp_path), "fp-2")
        assert changed.lookup("alpha", "key-a") is None
        # Stale-config entry files are pruned, not left to pile up.
        assert not os.path.exists(alpha_file)

    def test_key_mismatch_is_a_miss_without_reading_file(self, tmp_path):
        self._warm(tmp_path)
        fresh = _JsonCache(str(tmp_path), "fp-1")
        assert fresh.lookup("alpha", "other-key") is None
        assert fresh.lookup("unknown-slot", "key") is None
        assert fresh.misses == 2

    def test_eval_cache_rejects_wrong_shape_cell_blob(self, tmp_path):
        from repro.eval import EvalCache, engine_fingerprint
        cache = EvalCache(str(tmp_path), engine_fingerprint())
        cache.store("cell-x", "key-x", {"syntax_errors": 0,
                                        "function_rate": 1.0})
        cache.flush()
        fresh = EvalCache(str(tmp_path), engine_fingerprint())
        path = os.path.join(fresh.root,
                            fresh._entries["cell-x"]["file"])
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"unrelated": true}\n')
        assert fresh.lookup("cell-x", "key-x") is None
        assert fresh.misses == 1
