"""Simulator corner cases: 4-state semantics, scheduling, system tasks."""

import pytest

from repro.sim import (SimulationError, SimulationTimeout, Simulator,
                       compile_design, elaborate, run_simulation)
from repro.verilog import parse


def simulate(text, top="tb", max_time=100000):
    design = elaborate(parse(text), top)
    sim = Simulator(design)
    sim.run(max_time=max_time)
    return sim


class TestXSemantics:
    def test_uninitialized_reg_is_x(self):
        sim = simulate("""
module tb; reg [3:0] r; initial #1 $finish; endmodule""")
        assert sim.value_of("r").has_unknown

    def test_x_condition_takes_else_branch(self):
        sim = simulate("""
module tb;
  reg cond; reg [1:0] y;
  initial begin
    if (cond) y = 2'd1; else y = 2'd2;
    $finish;
  end
endmodule""")
        assert sim.value_of("y").val == 2

    def test_x_selects_merge_in_ternary(self):
        sim = simulate("""
module tb;
  reg s; wire [1:0] y;
  assign y = s ? 2'b10 : 2'b11;
  initial #1 $finish;
endmodule""")
        # bit1 is 1 in both arms → known; bit0 differs → x
        value = sim.value_of("y")
        assert value.bit(1) == "1"
        assert value.bit(0) == "x"

    def test_posedge_from_x_to_one_fires(self):
        sim = simulate("""
module tb;
  reg clk; reg fired;
  always @(posedge clk) fired <= 1'b1;
  initial begin
    fired = 1'b0;
    #1 clk = 1;    // x -> 1 must count as a posedge
    #1 $finish;
  end
endmodule""")
        assert sim.value_of("fired").val == 1


class TestCasezCasex:
    def test_casez_wildcards(self):
        sim = simulate("""
module tb;
  reg [3:0] sel; reg [1:0] y;
  always @(*)
    casez (sel)
      4'b1???: y = 2'd3;
      4'b01??: y = 2'd2;
      default: y = 2'd0;
    endcase
  initial begin
    sel = 4'b1010; #1;
    if (y == 2'd3) $display("PASS hi");
    sel = 4'b0111; #1;
    if (y == 2'd2) $display("PASS mid");
    sel = 4'b0010; #1;
    if (y == 2'd0) $display("PASS def");
    $finish;
  end
endmodule""")
        assert len([l for l in sim.display_lines if "PASS" in l]) == 3

    def test_case_exact_x_match(self):
        sim = simulate("""
module tb;
  reg [1:0] sel; reg hit;
  initial begin
    hit = 0;
    case (sel)
      2'bxx: hit = 1;   // matches the uninitialized selector exactly
    endcase
    $finish;
  end
endmodule""")
        assert sim.value_of("hit").val == 1


class TestSchedulingAndTasks:
    def test_nonblocking_with_delay(self):
        sim = simulate("""
module tb;
  reg [3:0] v;
  initial begin
    v = 4'd1;
    v <= #10 4'd9;
    #5;
    if (v == 4'd1) $display("PASS before");
    #10;
    if (v == 4'd9) $display("PASS after");
    $finish;
  end
endmodule""")
        assert len([l for l in sim.display_lines if "PASS" in l]) == 2

    def test_blocking_intra_assign_delay(self):
        sim = simulate("""
module tb;
  reg [3:0] a, b;
  initial begin
    a = 4'd5;
    b = #4 a;     // rhs sampled now, written at t+4
    a = 4'd7;
    #1 $finish;
  end
endmodule""")
        assert sim.value_of("b").val == 5

    def test_wait_statement_releases(self):
        sim = simulate("""
module tb;
  reg go; reg [1:0] r;
  initial begin
    r = 0;
    wait (go);
    r = 2'd3;
    $finish;
  end
  initial #7 go = 1;
endmodule""")
        assert sim.value_of("r").val == 3
        assert sim.time == 7

    def test_random_is_deterministic(self):
        text = """
module tb;
  reg [31:0] a, b;
  initial begin
    a = $random;
    b = $random;
    $display("%0d %0d", a, b);
    $finish;
  end
endmodule"""
        first = simulate(text).display_lines
        second = simulate(text).display_lines
        assert first == second
        assert first[0].split()[0] != first[0].split()[1]

    def test_unknown_system_task_raises(self):
        with pytest.raises(SimulationError):
            simulate("""
module tb; initial $bogus_task(1); endmodule""")

    def test_user_task_unsupported(self):
        result = run_simulation("""
module tb;
  task t; begin end endtask
  initial t;
endmodule""")
        assert not result.ok

    def test_monitor_treated_as_display(self):
        sim = simulate("""
module tb; reg x;
  initial begin x = 1; $monitor("x=%b", x); $finish; end
endmodule""")
        assert "x=1" in sim.display_lines


class TestLvalueForms:
    def test_indexed_part_select_lvalue(self):
        sim = simulate("""
module tb;
  reg [7:0] v; integer i;
  initial begin
    v = 8'h00;
    i = 4;
    v[i +: 4] = 4'hF;
    $finish;
  end
endmodule""")
        assert sim.value_of("v").val == 0xF0

    def test_concat_lvalue_in_procedural(self):
        sim = simulate("""
module tb;
  reg [3:0] hi, lo;
  initial begin
    {hi, lo} = 8'hAB;
    $finish;
  end
endmodule""")
        assert sim.value_of("hi").val == 0xA
        assert sim.value_of("lo").val == 0xB

    def test_bit_write_to_x_index_is_lost(self):
        sim = simulate("""
module tb;
  reg [3:0] v; reg [1:0] idx;
  initial begin
    v = 4'b0000;
    v[idx] = 1'b1;   // idx is x → write discarded
    $finish;
  end
endmodule""")
        assert sim.value_of("v").val == 0

    def test_memory_element_readback_after_two_writes(self):
        sim = simulate("""
module tb;
  reg [7:0] mem [0:3]; reg [7:0] out;
  initial begin
    mem[1] = 8'h11;
    mem[1] = 8'h22;
    out = mem[1];
    $finish;
  end
endmodule""")
        assert sim.value_of("out").val == 0x22


class TestTimeoutReporting:
    OSCILLATOR = """
module tb;
  reg a; wire b;
  assign b = ~a;
  always @(b) a = b;   // zero-delay feedback loop oscillates
  initial begin a = 0; #10 $finish; end
endmodule"""

    def test_delta_overflow_names_process_and_delta(self):
        with pytest.raises(SimulationTimeout) as excinfo:
            simulate(self.OSCILLATOR)
        err = excinfo.value
        message = str(err)
        # The offending process and the delta count are both carried in
        # the message and as attributes.  The oscillation loop runs
        # through the continuous assign and the always block; either
        # may be the last event dispatched.
        assert "process in 'top' (line" in message
        assert "delta cycles" in message
        assert err.process is not None
        assert "always" in err.process or "assign" in err.process
        assert isinstance(err.delta, int) and err.delta > 0

    def test_compiled_backend_reports_the_same_shape(self):
        design = elaborate(parse(self.OSCILLATOR), "tb")
        compiled = compile_design(design)
        with pytest.raises(SimulationTimeout) as excinfo:
            sim = compiled.simulator()
            sim.run(max_time=100000)
        err = excinfo.value
        assert err.process is not None
        assert "always" in err.process or "assign" in err.process
        assert isinstance(err.delta, int) and err.delta > 0

    def test_runaway_always_names_process(self):
        with pytest.raises(SimulationTimeout) as excinfo:
            design = elaborate(parse("""
module tb;
  reg [3:0] x;
  initial x = 0;
  always x = x + 1;   // no delay, no event control
endmodule"""), "tb")
            sim = Simulator(design, step_budget=20_000)
            sim.run(max_time=100)
        err = excinfo.value
        assert err.process is not None
        assert "always" in err.process or "always" in str(err)


class TestElaborationCorners:
    def test_ordered_parameter_override(self):
        sim = simulate("""
module w #(parameter A = 1, parameter B = 2) (output [7:0] y);
  assign y = A * 10 + B;
endmodule
module tb;
  wire [7:0] y;
  w #(3, 4) dut (y);
  initial #1 $finish;
endmodule""")
        assert sim.value_of("y").val == 34

    def test_parameter_expression_range(self):
        sim = simulate("""
module m #(parameter W = 4) (output [2*W-1:0] y);
  assign y = {2*W{1'b1}};
endmodule
module tb;
  wire [7:0] y;
  m dut (.y(y));
  initial #1 $finish;
endmodule""")
        assert sim.value_of("y").val == 0xFF

    def test_missing_module_reported(self):
        result = run_simulation("""
module tb; ghost u (.a(1'b0)); initial $finish; endmodule""")
        assert not result.ok
        assert "ghost" in result.error

    def test_too_many_ordered_connections(self):
        result = run_simulation("""
module inv (input a, output y); assign y = ~a; endmodule
module tb; reg a; wire y, z;
  inv u (a, y, z);
  initial $finish;
endmodule""")
        assert not result.ok

    def test_clog2_system_function(self):
        sim = simulate("""
module tb;
  reg [7:0] r;
  initial begin r = $clog2(200); $finish; end
endmodule""")
        assert sim.value_of("r").val == 8
