"""Corpus generator + end-to-end pipeline integration tests."""

import pytest

from repro.checker import check_source
from repro.core import (AugmentationPipeline, PipelineConfig, Task,
                        dataset_stats, render_table2)
from repro.corpus import (COUNTS, family_names, generate_corpus,
                          generate_design, hardware_is_scarcer_everywhere,
                          render_fig2, scarcity_ratio)
from repro.sim import run_simulation
from repro.verilog import parse


class TestCorpusGenerator:
    def test_corpus_is_deterministic(self):
        assert generate_corpus(10, seed=3) == generate_corpus(10, seed=3)

    def test_corpus_seeds_differ(self):
        assert generate_corpus(10, seed=1) != generate_corpus(10, seed=2)

    @pytest.mark.parametrize("family", family_names())
    def test_every_family_lints_clean(self, family):
        import random
        for idx in range(3):
            text = generate_design(random.Random(idx), idx, family)
            result = check_source(text)
            assert result.ok, f"{family}: {result.report()}\n{text}"

    @pytest.mark.parametrize("family", ["counter", "mux", "adder", "fifo"])
    def test_families_elaborate_and_simulate(self, family):
        import random
        text = generate_design(random.Random(0), 0, family)
        module = parse(text).modules[0]
        # Wrap in a trivial testbench that just lets time advance.
        result = run_simulation(
            text + f"\nmodule tb_smoke; initial #1 $finish; endmodule\n",
            top="tb_smoke")
        assert result.ok
        assert module.name  # parsed

    def test_corpus_covers_all_families(self):
        corpus = generate_corpus(len(family_names()) * 2, seed=0)
        assert len(corpus) == len(family_names()) * 2


class TestFig2Stats:
    def test_hardware_scarcer_everywhere(self):
        assert hardware_is_scarcer_everywhere()

    def test_scarcity_is_orders_of_magnitude(self):
        assert scarcity_ratio("Github", "Python", "Verilog") > 10
        assert scarcity_ratio("Stackoverflow", "Python", "Verilog") > 100

    def test_render_contains_all_languages(self):
        chart = render_fig2()
        for language in ("Verilog", "VHDL", "Python", "Java", "C", "Scala"):
            assert language in chart

    def test_counts_have_both_sources(self):
        assert set(COUNTS) == {"Stackoverflow", "Github"}


class TestPipeline:
    @pytest.fixture(scope="class")
    def report(self):
        corpus = generate_corpus(12, seed=0)
        pipeline = AugmentationPipeline(PipelineConfig(
            eda_scripts=False, statement_cap=8, token_cap=16))
        return pipeline.run(corpus)

    def test_all_verilog_tasks_present(self, report):
        tasks = set(report.per_task)
        assert Task.NL_VERILOG in tasks
        assert Task.MODULE_COMPLETION in tasks
        assert Task.STATEMENT_COMPLETION in tasks
        assert Task.WORD_COMPLETION in tasks
        assert Task.MASK_COMPLETION in tasks
        assert Task.DEBUG in tasks

    def test_word_level_dominates_module_level(self, report):
        # Table 2 shape: token-level count >> module-level count.
        assert report.per_task[Task.WORD_COMPLETION] > \
            report.per_task[Task.MODULE_COMPLETION]

    def test_completion_only_config(self):
        corpus = generate_corpus(4, seed=1)
        report = AugmentationPipeline(
            PipelineConfig.completion_only()).run(corpus)
        tasks = set(report.per_task)
        assert Task.NL_VERILOG not in tasks
        assert Task.DEBUG not in tasks
        assert Task.MODULE_COMPLETION in tasks

    def test_nl_only_config(self):
        corpus = generate_corpus(4, seed=1)
        report = AugmentationPipeline(PipelineConfig.nl_only()).run(corpus)
        tasks = set(report.per_task)
        assert tasks == {Task.NL_VERILOG}

    def test_trimming_reported(self):
        corpus = generate_corpus(4, seed=2)
        report = AugmentationPipeline(PipelineConfig(
            eda_scripts=False, max_tokens=40)).run(corpus)
        assert report.trimmed_count > 0
        assert report.raw_count == len(report.dataset) + \
            report.trimmed_count

    def test_table2_rendering(self, report):
        stats = dataset_stats(report.dataset)
        table = render_table2(stats)
        assert "Natural Language" in table
        assert "Verilog Debug" in table
        assert "Paper Number" in table

    def test_debug_records_have_real_feedback(self, report):
        from repro.checker import check_source as check
        debug = report.dataset.by_task(Task.DEBUG)
        assert debug
        sample = debug[0]
        feedback, wrong = sample.input.split(",\n", 1)
        assert check(wrong, "./design.v").first_error() == feedback
