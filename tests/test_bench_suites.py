"""Tests for the benchmark suites (Thakur-style, RTLLM-style, script-gen)."""

import pytest

from repro.bench import (PROMPT_LEVELS, TABLE5_NAMES, rtllm_suite,
                         rtllm_table5_subset, scgen_suite,
                         spaced_difficulties, thakur_suite)
from repro.checker import check_source
from repro.eda import run_script
from repro.sim import run_testbench


class TestThakurSuite:
    def test_seventeen_problems(self):
        suite = thakur_suite()
        assert len(suite) == 17
        tiers = [p.tier for p in suite]
        assert tiers.count("basic") == 4
        assert tiers.count("intermediate") == 8
        assert tiers.count("advanced") == 5

    def test_three_prompt_levels_each(self):
        for problem in thakur_suite():
            for level in PROMPT_LEVELS:
                assert problem.prompt(level), (problem.name, level)

    def test_high_prompt_is_rule_generated(self):
        problem = thakur_suite()[0]
        assert "module <basic1>" in problem.prompt("high")

    @pytest.mark.parametrize("problem", thakur_suite(),
                             ids=lambda p: p.name)
    def test_reference_lints_clean(self, problem):
        assert check_source(problem.reference).ok, problem.name

    @pytest.mark.parametrize("problem", thakur_suite(),
                             ids=lambda p: p.name)
    def test_reference_passes_testbench(self, problem):
        verdict = run_testbench(problem.reference, problem.testbench)
        assert verdict.all_passed, \
            f"{problem.name}: {verdict.error or verdict.failed}"

    def test_difficulties_spaced_per_tier(self):
        basics = [p.difficulty for p in thakur_suite()
                  if p.tier == "basic"]
        assert basics == spaced_difficulties(4)

    def test_unknown_prompt_level_raises(self):
        with pytest.raises(KeyError):
            thakur_suite()[0].prompt("ultra")


class TestRTLLMSuite:
    def test_twenty_nine_problems(self):
        assert len(rtllm_suite()) == 29

    def test_table5_subset_is_eighteen(self):
        subset = rtllm_table5_subset()
        assert len(subset) == 18
        assert tuple(p.name for p in subset) == TABLE5_NAMES

    @pytest.mark.parametrize("problem", rtllm_suite(),
                             ids=lambda p: p.name)
    def test_reference_passes_testbench(self, problem):
        verdict = run_testbench(problem.reference, problem.testbench)
        assert verdict.all_passed, \
            f"{problem.name}: {verdict.error or verdict.failed}"

    def test_difficulties_increase_in_order(self):
        difficulties = [p.difficulty for p in rtllm_suite()]
        assert difficulties == sorted(difficulties)

    def test_all_names_unique(self):
        names = [p.name for p in rtllm_suite()]
        assert len(set(names)) == len(names)


class TestScgenSuite:
    def test_five_tasks_in_paper_order(self):
        suite = scgen_suite()
        assert [t.name for t in suite] == \
            ["Basic", "Layout", "Clock Period", "Core Area", "Mixed"]

    def test_prompts_are_oracle_generated(self):
        for task in scgen_suite():
            assert "chip object" in task.prompt

    @pytest.mark.parametrize("task", scgen_suite(), ids=lambda t: t.name)
    def test_reference_meets_own_expectation(self, task):
        check = run_script(task.reference, expectation=task.expectation)
        assert check.function_ok, f"{task.name}: {check.summary}"

    def test_expectations_discriminate(self):
        # The Basic reference must NOT satisfy the Clock Period task.
        suite = {t.name: t for t in scgen_suite()}
        check = run_script(suite["Basic"].reference,
                           expectation=suite["Clock Period"].expectation)
        assert not check.function_ok
