"""Integration tests for the per-table/figure experiment drivers."""

import pytest

from repro.core import Task
from repro.experiments import (TABLE3_PAPER_SUCCESS, TABLE5_PAPER_SUCCESS,
                               run_fig2, run_fig3, run_fig5, run_fig7,
                               run_table2, run_table3, run_table4,
                               run_table5)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(quick=True)

    def test_exactly_200_script_records(self, result):
        assert result.count(Task.EDA_SCRIPT) == 200

    def test_paper_ordering_word_gt_statement_gt_module(self, result):
        assert result.count(Task.WORD_COMPLETION) > \
            result.count(Task.STATEMENT_COMPLETION) > \
            result.count(Task.MODULE_COMPLETION)

    def test_rendering_includes_paper_columns(self, result):
        assert "Paper Number" in result.rendered
        assert "3,700,000" in result.rendered


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(quick=True)

    def test_model_ordering_matches_paper(self, result):
        order = ["ours-13b", "ours-7b", "gpt-3.5", "llama2-13b"]
        rates = [result.success(name) for name in order]
        assert rates == sorted(rates, reverse=True)

    def test_ours_13b_beats_gpt_by_wide_margin(self, result):
        assert result.success("ours-13b") - result.success("gpt-3.5") \
            >= 0.2


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4(quick=True)

    def test_ours_one_shot_except_mixed(self, result):
        ours = result.report.results["ours-13b"]
        assert ours["Basic"].function_iteration == 1
        assert ours["Mixed"].function_iteration == 2

    def test_rendered_has_gt10_cells(self, result):
        assert ">10" in result.rendered


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        # Full levels/samples so the success rates land on paper numbers.
        return run_table5(quick=False)

    @pytest.mark.parametrize("model", sorted(TABLE5_PAPER_SUCCESS))
    def test_success_rates_match_paper(self, result, model):
        for which, paper in TABLE5_PAPER_SUCCESS[model].items():
            assert result.success(model, which) == \
                pytest.approx(paper, abs=0.07), (model, which)

    def test_headline_gains(self, result):
        # 58.8% -> 70.6% over the SOTA open-source model.
        assert result.success("ours-13b", "thakur") > \
            result.success("thakur", "thakur")
        # 25.7% -> 45.7% over completion-only augmentation.
        assert result.success("ours-13b", "all") > \
            result.success("llama2-general-aug", "all")


class TestFigures:
    def test_fig2_claims(self):
        result = run_fig2()
        assert result.claim_holds
        assert result.github_ratio > 10

    def test_fig3_loss_decreases(self):
        result = run_fig3(quick=True)
        assert result.monotone_trend

    def test_fig5_matches_paper_text(self):
        result = run_fig5()
        assert "module <counter> has <four> ports" in result.nl_annotated
        assert "unexpected ']'" in result.fig6_feedback

    def test_fig7_alignment_beats_completion(self):
        result = run_fig7(quick=True)
        assert result.alignment_beats_completion
