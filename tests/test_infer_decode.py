"""Token-identity of the batched KV-cache decoder vs naive generate().

The contract pinned here is the one ``repro.infer`` is built on:
:func:`repro.infer.sample_tokens` emits exactly the token ids of
``TinyTransformerLM.generate`` for every row of a batch — across prompt
lengths (including windows that overflow ``max_len`` and slide), batch
sizes, temperatures (same per-sequence rng streams), and LoRA-attached
or LoRA-merged weights.  Bit-level float identity is *not* claimed (BLAS
picks different GEMM kernels for different row counts); token identity
is what the serving and eval layers rely on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.infer import forward_logits, sample_tokens
from repro.llm import attach_lora, merge_lora
from repro.llm.tiny_transformer import TinyTransformerLM, TransformerConfig

_SETTINGS = dict(deadline=None, derandomize=True,
                 suppress_health_check=(HealthCheck.too_slow,))


def _model(vocab=32, d_model=16, n_heads=2, n_layers=2, d_ff=32,
           max_len=24, seed=0):
    return TinyTransformerLM(TransformerConfig(
        vocab_size=vocab, d_model=d_model, n_heads=n_heads,
        n_layers=n_layers, d_ff=d_ff, max_len=max_len, seed=seed))


def _prompts(rng, vocab, count, low=1, high=12):
    return [list(rng.integers(0, vocab,
                              size=int(rng.integers(low, high + 1))))
            for _ in range(count)]


def _naive(model, prompts, max_tokens, temps, seeds):
    return [model.generate(p, max_tokens=max_tokens,
                           temperature=temps[i], seed=seeds[i])
            for i, p in enumerate(prompts)]


class TestFixedEquivalence:
    def test_greedy_batch_matches_naive_at_production_width(self):
        model = _model(vocab=96, d_model=64, n_heads=4, d_ff=128,
                       max_len=48, seed=3)
        rng = np.random.default_rng(0)
        prompts = _prompts(rng, 96, 6, low=1, high=20)
        got = sample_tokens(model, prompts, max_tokens=24)
        want = _naive(model, prompts, 24, [0.0] * 6, [0] * 6)
        assert got == want

    def test_temperature_streams_match_per_row(self):
        model = _model(seed=1)
        rng = np.random.default_rng(1)
        prompts = _prompts(rng, 32, 5)
        temps = [0.0, 0.7, 1.3, 0.7, 2.0]
        seeds = [11, 22, 33, 44, 55]
        got = sample_tokens(model, prompts, max_tokens=12,
                            temperature=temps, seeds=seeds)
        assert got == _naive(model, prompts, 12, temps, seeds)

    def test_window_slide_matches_naive(self):
        # prompt + max_tokens far beyond max_len: rows must leave the
        # cache and recompute their sliding window, like generate().
        model = _model(max_len=12, seed=2)
        prompts = [[1, 2, 3], list(range(10)), list(range(14))]
        got = sample_tokens(model, prompts, max_tokens=20,
                            temperature=[0.0, 0.9, 0.0],
                            seeds=[0, 7, 0])
        want = _naive(model, prompts, 20, [0.0, 0.9, 0.0], [0, 7, 0])
        assert got == want

    def test_prompt_longer_than_max_len_starts_sliding(self):
        model = _model(max_len=8, seed=4)
        prompts = [list(range(20)) , [5, 6]]
        got = sample_tokens(model, prompts, max_tokens=10)
        assert got == _naive(model, prompts, 10, [0.0, 0.0], [0, 0])

    def test_lora_attached_and_merged(self):
        base = _model(seed=5)
        attach_lora(base, rank=2, alpha=4.0, seed=9)
        # Give B a nonzero value so the adapter actually changes output.
        for linear in base.attention_linears():
            linear.lora.B.value[:] = np.random.default_rng(13).normal(
                0, 0.2, linear.lora.B.value.shape)
        prompts = [[1, 2, 3, 4], [7], [9, 8, 7, 6, 5]]
        with_adapter = sample_tokens(base, prompts, max_tokens=10)
        assert with_adapter == _naive(base, prompts, 10,
                                      [0.0] * 3, [0] * 3)
        merge_lora(base)
        merged = sample_tokens(base, prompts, max_tokens=10)
        assert merged == _naive(base, prompts, 10, [0.0] * 3, [0] * 3)
        assert merged == with_adapter    # merge is behaviour-preserving

    def test_stop_token_truncates_at_first_occurrence(self):
        model = _model(seed=6)
        prompts = [[3, 1, 4], [2, 7]]
        full = sample_tokens(model, prompts, max_tokens=16)
        stop = int(full[0][len(prompts[0])])     # force an early stop
        stopped = sample_tokens(model, prompts, max_tokens=16,
                                stop_token=stop)
        for row, (want, got) in enumerate(zip(full, stopped)):
            if stop in want[len(prompts[row]):]:
                cut = want.index(stop, len(prompts[row])) + 1
                assert got == want[:cut]
            else:
                assert got == want

    def test_forward_logits_matches_training_forward(self):
        model = _model(seed=7)
        ids = np.array([[1, 2, 3, 4, 5], [9, 8, 7, 6, 5]])
        np.testing.assert_array_equal(forward_logits(model, ids),
                                      model.forward(ids))

    def test_empty_prompt_rejected(self):
        model = _model()
        with pytest.raises(ValueError, match="non-empty"):
            sample_tokens(model, [[1, 2], []], max_tokens=4)


@settings(max_examples=25, **_SETTINGS)
@given(data=st.data())
def test_kv_cache_decode_token_identical_property(data):
    vocab = data.draw(st.integers(8, 40), label="vocab")
    d_model = data.draw(st.sampled_from([8, 16]), label="d_model")
    n_layers = data.draw(st.integers(1, 2), label="n_layers")
    max_len = data.draw(st.integers(6, 20), label="max_len")
    model_seed = data.draw(st.integers(0, 5), label="model_seed")
    model = _model(vocab=vocab, d_model=d_model, n_heads=2,
                   n_layers=n_layers, d_ff=2 * d_model, max_len=max_len,
                   seed=model_seed)
    if data.draw(st.booleans(), label="lora"):
        attach_lora(model, rank=2, alpha=4.0, seed=model_seed + 1)
        noise = np.random.default_rng(model_seed + 2)
        for linear in model.attention_linears():
            linear.lora.B.value[:] = noise.normal(
                0, 0.3, linear.lora.B.value.shape)
        if data.draw(st.booleans(), label="merge"):
            merge_lora(model)
    batch = data.draw(st.integers(1, 4), label="batch")
    prompts = [data.draw(st.lists(st.integers(0, vocab - 1), min_size=1,
                                  max_size=max_len + 4),
                         label=f"prompt-{i}")
               for i in range(batch)]
    temps = [data.draw(st.sampled_from([0.0, 0.7, 1.3]),
                       label=f"temp-{i}") for i in range(batch)]
    seeds = [data.draw(st.integers(0, 99), label=f"seed-{i}")
             for i in range(batch)]
    max_tokens = data.draw(st.integers(1, 12), label="max_tokens")
    got = sample_tokens(model, prompts, max_tokens=max_tokens,
                        temperature=temps, seeds=seeds)
    assert got == _naive(model, prompts, max_tokens, temps, seeds)
