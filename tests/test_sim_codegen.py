"""Codegen-backend integration: generated-source caching, warm pools.

The equivalence of the generated modules themselves is gated by the
differential fuzzer and the golden-trace suite (both grew a codegen
arm); this file covers the cache plumbing the tentpole is really
about — the persistent generated-source layer, zero re-lowering in
warm pools (same process, worker threads, and across real process
boundaries), the Python-version guard, the atomic cache swap, and the
vectorized multi-candidate batch API.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading

import pytest

import repro
from repro.sim import (BACKENDS, backend_stats, codegen_key,
                       configure_design_cache, reset_backend_stats,
                       run_simulation, run_testbench,
                       run_testbench_batch, source_digest)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

SIMPLE = """
module tb;
  reg clk; reg [3:0] n;
  always @(posedge clk) n <= n + 4'd1;
  initial begin
    clk = 0; n = 0;
    repeat (8) #5 clk = ~clk;
    $display("n=%d", n);
    $finish;
  end
endmodule
"""

# Non-identifier sensitivity: lowering refuses; interpreter handles it.
NEEDS_FALLBACK = """
module tb;
  reg a; reg y;
  always @(a[0]) y = ~a;
  initial begin a = 0; #1 a = 1; #1 $display("y=%b", y); $finish; end
endmodule
"""

DESIGN = """
module inc(input [3:0] a, output [3:0] y);
  assign y = a + 4'd1;
endmodule
"""

BENCH = """
module tb;
  reg [3:0] a; wire [3:0] y;
  inc dut(.a(a), .y(y));
  initial begin
    a = 4'd3; #1;
    if (y == 4'd4) $display("PASS"); else $display("FAIL");
    $finish;
  end
endmodule
"""


@pytest.fixture(autouse=True)
def fresh_backend_state():
    configure_design_cache()
    reset_backend_stats()
    yield
    configure_design_cache()
    reset_backend_stats()


class TestCodegenBackend:
    def test_matches_interp(self):
        gen = run_simulation(SIMPLE, backend="codegen")
        ref = run_simulation(SIMPLE, backend="interp")
        assert gen.ok and ref.ok
        assert gen.display == ref.display
        assert gen.time == ref.time and gen.finished == ref.finished

    def test_counters(self):
        run_simulation(SIMPLE, backend="codegen")
        run_simulation(SIMPLE, backend="codegen")
        stats = backend_stats()
        assert stats.compiled_runs == 2
        assert stats.compiles == 1          # lowered exactly once
        assert stats.cache_hits == 1        # second run: in-memory hit
        assert stats.codegen_misses == 1    # no disk layer configured
        assert stats.fallbacks == 0

    def test_fallback_is_counted_and_equivalent(self):
        gen = run_simulation(NEEDS_FALLBACK, backend="codegen")
        ref = run_simulation(NEEDS_FALLBACK, backend="interp")
        stats = backend_stats()
        assert stats.fallbacks == 1
        assert stats.fallback_reasons
        assert gen.display == ref.display and gen.time == ref.time


class TestGenSourceCache:
    def test_disk_roundtrip_skips_relowering(self, tmp_path):
        configure_design_cache(root=str(tmp_path))
        reset_backend_stats()
        first = run_simulation(SIMPLE, backend="codegen")
        assert backend_stats().codegen_misses == 1
        assert backend_stats().compiles == 1
        # A fresh cache over the same root models a new warm worker:
        # the in-memory LRU is empty, the disk layer is hot.
        configure_design_cache(root=str(tmp_path))
        reset_backend_stats()
        second = run_simulation(SIMPLE, backend="codegen")
        stats = backend_stats()
        assert stats.codegen_hits == 1
        assert stats.compiles == 0          # exec'd, never re-lowered
        assert second.display == first.display
        assert second.time == first.time

    def test_codegen_key_folds_python_version(self, tmp_path):
        digest = source_digest(SIMPLE, None)
        key = codegen_key(digest)
        assert f"py{sys.version_info[0]}.{sys.version_info[1]}" in key
        # A key minted by a different interpreter version must miss.
        cache = configure_design_cache(root=str(tmp_path))
        cache.put_gen_source(digest, key, "def build():\n    pass\n")
        assert cache.gen_source(digest, key) is not None
        stale = key.replace(
            f"py{sys.version_info[0]}.{sys.version_info[1]}", "py0.0")
        assert cache.gen_source(digest, stale) is None

    def test_verdict_layer_python_version_guard(self, tmp_path,
                                                monkeypatch):
        digest = source_digest(NEEDS_FALLBACK, None)
        cache = configure_design_cache(root=str(tmp_path))
        cache.record_unsupported(digest, "refused")
        assert cache.verdict(digest)["reason"] == "refused"

        class _FakeSys:
            version_info = (0, 0, 0)

        # An interpreter upgrade re-fingerprints the manifest: stale
        # verdicts (and gen sources) degrade to misses.
        monkeypatch.setattr("repro.sim.compile.sys", _FakeSys)
        upgraded = configure_design_cache(root=str(tmp_path))
        assert upgraded.verdict(digest) is None

    def test_codegen_unsupported_memo_not_persisted(self, tmp_path):
        # An emit-only refusal must not poison the shared verdict
        # layer — the closure backend may still support the design.
        cache = configure_design_cache(root=str(tmp_path))
        digest = source_digest(SIMPLE, None)
        cache.record_codegen_unsupported(digest, "too large")
        assert cache.codegen_unsupported(digest) == "too large"
        assert cache.verdict(digest) is None
        fresh = configure_design_cache(root=str(tmp_path))
        assert fresh.codegen_unsupported(digest) is None


_CHILD = """
import json, sys
from repro.sim import (backend_stats, configure_design_cache,
                       reset_backend_stats, run_simulation)
root, source = sys.argv[1], sys.stdin.read()
configure_design_cache(root=root)
reset_backend_stats()
result = run_simulation(source, backend="codegen")
stats = backend_stats()
print(json.dumps({
    "ok": result.ok, "finished": result.finished, "time": result.time,
    "display": result.display, "compiles": stats.compiles,
    "codegen_hits": stats.codegen_hits,
    "codegen_misses": stats.codegen_misses,
    "fallbacks": stats.fallbacks,
}))
"""


class TestWarmPoolCrossProcess:
    def test_second_process_never_relowers(self, tmp_path):
        with open(os.path.join(GOLDEN_DIR, "counter.v"),
                  encoding="utf-8") as fh:
            source = fh.read()
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = src_dir + os.pathsep + \
            env.get("PYTHONPATH", "")
        blobs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", _CHILD, str(tmp_path)],
                input=source, capture_output=True, text=True, env=env,
                timeout=120)
            assert proc.returncode == 0, proc.stderr
            blobs.append(json.loads(proc.stdout))
        cold, warm = blobs
        assert cold["ok"] and cold["compiles"] == 1
        assert cold["codegen_misses"] == 1 and cold["fallbacks"] == 0
        # The warm worker execs the cached module source: zero parses,
        # zero elaborations, zero lowering passes.
        assert warm["compiles"] == 0
        assert warm["codegen_hits"] == 1 and warm["fallbacks"] == 0
        ref = run_simulation(source, backend="interp")
        for blob in blobs:
            assert blob["display"] == ref.display
            assert blob["time"] == ref.time
            assert blob["finished"] == ref.finished

    def test_warm_worker_threads_record_zero_compiles(self, tmp_path):
        configure_design_cache(root=str(tmp_path))
        run_simulation(SIMPLE, backend="codegen")   # warm the disk
        configure_design_cache(root=str(tmp_path))  # fresh LRU
        ref = run_simulation(SIMPLE, backend="interp")
        failures = []

        def worker():
            # BackendStats is thread-local: each worker's counters
            # start at zero, like a daemon pool thread.
            result = run_simulation(SIMPLE, backend="codegen")
            stats = backend_stats()
            if stats.compiles != 0:
                failures.append(f"compiles={stats.compiles}")
            if result.display != ref.display or result.time != ref.time:
                failures.append("diverged from interp")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures


class TestAtomicCacheSwap:
    def test_reconfigure_races_with_running_simulations(self):
        errors = []
        stop = threading.Event()

        def runner():
            while not stop.is_set():
                result = run_simulation(SIMPLE, backend="codegen")
                if not (result.ok and result.finished):
                    errors.append(result.error)
                    return

        threads = [threading.Thread(target=runner) for _ in range(3)]
        for thread in threads:
            thread.start()
        # Each in-flight run bound its cache at entry; the swap is
        # atomic under the module lock, so nothing can observe a
        # half-replaced cache.
        for _ in range(25):
            configure_design_cache()
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, errors


class TestBatchStimulus:
    def test_batch_matches_serial_on_every_backend(self):
        wrong = DESIGN.replace("a + 4'd1", "a + 4'd2")
        candidates = [DESIGN, wrong, DESIGN]
        for backend in BACKENDS:
            serial = [run_testbench(text, BENCH, backend=backend)
                      for text in candidates]
            batch = run_testbench_batch(candidates, BENCH,
                                        backend=backend)
            assert [(v.ok, v.passed, v.failed, v.error)
                    for v in batch] == \
                   [(v.ok, v.passed, v.failed, v.error)
                    for v in serial], backend

    def test_batch_shares_one_compile_per_candidate(self):
        reset_backend_stats()
        run_testbench_batch([DESIGN, DESIGN, DESIGN], BENCH,
                            backend="codegen")
        stats = backend_stats()
        assert stats.compiles == 1          # identical candidates
        assert stats.compiled_runs == 3

    def test_batch_surfaces_candidate_parse_errors(self):
        verdicts = run_testbench_batch([DESIGN, "module broken"],
                                       BENCH, backend="codegen")
        assert verdicts[0].all_passed
        assert not verdicts[1].ok and verdicts[1].error

    def test_batch_surfaces_bench_parse_errors(self):
        verdicts = run_testbench_batch([DESIGN, DESIGN], "endmodule !",
                                       backend="codegen")
        assert len(verdicts) == 2
        assert all(not v.ok and v.error for v in verdicts)
