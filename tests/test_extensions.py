"""Tests for extension features: netlist writer, equivalence checking,
VCD tracing, the agent loop, progressive training, and the CLI."""

import numpy as np
import pytest

from repro.agent import AgentResult, ChipAgent
from repro.bench import thakur_suite
from repro.cli import main as cli_main
from repro.core import AugmentationPipeline, PipelineConfig, Task
from repro.corpus import generate_corpus
from repro.eda import check_equivalence, netlist_to_verilog, synthesize
from repro.llm import (STAGE1_TASKS, STAGE2_TASKS, TinyTransformerLM,
                       Tokenizer, TransformerConfig,
                       TransformerTrainConfig, progressive_stages,
                       records_to_text, split_dataset, train_progressive)
from repro.sim import run_simulation
from repro.verilog import parse

COUNTER = """module counter (input clk, input rst, input en,
                output reg [3:0] count);
  always @(posedge clk)
    if (rst) count <= 4'd0;
    else if (en) count <= count + 4'd1;
endmodule
"""

COMBO = """module combo (input [3:0] a, input [3:0] b, output [3:0] y,
              output p);
  assign y = (a & b) ^ (a + b);
  assign p = ^a;
endmodule
"""


class TestNetlistWriter:
    def test_emitted_netlist_parses(self):
        result = synthesize(COUNTER)
        text = netlist_to_verilog(result.netlist)
        source = parse(text)
        assert source.modules[0].name == "counter_gates"

    def test_flops_become_clocked_always(self):
        result = synthesize(COUNTER)
        text = netlist_to_verilog(result.netlist)
        assert text.count("always @(posedge") == 4   # one per DFF

    def test_combinational_netlist_has_no_regs(self):
        result = synthesize(COMBO)
        text = netlist_to_verilog(result.netlist)
        assert "always" not in text
        assert "reg " not in text


class TestEquivalence:
    @pytest.mark.parametrize("rtl", [COUNTER, COMBO], ids=["seq", "comb"])
    def test_design_equivalent_to_own_netlist(self, rtl):
        result = check_equivalence(rtl, vectors=12, seed=3)
        assert result.error is None
        assert result.equivalent, f"{result.mismatches} mismatches"

    def test_detects_inequivalence(self):
        # Compare counter RTL against an incremented-by-2 netlist by
        # synthesizing a modified design under the same module name.
        from repro.eda.netlist_writer import netlist_to_verilog
        from repro.eda.synthesis import Synthesizer
        wrong_rtl = COUNTER.replace("count + 4'd1", "count + 4'd2")
        module = parse(wrong_rtl).modules[0]
        netlist = Synthesizer(module).run()
        gate_text = netlist_to_verilog(netlist)
        # splice: original RTL + wrong netlist through the low-level path
        from repro.eda import equivalence as eq
        import repro.eda.equivalence as eqmod
        real_run = eqmod.Synthesizer.run

        class FakeSynth(eqmod.Synthesizer):
            def run(self):  # noqa: D102 — return the wrong netlist
                return netlist
        eqmod.Synthesizer, saved = FakeSynth, eqmod.Synthesizer
        try:
            result = eq.check_equivalence(COUNTER, vectors=10, seed=0)
        finally:
            eqmod.Synthesizer = saved
        assert not result.equivalent
        assert result.mismatches > 0

    def test_unsynthesizable_reports_error(self):
        result = check_equivalence(
            "module m (input clk); reg [7:0] mem [0:3]; endmodule")
        assert not result.equivalent
        assert "memory" in result.error

    @pytest.mark.parametrize("family",
                             ["counter", "alu", "mux", "gray_counter",
                              "parity", "comparator"])
    def test_corpus_families_equivalent(self, family):
        import random
        from repro.corpus import generate_design
        text = generate_design(random.Random(1), 1, family)
        result = check_equivalence(text, vectors=8, seed=2)
        assert result.equivalent, (family, result.error,
                                   result.mismatches)


class TestVCD:
    TB = """module tb;
  reg clk; reg [1:0] n;
  initial begin
    $dumpfile("t.vcd");
    $dumpvars;
    clk = 0; n = 0;
    repeat (2) begin #5 clk = 1; n = n + 1; #5 clk = 0; end
    $finish;
  end
endmodule
"""

    def test_dumpvars_produces_vcd(self):
        result = run_simulation(self.TB)
        assert result.vcd is not None
        assert "$enddefinitions $end" in result.vcd
        assert "$var wire 1" in result.vcd
        assert "$var wire 2" in result.vcd

    def test_vcd_records_transitions(self):
        result = run_simulation(self.TB)
        assert "#5" in result.vcd
        assert "b01" in result.vcd
        assert "b10" in result.vcd

    def test_trace_flag_without_dumpvars(self):
        plain = self.TB.replace('$dumpfile("t.vcd");', "") \
            .replace("$dumpvars;", "")
        result = run_simulation(plain, trace=True)
        assert result.vcd is not None
        assert "#5" in result.vcd

    def test_no_trace_no_vcd(self):
        plain = self.TB.replace('$dumpfile("t.vcd");', "") \
            .replace("$dumpvars;", "")
        assert run_simulation(plain).vcd is None

    def test_hierarchy_scopes_in_vcd(self):
        result = run_simulation("""
module inv (input a, output y); assign y = ~a; endmodule
module tb;
  reg a; wire y;
  inv dut (.a(a), .y(y));
  initial begin a = 0; #1 a = 1; #1 $finish; end
endmodule
""", trace=True)
        assert "$scope module dut $end" in result.vcd


class TestAgent:
    def test_strong_model_passes_with_flow(self):
        problem = next(p for p in thakur_suite()
                       if p.name == "intermediate1")
        agent = ChipAgent("ours-13b", run_flow=True)
        result = agent.build(problem)
        assert result.passed
        assert result.flow_result is not None
        assert result.flow_result.ok
        assert "GDS out" in result.transcript

    def test_weak_model_fails_hard_problem(self):
        problem = next(p for p in thakur_suite()
                       if p.name == "intermediate7")
        result = ChipAgent("llama2-13b", max_rounds=2).build(problem)
        assert not result.passed
        assert result.rounds == 2

    def test_transcript_records_stages(self):
        problem = thakur_suite()[0]
        result = ChipAgent("ours-13b").build(problem)
        assert "[generate" in result.transcript
        assert isinstance(result, AgentResult)


class TestProgressiveTraining:
    def _dataset(self):
        corpus = generate_corpus(6, seed=2)
        return AugmentationPipeline(PipelineConfig(
            eda_scripts=False, statement_cap=4, token_cap=8,
            max_tokens=160)).run(corpus).dataset

    def test_stage_split_covers_tasks(self):
        dataset = self._dataset()
        stages = dict(progressive_stages(dataset))
        stage1 = stages["stage1-completion"]
        stage2 = stages["stage2-aligned"]
        assert all(r.task in STAGE1_TASKS for r in stage1)
        assert all(r.task in STAGE2_TASKS for r in stage2)
        assert len(stage1) + len(stage2) == len(dataset)

    def test_progressive_training_runs_both_stages(self):
        dataset = self._dataset()
        train, val = split_dataset(dataset, val_fraction=0.2)
        tokenizer = Tokenizer.train(records_to_text(train),
                                    vocab_size=512)
        model = TinyTransformerLM(TransformerConfig(
            vocab_size=len(tokenizer), d_model=16, n_heads=2,
            n_layers=1, d_ff=32, max_len=64, seed=0))
        result = train_progressive(
            model, train, val, tokenizer,
            TransformerTrainConfig(epochs=1, max_batches_per_epoch=5))
        assert "stage1-completion" in result.stages
        assert "stage2-aligned" in result.stages
        assert np.isfinite(result.final_loss)


class TestCLI:
    @pytest.fixture
    def verilog_file(self, tmp_path):
        path = tmp_path / "counter.v"
        path.write_text(COUNTER)
        return str(path)

    def test_describe(self, verilog_file, capsys):
        assert cli_main(["describe", verilog_file]) == 0
        assert "module <counter>" in capsys.readouterr().out

    def test_check_ok(self, verilog_file, capsys):
        assert cli_main(["check", verilog_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_broken_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.v"
        path.write_text("module m (input a output y); endmodule")
        assert cli_main(["check", str(path)]) == 1

    def test_synth(self, verilog_file, capsys):
        assert cli_main(["synth", verilog_file]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "DFF" in out

    def test_flow(self, verilog_file, capsys):
        assert cli_main(["flow", verilog_file, "--clock", "12"]) == 0
        assert "fmax" in capsys.readouterr().out

    def test_simulate_with_vcd(self, tmp_path, capsys):
        tb = tmp_path / "tb.v"
        tb.write_text(COUNTER + """
module tb;
  reg clk, rst, en; wire [3:0] count;
  counter dut (.clk(clk), .rst(rst), .en(en), .count(count));
  initial begin
    clk = 0; rst = 1; en = 1;
    #2 clk = 1; #2 clk = 0; rst = 0;
    #2 clk = 1; #2 clk = 0;
    $display("count=%0d", count);
    $finish;
  end
endmodule
""")
        vcd_path = tmp_path / "out.vcd"
        assert cli_main(["simulate", str(tb), "--vcd",
                         str(vcd_path)]) == 0
        assert vcd_path.exists()
        assert "$enddefinitions" in vcd_path.read_text()

    def test_augment_writes_jsonl(self, verilog_file, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        assert cli_main(["augment", verilog_file, "--out",
                         str(out)]) == 0
        assert out.exists()
        assert "Verilog Debug" in capsys.readouterr().out

    def test_agent_command(self, capsys):
        assert cli_main(["agent", "basic1", "--model", "ours-13b"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_agent_unknown_problem(self, capsys):
        assert cli_main(["agent", "nonexistent"]) == 2
