"""Unit tests for four-state values."""

import pytest

from repro.sim import values as V
from repro.sim.values import Value, from_literal


class TestConstruction:
    def test_of_wraps_modulo_width(self):
        assert Value.of(0x1FF, 8).val == 0xFF

    def test_negative_two_complement(self):
        assert Value.of(-1, 4).val == 0xF

    def test_unknown_is_canonical(self):
        a = Value(width=4, val=0b1111, xz=0b0011)
        b = Value(width=4, val=0b1100, xz=0b0011)
        assert a == b

    def test_to_int_signed(self):
        assert Value.of(0xF, 4).to_int(signed=True) == -1
        assert Value.of(0x7, 4).to_int(signed=True) == 7


class TestLiterals:
    @pytest.mark.parametrize("text,width,val", [
        ("42", 32, 42),
        ("8'hFF", 8, 255),
        ("4'b1010", 4, 10),
        ("12'o777", 12, 0o777),
        ("16'd255", 16, 255),
        ("8'sb1010_1010", 8, 0b10101010),
        ("'b1010", 4, 10),
    ])
    def test_known_literals(self, text, width, val):
        value = from_literal(text)
        assert value.width == width
        assert value.val == val
        assert not value.has_unknown

    def test_x_literal(self):
        value = from_literal("4'b1x0z")
        assert value.bit(3) == "1"
        assert value.bit(2) == "x"
        assert value.bit(1) == "0"
        assert value.bit(0) == "x"   # z conflated with x

    def test_hex_x_digit_covers_four_bits(self):
        value = from_literal("8'hxF")
        assert value.xz == 0xF0
        assert value.val == 0x0F


class TestArithmetic:
    def test_add_wraps(self):
        assert V.add(Value.of(0xFF, 8), Value.of(1, 8)).val == 0

    def test_add_width_is_max(self):
        assert V.add(Value.of(1, 4), Value.of(1, 8)).width == 8

    def test_x_poisons_arithmetic(self):
        result = V.add(Value.unknown(4), Value.of(1, 4))
        assert result.xz == 0xF

    def test_divide_by_zero_is_x(self):
        assert V.div(Value.of(4, 4), Value.of(0, 4)).has_unknown

    def test_sub_underflow_wraps(self):
        assert V.sub(Value.of(0, 4), Value.of(1, 4)).val == 0xF

    def test_power(self):
        assert V.power(Value.of(2, 8), Value.of(5, 8)).val == 32


class TestBitwise:
    def test_and_dominance(self):
        # 0 & x = 0
        result = V.bit_and(Value.of(0b00, 2), Value.unknown(2))
        assert result.val == 0 and result.xz == 0

    def test_and_x_with_one_is_x(self):
        result = V.bit_and(Value.of(0b11, 2), Value.unknown(2))
        assert result.xz == 0b11

    def test_or_dominance(self):
        # 1 | x = 1
        result = V.bit_or(Value.of(0b11, 2), Value.unknown(2))
        assert result.val == 0b11 and result.xz == 0

    def test_xor_propagates_x(self):
        result = V.bit_xor(Value.of(0b01, 2), Value(2, 0, 0b10))
        assert result.xz == 0b10
        assert result.val == 0b01

    def test_not(self):
        result = V.bit_not(Value.of(0b1010, 4))
        assert result.val == 0b0101


class TestLogicalAndCompare:
    def test_logic_and_short_circuit_zero(self):
        assert V.logic_and(Value.of(0, 1), Value.unknown(1)).val == 0
        assert not V.logic_and(Value.of(0, 1), Value.unknown(1)).has_unknown

    def test_logic_or_with_one(self):
        assert V.logic_or(Value.unknown(1), Value.of(1, 1)).val == 1

    def test_equality(self):
        assert V.compare("==", Value.of(5, 4), Value.of(5, 8)).val == 1
        assert V.compare("!=", Value.of(5, 4), Value.of(6, 4)).val == 1

    def test_equality_with_x_is_x(self):
        assert V.compare("==", Value.unknown(4), Value.of(5, 4)).has_unknown

    def test_case_equality_sees_x(self):
        a = Value(4, 0b0100, 0b0011)
        assert V.compare("===", a, a).val == 1
        assert V.compare("!==", a, Value.of(0b0100, 4)).val == 1

    def test_signed_compare(self):
        a = Value.of(-2, 4)
        b = Value.of(1, 4)
        assert V.compare("<", a, b, signed=True).val == 1
        assert V.compare("<", a, b, signed=False).val == 0


class TestShiftsAndSelects:
    def test_shift_left_drops_top(self):
        assert V.shift_left(Value.of(0b1001, 4), Value.of(1, 3)).val == 0b0010

    def test_shift_right_logical(self):
        assert V.shift_right(Value.of(0b1000, 4), Value.of(3, 3)).val == 1

    def test_arithmetic_shift_right_sign_fill(self):
        result = V.shift_right(Value.of(0b1000, 4), Value.of(1, 2),
                               arithmetic=True, signed=True)
        assert result.val == 0b1100

    def test_select_bit(self):
        assert Value.of(0b0100, 4).select_bit(2).val == 1
        assert Value.of(0b0100, 4).select_bit(9).has_unknown

    def test_select_range(self):
        assert Value.of(0xAB, 8).select_range(7, 4).val == 0xA

    def test_with_bits(self):
        result = Value.of(0x00, 8).with_bits(7, 4, Value.of(0xF, 4))
        assert result.val == 0xF0

    def test_concat_msb_first(self):
        result = V.concat([Value.of(0b10, 2), Value.of(0b01, 2)])
        assert result.val == 0b1001

    def test_replicate(self):
        assert V.replicate(3, Value.of(0b1, 1)).val == 0b111


class TestResizeAndFormat:
    def test_zero_extend(self):
        assert Value.of(0xF, 4).resized(8).val == 0x0F

    def test_sign_extend(self):
        assert Value.of(0b1000, 4).resized(8, signed=True).val == 0xF8

    def test_truncate(self):
        assert Value.of(0x1F, 8).resized(4).val == 0xF

    def test_reduce_and(self):
        assert V.reduce_op("&", Value.of(0xF, 4)).val == 1
        assert V.reduce_op("&", Value.of(0xE, 4)).val == 0

    def test_reduce_xor_parity(self):
        assert V.reduce_op("^", Value.of(0b0111, 4)).val == 1
        assert V.reduce_op("~^", Value.of(0b0111, 4)).val == 0

    def test_format_decimal(self):
        assert V.format_value(Value.of(42, 8), "d") == "42"

    def test_format_binary_with_x(self):
        assert V.format_value(Value(4, 0b0100, 0b0001), "b") == "010x"

    def test_format_hex(self):
        assert V.format_value(Value.of(0xAB, 8), "h") == "ab"
