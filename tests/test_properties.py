"""Property-based tests (hypothesis) on core data structures/invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dataset, Mutator, Task, make_record
from repro.corpus import family_names, generate_design
from repro.eval import pass_at_k
from repro.sim import values as V
from repro.sim.values import Value, from_literal
from repro.verilog import TokenKind, VerilogError, parse, tokenize, unparse

widths = st.integers(min_value=1, max_value=64)


@st.composite
def value_pairs(draw):
    width = draw(widths)
    a = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    b = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return Value.of(a, width), Value.of(b, width)


class TestValueProperties:
    @given(value_pairs())
    def test_add_matches_integer_arithmetic(self, pair):
        a, b = pair
        assert V.add(a, b).to_int() == (a.to_int() + b.to_int()) % \
            (1 << a.width)

    @given(value_pairs())
    def test_add_commutative(self, pair):
        a, b = pair
        assert V.add(a, b) == V.add(b, a)

    @given(value_pairs())
    def test_de_morgan(self, pair):
        a, b = pair
        left = V.bit_not(V.bit_and(a, b))
        right = V.bit_or(V.bit_not(a), V.bit_not(b))
        assert left == right

    @given(value_pairs())
    def test_compare_consistent_with_ints(self, pair):
        a, b = pair
        assert V.compare("<", a, b).val == int(a.to_int() < b.to_int())
        assert V.compare("==", a, b).val == int(a.to_int() == b.to_int())

    @given(value_pairs())
    def test_sub_is_add_inverse(self, pair):
        a, b = pair
        assert V.add(V.sub(a, b), b).to_int() == a.to_int()

    @given(widths, st.integers(min_value=0, max_value=2**64 - 1))
    def test_resize_roundtrip_extending(self, width, raw):
        value = Value.of(raw, width)
        widened = value.resized(width + 8)
        assert widened.resized(width) == value

    @given(widths, st.integers(min_value=0, max_value=2**64 - 1))
    def test_concat_select_roundtrip(self, width, raw):
        value = Value.of(raw, width)
        double = V.concat([value, value])
        assert double.select_range(width - 1, 0) == value
        assert double.select_range(2 * width - 1, width) == value

    @given(widths, st.integers(min_value=0, max_value=2**64 - 1))
    def test_not_involutive(self, width, raw):
        value = Value.of(raw, width)
        assert V.bit_not(V.bit_not(value)) == value

    @given(st.integers(min_value=0, max_value=2**32 - 1), widths)
    def test_literal_roundtrip_decimal(self, raw, width):
        value = from_literal(f"{width}'d{raw}")
        assert value.width == width
        assert value.val == raw % (1 << width)

    @given(value_pairs())
    def test_xor_self_inverse(self, pair):
        a, b = pair
        assert V.bit_xor(V.bit_xor(a, b), b) == a


class TestLexerParserProperties:
    @given(st.text(
        alphabet=st.sampled_from(
            "abcdefgz_0123456789 \n\t(){}[];:,.+-*/&|^~!<>=?#@'\""),
        max_size=120))
    @settings(max_examples=60)
    def test_lexer_total_or_clean_error(self, text):
        """The lexer either tokenizes or raises a VerilogError — never
        loops or throws anything else."""
        try:
            tokens = tokenize(text)
        except VerilogError:
            return
        assert tokens[-1].kind is TokenKind.EOF

    @given(st.sampled_from(family_names()), st.integers(0, 500))
    @settings(max_examples=40)
    def test_corpus_designs_roundtrip(self, family, seed):
        text = generate_design(random.Random(seed), seed, family)
        first = unparse(parse(text))
        second = unparse(parse(first))
        assert first == second

    @given(st.sampled_from(family_names()), st.integers(0, 200))
    @settings(max_examples=30)
    def test_mutation_respects_cap_and_determinism(self, family, seed):
        text = generate_design(random.Random(seed), seed, family)
        mutator_a = Mutator(seed=seed)
        mutator_b = Mutator(seed=seed)
        result_a = mutator_a.mutate(text)
        result_b = mutator_b.mutate(text)
        assert result_a.mutated == result_b.mutated
        assert len(result_a.applied) <= 5
        if result_a.applied:
            assert result_a.mutated != "" or text == ""


class TestDatasetProperties:
    @given(st.lists(st.tuples(st.text(max_size=40), st.text(max_size=40)),
                    max_size=20))
    @settings(max_examples=40)
    def test_json_roundtrip_arbitrary_text(self, pairs):
        import json
        dataset = Dataset()
        for input_text, output_text in pairs:
            dataset.add(make_record(Task.NL_VERILOG, input_text,
                                    output_text))
        for record in dataset:
            blob = json.loads(record.to_json())
            assert blob["input"] == record.input
            assert blob["output"] == record.output
            assert blob["instruct"] == record.instruct

    @given(st.lists(st.integers(min_value=0, max_value=400), min_size=1,
                    max_size=40), st.integers(min_value=1, max_value=200))
    def test_trimming_monotone(self, sizes, budget):
        dataset = Dataset()
        for size in sizes:
            dataset.add(make_record(Task.NL_VERILOG, "x " * size, "y"))
        trimmed = dataset.trimmed(budget)
        assert len(trimmed) <= len(dataset)
        assert all(record.approx_tokens <= budget for record in trimmed)


class TestPassAtKProperties:
    @given(st.integers(1, 30), st.integers(0, 30), st.integers(1, 30))
    def test_bounds(self, n, c, k):
        c = min(c, n)
        value = pass_at_k(n, c, k)
        assert 0.0 <= value <= 1.0

    @given(st.integers(2, 30), st.integers(0, 30))
    def test_monotone_in_k(self, n, c):
        c = min(c, n)
        values = [pass_at_k(n, c, k) for k in range(1, n + 1)]
        assert all(x <= y + 1e-12 for x, y in zip(values, values[1:]))
