"""Proof of the training service's determinism + resume contract.

Mirrors ``test_serve_recovery.py``'s split: tier-1 runs fixed
interruption points and a derandomized hypothesis profile; the
randomized SIGKILL sweep runs under ``pytest -m tier2``.

The contract (see ROADMAP "repro.train"): loss curves and final
weights are byte-identical across ``--jobs`` settings, thread vs
process pools, shard counts, checkpoint cadences, and any number of
interruption-and-resume cycles — including SIGKILL between a
checkpoint blob landing and the manifest pointing at it.
"""

import json
import os
import signal
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PipelineConfig
from repro.core.records import Dataset, Task, make_record
from repro.train import (CRASH_AFTER_ENV, CRASH_MODE_ENV, CheckpointStore,
                         TrainConfig, build_artifact, corpus_dataset,
                         dataset_digest, train_run)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

_SETTINGS = dict(deadline=None, derandomize=True,
                 suppress_health_check=(HealthCheck.too_slow,))

MODULE_A = """module dff(input clk, input d, output reg q);
  always @(posedge clk) q <= d;
endmodule
"""

MODULE_B = """module mux2(input a, input b, input sel, output y);
  assign y = sel ? b : a;
endmodule
"""


def _corpus(root) -> str:
    corpus = os.path.join(str(root), "corpus")
    os.makedirs(corpus, exist_ok=True)
    for name, text in (("dff.v", MODULE_A), ("mux2.v", MODULE_B)):
        with open(os.path.join(corpus, name), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
    return corpus


def _tiny_config(**overrides) -> TrainConfig:
    base = dict(epochs=2, batch_size=4, micro_batch=2, seq_len=24,
                vocab_size=128, d_model=16, n_heads=2, n_layers=1,
                d_ff=32, max_records=24, checkpoint_every=2)
    base.update(overrides)
    return TrainConfig(**base)


def _synthetic_dataset(n: int = 24) -> Dataset:
    """Records built directly (no augmentation) — fast property fuel."""
    records = []
    for index in range(n):
        records.append(make_record(
            Task.NL_VERILOG,
            f"a module named unit{index} with {index % 5} inputs "
            f"and a registered output",
            f"module unit{index}(input clk, output reg q);\n"
            f"  always @(posedge clk) q <= {index % 2};\n"
            f"endmodule"))
    return Dataset(records=records)


# --------------------------------------------------------------------------
# Data loading: shard-cache path
# --------------------------------------------------------------------------

class TestCorpusLoading:
    def test_shard_count_invariance(self, tmp_path):
        corpus = _corpus(tmp_path)
        one, _ = corpus_dataset([corpus], num_shards=1)
        many, _ = corpus_dataset([corpus], num_shards=5)
        assert dataset_digest(one) == dataset_digest(many)

    def test_warm_cache_reaugments_nothing(self, tmp_path):
        corpus = _corpus(tmp_path)
        cache = str(tmp_path / "cache")
        cold_set, cold = corpus_dataset([corpus], cache_dir=cache)
        warm_set, warm = corpus_dataset([corpus], cache_dir=cache)
        assert cold.cache_misses > 0
        assert warm.cache_misses == 0 and warm.shards_computed == 0
        assert dataset_digest(cold_set) == dataset_digest(warm_set)

    def test_config_change_invalidates(self, tmp_path):
        corpus = _corpus(tmp_path)
        cache = str(tmp_path / "cache")
        corpus_dataset([corpus], cache_dir=cache)
        _, report = corpus_dataset(
            [corpus], config=PipelineConfig(seed=7), cache_dir=cache)
        assert report.cache_misses > 0


# --------------------------------------------------------------------------
# Tier-1 fixed points: jobs / cadence / resume invariance
# --------------------------------------------------------------------------

class TestDeterminism:
    @pytest.fixture(scope="class")
    def dataset(self):
        return _synthetic_dataset()

    @pytest.fixture(scope="class")
    def reference(self, dataset):
        return train_run(dataset, _tiny_config(), jobs=1)

    def test_byte_identical_across_jobs(self, dataset, reference):
        threads = train_run(dataset, _tiny_config(), jobs=3,
                            use_threads=True)
        procs = train_run(dataset, _tiny_config(), jobs=2)
        for run in (threads, procs):
            assert run.weights_sha256 == reference.weights_sha256
            assert run.losses == reference.losses
            assert run.val_losses == reference.val_losses

    def test_checkpoint_cadence_is_operational_only(self, dataset,
                                                    reference, tmp_path):
        for cadence in (0, 1, 5):
            run = train_run(dataset, _tiny_config(
                checkpoint_every=cadence), jobs=1,
                checkpoint_dir=str(tmp_path / f"ck-{cadence}"))
            assert run.weights_sha256 == reference.weights_sha256
            assert run.losses == reference.losses

    @pytest.mark.parametrize("stop_at", [1, 3, 5])
    def test_stop_and_resume_byte_identical(self, dataset, reference,
                                            tmp_path, stop_at):
        ckpt = str(tmp_path / f"ck-{stop_at}")
        partial = train_run(dataset, _tiny_config(), jobs=1,
                            checkpoint_dir=ckpt,
                            stop_after_steps=stop_at)
        assert not partial.completed and partial.steps == stop_at
        resumed = train_run(dataset, _tiny_config(), jobs=2,
                            use_threads=True, checkpoint_dir=ckpt)
        assert resumed.resumed_steps == stop_at
        assert resumed.weights_sha256 == reference.weights_sha256
        assert resumed.losses == reference.losses
        assert resumed.val_losses == reference.val_losses

    def test_procs_stop_resume_with_resident_lanes(self, dataset,
                                                   reference, tmp_path):
        """Interrupt a process-pool run mid-schedule and resume it with
        process lanes again — the resident replicas rebuild from the
        checkpoint and the pending-delta replay neither loses nor
        double-applies a step."""
        ckpt = str(tmp_path / "ck-procs")
        partial = train_run(dataset, _tiny_config(), jobs=2,
                            checkpoint_dir=ckpt, stop_after_steps=3)
        assert not partial.completed and partial.steps == 3
        assert partial.transport in ("shm", "pickle")
        resumed = train_run(dataset, _tiny_config(), jobs=2,
                            checkpoint_dir=ckpt)
        assert resumed.resumed_steps == 3
        assert resumed.weights_sha256 == reference.weights_sha256
        assert resumed.losses == reference.losses
        assert resumed.val_losses == reference.val_losses

    def test_replica_digest_handshake_every_step(self, dataset,
                                                 reference):
        """digest_every=1 verifies replica state against the parent
        after every lane step; any divergence would raise inside
        train_run, so completing with checks recorded is the proof."""
        run = train_run(dataset, _tiny_config(), jobs=2,
                        use_threads=True, digest_every=1)
        assert run.transport == "local"
        assert run.replica_checks > 1       # init ack + per-step checks
        assert run.weights_sha256 == reference.weights_sha256

    def test_finished_run_resumes_instantly(self, dataset, reference,
                                            tmp_path):
        ckpt = str(tmp_path / "ck-done")
        first = train_run(dataset, _tiny_config(), jobs=1,
                          checkpoint_dir=ckpt)
        again = train_run(dataset, _tiny_config(), jobs=1,
                          checkpoint_dir=ckpt)
        assert again.resumed_steps == first.steps
        assert again.weights_sha256 == reference.weights_sha256

    def test_config_change_discards_checkpoints(self, dataset, tmp_path):
        ckpt = str(tmp_path / "ck")
        train_run(dataset, _tiny_config(), jobs=1, checkpoint_dir=ckpt,
                  stop_after_steps=2)
        run = train_run(dataset, _tiny_config(lr=1e-2), jobs=1,
                        checkpoint_dir=ckpt)
        assert run.resumed_steps == 0   # incompatible fingerprint

    def test_artifact_is_pure_in_run(self, dataset, reference):
        again = train_run(dataset, _tiny_config(), jobs=2,
                          use_threads=True)
        first = build_artifact("tiny", reference, dataset)
        second = build_artifact("tiny", again, dataset)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)
        assert first["profile"]["name"] == "tiny"
        assert first["weights_sha256"] == reference.weights_sha256


# --------------------------------------------------------------------------
# Hypothesis: one property over jobs × shard counts × interruption
# --------------------------------------------------------------------------

@settings(max_examples=6, **_SETTINGS)
@given(batch_size=st.integers(min_value=2, max_value=5),
       micro_batch=st.integers(min_value=1, max_value=3),
       jobs=st.integers(min_value=1, max_value=3),
       use_threads=st.booleans(),
       stop_at=st.integers(min_value=1, max_value=4),
       cadence=st.integers(min_value=1, max_value=3))
def test_property_resume_matches_uninterrupted(tmp_path_factory,
                                               batch_size, micro_batch,
                                               jobs, use_threads,
                                               stop_at, cadence):
    """Interrupted-at-any-checkpoint + resumed-with-any-jobs equals an
    uninterrupted jobs=1 run, for arbitrary batch geometry."""
    dataset = _synthetic_dataset(16)
    config = _tiny_config(epochs=1, batch_size=batch_size,
                          micro_batch=micro_batch, max_records=16,
                          checkpoint_every=cadence)
    reference = train_run(dataset, config, jobs=1)
    ckpt = str(tmp_path_factory.mktemp("ck"))
    train_run(dataset, config, jobs=1, checkpoint_dir=ckpt,
              stop_after_steps=stop_at)
    resumed = train_run(dataset, config, jobs=jobs,
                        use_threads=use_threads, checkpoint_dir=ckpt)
    assert resumed.weights_sha256 == reference.weights_sha256
    assert resumed.losses == reference.losses
    assert resumed.val_losses == reference.val_losses


# --------------------------------------------------------------------------
# SIGKILL at checkpoint boundaries (subprocess, via the CLI)
# --------------------------------------------------------------------------

def _train_cli(corpus: str, ckpt: str, cache: str, report: str,
               crash_after: int | None = None,
               crash_mode: str | None = None, jobs: int = 1):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(CRASH_AFTER_ENV, None)
    env.pop(CRASH_MODE_ENV, None)
    if crash_after:
        env[CRASH_AFTER_ENV] = str(crash_after)
        env[CRASH_MODE_ENV] = crash_mode or "kill"
    return subprocess.run(
        [sys.executable, "-m", "repro", "train", corpus,
         "--cache-dir", cache, "--checkpoint-dir", ckpt,
         "--report-out", report, "--epochs", "2", "--batch-size", "4",
         "--micro-batch", "2", "--seq-len", "24", "--vocab-size", "128",
         "--d-model", "16", "--n-heads", "2", "--n-layers", "1",
         "--d-ff", "32", "--max-records", "24",
         "--checkpoint-every", "1",
         # Hermetic: a work/tune.json on this machine must not steer
         # the crash tests' pool choice.
         "--jobs", str(jobs), "--no-tuned"],
        env=env, cwd=REPO, capture_output=True, text=True)


def _sigkill_round(tmp_path, crash_after: int, crash_mode: str,
                   jobs: int = 1) -> None:
    corpus = _corpus(tmp_path)
    cache = str(tmp_path / "cache")
    ref_report = str(tmp_path / "ref.json")
    done = _train_cli(corpus, str(tmp_path / "ck-ref"), cache,
                      ref_report)
    assert done.returncode == 0, done.stdout + done.stderr

    ckpt = str(tmp_path / f"ck-{crash_mode}-{crash_after}")
    report = str(tmp_path / f"report-{crash_mode}-{crash_after}.json")
    killed = _train_cli(corpus, ckpt, cache, report,
                        crash_after=crash_after, crash_mode=crash_mode,
                        jobs=jobs)
    if killed.returncode == 0:
        pass        # crash point beyond this run's checkpoint traffic
    else:
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        assert not os.path.exists(report)
        resumed = _train_cli(corpus, ckpt, cache, report, jobs=jobs)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr

    with open(ref_report, encoding="utf-8") as handle:
        reference = json.load(handle)
    with open(report, encoding="utf-8") as handle:
        recovered = json.load(handle)
    assert recovered == reference       # weights digest, losses, all


class TestSigkillResume:
    """Fixed interruption points (tier-1 sample)."""

    @pytest.mark.parametrize("crash_after", [1, 4])
    def test_sigkill_after_checkpoint_commit(self, tmp_path, crash_after):
        _sigkill_round(tmp_path, crash_after, "kill")

    def test_sigkill_between_blob_and_manifest(self, tmp_path):
        """Journal-first ordering: the blob lands, the manifest still
        names the previous checkpoint — resume replays the gap."""
        _sigkill_round(tmp_path, 3, "early")

    @pytest.mark.parametrize("crash_mode", ["kill", "early"])
    def test_sigkill_with_resident_process_lanes(self, tmp_path,
                                                 crash_mode):
        """SIGKILL takes down the parent *and* its resident workers
        mid-run; resume rebuilds the lanes from the checkpoint with no
        optimizer delta lost or double-applied."""
        _sigkill_round(tmp_path, 2, crash_mode, jobs=2)


@pytest.mark.tier2
class TestSigkillResumeRandomized:
    """The full randomized sweep (``pytest -m tier2``)."""

    import random as _random
    POINTS = sorted(_random.Random(2026).sample(range(1, 14), 5))

    @pytest.mark.parametrize("crash_after", POINTS)
    @pytest.mark.parametrize("crash_mode", ["kill", "early"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_randomized_crash_points(self, tmp_path, crash_after,
                                     crash_mode, jobs):
        _sigkill_round(tmp_path, crash_after, crash_mode, jobs=jobs)


# --------------------------------------------------------------------------
# Checkpoint-store units
# --------------------------------------------------------------------------

class TestCheckpointStore:
    def test_corrupt_latest_falls_back(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp")
        store.save(1, {"steps_done": 1})
        store.save(2, {"steps_done": 2})
        with open(os.path.join(str(tmp_path), "checkpoint-00000002.json"),
                  "w", encoding="utf-8") as handle:
            handle.write("{tampered")
        reopened = CheckpointStore(str(tmp_path), "fp")
        assert reopened.latest() == {"steps_done": 1}

    def test_fingerprint_mismatch_starts_clean(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp-a")
        store.save(1, {"steps_done": 1})
        reopened = CheckpointStore(str(tmp_path), "fp-b")
        assert reopened.latest() is None

    def test_old_checkpoints_are_pruned(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp")
        for step in (1, 2, 3, 4):
            store.save(step, {"steps_done": step})
        names = sorted(name for name in os.listdir(str(tmp_path))
                       if name.startswith("checkpoint-"))
        assert names == ["checkpoint-00000003.json",
                         "checkpoint-00000004.json"]
