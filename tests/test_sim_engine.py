"""End-to-end simulator tests: real designs with self-checking testbenches."""

import pytest

from repro.sim import (Simulator, elaborate, run_simulation, run_testbench)
from repro.verilog import parse


def simulate(text, top, max_time=100000):
    design = elaborate(parse(text), top)
    sim = Simulator(design)
    sim.run(max_time=max_time)
    return sim


class TestCombinational:
    def test_continuous_assign_settles(self):
        sim = simulate("""
module m (input a, input b, output y);
  assign y = a & b;
endmodule
module tb;
  reg a, b; wire y;
  m dut (.a(a), .b(b), .y(y));
  initial begin a = 1; b = 1; #1 $finish; end
endmodule
""", "tb")
        assert sim.value_of("dut.y").val == 1

    def test_assign_chain_propagates(self):
        sim = simulate("""
module tb;
  reg a; wire b, c, d;
  assign b = ~a;
  assign c = ~b;
  assign d = b ^ c;
  initial begin a = 0; #1 $finish; end
endmodule
""", "tb")
        assert sim.value_of("d").val == 1

    def test_always_star_mux(self):
        sim = simulate("""
module tb;
  reg [1:0] sel; reg [7:0] y;
  always @(*)
    case (sel)
      2'd0: y = 8'h11;
      2'd1: y = 8'h22;
      default: y = 8'hFF;
    endcase
  initial begin
    sel = 1; #1;
    if (y == 8'h22) $display("PASS");
    sel = 3; #1;
    if (y == 8'hFF) $display("PASS2");
    $finish;
  end
endmodule
""", "tb")
        assert "PASS" in sim.display_lines
        assert "PASS2" in sim.display_lines

    def test_ternary_and_concat(self):
        sim = simulate("""
module tb;
  reg [3:0] a; wire [7:0] y;
  assign y = a[3] ? {a, 4'h0} : {4'h0, a};
  initial begin a = 4'b1010; #1 $finish; end
endmodule
""", "tb")
        assert sim.value_of("y").val == 0xA0


class TestSequential:
    def test_counter_counts(self):
        sim = simulate("""
module counter (input clk, input rst, input en, output reg [1:0] count);
  always @(posedge clk)
    if (rst) count <= 2'd0;
    else if (en) count <= count + 2'd1;
endmodule
module tb;
  reg clk, rst, en; wire [1:0] count;
  counter dut (.clk(clk), .rst(rst), .en(en), .count(count));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; en = 0;
    #12 rst = 0; en = 1;
    #50 $finish;
  end
endmodule
""", "tb")
        # rst released at t=12; posedges at 15,25,35,45,55 -> count wraps 2'b..
        assert sim.value_of("count").val == 5 % 4

    def test_nonblocking_swap(self):
        sim = simulate("""
module tb;
  reg clk, a, b;
  always @(posedge clk) begin a <= b; b <= a; end
  initial begin
    clk = 0; a = 0; b = 1;
    #1 clk = 1;
    #1 if (a == 1 && b == 0) $display("SWAPPED");
    $finish;
  end
endmodule
""", "tb")
        assert "SWAPPED" in sim.display_lines

    def test_blocking_in_sequence(self):
        sim = simulate("""
module tb;
  reg clk; reg [3:0] x;
  always @(posedge clk) begin x = 4'd1; x = x + 4'd1; end
  initial begin clk = 0; #1 clk = 1; #1 $finish; end
endmodule
""", "tb")
        assert sim.value_of("x").val == 2

    def test_shift_register(self):
        sim = simulate("""
module tb;
  reg clk, d; reg [7:0] q;
  always @(posedge clk) q <= {q[6:0], d};
  initial begin
    clk = 0; d = 1; q = 0;
    repeat (3) begin #2 clk = 1; #2 clk = 0; end
    if (q == 8'b0000_0111) $display("SHIFT OKAY");
    $finish;
  end
endmodule
""", "tb")
        assert any("SHIFT" in line for line in sim.display_lines)

    def test_async_reset(self):
        sim = simulate("""
module tb;
  reg clk, rst_n; reg [3:0] q;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 0;
    else q <= q + 1;
  initial begin
    clk = 0; rst_n = 1;
    #1 rst_n = 0;          // async clear without clock edge
    #1 rst_n = 1;
    #1 clk = 1;
    #1 $finish;
  end
endmodule
""", "tb")
        assert sim.value_of("q").val == 1


class TestHierarchy:
    FULL_ADDER = """
module full_adder (input a, input b, input cin, output s, output cout);
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | (cin & (a ^ b));
endmodule
module adder4 (input [3:0] a, input [3:0] b, output [3:0] sum, output cout);
  wire [3:0] carry;
  full_adder fa0 (.a(a[0]), .b(b[0]), .cin(1'b0),     .s(sum[0]), .cout(carry[0]));
  full_adder fa1 (.a(a[1]), .b(b[1]), .cin(carry[0]), .s(sum[1]), .cout(carry[1]));
  full_adder fa2 (.a(a[2]), .b(b[2]), .cin(carry[1]), .s(sum[2]), .cout(carry[2]));
  full_adder fa3 (.a(a[3]), .b(b[3]), .cin(carry[2]), .s(sum[3]), .cout(carry[3]));
  assign cout = carry[3];
endmodule
"""

    def test_structural_adder(self):
        sim = simulate(self.FULL_ADDER + """
module tb;
  reg [3:0] a, b; wire [3:0] sum; wire cout;
  adder4 dut (.a(a), .b(b), .sum(sum), .cout(cout));
  initial begin a = 9; b = 8; #1 $finish; end
endmodule
""", "tb")
        assert sim.value_of("sum").val == (9 + 8) % 16
        assert sim.value_of("cout").val == 1

    def test_parameter_override(self):
        sim = simulate("""
module ff #(parameter W = 2) (input clk, input [W-1:0] d,
                              output reg [W-1:0] q);
  always @(posedge clk) q <= d;
endmodule
module tb;
  reg clk; reg [3:0] d; wire [3:0] q;
  ff #(.W(4)) dut (.clk(clk), .d(d), .q(q));
  initial begin clk = 0; d = 4'hC; #1 clk = 1; #1 $finish; end
endmodule
""", "tb")
        assert sim.value_of("q").val == 0xC

    def test_hierarchical_probe(self):
        sim = simulate(self.FULL_ADDER + """
module tb;
  reg [3:0] a, b; wire [3:0] sum; wire cout;
  adder4 dut (.a(a), .b(b), .sum(sum), .cout(cout));
  initial begin
    a = 3; b = 1; #1;
    if (dut.carry[1] == 1) $display("CARRY SEEN");
    $finish;
  end
endmodule
""", "tb")
        assert "CARRY SEEN" in sim.display_lines


class TestMemoriesLoopsTasks:
    def test_memory_write_read(self):
        sim = simulate("""
module tb;
  reg [7:0] mem [0:15];
  reg [7:0] out;
  integer i;
  initial begin
    for (i = 0; i < 16; i = i + 1) mem[i] = i * 2;
    out = mem[7];
    #1 $finish;
  end
endmodule
""", "tb")
        assert sim.value_of("out").val == 14

    def test_while_and_repeat(self):
        sim = simulate("""
module tb;
  integer i; reg [7:0] acc;
  initial begin
    acc = 0; i = 0;
    while (i < 5) begin acc = acc + 2; i = i + 1; end
    repeat (3) acc = acc + 1;
    $finish;
  end
endmodule
""", "tb")
        assert sim.value_of("acc").val == 13

    def test_display_formats(self):
        sim = simulate("""
module tb;
  reg [7:0] v;
  initial begin
    v = 8'hA5;
    $display("d=%d h=%h b=%b", v, v, v);
    $display("time=%0t", $time);
    $finish;
  end
endmodule
""", "tb")
        assert sim.display_lines[0] == "d=165 h=a5 b=10100101"
        assert sim.display_lines[1] == "time=0"

    def test_function_call(self):
        sim = simulate("""
module tb;
  reg [7:0] r;
  function [7:0] double;
    input [7:0] x;
    begin
      double = x + x;
    end
  endfunction
  initial begin r = double(8'd21); $finish; end
endmodule
""", "tb")
        assert sim.value_of("r").val == 42

    def test_signed_for_loop_countdown(self):
        sim = simulate("""
module tb;
  integer i; reg [7:0] acc;
  initial begin
    acc = 0;
    for (i = 4; i >= 0; i = i - 1) acc = acc + 1;
    $finish;
  end
endmodule
""", "tb")
        assert sim.value_of("acc").val == 5


class TestRunHelpers:
    def test_run_simulation_syntax_error(self):
        result = run_simulation("module m; wire [; endmodule")
        assert not result.ok
        assert "ERROR" in result.error

    def test_run_simulation_finds_top(self):
        result = run_simulation("""
module inv (input a, output y); assign y = ~a; endmodule
module tb; reg a; wire y; inv u (.a(a), .y(y));
initial begin a = 0; #1 $finish; end endmodule
""")
        assert result.ok and result.finished

    def test_run_testbench_verdict(self):
        design = """
module inv (input a, output y);
  assign y = ~a;
endmodule
"""
        testbench = """
module tb;
  reg a; wire y;
  inv dut (.a(a), .y(y));
  initial begin
    a = 0; #1;
    if (y == 1) $display("PASS a=0"); else $display("FAIL a=0");
    a = 1; #1;
    if (y == 0) $display("PASS a=1"); else $display("FAIL a=1");
    $finish;
  end
endmodule
"""
        verdict = run_testbench(design, testbench)
        assert verdict.all_passed
        assert verdict.passed == 2

    def test_run_testbench_detects_failure(self):
        design = """
module inv (input a, output y);
  assign y = a;   // functional bug: buffer instead of inverter
endmodule
"""
        testbench = """
module tb;
  reg a; wire y;
  inv dut (.a(a), .y(y));
  initial begin
    a = 0; #1;
    if (y == 1) $display("PASS"); else $display("FAIL");
    $finish;
  end
endmodule
"""
        verdict = run_testbench(design, testbench)
        assert verdict.ok
        assert not verdict.all_passed
        assert verdict.failed == 1

    def test_oscillation_detected(self):
        with pytest.raises(Exception):
            simulate("""
module tb;
  reg a; wire b;
  assign b = ~a;
  always @(b) a = b;   // zero-delay feedback loop oscillates
  initial begin a = 0; #10 $finish; end
endmodule
""", "tb")

    def test_x_feedback_settles_quietly(self):
        # A combinational loop whose fixpoint is x must not hang.
        result = run_simulation("""
module tb;
  wire a, b;
  assign a = ~b;
  assign b = ~a;
  initial #10 $finish;
endmodule
""")
        assert result.ok and result.finished
