"""Tests for the evaluation harness (pass@k, generation/repair/script)."""

import pytest

from repro.bench import rtllm_suite, scgen_suite, thakur_suite
from repro.eval import (evaluate_candidate, evaluate_cell,
                        evaluate_generation, evaluate_repair,
                        format_pct, iterations_to_correct,
                        make_broken_case, pass_at_k, render_table1,
                        render_table3, render_table4, render_table5,
                        evaluate_scripts)
from repro.llm import get_model


class TestPassAtK:
    def test_bounds(self):
        assert pass_at_k(5, 0, 1) == 0.0
        assert pass_at_k(5, 5, 1) == 1.0

    def test_known_value(self):
        # n=2, c=1, k=1 → 0.5
        assert pass_at_k(2, 1, 1) == pytest.approx(0.5)

    def test_k_larger_than_n(self):
        assert pass_at_k(3, 1, 10) == 1.0
        assert pass_at_k(3, 0, 10) == 0.0

    def test_monotone_in_c(self):
        values = [pass_at_k(10, c, 3) for c in range(11)]
        assert values == sorted(values)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            pass_at_k(3, 4, 1)
        with pytest.raises(ValueError):
            pass_at_k(3, 1, 0)

    def test_format_pct(self):
        assert format_pct(0.706) == "70.6%"


class TestCandidateEvaluation:
    def test_reference_passes(self):
        problem = thakur_suite()[0]
        outcome = evaluate_candidate(problem.reference, problem)
        assert outcome.syntax_ok
        assert outcome.pass_fraction == 1.0

    def test_broken_candidate_counted_as_syntax(self):
        problem = thakur_suite()[0]
        outcome = evaluate_candidate("module basic1 (input a output y);",
                                     problem)
        assert not outcome.syntax_ok
        assert outcome.pass_fraction == 0.0

    def test_functionally_wrong_candidate(self):
        problem = thakur_suite()[1]   # and gate
        wrong = problem.reference.replace("a & b", "a | b")
        outcome = evaluate_candidate(wrong, problem)
        assert outcome.syntax_ok
        assert outcome.pass_fraction < 1.0

    def test_cell_counts_syntax_errors(self):
        problem = thakur_suite()[5]
        cell = evaluate_cell(get_model("llama2-13b"), problem, "middle",
                             n_samples=5)
        assert 0 <= cell.syntax_errors <= 5
        assert 0.0 <= cell.function_rate <= 1.0


class TestGenerationReport:
    @pytest.fixture(scope="class")
    def report(self):
        models = [get_model("ours-13b"), get_model("llama2-13b")]
        return evaluate_generation(models, list(thakur_suite())[:6],
                                   levels=("middle",), n_samples=3)

    def test_success_rate_ordering(self, report):
        strong = report.success_rate("ours-13b")
        weak = report.success_rate("llama2-13b")
        assert strong >= weak

    def test_problem_solved_consistency(self, report):
        for name in list(report.cells["ours-13b"]):
            solved = report.problem_solved("ours-13b", name)
            cell = report.cell("ours-13b", name, "middle")
            assert solved == cell.solved

    def test_render_table5_contains_models(self, report):
        text = render_table5(report, [p.name for p in thakur_suite()[:6]],
                             [], levels=("middle",))
        assert "Ours-13B" in text
        assert "success rate" in text


class TestRepairEvaluation:
    def test_broken_case_is_really_broken(self):
        problem = rtllm_suite()[0]
        case = make_broken_case(problem, seed=3)
        assert case.feedback.startswith(f"./{problem.name}.v")
        from repro.checker import check_source
        assert not check_source(case.broken).ok

    def test_repair_report_and_rendering(self):
        problems = list(rtllm_suite())[:5]
        models = [get_model("ours-13b"), get_model("llama2-13b")]
        report = evaluate_repair(models, problems, n_samples=3)
        assert report.success_rate("ours-13b") >= \
            report.success_rate("llama2-13b")
        text = render_table3(report, [p.name for p in problems])
        assert "success rate" in text
        assert problems[0].name in text


class TestScriptEvaluation:
    def test_ours_one_iteration(self):
        task = scgen_suite()[0]
        result = iterations_to_correct(get_model("ours-13b"), task)
        assert result.syntax_iteration == 1
        assert result.function_iteration == 1

    def test_baseline_never_succeeds(self):
        task = scgen_suite()[0]
        result = iterations_to_correct(get_model("llama2-13b"), task)
        assert result.function_iteration is None

    def test_gpt35_matches_paper_basic(self):
        task = scgen_suite()[0]
        result = iterations_to_correct(get_model("gpt-3.5"), task)
        assert result.syntax_iteration == 8
        assert result.function_iteration == 9

    def test_render_table4(self):
        report = evaluate_scripts([get_model("ours-13b")],
                                  list(scgen_suite()))
        text = render_table4(report, [t.name for t in scgen_suite()])
        assert "Mixed" in text
        assert "avg pass@k" in text


class TestTable1:
    def test_render_table1(self):
        text = render_table1()
        assert "ChipNeMo" in text
        assert "Ours" in text
        assert "SiliconCompiler" in text
