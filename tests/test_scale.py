"""repro.scale: determinism, cache correctness, CLI parity."""

import json
import os
import random

import pytest

from repro.core import (AugmentationPipeline, PipelineConfig, augment_file,
                        content_seed)
from repro.corpus import generate_corpus
from repro.scale import (AugmentationService, CorpusStore, ResultCache,
                         augment_distributed, sha256_text, shard_key,
                         shard_of_path)

CONFIG = PipelineConfig(eda_scripts=False, statement_cap=8, token_cap=16)


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus")
    for index, text in enumerate(generate_corpus(10, seed=0)):
        (root / f"design_{index}.v").write_text(text)
    return root


def _paths(corpus_dir):
    return sorted(str(p) for p in corpus_dir.iterdir())


class TestContentSeeding:
    def test_seed_depends_on_content_not_position(self):
        a, b = generate_corpus(2, seed=0)
        assert content_seed(a) != content_seed(b)
        assert content_seed(a) == content_seed(a)

    def test_pipeline_is_order_invariant_per_file(self):
        corpus = generate_corpus(6, seed=3)
        shuffled = corpus[:]
        random.Random(1).shuffle(shuffled)
        original = {sha256_text(t): augment_file(t, CONFIG) for t in corpus}
        for text in shuffled:
            assert augment_file(text, CONFIG) == original[sha256_text(text)]

    def test_run_matches_augment_file(self):
        corpus = generate_corpus(3, seed=2)
        report = AugmentationPipeline(CONFIG).run(corpus)
        expected = [r for t in corpus for r in augment_file(t, CONFIG)
                    if r.approx_tokens <= CONFIG.max_tokens]
        assert report.dataset.records == expected


class TestCorpusStore:
    def test_discovers_directory_and_explicit_files(self, corpus_dir):
        store = CorpusStore([str(corpus_dir)])
        assert [s.path for s in store.discover()] == _paths(corpus_dir)
        explicit = CorpusStore(_paths(corpus_dir))
        assert ([s.digest for s in explicit.discover()]
                == [s.digest for s in store.discover()])

    def test_shard_assignment_is_path_stable(self, corpus_dir):
        path = _paths(corpus_dir)[0]
        assert shard_of_path(path, 16) == shard_of_path(path, 16)
        assert 0 <= shard_of_path(path, 4) < 4

    def test_merge_order_is_input_order_invariant(self, corpus_dir):
        forward = CorpusStore(_paths(corpus_dir)).merge_order()
        backward = CorpusStore(_paths(corpus_dir)[::-1]).merge_order()
        assert [s.digest for s in forward] == [s.digest for s in backward]


class TestDistributedEquivalence:
    def test_matches_serial_pipeline_byte_identical(self, corpus_dir):
        paths = _paths(corpus_dir)
        texts = sorted((open(p).read() for p in paths), key=sha256_text)
        serial = AugmentationPipeline(CONFIG).run(texts)
        dist = augment_distributed(paths, CONFIG, jobs=4)
        assert dist.dataset.to_jsonl() == serial.dataset.to_jsonl()
        assert dist.raw_count == serial.raw_count
        assert dist.per_task == serial.per_task

    def test_jobs_and_shuffle_invariant(self, corpus_dir, tmp_path):
        paths = _paths(corpus_dir)
        shuffled = paths[:]
        random.Random(9).shuffle(shuffled)
        one = augment_distributed(paths, CONFIG, jobs=1, num_shards=4)
        four = augment_distributed(shuffled, CONFIG, jobs=4, num_shards=8)
        assert one.dataset.to_jsonl() == four.dataset.to_jsonl()

    def test_threads_executor_equivalent(self, corpus_dir):
        paths = _paths(corpus_dir)
        procs = augment_distributed(paths, CONFIG, jobs=2)
        threads = augment_distributed(paths, CONFIG, jobs=2,
                                      use_threads=True)
        assert procs.dataset.to_jsonl() == threads.dataset.to_jsonl()

    def test_duplicate_content_handled(self, tmp_path):
        text = generate_corpus(1, seed=5)[0]
        for name in ("a.v", "b.v"):
            (tmp_path / name).write_text(text)
        report = augment_distributed([str(tmp_path)], CONFIG, jobs=2)
        per_file = [r for r in augment_file(text, CONFIG)
                    if r.approx_tokens <= CONFIG.max_tokens]
        assert report.dataset.records == per_file + per_file


class TestResultCache:
    def _fresh_corpus(self, tmp_path, count=8):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        for index, text in enumerate(generate_corpus(count, seed=4)):
            (corpus / f"d{index}.v").write_text(text)
        return corpus

    def test_warm_run_recomputes_nothing(self, tmp_path):
        corpus = self._fresh_corpus(tmp_path)
        cache = str(tmp_path / ".cache")
        cold = augment_distributed([str(corpus)], CONFIG, jobs=2,
                                   cache_dir=cache)
        warm = augment_distributed([str(corpus)], CONFIG, jobs=2,
                                   cache_dir=cache)
        assert cold.shards_computed == cold.shards_total > 0
        assert warm.shards_computed == 0
        assert warm.cache_misses == 0
        assert warm.cache_hits == warm.shards_total
        assert warm.dataset.to_jsonl() == cold.dataset.to_jsonl()
        manifest = json.loads(
            (tmp_path / ".cache" / "manifest.json").read_text())
        assert manifest["last_run"] == {"hits": warm.cache_hits,
                                       "misses": 0}

    def test_touching_one_file_invalidates_exactly_one_shard(self,
                                                             tmp_path):
        corpus = self._fresh_corpus(tmp_path)
        cache = str(tmp_path / ".cache")
        augment_distributed([str(corpus)], CONFIG, cache_dir=cache)
        victim = sorted(corpus.iterdir())[0]
        victim.write_text(victim.read_text() + "\n// touched\n")
        after = augment_distributed([str(corpus)], CONFIG, cache_dir=cache)
        assert after.shards_computed == 1
        assert after.cache_misses == 1

    def test_config_change_invalidates_everything(self, tmp_path):
        corpus = self._fresh_corpus(tmp_path, count=4)
        cache = str(tmp_path / ".cache")
        augment_distributed([str(corpus)], CONFIG, cache_dir=cache)
        other = PipelineConfig(eda_scripts=False, statement_cap=8,
                               token_cap=16, repair_variants=2)
        rerun = augment_distributed([str(corpus)], other, cache_dir=cache)
        assert rerun.shards_computed == rerun.shards_total

    def test_config_change_prunes_stale_shard_files(self, tmp_path):
        corpus = self._fresh_corpus(tmp_path, count=6)
        cache_dir = tmp_path / ".cache"
        first = augment_distributed([str(corpus)], CONFIG,
                                    cache_dir=str(cache_dir))
        other = PipelineConfig(eda_scripts=False, statement_cap=8,
                               token_cap=16, repair_variants=2)
        second = augment_distributed([str(corpus)], other,
                                     cache_dir=str(cache_dir))
        shard_files = list((cache_dir / "shards").iterdir())
        assert len(shard_files) == second.shards_total
        assert first.shards_total == second.shards_total

    def test_shard_key_ignores_member_order(self):
        fp = CONFIG.fingerprint()
        assert shard_key(fp, ["b", "a"]) == shard_key(fp, ["a", "b"])
        assert shard_key(fp, ["a"]) != shard_key(fp, ["a", "b"])

    def test_corrupt_shard_file_is_a_miss(self, tmp_path):
        corpus = self._fresh_corpus(tmp_path, count=4)
        cache_dir = tmp_path / ".cache"
        augment_distributed([str(corpus)], CONFIG, cache_dir=str(cache_dir))
        for shard_file in (cache_dir / "shards").iterdir():
            shard_file.write_text("{not json")
        rerun = augment_distributed([str(corpus)], CONFIG,
                                    cache_dir=str(cache_dir))
        assert rerun.shards_computed == rerun.shards_total
        assert rerun.cache_hits == 0


class TestDatasetSave:
    def test_creates_parent_directories(self, tmp_path):
        from repro.core import Dataset
        target = tmp_path / "deep" / "nested" / "out.jsonl"
        Dataset().save(str(target))
        assert target.exists()

    def test_atomic_no_temp_left_behind(self, tmp_path):
        report = AugmentationPipeline(CONFIG).run(generate_corpus(2,
                                                                  seed=0))
        target = tmp_path / "out.jsonl"
        report.dataset.save(str(target))
        report.dataset.save(str(target))    # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["out.jsonl"]
        lines = target.read_text().splitlines()
        assert len(lines) == len(report.dataset)


class TestCli:
    def test_augment_and_dist_outputs_byte_identical(self, corpus_dir,
                                                     tmp_path, capsys):
        from repro.cli import main
        serial_out = str(tmp_path / "serial.jsonl")
        dist_out = str(tmp_path / "dist.jsonl")
        assert main(["augment", *_paths(corpus_dir),
                     "--out", serial_out]) == 0
        assert main(["augment-dist", str(corpus_dir), "--jobs", "4",
                     "--cache-dir", str(tmp_path / ".cache"),
                     "--out", dist_out]) == 0
        capsys.readouterr()
        assert (open(serial_out, "rb").read()
                == open(dist_out, "rb").read())

    def test_dist_reports_cache_summary(self, corpus_dir, tmp_path,
                                        capsys):
        from repro.cli import main
        cache = str(tmp_path / ".cache")
        main(["augment-dist", str(corpus_dir), "--cache-dir", cache])
        main(["augment-dist", str(corpus_dir), "--cache-dir", cache])
        output = capsys.readouterr().out
        assert "0 miss(es)" in output
        assert "0 computed" in output
