"""Golden-trace regression suite: both backends vs checked-in traces.

Every design under ``tests/golden/`` has an expected ``$display``
transcript (``.out``) and — for the smaller designs — an expected VCD
dump (``.vcd``).  Both the interpreter and the compiled backend must
reproduce them byte-for-byte, so a scheduler change that silently
reorders events (or a lowering bug that shifts a delta cycle) fails
here even if the two backends still agree with each other.

The golden designs double as the workload for
``benchmarks/bench_sim.py`` (cycles/sec interp vs compiled).
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.sim import (CompiledSimulator, Simulator, compile_design,
                       elaborate, find_top, generate_module,
                       load_generated, run_simulation, source_digest)
from repro.verilog import parse

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

DESIGNS = sorted(
    os.path.splitext(os.path.basename(p))[0]
    for p in glob.glob(os.path.join(GOLDEN_DIR, "*.v")))


def golden_path(name: str, suffix: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}{suffix}")


def golden_source(name: str) -> str:
    with open(golden_path(name, ".v"), encoding="utf-8") as fh:
        return fh.read()


def expected_out(name: str) -> str:
    with open(golden_path(name, ".out"), encoding="utf-8") as fh:
        return fh.read()


def render_out(result) -> str:
    return "\n".join(result.display) + \
        f"\n-- finished={result.finished} time={result.time}\n"


def test_golden_inventory():
    """The suite stays at the contracted size with full .out coverage."""
    assert len(DESIGNS) >= 10
    for name in DESIGNS:
        assert os.path.exists(golden_path(name, ".out")), name


@pytest.mark.parametrize("name", DESIGNS)
def test_golden_interp(name):
    result = run_simulation(golden_source(name), backend="interp",
                            trace=True)
    assert result.ok, result.error
    assert render_out(result) == expected_out(name)
    vcd_file = golden_path(name, ".vcd")
    if os.path.exists(vcd_file):
        with open(vcd_file, encoding="utf-8") as fh:
            assert result.vcd == fh.read()


@pytest.mark.parametrize("name", DESIGNS)
def test_golden_compiled(name):
    # Drive the compiled pipeline directly so a silent fallback to the
    # interpreter cannot masquerade as compiled-backend coverage.
    text = golden_source(name)
    source = parse(text)
    design = elaborate(source, find_top(source))
    compiled = compile_design(design)
    simulator = CompiledSimulator(compiled)
    simulator.enable_tracing()
    simulator.run(max_time=2_000_000)
    out = "\n".join(simulator.display_lines) + \
        f"\n-- finished={simulator.finished} time={simulator.time}\n"
    assert out == expected_out(name)
    vcd_file = golden_path(name, ".vcd")
    if os.path.exists(vcd_file):
        with open(vcd_file, encoding="utf-8") as fh:
            assert simulator.tracer.to_vcd() == fh.read()


@pytest.mark.parametrize("name", DESIGNS)
def test_golden_codegen(name):
    # Drive the codegen pipeline directly: emit the module source,
    # exec-load it (as a warm pool worker would) and compare transcript
    # and VCD byte-for-byte against the checked-in traces.
    text = golden_source(name)
    source = parse(text)
    design = elaborate(source, find_top(source))
    module_source = generate_module(design, source_digest(text, None))
    simulator = load_generated(module_source).simulator()
    simulator.enable_tracing()
    simulator.run(max_time=2_000_000)
    out = "\n".join(simulator.display_lines) + \
        f"\n-- finished={simulator.finished} time={simulator.time}\n"
    assert out == expected_out(name)
    vcd_file = golden_path(name, ".vcd")
    if os.path.exists(vcd_file):
        with open(vcd_file, encoding="utf-8") as fh:
            assert simulator.tracer.to_vcd() == fh.read()


@pytest.mark.parametrize("name", DESIGNS)
def test_golden_backends_agree_on_final_state(name):
    """Beyond the transcript: every signal's final value matches."""
    text = golden_source(name)
    source = parse(text)
    top = find_top(source)
    interp = Simulator(elaborate(parse(text), top))
    interp.run(max_time=2_000_000)
    compiled = compile_design(elaborate(parse(text), top)).simulator()
    compiled.run(max_time=2_000_000)
    for signal_name, signal in interp.design.signals.items():
        if signal.is_array:
            continue
        assert signal.value == compiled.value_of(signal_name), \
            signal_name
