"""Tests for the behavioural model zoo and the GPT-3.5 stand-in oracle."""

import pytest

from repro.checker import check_source
from repro.llm import (DescriptionOracle, available_models,
                       corrupt_functionally, corrupt_syntax,
                       derived_solve_rate, get_model, get_profile)
from repro.sim import run_testbench

REFERENCE = """module counter (clk, rst, en, count);
  input clk, rst, en;
  output reg [1:0] count;
  always @(posedge clk)
    if (rst) count <= 2'd0;
    else if (en) count <= count + 2'd1;
endmodule
"""

TESTBENCH = """module tb;
  reg clk, rst, en; wire [1:0] count;
  counter dut (.clk(clk), .rst(rst), .en(en), .count(count));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; en = 0;
    #12 rst = 0; en = 1;
    #10;
    if (count == 2'd1) $display("PASS one"); else $display("FAIL one");
    #10;
    if (count == 2'd2) $display("PASS two"); else $display("FAIL two");
    #20;
    if (count == 2'd0) $display("PASS wrap"); else $display("FAIL wrap");
    en = 0;
    #10;
    if (count == 2'd0) $display("PASS hold"); else $display("FAIL hold");
    $finish;
  end
endmodule
"""

SCRIPT = """from siliconcompiler import Chip
chip = Chip('heartbeat')
chip.input('heartbeat.v')
chip.clock('clk', period=10)
chip.set('constraint', 'coremargin', 2)
chip.load_target('skywater130_demo')
chip.run()
chip.summary()
"""


class TestCorruption:
    def test_functional_corruption_still_parses(self):
        for seed in range(6):
            corrupted = corrupt_functionally(REFERENCE, seed)
            assert check_source(corrupted).ok or \
                "count" in corrupted  # parses (lint warnings allowed)
            from repro.verilog import parse
            parse(corrupted)  # must not raise

    def test_functional_corruption_changes_semantics(self):
        changed = 0
        for seed in range(6):
            corrupted = corrupt_functionally(REFERENCE, seed)
            if corrupted.strip() != REFERENCE.strip():
                changed += 1
        assert changed >= 4

    def test_syntax_corruption_breaks_checker(self):
        broken = 0
        for seed in range(8):
            corrupted = corrupt_syntax(REFERENCE, seed)
            if not check_source(corrupted).ok:
                broken += 1
        assert broken >= 6


class TestBehavioralModels:
    def test_registry_lists_six_models(self):
        assert len(available_models()) == 6
        assert "ours-13b" in available_models()

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_profile("nonexistent")

    def test_stronger_model_solves_superset(self):
        strong = get_model("ours-13b")
        weak = get_model("llama2-13b")
        for difficulty in (0.1, 0.3, 0.5, 0.7):
            if weak.solves("intermediate", difficulty):
                assert strong.solves("intermediate", difficulty)

    def test_generation_deterministic(self):
        model = get_model("ours-13b")
        a = model.generate_verilog(REFERENCE, "basic", 0.2,
                                   problem_name="counter")
        b = model.generate_verilog(REFERENCE, "basic", 0.2,
                                   problem_name="counter")
        assert a == b

    def test_solved_problem_passes_testbench(self):
        model = get_model("ours-13b")
        samples = model.generate_verilog(REFERENCE, "basic", 0.1,
                                         problem_name="counter",
                                         n_samples=5)
        verdicts = [run_testbench(s, TESTBENCH) for s in samples]
        assert any(v.all_passed for v in verdicts)

    def test_unsolved_problem_fails_testbench(self):
        model = get_model("llama2-13b")
        samples = model.generate_verilog(REFERENCE, "advanced", 0.9,
                                         problem_name="counter",
                                         n_samples=5)
        verdicts = [run_testbench(s, TESTBENCH) for s in samples]
        assert not any(v.all_passed for v in verdicts)

    def test_repair_rates_ordered_like_paper(self):
        # Table 3: ours-13B > ours-7B > GPT3.5 > Llama2-13B
        rates = [get_profile(n).repair_rate
                 for n in ("ours-13b", "ours-7b", "gpt-3.5", "llama2-13b")]
        assert rates == sorted(rates, reverse=True)

    def test_script_skill_ours_one_shot(self):
        model = get_model("ours-13b")
        assert model.generate_script("Basic", SCRIPT, attempt=1) == SCRIPT

    def test_script_skill_gpt35_needs_iterations(self):
        model = get_model("gpt-3.5")
        first = model.generate_script("Basic", SCRIPT, attempt=1)
        assert first != SCRIPT
        ninth = model.generate_script("Basic", SCRIPT, attempt=9)
        assert ninth == SCRIPT

    def test_derived_solve_rate_matches_ours_calibration(self):
        """The scaling-law link lands near the calibrated profile."""
        base = get_profile("llama2-13b").solve_rate["intermediate"]
        derived = derived_solve_rate(base, aligned_records=124_000,
                                     total_records=6_959_200, params_b=13)
        ours = get_profile("ours-13b").solve_rate["intermediate"]
        assert derived == pytest.approx(ours, abs=0.12)

    def test_derived_rate_monotone_in_data(self):
        small = derived_solve_rate(0.3, 10, 100, 13)
        large = derived_solve_rate(0.3, 10_000, 100_000, 13)
        assert large > small


class TestDescriptionOracle:
    def test_describes_all_key_calls(self):
        text = DescriptionOracle().describe(SCRIPT)
        assert "chip object for design 'heartbeat'" in text
        assert "'heartbeat.v'" in text
        assert "period of 10 nanoseconds" in text
        assert "core margin to 2" in text
        assert "target 'skywater130_demo'" in text
        assert "Run the compilation flow." in text
        assert "PPA report" in text

    def test_invalid_python_returns_empty(self):
        assert DescriptionOracle().describe("chip = Chip(") == ""

    def test_set_keypath_fallback(self):
        text = DescriptionOracle().describe(
            "chip = Chip('x')\nchip.set('exotic', 'knob', 42)\n")
        assert "Set parameter exotic / knob to 42." in text

    def test_describes_diearea(self):
        text = DescriptionOracle().describe(
            "chip = Chip('x')\n"
            "chip.set('asic', 'diearea', [(0, 0), (100, 100)])\n")
        assert "die area" in text
