"""Unit proof of the flow spec layer: expansion + validation.

Fan-out expansion must be a pure function of spec *content* —
node set and order identical regardless of dict insertion order, JSON
round-trips, or execution parallelism — and every malformed graph
(duplicates, self edges, unknown refs, cycles, bad kinds, oversized
grids) must be rejected with ``SpecError`` before anything runs.
"""

import json

import pytest

from repro.flow import (MAX_FLOW_NODES, expand_nodes, pipeline_flow,
                        resolve_refs, validate_flow)
from repro.serve.jobs import SpecError


def _seed_grid(foreach: dict) -> dict:
    return {"name": "grid", "nodes": [
        {"name": "aug-{mode}-{seed}", "kind": "probe",
         "spec": {"payload": "{mode}-{seed}", "sleep_ms": "{seed}"},
         "foreach": foreach}]}


class TestExpansionDeterminism:
    def test_axis_order_is_sorted_not_insertion(self):
        ab = validate_flow(_seed_grid({"seed": [0, 1],
                                       "mode": ["x", "y"]}))
        ba = validate_flow(_seed_grid({"mode": ["x", "y"],
                                       "seed": [0, 1]}))
        assert [n.to_dict() for n in ab] == [n.to_dict() for n in ba]
        assert [n.name for n in ab] == [
            "aug-x-0", "aug-x-1", "aug-y-0", "aug-y-1"]

    def test_json_roundtrip_is_identity(self):
        blob = _seed_grid({"seed": [2, 0, 1], "mode": ["b", "a"]})
        rehydrated = json.loads(json.dumps(blob))
        assert [n.to_dict() for n in validate_flow(blob)] == \
            [n.to_dict() for n in validate_flow(rehydrated)]

    def test_value_order_is_listed_order(self):
        nodes = validate_flow(_seed_grid({"seed": [2, 0, 1],
                                          "mode": ["b"]}))
        assert [n.name for n in nodes] == [
            "aug-b-2", "aug-b-0", "aug-b-1"]

    def test_exact_token_substitution_preserves_type(self):
        nodes = validate_flow(_seed_grid({"seed": [7], "mode": ["m"]}))
        # "{seed}" alone becomes the int 7; the mixed string becomes
        # textual.
        assert nodes[0].spec["sleep_ms"] == 7
        assert nodes[0].spec["payload"] == "m-7"

    def test_literal_braces_survive_when_not_an_axis(self):
        source = "assign y = {a, b};  // concat, not a template"
        blob = {"nodes": [
            {"name": "sim-{seed}", "kind": "probe",
             "spec": {"payload": source}, "foreach": {"seed": [0]}}]}
        nodes = validate_flow(blob)
        assert nodes[0].spec["payload"] == source

    def test_nodes_without_foreach_are_never_substituted(self):
        payload = "untouched {anything} at {all}"
        nodes = validate_flow({"nodes": [
            {"name": "n", "kind": "probe",
             "spec": {"payload": payload}}]})
        assert nodes[0].spec["payload"] == payload

    def test_cross_product_size(self):
        raw = expand_nodes(_seed_grid({"seed": [0, 1, 2],
                                       "mode": ["a", "b"]}))
        assert len(raw) == 6


class TestValidation:
    def _reject(self, blob, fragment):
        with pytest.raises(SpecError, match=fragment):
            validate_flow(blob)

    def test_duplicate_node_names(self):
        self._reject({"nodes": [
            {"name": "a", "kind": "probe", "spec": {"payload": 1}},
            {"name": "a", "kind": "probe", "spec": {"payload": 2}}]},
            "duplicate node name")

    def test_duplicate_via_expansion_collision(self):
        self._reject({"nodes": [
            {"name": "p-0", "kind": "probe", "spec": {"payload": 1}},
            {"name": "p-{i}", "kind": "probe",
             "spec": {"payload": "{i}"}, "foreach": {"i": [0]}}]},
            "duplicate node name")

    def test_self_edge(self):
        self._reject({"nodes": [
            {"name": "a", "kind": "probe", "spec": {"payload": 1},
             "after": ["a"]}]}, "depends on itself")

    def test_self_reference_in_spec(self):
        self._reject({"nodes": [
            {"name": "a", "kind": "probe",
             "spec": {"payload": "@flow:a"}}]}, "depends on itself")

    def test_unknown_after_ref(self):
        self._reject({"nodes": [
            {"name": "a", "kind": "probe", "spec": {"payload": 1},
             "after": ["ghost"]}]}, "unknown node 'ghost'")

    def test_unknown_spec_ref(self):
        self._reject({"nodes": [
            {"name": "a", "kind": "probe",
             "spec": {"payload": "@flow:ghost"}}]},
            "unknown node 'ghost'")

    def test_cycle(self):
        self._reject({"nodes": [
            {"name": "a", "kind": "probe", "spec": {"payload": 1},
             "after": ["b"]},
            {"name": "b", "kind": "probe", "spec": {"payload": 2},
             "after": ["a"]}]}, "cycle")

    def test_unknown_kind(self):
        self._reject({"nodes": [{"name": "a", "kind": "frobnicate"}]},
                     "unknown job kind")

    def test_invalid_node_spec_names_the_node(self):
        self._reject({"nodes": [
            {"name": "bad-aug", "kind": "augment", "spec": {}}]},
            "node 'bad-aug'")

    def test_expansion_ceiling(self):
        blob = {"nodes": [
            {"name": "p-{a}-{b}", "kind": "probe",
             "spec": {"payload": "{a}{b}"},
             "foreach": {"a": list(range(32)),
                         "b": list(range(32))}}]}
        assert 32 * 32 > MAX_FLOW_NODES
        self._reject(blob, "expands to more than")

    def test_empty_and_malformed_shapes(self):
        self._reject({}, "non-empty list")
        self._reject({"nodes": "nope"}, "non-empty list")
        self._reject({"nodes": [{"kind": "probe"}]}, "name")
        self._reject({"nodes": [
            {"name": "a", "kind": "probe", "foreach": {}}]}, "foreach")
        self._reject({"nodes": [
            {"name": "a", "kind": "probe",
             "foreach": {"i": [[1]]}}]}, "strings or numbers")


class TestTopologyAndRefs:
    def test_topo_order_is_stable_and_dependency_respecting(self):
        nodes = validate_flow({"nodes": [
            {"name": "z", "kind": "probe", "spec": {"payload": 0},
             "after": ["m"]},
            {"name": "m", "kind": "probe", "spec": {"payload": 1}},
            {"name": "q", "kind": "probe", "spec": {"payload": 2}}]})
        # Ready nodes emit in spec order: m and q first (spec order),
        # then z.
        assert [n.name for n in nodes] == ["m", "q", "z"]

    def test_spec_reference_implies_dependency(self):
        nodes = validate_flow({"nodes": [
            {"name": "use", "kind": "probe",
             "spec": {"payload": "@flow:make"}},
            {"name": "make", "kind": "probe", "spec": {"payload": 1}}]})
        assert [n.name for n in nodes] == ["make", "use"]
        assert nodes[1].after == ("make",)

    def test_resolve_refs_substitutes_nested(self):
        spec = {"a": "@flow:x", "b": ["@flow:y", "keep"],
                "c": {"d": "@flow:x"}, "e": 5}
        resolved = resolve_refs(spec, {"x": "job-1", "y": "job-2"})
        assert resolved == {"a": "job-1", "b": ["job-2", "keep"],
                            "c": {"d": "job-1"}, "e": 5}

    def test_pipeline_flow_is_a_valid_three_stage_dag(self):
        nodes = validate_flow(pipeline_flow(paths=["/tmp/corpus"],
                                            register_as="m"))
        assert [(n.name, n.kind) for n in nodes] == [
            ("augment", "augment"), ("train", "train"),
            ("evaluate", "evaluate")]
        assert nodes[1].after == ("augment",)
        assert nodes[2].after == ("train",)
        assert nodes[2].spec["trained"]["job"] == "@flow:train"
        assert "m" in nodes[2].spec["models"]
