"""Direct unit tests for the generic cache layer (``repro.scale.cache``).

:class:`LRUCache` eviction order and :class:`ManifestCache` hit/miss
accounting were previously covered only incidentally through the
eval/scale integration suites; these pin the contracts down directly.
"""

import json
import os

import pytest

from repro.scale.cache import LRUCache, ManifestCache


class TestLRUCacheEviction:
    def test_evicts_least_recently_used_first(self):
        cache = LRUCache(maxsize=3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.put("d", "D")                 # capacity: "a" leaves
        assert "a" not in cache
        assert [key for key in "bcd" if key in cache] == ["b", "c", "d"]

    def test_get_refreshes_recency(self):
        cache = LRUCache(maxsize=3)
        for key in "abc":
            cache.put(key, key.upper())
        assert cache.get("a") == "A"        # "b" is now the oldest
        cache.put("d", "D")
        assert "b" not in cache and "a" in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)                   # rewrite: "b" is the oldest
        cache.put("c", 4)
        assert "b" not in cache
        assert cache.get("a") == 3 and cache.get("c") == 4

    def test_overfill_evicts_in_insertion_order(self):
        cache = LRUCache(maxsize=2)
        for index, key in enumerate("abcde"):
            cache.put(key, index)
        assert len(cache) == 2
        assert [key for key in "abcde" if key in cache] == ["d", "e"]

    def test_get_missing_returns_default(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("nope") is None
        assert cache.get("nope", 42) == 42

    def test_clear_empties(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and "a" not in cache

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


class _JsonCache(ManifestCache):
    """Minimal concrete subclass: one JSON blob per slot."""

    def _encode(self, payload) -> str:
        return json.dumps(payload, sort_keys=True) + "\n"

    def _decode(self, text: str):
        return json.loads(text)


class TestManifestCacheLastRun:
    def test_counters_start_at_zero_per_instance(self, tmp_path):
        cache = _JsonCache(str(tmp_path), "fp")
        assert (cache.hits, cache.misses) == (0, 0)

    def test_cold_then_warm_run_counters(self, tmp_path):
        cold = _JsonCache(str(tmp_path), "fp")
        for slot in ("x", "y"):
            assert cold.lookup(slot, f"key-{slot}") is None
            cold.store(slot, f"key-{slot}", {"slot": slot})
        cold.flush()
        with open(os.path.join(str(tmp_path), "manifest.json"),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["last_run"] == {"hits": 0, "misses": 2}

        # A fresh instance resets the counters — last_run describes
        # exactly one run, which is what makes `misses == 0` a valid
        # warm-run verification.
        warm = _JsonCache(str(tmp_path), "fp")
        assert (warm.hits, warm.misses) == (0, 0)
        for slot in ("x", "y"):
            assert warm.lookup(slot, f"key-{slot}") == {"slot": slot}
        warm.flush()
        with open(os.path.join(str(tmp_path), "manifest.json"),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["last_run"] == {"hits": 2, "misses": 0}

    def test_reflush_overwrites_stale_last_run(self, tmp_path):
        cache = _JsonCache(str(tmp_path), "fp")
        cache.lookup("x", "key")            # miss
        cache.store("x", "key", {"v": 1})
        cache.flush()
        assert cache.lookup("x", "key") == {"v": 1}
        cache.flush()                       # same instance, new totals
        with open(os.path.join(str(tmp_path), "manifest.json"),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["last_run"] == {"hits": 1, "misses": 1}

    def test_key_change_and_corrupt_entry_count_as_misses(self, tmp_path):
        cache = _JsonCache(str(tmp_path), "fp")
        cache.store("x", "key-1", {"v": 1})
        cache.flush()
        reopened = _JsonCache(str(tmp_path), "fp")
        assert reopened.lookup("x", "key-2") is None    # stale key
        assert reopened.misses == 1
        # Locate the real entry file and corrupt it.
        entry_dir = os.path.join(str(tmp_path), "entries")
        entry = os.path.join(entry_dir, os.listdir(entry_dir)[0])
        with open(entry, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        assert reopened.lookup("x", "key-1") is None
        assert reopened.misses == 2

    def test_fingerprint_change_discards_entries(self, tmp_path):
        cache = _JsonCache(str(tmp_path), "fp-a")
        cache.store("x", "key", {"v": 1})
        cache.flush()
        other = _JsonCache(str(tmp_path), "fp-b")
        assert other.lookup("x", "key") is None
        assert other.misses == 1
