"""Tests for the mutation engine and repair-pair generation (Sec. 3.2)."""

import pytest

from repro.checker import check_source
from repro.core import (MUTATION_RULES, Mutator, Task,
                        feedback_repair_records, make_broken_variant,
                        mutate, repair_records)

COUNTER = """module counter (clk, rst, en, count);
  input clk, rst, en;
  output reg [1:0] count;
  always @(posedge clk)
    if (rst) count <= 2'd0;
    else if (en) count <= count + 2'd1;
endmodule
"""


class TestMutationRules:
    def test_all_five_paper_rules_registered(self):
        assert MUTATION_RULES == ("word_missing", "type_error",
                                  "width_error", "additional_word",
                                  "logic_error")

    def test_word_missing_removes_token(self):
        result = mutate(COUNTER, seed=1, count=1, rule="word_missing")
        assert result.changed
        assert len(result.mutated) < len(COUNTER)

    def test_type_error_flips_reg(self):
        result = mutate(COUNTER, seed=2, count=1, rule="type_error")
        assert result.changed
        assert "output wire [1:0] count" in result.mutated or \
            "reg" not in result.mutated.split("always")[0]

    def test_width_error_changes_bound(self):
        result = mutate(COUNTER, seed=3, count=1, rule="width_error")
        assert result.changed
        assert result.applied[0].rule == "width_error"
        assert "[1:0]" not in result.mutated or "2'd" in result.mutated

    def test_additional_word_inserts(self):
        result = mutate(COUNTER, seed=4, count=1, rule="additional_word")
        assert result.changed
        assert len(result.mutated) > len(COUNTER)

    def test_logic_error_removes_if_condition(self):
        result = mutate(COUNTER, seed=5, count=1, rule="logic_error")
        assert result.changed
        assert result.mutated.count("if") < COUNTER.count("if")

    def test_mutation_cap_is_five(self):
        mutator = Mutator(seed=0, max_mutations=50)
        assert mutator.max_mutations == 5
        result = mutator.mutate(COUNTER, count=50)
        assert len(result.applied) <= 5

    def test_deterministic_under_seed(self):
        first = mutate(COUNTER, seed=42)
        second = mutate(COUNTER, seed=42)
        assert first.mutated == second.mutated

    def test_different_seeds_differ(self):
        outputs = {mutate(COUNTER, seed=s).mutated for s in range(8)}
        assert len(outputs) > 1

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            Mutator(rules=("not_a_rule",))

    def test_mutations_usually_break_the_checker(self):
        broken = 0
        for seed in range(20):
            result = mutate(COUNTER, seed=seed, count=2)
            if not result.changed:
                continue
            if not check_source(result.mutated).ok:
                broken += 1
        assert broken >= 10  # most mutants must be rejected by the checker


class TestRepairRecords:
    def test_repair_pair_output_is_original(self):
        records = list(repair_records(COUNTER, seed=0, variants=3))
        assert records
        for record in records:
            assert record.task is Task.MASK_COMPLETION
            assert record.output == COUNTER.strip()
            assert record.input != record.output

    def test_feedback_pairs_embed_yosys_line(self):
        records = list(feedback_repair_records(COUNTER, seed=1, variants=8))
        assert records
        for record in records:
            assert record.task is Task.DEBUG
            feedback = record.input.split(",\n", 1)[0]
            assert "ERROR" in feedback
            assert record.output == COUNTER.strip()

    def test_feedback_is_real_checker_output(self):
        records = list(feedback_repair_records(COUNTER, seed=2, variants=8))
        for record in records:
            feedback, wrong = record.input.split(",\n", 1)
            recomputed = check_source(wrong, "./design.v").first_error()
            assert recomputed == feedback

    def test_make_broken_variant(self):
        result = make_broken_variant(COUNTER, seed=9, count=2)
        assert result.original == COUNTER
        assert result.changed
