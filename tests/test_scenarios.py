"""The scenario registry is the regression gate — prove the gate.

* Registry invariants: the zoo covers every family, everything is in
  the CI tag, entries are structurally sound.
* One scenario per family is pinned: its deterministic metric
  fingerprint must match ``tests/golden/scenario_reports.json``
  (regen with ``REPRO_REGEN_GOLDEN=1``).
* The warm-cache rerun really does hit every manifest: misses == 0.
* Scores are transport-invariant: direct == daemon for a flow scenario.
* A metric outside its declared range (or missing) is a violation and
  flips the report to not-ok — the thing CI gates on.
"""

import json
import os

import pytest

from repro.flow import validate_flow
from repro.scenarios import (Scenario, ScenarioContext, all_scenarios,
                             get_scenario, register, run_scenario,
                             run_scenarios, select_scenarios,
                             unregister)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "scenario_reports.json")

#: One deterministic representative per family, golden-pinned.
PINNED_SCENARIOS = ("aug-seed-grid",          # sweep
                    "kill-worker-recovery",   # chaos
                    "warm-cache-rerun")       # perf


class TestRegistryInvariants:
    def test_zoo_covers_every_family_with_headroom(self):
        scenarios = all_scenarios()
        assert len(scenarios) >= 6
        families = {scenario.family for scenario in scenarios}
        assert families == {"sweep", "chaos", "perf"}

    def test_every_scenario_is_in_the_ci_gate(self):
        for scenario in all_scenarios():
            assert "ci" in scenario.tags, scenario.name
            assert scenario.description, scenario.name
            assert scenario.expected, scenario.name

    def test_pinned_metrics_have_expected_ranges(self):
        for scenario in all_scenarios():
            for metric in scenario.pinned:
                assert metric in scenario.expected, \
                    f"{scenario.name}: {metric}"

    def test_every_flow_builder_yields_a_valid_dag(self, tmp_path):
        for scenario in all_scenarios():
            if scenario.build is None:
                continue
            ctx = ScenarioContext(root=str(tmp_path / scenario.name))
            os.makedirs(ctx.root, exist_ok=True)
            nodes = validate_flow(scenario.build(ctx))
            assert nodes, scenario.name

    def test_selection_by_tag_and_name(self):
        by_tag = select_scenarios(tag="ci")
        assert {s.name for s in by_tag} >= set(PINNED_SCENARIOS)
        assert select_scenarios(tag="no-such-tag") == []
        only = select_scenarios(names=["aug-seed-grid"])
        assert [s.name for s in only] == ["aug-seed-grid"]
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("ghost")

    def test_malformed_entries_are_rejected_at_definition(self):
        with pytest.raises(ValueError, match="bad scenario family"):
            Scenario(name="x", family="vibes", description="d",
                     expected={}, ops=lambda ctx: {})
        with pytest.raises(ValueError, match="exactly one"):
            Scenario(name="x", family="perf", description="d",
                     expected={}, ops=lambda ctx: {},
                     build=lambda ctx: {},
                     extract=lambda results, ctx: {})
        with pytest.raises(ValueError, match="pins metrics"):
            Scenario(name="x", family="perf", description="d",
                     expected={"a": (0, 1)}, ops=lambda ctx: {},
                     pinned=("b",))
        register(Scenario(name="dup-probe", family="perf",
                          description="d", expected={},
                          ops=lambda ctx: {}))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register(Scenario(name="dup-probe", family="perf",
                                  description="d", expected={},
                                  ops=lambda ctx: {}))
        finally:
            unregister("dup-probe")


class TestViolationGate:
    def _run_temp(self, tmp_path, scores, expected):
        scenario = Scenario(
            name="tmp-gate", family="perf", description="temp",
            expected=expected, ops=lambda ctx: scores)
        register(scenario)
        try:
            return run_scenario(scenario, str(tmp_path))
        finally:
            unregister("tmp-gate")

    def test_out_of_range_metric_is_a_violation(self, tmp_path):
        result = self._run_temp(tmp_path, {"latency": 9.0},
                                {"latency": (0.0, 1.0)})
        assert not result.ok
        assert result.violations == [
            {"metric": "latency", "value": 9.0, "low": 0.0,
             "high": 1.0, "reason": "out of range"}]

    def test_missing_and_non_numeric_metrics_violate(self, tmp_path):
        result = self._run_temp(
            tmp_path, {"flag": True},
            {"flag": (0, 1), "ghost": (0, 1)})
        reasons = {v["metric"]: v["reason"] for v in result.violations}
        assert reasons == {"flag": "missing or non-numeric",
                           "ghost": "missing or non-numeric"}

    def test_ops_exception_becomes_an_error_not_a_crash(self, tmp_path):
        def boom(ctx):
            raise RuntimeError("scenario blew up")
        scenario = Scenario(name="tmp-boom", family="chaos",
                            description="temp", expected={"a": (0, 1)},
                            ops=boom)
        register(scenario)
        try:
            result = run_scenario(scenario, str(tmp_path))
        finally:
            unregister("tmp-boom")
        assert not result.ok
        assert "scenario blew up" in result.error
        assert result.violations == []

    def test_one_bad_scenario_fails_the_whole_report(self, tmp_path):
        register(Scenario(
            name="tmp-floor", family="perf", description="temp",
            expected={"speed": (1000.0, 2000.0)},
            ops=lambda ctx: {"speed": 1.0}))
        try:
            report = run_scenarios(
                names=["aug-seed-grid", "tmp-floor"],
                root=str(tmp_path))
        finally:
            unregister("tmp-floor")
        assert not report.ok
        blob = report.to_dict()
        assert blob["version"] == 1
        assert blob["ok"] is False
        assert blob["violations"] == 1
        by_name = {entry["name"]: entry for entry in blob["scenarios"]}
        assert by_name["aug-seed-grid"]["ok"] is True
        assert by_name["tmp-floor"]["ok"] is False
        assert "!!" in report.render()


@pytest.fixture(scope="module")
def pinned_report(tmp_path_factory):
    """Run the three golden-pinned scenarios once for the module."""
    root = tmp_path_factory.mktemp("scenario-golden")
    return run_scenarios(names=list(PINNED_SCENARIOS), root=str(root))


class TestGoldenPins:
    def test_pinned_scenarios_all_pass(self, pinned_report):
        assert pinned_report.ok, pinned_report.render()
        assert [r.name for r in pinned_report.results] == \
            list(PINNED_SCENARIOS)

    def test_fingerprints_match_golden(self, pinned_report):
        observed = {result.name: result.fingerprint
                    for result in pinned_report.results}
        if (os.environ.get("REPRO_REGEN_GOLDEN")
                or not os.path.exists(GOLDEN_PATH)):
            with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
                json.dump(observed, handle, indent=2, sort_keys=True)
                handle.write("\n")
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert observed == golden, (
            "pinned scenario metrics drifted from tests/golden/"
            "scenario_reports.json; if the change is intentional, "
            "rerun with REPRO_REGEN_GOLDEN=1")

    def test_warm_rerun_recomputes_nothing(self, pinned_report):
        warm = next(result for result in pinned_report.results
                    if result.name == "warm-cache-rerun")
        assert warm.scores["warm_misses"] == 0
        assert warm.scores["identical_results"] == 1
        assert warm.scores["warm_hits"] >= 1

    def test_chaos_round_loses_nothing(self, pinned_report):
        chaos = next(result for result in pinned_report.results
                     if result.name == "kill-worker-recovery")
        assert chaos.scores["lost"] == 0
        assert chaos.scores["blob_mismatches"] == 0
        assert chaos.scores["done_before_kill"] >= 1


class TestTransportParity:
    def test_direct_and_daemon_scores_agree(self, tmp_path):
        scenario = get_scenario("aug-seed-grid")
        direct = run_scenario(scenario, str(tmp_path / "d"),
                              via="direct")
        daemon = run_scenario(scenario, str(tmp_path / "s"),
                              via="daemon")
        assert direct.ok and daemon.ok
        assert direct.scores == daemon.scores
        assert direct.fingerprint == daemon.fingerprint


class TestScenarioCli:
    def test_list_and_run_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["scenarios", "list"]) == 0
        listing = capsys.readouterr().out
        for name in PINNED_SCENARIOS:
            assert name in listing

        out = tmp_path / "report.json"
        code = main(["scenarios", "run", "--name", "aug-seed-grid",
                     "--root", str(tmp_path / "run"),
                     "--out", str(out)])
        assert code == 0
        blob = json.loads(out.read_text(encoding="utf-8"))
        assert blob["ok"] is True
        assert blob["scenarios"][0]["name"] == "aug-seed-grid"
        assert blob["scenarios"][0]["violations"] == []

    def test_run_requires_a_selection(self, capsys):
        from repro.cli import main
        assert main(["scenarios", "run"]) == 2
        assert "pick one of" in capsys.readouterr().err
