"""Malformed-HTTP coverage for both serve front ends.

Every case must come back as a 4xx JSON error — and the server must
keep answering well-formed requests afterwards: a hostile or buggy
client can cost itself a connection, never a handler or the loop.
Parametrized over the legacy threaded server and the asyncio gateway.
"""

import json
import socket
import threading

import pytest

from repro.serve import (Daemon, GatewayConfig, GatewayServer,
                         ServeClient, ServeError, TenantPolicy,
                         make_server)


@pytest.fixture(params=["daemon", "gateway"])
def server(request, tmp_path):
    """(kind, host, port, client) for each front end."""
    daemon = Daemon(str(tmp_path / "store"), workers=1,
                    configure_sim_cache=False)
    daemon.start()
    if request.param == "daemon":
        httpd = make_server(daemon, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        yield request.param, host, port
        httpd.shutdown()
        httpd.server_close()
        daemon.stop()
    else:
        config = GatewayConfig(
            allow_unknown_tenants=False,
            tenants={"known": TenantPolicy(name="known")})
        gserver = GatewayServer(daemon, config=config).start()
        yield request.param, gserver.host, gserver.port
        gserver.stop()
        daemon.stop()


def _raw(host, port, payload: bytes, shutdown_wr: bool = False) -> bytes:
    """One raw request; returns everything the server sent back."""
    sock = socket.create_connection((host, port), timeout=10)
    try:
        sock.sendall(payload)
        if shutdown_wr:
            sock.shutdown(socket.SHUT_WR)
        chunks = b""
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks += chunk
            if b"\r\n\r\n" in chunks:
                head, _, rest = chunks.partition(b"\r\n\r\n")
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        if len(rest) >= int(line.split(b":")[1]):
                            return chunks
        return chunks
    finally:
        sock.close()


def _post(path: str, body: bytes, *, content_length: int | None = None,
          headers: dict | None = None) -> bytes:
    length = len(body) if content_length is None else content_length
    lines = [f"POST {path} HTTP/1.1", "Host: x",
             "Content-Type: application/json",
             f"Content-Length: {length}", "Connection: close"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _status(reply: bytes) -> int:
    assert reply, "server sent no reply"
    return int(reply.split(b"\r\n", 1)[0].split()[1])


def _alive(host, port) -> None:
    """The server must still answer a well-formed request."""
    client = ServeClient(f"http://{host}:{port}",
                         tenant="known", timeout=10)
    assert "jobs" in client.health()


def test_invalid_json_body(server):
    _, host, port = server
    reply = _raw(host, port, _post("/api/submit", b"{not json"))
    assert _status(reply) == 400
    _alive(host, port)


def test_non_dict_body(server):
    _, host, port = server
    reply = _raw(host, port, _post("/api/submit", b"[1, 2, 3]"))
    assert _status(reply) == 400
    _alive(host, port)


def test_wrong_content_length(server):
    """Content-Length larger than the sent body: the truncated read
    must surface as a 400, not hang or kill the handler."""
    _, host, port = server
    reply = _raw(host, port,
                 _post("/api/submit", b'{"kind": "probe"',
                       content_length=4096),
                 shutdown_wr=True)
    assert _status(reply) == 400
    _alive(host, port)


def test_non_integer_priority(server):
    _, host, port = server
    body = json.dumps({"kind": "probe", "spec": {"payload": "x"},
                       "priority": [1]}).encode()
    headers = {"X-Repro-Tenant": "known"}
    reply = _raw(host, port,
                 _post("/api/submit", body, headers=headers))
    assert _status(reply) == 400
    _alive(host, port)


def test_malformed_request_line(server):
    _, host, port = server
    reply = _raw(host, port, b"GARBAGE\r\n\r\n", shutdown_wr=True)
    # Both front ends answer 400 — though the threaded server treats a
    # version-less request line as HTTP/0.9 and omits the status line.
    assert not reply or b"400" in reply.split(b"\r\n\r\n")[0] \
        or b"Bad request" in reply
    _alive(host, port)


def test_unknown_tenant_rejected(server):
    kind, host, port = server
    if kind != "gateway":
        pytest.skip("tenant enforcement is a gateway feature")
    client = ServeClient(f"http://{host}:{port}", tenant="stranger")
    with pytest.raises(ServeError) as err:
        client.submit("probe", {"payload": "x"})
    assert err.value.status == 403
    _alive(host, port)


def test_client_disconnect_mid_response(server):
    """Hang up without reading: the server drops the connection
    silently and keeps serving."""
    _, host, port = server
    for _ in range(3):
        sock = socket.create_connection((host, port), timeout=10)
        sock.sendall(b"GET /api/jobs HTTP/1.1\r\nHost: x\r\n\r\n")
        sock.close()            # never read the reply
    _alive(host, port)
