"""Tests for ``repro tune`` (repro.train.tune).

The tuner's contract: profiling slices are ordinary service jobs
dispatched through the scheduler (journaled, dep-gated on a warm-up
augment), candidates differing only in operational knobs must agree on
weights byte-for-byte, and the persisted winner resolves via explicit
path → ``$REPRO_TUNE_CONFIG`` → ``./work/tune.json``.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.serve.store import JobStore
from repro.train.tune import (TUNE_CONFIG_ENV, TuneCandidate, TuneOutcome,
                              TuneReport, _check_determinism, default_grid,
                              load_tuned, machine_cpus, save_tuned,
                              tune_corpus)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

MODULE = """module dff(input clk, input d, output reg q);
  always @(posedge clk) q <= d;
endmodule
"""


def _corpus(root) -> str:
    corpus = os.path.join(str(root), "corpus")
    os.makedirs(corpus, exist_ok=True)
    for name in ("dff.v", "dff2.v"):
        with open(os.path.join(corpus, name), "w",
                  encoding="utf-8") as handle:
            handle.write(MODULE.replace("dff", name[:-2]))
    return corpus


class TestGrid:
    def test_default_grid_covers_pools_per_micro(self):
        grid = default_grid(max_jobs=3, micro_batches=(1, 2))
        pools = {(c.micro_batch, c.pool, c.jobs) for c in grid}
        for micro in (1, 2):
            assert (micro, None, 1) in pools
            assert (micro, "threads", 3) in pools
            assert (micro, "procs", 3) in pools
        assert any(c.checkpoint_every == 0 for c in grid)  # cadence probe

    def test_single_core_grid_stays_serial(self):
        grid = default_grid(max_jobs=1)
        assert all(c.pool is None and c.jobs == 1 for c in grid)


class TestTuneCorpus:
    def test_candidates_run_as_scheduled_service_jobs(self, tmp_path):
        corpus = _corpus(tmp_path)
        store_dir = str(tmp_path / "session")
        grid = [TuneCandidate(1, None, 2, 4),
                TuneCandidate(2, "threads", 2, 4),
                TuneCandidate(2, "procs", 2, 4)]
        report = tune_corpus([corpus], store_dir=store_dir, grid=grid,
                             batch_size=4, max_records=12)
        assert report.best is not None
        assert all(out.ok for out in report.outcomes)
        assert len(report.outcomes) == len(grid)
        # Operational knobs never change output: every candidate here
        # shares micro_batch=2, so every digest must match.
        assert len({out.weights_sha256 for out in report.outcomes}) == 1

        # Scheduler-path proof: the journal holds the warm-up augment
        # plus one normalised train job per candidate, dep-gated on it.
        store = JobStore(os.path.join(store_dir, "store"))
        try:
            jobs = list(store.jobs.values())
        finally:
            store.close()
        augments = [job for job in jobs if job.kind == "augment"]
        trains = [job for job in jobs if job.kind == "train"]
        assert len(augments) == 1 and len(trains) == len(grid)
        assert all(job.state == "done" for job in jobs)
        for job in trains:
            assert job.after == [augments[0].id]
            assert job.spec["pool"] in (None, "threads", "procs")
            assert "pool_jobs" in job.spec     # normalised at submit

    def test_empty_grid_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty tuning grid"):
            tune_corpus([_corpus(tmp_path)],
                        store_dir=str(tmp_path / "s"), grid=[])


class TestDeterminismCheck:
    @staticmethod
    def _outcome(micro: int, digest: str, pool=None) -> TuneOutcome:
        return TuneOutcome(candidate=TuneCandidate(1, pool, micro, 4),
                           job_id="j", ok=True, weights_sha256=digest)

    def test_drift_within_micro_group_aborts(self):
        with pytest.raises(RuntimeError, match="determinism regression"):
            _check_determinism([self._outcome(2, "aaaa"),
                                self._outcome(2, "bbbb", pool="procs")])

    def test_distinct_micro_groups_may_differ(self):
        _check_determinism([self._outcome(1, "aaaa"),
                            self._outcome(2, "bbbb")])


class TestTunedConfigResolution:
    @staticmethod
    def _report() -> TuneReport:
        best = TuneOutcome(candidate=TuneCandidate(2, "threads", 2, 4),
                           job_id="j", ok=True, seq_per_sec=100.0)
        return TuneReport(outcomes=[best], best=best, cpus=machine_cpus())

    def test_round_trip_explicit_path(self, tmp_path):
        path = save_tuned(self._report(), str(tmp_path / "tune.json"))
        config = load_tuned(path)
        assert config == {"jobs": 2, "pool": "threads",
                          "micro_batch": 2, "checkpoint_every": 4}

    def test_env_resolution(self, tmp_path, monkeypatch):
        path = save_tuned(self._report(), str(tmp_path / "tune.json"))
        monkeypatch.setenv(TUNE_CONFIG_ENV, path)
        assert load_tuned() is not None

    def test_default_path_resolution(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TUNE_CONFIG_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        assert load_tuned() is None            # nothing written yet
        save_tuned(self._report())             # -> ./work/tune.json
        assert load_tuned()["jobs"] == 2

    def test_missing_file_is_none(self, tmp_path):
        assert load_tuned(str(tmp_path / "absent.json")) is None

    @pytest.mark.parametrize("blob", [
        {"version": 99, "config": {"jobs": 1, "pool": None}},
        {"version": 1, "config": None},
        {"version": 1, "config": {"jobs": 0, "pool": None}},
        {"version": 1, "config": {"jobs": True, "pool": None}},
        {"version": 1, "config": {"jobs": 2, "pool": "rockets"}},
    ])
    def test_malformed_blobs_are_none(self, tmp_path, blob):
        path = str(tmp_path / "tune.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(blob, handle)
        assert load_tuned(path) is None


class TestTuneCli:
    def test_tune_writes_config_train_consumes(self, tmp_path):
        corpus = _corpus(tmp_path)
        out = str(tmp_path / "tune.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        done = subprocess.run(
            [sys.executable, "-m", "repro", "tune", corpus,
             "--out", out, "--store-dir", str(tmp_path / "session"),
             "--max-jobs", "1", "--batch-size", "4",
             "--max-records", "12"],
            env=env, cwd=REPO, capture_output=True, text=True)
        assert done.returncode == 0, done.stdout + done.stderr
        assert "winner:" in done.stdout
        config = load_tuned(out)
        assert config is not None and config["jobs"] >= 1
