"""The flow layer through the service: parity, rejection, recovery.

* Any valid DAG submitted via ``/api/flow`` must produce results
  byte-identical to topological serial execution with no daemon
  (hypothesis property) — including across a randomized SIGKILL /
  resume round (tier-2).
* Malformed graphs (duplicate node names, self edges, cycles, unknown
  refs/kinds) must come back as HTTP 400s from both front ends — the
  daemon and the asyncio gateway — and must leave the service healthy.
* Fan-out results are invariant to ``--jobs`` and to the transport.
"""

import os
import random
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flow import pipeline_flow, run_flow, run_flow_direct, \
    validate_flow
from repro.serve import (Daemon, GatewayConfig, GatewayServer,
                         ServeClient, ServeError, TenantPolicy,
                         make_server)
from test_serve_recovery import MODULE_A, MODULE_B, _spawn, _stop

_SETTINGS = dict(deadline=None, derandomize=True,
                 suppress_health_check=(HealthCheck.too_slow,))

#: Flows whose validation must 400 — name → (spec, error fragment).
BAD_FLOWS = {
    "duplicate-names": ({"nodes": [
        {"name": "a", "kind": "probe", "spec": {"payload": 1}},
        {"name": "a", "kind": "probe", "spec": {"payload": 2}}]},
        "duplicate node name"),
    "self-edge": ({"nodes": [
        {"name": "a", "kind": "probe", "spec": {"payload": 1},
         "after": ["a"]}]}, "depends on itself"),
    "cycle": ({"nodes": [
        {"name": "a", "kind": "probe", "spec": {"payload": 1},
         "after": ["b"]},
        {"name": "b", "kind": "probe", "spec": {"payload": 2},
         "after": ["a"]}]}, "cycle"),
    "unknown-ref": ({"nodes": [
        {"name": "a", "kind": "probe", "spec": {"payload": 1},
         "after": ["ghost"]}]}, "unknown node"),
    "unknown-kind": ({"nodes": [
        {"name": "a", "kind": "frobnicate"}]}, "unknown job kind"),
    "bad-node-spec": ({"nodes": [
        {"name": "a", "kind": "augment", "spec": {}}]}, "node 'a'"),
}


def _corpus(root) -> str:
    corpus = os.path.join(str(root), "corpus")
    os.makedirs(corpus, exist_ok=True)
    for name, text in (("dff.v", MODULE_A), ("mux2.v", MODULE_B)):
        with open(os.path.join(corpus, name), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
    return corpus


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """One shared in-process daemon + HTTP server for the module."""
    root = tmp_path_factory.mktemp("flow-service")
    daemon = Daemon(str(root / "store"), workers=2,
                    configure_sim_cache=False)
    server = make_server(daemon, port=0)
    daemon.start()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServeClient(
        f"http://127.0.0.1:{server.server_address[1]}")
    yield daemon, client, root
    server.shutdown()
    server.server_close()
    daemon.stop()


@st.composite
def flow_specs(draw):
    """Random valid probe DAGs: templates, fan-in edges, diamonds.

    Probe payloads never contain ``@flow:`` references — resolved refs
    are job ids, and probe blobs echo their payload, so a ref inside a
    payload would (correctly) differ between transports.  Reference
    resolution parity is covered by the pipeline golden e2e instead.
    """
    count = draw(st.integers(min_value=1, max_value=5))
    nodes, names = [], []
    for index in range(count):
        deps = draw(st.lists(st.sampled_from(names), unique=True,
                             max_size=3)) if names else []
        if draw(st.booleans()):
            values = draw(st.lists(st.integers(0, 9), min_size=1,
                                   max_size=3, unique=True))
            nodes.append({"name": f"n{index}-{{i}}", "kind": "probe",
                          "spec": {"payload": ["{i}", index]},
                          "foreach": {"i": values}, "after": deps})
            names.extend(f"n{index}-{value}" for value in values)
        else:
            payload = draw(st.integers(0, 99))
            nodes.append({"name": f"n{index}", "kind": "probe",
                          "spec": {"payload": payload},
                          "after": deps})
            names.append(f"n{index}")
    return {"name": "prop", "nodes": nodes}


class TestDaemonFlow:
    @settings(max_examples=25, **_SETTINGS)
    @given(blob=flow_specs())
    def test_daemon_matches_topological_serial(self, stack, blob):
        daemon, client, root = stack
        direct = run_flow_direct(blob, str(root / "direct"))
        via = run_flow(client, blob, timeout=60)
        assert via == direct

    def test_rejects_bad_flows_with_400_and_survives(self, stack):
        daemon, client, root = stack
        for name, (blob, fragment) in BAD_FLOWS.items():
            with pytest.raises(ServeError) as err:
                client.submit_flow(blob)
            assert err.value.status == 400, name
            assert fragment in str(err.value), name
        # Nothing was journaled and the daemon still serves.
        probe = client.submit("probe", {"payload": "alive"})
        assert client.wait([probe["id"]], timeout=30)[
            probe["id"]]["state"] == "done"

    def test_group_commit_is_all_or_nothing(self, stack):
        daemon, client, root = stack
        before = {job["id"] for job in client.jobs()}
        with pytest.raises(ServeError):
            client.submit_flow({"nodes": [
                {"name": "good", "kind": "probe",
                 "spec": {"payload": 1}},
                {"name": "bad", "kind": "augment", "spec": {}}]})
        assert {job["id"] for job in client.jobs()} == before

    def test_fanout_invariant_to_jobs_and_transport(self, tmp_path):
        corpus = _corpus(tmp_path)
        flow = {"name": "grid", "nodes": [
            {"name": "aug-{seed}", "kind": "augment",
             "spec": {"paths": [corpus], "seed": "{seed}"},
             "foreach": {"seed": [0, 1]}}]}
        serial = run_flow_direct(flow, str(tmp_path / "w1"),
                                 engine_jobs=1)
        parallel = run_flow_direct(flow, str(tmp_path / "w2"),
                                   engine_jobs=2)
        daemon = Daemon(str(tmp_path / "store"), workers=2,
                        configure_sim_cache=False)
        server = make_server(daemon, port=0)
        daemon.start()
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        try:
            client = ServeClient(
                f"http://127.0.0.1:{server.server_address[1]}")
            via = run_flow(client, flow, timeout=120)
        finally:
            server.shutdown()
            server.server_close()
            daemon.stop()
        assert serial == parallel == via
        assert serial["aug-0"]["sha256"] != serial["aug-1"]["sha256"]


class TestGatewayFlow:
    @pytest.fixture
    def gateway(self, tmp_path):
        daemon = Daemon(str(tmp_path / "store"), workers=2,
                        configure_sim_cache=False)
        config = GatewayConfig(
            max_queue_depth=8,
            tenants={"small": TenantPolicy(name="small",
                                           max_active=2)})
        server = GatewayServer(daemon, config=config).start()
        daemon.start()
        yield ServeClient(server.url), ServeClient(server.url,
                                                   tenant="small")
        server.stop()
        daemon.stop()

    def test_flow_roundtrip_and_parity(self, gateway, tmp_path):
        client, _ = gateway
        blob = {"name": "gw", "nodes": [
            {"name": "a-{i}", "kind": "probe",
             "spec": {"payload": "{i}"}, "foreach": {"i": [0, 1]}},
            {"name": "sum", "kind": "probe", "spec": {"payload": 2},
             "after": ["a-0", "a-1"]}]}
        via = run_flow(client, blob, timeout=60)
        assert via == run_flow_direct(blob, str(tmp_path / "direct"))

    def test_rejects_bad_flows_with_400_and_survives(self, gateway):
        client, _ = gateway
        for name, (blob, fragment) in BAD_FLOWS.items():
            with pytest.raises(ServeError) as err:
                client.submit_flow(blob)
            assert err.value.status == 400, name
            assert fragment in str(err.value), name
        probe = client.submit("probe", {"payload": "alive"})
        assert client.wait([probe["id"]], timeout=30)[
            probe["id"]]["state"] == "done"

    def test_admission_charges_expanded_node_count(self, gateway):
        _, small = gateway
        blob = {"nodes": [
            {"name": "p-{i}", "kind": "probe",
             "spec": {"payload": "{i}", "sleep_ms": 200},
             "foreach": {"i": [0, 1, 2]}}]}
        # Three nodes against a max_active of two: rejected up front,
        # with no partial admission.
        with pytest.raises(ServeError) as err:
            small.submit_flow(blob)
        assert err.value.status == 429
        assert "quota" in str(err.value)
        assert small.jobs() == []


@pytest.mark.tier2
class TestFlowCrashResume:
    """Randomized SIGKILL mid-flow; resume must finish byte-identical."""

    def _flow(self):
        nodes = []
        for index in range(8):
            deps = []
            if index:
                deps = [f"p{index - 1}"] if index % 2 else ["p0"]
            nodes.append({"name": f"p{index}", "kind": "probe",
                          "spec": {"payload": [index, "crash"],
                                   "sleep_ms": 20},
                          "after": deps})
        return {"name": "crash-flow", "nodes": nodes}

    @pytest.mark.parametrize("round_index", range(4))
    def test_randomized_sigkill_resume(self, tmp_path, round_index):
        rng = random.Random(0xF10C + round_index)
        crash_after = rng.randint(2, 40)
        flow = self._flow()
        expected = run_flow_direct(flow, str(tmp_path / "direct"))
        store = str(tmp_path / "store")
        proc, url = _spawn(store, crash_after=crash_after,
                           crash_mode="kill")
        acked = None
        try:
            if url is not None:
                client = ServeClient(url, timeout=10)
                try:
                    acked = client.submit_flow(flow)
                except Exception:
                    acked = None
            try:
                proc.wait(timeout=60)
            except Exception:
                proc.kill()
                proc.wait()
        finally:
            _stop(proc)

        proc, url = _spawn(store)
        try:
            assert url is not None
            client = ServeClient(url, timeout=10)
            jobs = client.jobs()
            # /api/flow is one group commit: the graph is journaled
            # whole or not at all — never partially.
            assert len(jobs) in (0, 8), [job["id"] for job in jobs]
            if acked is not None:
                by_node = {name: job["id"]
                           for name, job in acked["nodes"].items()}
            elif jobs:
                # Acknowledgement was lost but the commit landed: the
                # journal order is the deterministic topological order.
                order = [node.name for node in validate_flow(flow)]
                by_node = dict(zip(order, (job["id"] for job in jobs)))
            else:
                by_node = {name: job["id"] for name, job in
                           client.submit_flow(flow)["nodes"].items()}
            final = client.wait(list(by_node.values()), timeout=120)
            assert all(job["state"] == "done"
                       for job in final.values())
            for name, job_id in by_node.items():
                assert client.result(job_id) == expected[name], name
        finally:
            _stop(proc)
