"""Tests for the AST→natural-language rule set (paper Fig. 5)."""

import pytest

from repro.nl import Ruleset, available_rules, describe_source
from repro.verilog import parse_module

COUNTER = """
module counter (clk, rst, en, count);
  input clk, rst, en;
  output reg [1:0] count;
  always @(posedge clk)
    if (rst)
      count <= 2'd0;
    else if (en)
      count <= count + 2'd1;
endmodule
"""


class TestFig5CaseStudy:
    """The paper's Fig. 5 counter example, sentence by sentence."""

    @pytest.fixture
    def description(self):
        return describe_source(COUNTER)

    def test_module_ports_sentence(self, description):
        assert ("module <counter> has <four> ports, their names are "
                "<clk, rst, en and count>.") in description.text

    def test_input_widths_sentence(self, description):
        text = description.text
        assert "<clk, rst and en> are inputs" in text
        assert "<clk> has <1>-bit width" in text

    def test_output_sentence(self, description):
        assert ("<Output> signal <count> has <2>-bit width in range <1:0>. "
                "It is a <reg> variable.") in description.text

    def test_trigger_block_sentences(self, description):
        text = description.text
        assert "This module has <one> trigger block." in text
        assert ("The sensitive list in <first> trigger block is "
                "<on the positive edge> of <clk>.") in text

    def test_behavior_sentence(self, description):
        text = description.text
        assert "<if> <rst> is 1, then <initialize> <count> to <2'd0>" in text
        assert "<add> <2'd1> to the count" in text

    def test_annotated_has_line_numbers(self, description):
        annotated = description.annotated()
        assert annotated.startswith("Line 2: module <counter>")


class TestOtherConstructs:
    def test_continuous_assign(self):
        text = describe_source("""
module mux (input a, input b, input s, output y);
  assign y = s ? b : a;
endmodule
""").text
        assert "continuously assigns <s ? b : a> to <y>" in text

    def test_negedge_sensitivity(self):
        text = describe_source("""
module m (input clk, input rst_n, output reg q);
  always @(negedge rst_n) q <= 0;
endmodule
""").text
        assert "<on the negative edge> of <rst_n>" in text

    def test_star_sensitivity(self):
        text = describe_source("""
module m (input a, output reg y);
  always @(*) y = ~a;
endmodule
""").text
        assert "combinational" in text

    def test_case_statement(self):
        text = describe_source("""
module dec (input [1:0] s, output reg [3:0] y);
  always @(*)
    case (s)
      2'd0: y = 4'b0001;
      2'd1: y = 4'b0010;
      default: y = 4'b0000;
    endcase
endmodule
""").text
        assert "<case> statement selects on <s>" in text
        assert "when <2'd0> then" in text
        assert "by default" in text

    def test_shift_register_phrase(self):
        text = describe_source("""
module sr (input clk, input d, output reg [7:0] q);
  always @(posedge clk) q <= {q[6:0], d};
endmodule
""").text
        assert "shift <q> left inserting <d>" in text

    def test_memory_decl(self):
        text = describe_source("""
module ram (input clk);
  reg [7:0] mem [0:255];
endmodule
""").text
        assert "memory of <256> entries, each <8>-bit wide" in text

    def test_parameters(self):
        text = describe_source("""
module f #(parameter WIDTH = 8) (input [WIDTH-1:0] a, output [WIDTH-1:0] y);
  localparam ZERO = 0;
  assign y = a;
endmodule
""").text
        assert "The parameter <WIDTH> has default value <8>." in text
        assert "The localparam <ZERO> has default value <0>." in text

    def test_instances(self):
        text = describe_source("""
module top (input a, output y);
  wire m;
  inv u0 (.a(a), .y(m));
endmodule
""").text
        assert "instantiates <inv> as <u0>" in text

    def test_subtract_phrase(self):
        text = describe_source("""
module down (input clk, output reg [3:0] n);
  always @(posedge clk) n <= n - 1;
endmodule
""").text
        assert "<subtract> <1> from the n" in text

    def test_multiple_always_blocks_ordinals(self):
        text = describe_source("""
module two (input clk, input d, output reg q, output reg p);
  always @(posedge clk) q <= d;
  always @(negedge clk) p <= d;
endmodule
""").text
        assert "has <two> trigger blocks" in text
        assert "<first> trigger block" in text
        assert "<second> trigger block" in text


class TestRulesetConfiguration:
    def test_rule_subset_only_emits_selected(self):
        module = parse_module(COUNTER)
        lines = Ruleset(enabled={"module_ports"}).apply(module)
        assert len(lines) == 1
        assert lines[0].rule == "module_ports"

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            Ruleset(enabled={"bogus"})

    def test_available_rules_nonempty(self):
        rules = available_rules()
        assert "module_ports" in rules
        assert "behavior" in rules

    def test_by_rule_filter(self):
        description = describe_source(COUNTER)
        assert description.by_rule("trigger_blocks")
        assert not description.by_rule("instances")

    def test_description_deterministic(self):
        assert describe_source(COUNTER).text == describe_source(COUNTER).text
