"""Property tests for the service scheduler's queue discipline.

Hypothesis drives random interleavings of submit / cancel / claim /
complete against a reference model and asserts the three documented
invariants: priority ordering, per-kind budget caps, and batch
homogeneity (never mixing incompatible fingerprints — e.g. augment
jobs whose ``PipelineConfig.fingerprint()`` values differ).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PipelineConfig
from repro.serve import Batch, Job, Scheduler, compat_key, validate_spec

_SETTINGS = dict(deadline=None, derandomize=True,
                 suppress_health_check=(HealthCheck.too_slow,
                                        HealthCheck.filter_too_much))

KINDS = ("augment", "evaluate", "simulate", "experiment")


def _job(seq: int, kind: str, priority: int, flavor: int) -> Job:
    """A job whose compat key is synthesised from ``flavor``."""
    return Job(id=f"job-{seq:06d}", seq=seq, kind=kind,
               spec={"flavor": flavor}, priority=priority)


def _flavor_compat(job: Job) -> str:
    return f"{job.kind}:{job.spec['flavor']}"


#: One scripted operation: submit(kind, priority, flavor), claim a
#: batch, complete the oldest in-flight batch, or cancel a queued job.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.sampled_from(KINDS),
                  st.integers(min_value=-2, max_value=2),
                  st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("claim"), st.just(None), st.just(0),
                  st.just(0)),
        st.tuples(st.just("complete"), st.just(None), st.just(0),
                  st.just(0)),
        st.tuples(st.just("cancel"), st.just(None), st.just(0),
                  st.integers(min_value=0, max_value=40)),
    ),
    min_size=1, max_size=60)


@settings(max_examples=200, **_SETTINGS)
@given(ops=ops,
       budgets=st.fixed_dictionaries(
           {kind: st.integers(min_value=1, max_value=2)
            for kind in KINDS}),
       batch_limit=st.integers(min_value=1, max_value=4))
def test_scheduler_invariants(ops, budgets, batch_limit):
    scheduler = Scheduler(budgets=budgets, batch_limit=batch_limit,
                          compat_fn=_flavor_compat)
    queued: dict[str, Job] = {}      # reference model
    in_flight: list[Batch] = []
    seq = 0
    for op, kind, priority, flavor in ops:
        if op == "submit":
            seq += 1
            job = _job(seq, kind, priority, flavor)
            scheduler.submit(job)
            queued[job.id] = job
        elif op == "cancel":
            ids = sorted(queued)
            target = ids[flavor % len(ids)] if ids else "job-none"
            assert scheduler.cancel(target) == (target in queued)
            queued.pop(target, None)
        elif op == "complete":
            if in_flight:
                batch = in_flight.pop(0)
                scheduler.finish(batch)
        else:   # claim
            counts = {}
            for batch in in_flight:
                counts[batch.kind] = counts.get(batch.kind, 0) + 1
            eligible = [job for job in queued.values()
                        if counts.get(job.kind, 0)
                        < budgets[job.kind]]
            batch = scheduler.next_batch()
            if not eligible:
                assert batch is None
                continue
            assert batch is not None
            # Priority invariant: the leader is the best-ranked
            # eligible job (highest priority, FIFO within a priority).
            best = min(eligible, key=lambda job: job.sort_key)
            leader = batch.jobs[0]
            assert leader.sort_key == best.sort_key
            # Homogeneity: one kind, one compat key, ranked order,
            # within the batch limit.
            assert len(batch.jobs) <= batch_limit
            assert {job.kind for job in batch.jobs} == {batch.kind}
            assert {_flavor_compat(job) for job in batch.jobs} \
                == {batch.compat}
            keys = [job.sort_key for job in batch.jobs]
            assert keys == sorted(keys)
            # The batch took *every* compatible queued job up to the
            # limit (no compatible job left behind while space remains).
            compatible = [job for job in queued.values()
                          if _flavor_compat(job) == batch.compat]
            assert len(batch.jobs) == min(len(compatible), batch_limit)
            for job in batch.jobs:
                del queued[job.id]
            in_flight.append(batch)
            # Budget invariant: claiming never exceeds any kind's cap.
            counts[batch.kind] = counts.get(batch.kind, 0) + 1
            for batch_kind, count in counts.items():
                assert count <= budgets[batch_kind]
    # Drain: with budgets freed, everything left eventually schedules,
    # exactly once, in priority order.
    for batch in in_flight:
        scheduler.finish(batch)
    seen: list[Job] = []
    while True:
        batch = scheduler.next_batch()
        if batch is None:
            break
        seen.extend(batch.jobs)
        scheduler.finish(batch)
    assert sorted(job.id for job in seen) == sorted(queued)
    assert len(scheduler) == 0


@settings(max_examples=50, **_SETTINGS)
@given(st.data())
def test_batches_never_mix_pipeline_fingerprints(data):
    """Real augment specs: different PipelineConfig fingerprints never
    share a batch; identical ones do."""
    scheduler = Scheduler(batch_limit=16)
    jobs = []
    for seq in range(1, data.draw(st.integers(2, 10)) + 1):
        seed = data.draw(st.integers(0, 2), label=f"seed-{seq}")
        completion_only = data.draw(st.booleans(),
                                    label=f"completion-{seq}")
        spec = validate_spec("augment",
                             {"paths": [f"/corpus/{seq}.v"],
                              "seed": seed,
                              "completion_only": completion_only})
        job = Job(id=f"job-{seq:06d}", seq=seq, kind="augment",
                  spec=spec)
        scheduler.submit(job)
        jobs.append(job)
    expected = {}
    for job in jobs:
        config = PipelineConfig.completion_only() \
            if job.spec["completion_only"] \
            else PipelineConfig(seed=job.spec["seed"])
        expected.setdefault(config.fingerprint(), set()).add(job.id)
        assert compat_key(job).endswith(config.fingerprint())
    # Augment budget is 1: claim+finish until drained; every batch must
    # be exactly one fingerprint group (limit 16 > group sizes).
    groups = []
    while True:
        batch = scheduler.next_batch()
        if batch is None:
            break
        groups.append(set(batch.ids))
        scheduler.finish(batch)
    assert sorted(map(sorted, groups)) == \
        sorted(map(sorted, expected.values()))


def test_budget_defaults_and_unknown_kinds():
    scheduler = Scheduler()
    assert scheduler.budget_for("simulate") == 2
    assert scheduler.budget_for("never-heard-of-it") == 1


def test_cancel_running_job_is_refused():
    scheduler = Scheduler(compat_fn=_flavor_compat)
    job = _job(1, "simulate", 0, 0)
    scheduler.submit(job)
    batch = scheduler.next_batch()
    assert batch.ids == [job.id]
    assert scheduler.cancel(job.id) is False     # already claimed
    scheduler.finish(batch)


def test_zero_budget_pauses_a_kind():
    scheduler = Scheduler(budgets={"simulate": 0},
                          compat_fn=_flavor_compat)
    scheduler.submit(_job(1, "simulate", 5, 0))
    scheduler.submit(_job(2, "augment", 0, 0))
    batch = scheduler.next_batch()
    assert batch is not None and batch.kind == "augment"
    scheduler.finish(batch)
    assert scheduler.next_batch() is None     # simulate stays paused
    scheduler.budgets["simulate"] = 1
    assert scheduler.next_batch().kind == "simulate"
