"""Tests for the augmentation framework core (completion/alignment/records)."""

import json

import pytest

from repro.core import (Dataset, Task, alignment_records, completion_records,
                        make_record, module_level, segment_count,
                        statement_level, token_level,
                        translatable_structures)

COUNTER = """module counter (clk, rst, en, count);
  input clk, rst, en;
  output reg [1:0] count;
  always @(posedge clk)
    if (rst) count <= 2'd0;
    else if (en) count <= count + 2'd1;
endmodule
"""


class TestRecords:
    def test_record_format_matches_paper(self):
        record = make_record(Task.NL_VERILOG, "desc", "module m; endmodule")
        blob = json.loads(record.to_json())
        assert set(blob) == {"instruct", "input", "output"}
        assert blob["instruct"] == \
            "give me the Verilog module of this description. "

    def test_debug_instruction_string(self):
        record = make_record(Task.DEBUG, "wrong", "right")
        assert record.instruct == \
            "give me correct Verilog according to the given wrong Verilog. "

    def test_dataset_task_counts(self):
        dataset = Dataset()
        dataset.add(make_record(Task.NL_VERILOG, "a", "b"))
        dataset.add(make_record(Task.NL_VERILOG, "c", "d"))
        dataset.add(make_record(Task.DEBUG, "e", "f"))
        assert dataset.task_counts()[Task.NL_VERILOG] == 2
        assert len(dataset.by_task(Task.DEBUG)) == 1

    def test_trimming_drops_long_records(self):
        dataset = Dataset()
        dataset.add(make_record(Task.NL_VERILOG, "short", "output"))
        dataset.add(make_record(Task.NL_VERILOG, "x " * 5000, "y"))
        trimmed = dataset.trimmed(max_tokens=100)
        assert len(trimmed) == 1

    def test_jsonl_roundtrip(self, tmp_path):
        dataset = Dataset()
        dataset.add(make_record(Task.NL_VERILOG, "in", "out"))
        path = tmp_path / "data.jsonl"
        dataset.save(str(path))
        loaded = Dataset.load(str(path), Task.NL_VERILOG)
        assert loaded.records[0].input == "in"
        assert loaded.records[0].output == "out"


class TestCompletion:
    def test_module_level_splits_at_header(self):
        records = list(module_level(COUNTER))
        assert len(records) == 1
        record = records[0]
        assert record.input.endswith("(clk, rst, en, count);")
        assert record.output.endswith("endmodule")
        assert "complete the next module" in record.instruct

    def test_statement_level_counts(self):
        records = list(statement_level(COUNTER))
        # statements = semicolon boundaries minus the first header boundary
        assert all("complete the next statement" in r.instruct
                   for r in records)
        assert len(records) >= 3
        # each output is exactly the text between consecutive semicolons
        assert records[0].output.startswith("input")

    def test_token_level_predicts_single_token(self):
        records = list(token_level(COUNTER, max_records=10))
        assert len(records) == 10
        assert records[0].input.endswith("module")
        assert records[0].output == "counter"

    def test_segment_count_formula(self):
        # 1 + j + i from the paper
        text = "module m; wire a; endmodule"
        # tokens: module m ; wire a ; endmodule = 7, semis = 2
        assert segment_count(text) == 1 + 2 + 7

    def test_completion_records_all_levels(self):
        records = list(completion_records(COUNTER, statement_cap=5,
                                          token_cap=5))
        tasks = {record.task for record in records}
        assert tasks == {Task.MODULE_COMPLETION, Task.STATEMENT_COMPLETION,
                         Task.WORD_COMPLETION}

    def test_caps_respected(self):
        records = list(completion_records(COUNTER, statement_cap=2,
                                          token_cap=3))
        statements = [r for r in records
                      if r.task is Task.STATEMENT_COMPLETION]
        tokens = [r for r in records if r.task is Task.WORD_COMPLETION]
        assert len(statements) == 2
        assert len(tokens) == 3


class TestAlignment:
    def test_full_record_pairs_nl_with_verilog(self):
        records = list(alignment_records(COUNTER, include_partial=False))
        assert len(records) == 1
        record = records[0]
        assert record.task is Task.NL_VERILOG
        assert "module <counter> has <four> ports" in record.input
        assert record.output.startswith("module counter")

    def test_partial_records_grow_linearly(self):
        full_only = list(alignment_records(COUNTER, include_partial=False))
        with_partial = list(alignment_records(COUNTER))
        k = translatable_structures(COUNTER)
        assert len(with_partial) == len(full_only) + k

    def test_unparseable_input_yields_nothing(self):
        assert list(alignment_records("module broken (")) == []

    def test_multi_module_source(self):
        text = """module a (input x, output y); assign y = x; endmodule
module b (input p, output q); assign q = ~p; endmodule
"""
        records = list(alignment_records(text, include_partial=False))
        assert len(records) == 2
        names = {json.loads(r.to_json())["input"].split("<")[1].split(">")[0]
                 for r in records}
        assert names == {"a", "b"}
