"""Fault-injection proof of the job service's crash-safety contract.

The daemon is killed (SIGKILL after a complete journal append, SIGKILL
halfway through one — a torn write — and injected ``OSError`` before
one) at chosen/randomized journal points; a restarted daemon must then
complete every acknowledged job with **zero lost or duplicated jobs**
and results **byte-identical** to running the same spec directly (no
store, no daemon, fresh caches).

Tier-1 runs a derandomized sample of crash points; the randomized
sweeps run under ``pytest -m tier2``.
"""

import json
import os
import random
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import (CRASH_AFTER_ENV, CRASH_MODE_ENV, Daemon,
                         JobStore, ServeClient, ServeError, StoreError,
                         execute_job, make_server, validate_spec)
from repro.serve.jobs import DONE, QUEUED, RUNNING, SpecError

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

TB_PASS = """module tb;
  reg [3:0] n;
  initial begin
    n = 4'd3;
    $display("PASS %0d", n);
    $finish;
  end
endmodule
"""

TB_COUNT = """module tb;
  reg clk; reg [7:0] count;
  initial begin clk = 0; count = 0; end
  always #5 clk = ~clk;
  always @(posedge clk) count <= count + 8'd1;
  initial begin
    #42 $display("count=%0d", count);
    $finish;
  end
endmodule
"""

MODULE_A = """module dff(input clk, input d, output reg q);
  always @(posedge clk) q <= d;
endmodule
"""

MODULE_B = """module mux2(input a, input b, input sel, output y);
  assign y = sel ? b : a;
endmodule
"""


def _corpus(root) -> str:
    corpus = os.path.join(str(root), "corpus")
    os.makedirs(corpus, exist_ok=True)
    with open(os.path.join(corpus, "dff.v"), "w",
              encoding="utf-8") as handle:
        handle.write(MODULE_A)
    with open(os.path.join(corpus, "mux2.v"), "w",
              encoding="utf-8") as handle:
        handle.write(MODULE_B)
    return corpus


def _job_specs(corpus: str) -> list[tuple[str, dict]]:
    """The job mix every crash round submits."""
    return [
        ("simulate", {"source": TB_PASS}),
        ("augment", {"paths": [corpus], "seed": 0}),
        ("simulate", {"source": TB_COUNT}),
    ]


def _canonical(blob: dict) -> str:
    return json.dumps(blob, ensure_ascii=False, sort_keys=True)


class _DirectRuns:
    """Reference results, computed directly (no daemon) per unique spec."""

    def __init__(self, root):
        self.root = str(root)
        self._blobs: dict[str, str] = {}
        self._count = 0

    def canonical(self, kind: str, spec: dict) -> str:
        key = _canonical({"kind": kind, "spec": spec})
        if key not in self._blobs:
            self._count += 1
            workdir = os.path.join(self.root, f"direct-{self._count}")
            blob = execute_job(kind, spec, workdir)
            self._blobs[key] = _canonical(blob)
        return self._blobs[key]


# --------------------------------------------------------------------------
# Daemon-subprocess harness
# --------------------------------------------------------------------------

def _spawn(store: str, crash_after: int | None = None,
           crash_mode: str | None = None, gateway: bool = False):
    """Start ``repro serve`` on an ephemeral port; returns (proc, url).

    ``url`` is None if the daemon died before binding (possible when a
    crash point lands inside recovery itself).  ``gateway=True`` runs
    the asyncio front end (same API surface, same store semantics).
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(CRASH_AFTER_ENV, None)
    env.pop(CRASH_MODE_ENV, None)
    if crash_after:
        env[CRASH_AFTER_ENV] = str(crash_after)
        env[CRASH_MODE_ENV] = crash_mode or "kill"
    command = [sys.executable, "-m", "repro", "serve", "--store", store,
               "--port", "0", "--workers", "2"]
    if gateway:
        command.append("--gateway")
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=REPO)
    url = None
    while True:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            url = match.group(1)
            break
    return proc, url


def _stop(proc) -> None:
    if proc.poll() is None:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
    proc.stdout.close()


def _try_submit(client: ServeClient, kind: str, spec: dict):
    """Submit, tolerating a daemon that dies mid-request; returns the
    acknowledged job dict or None."""
    try:
        return client.submit(kind, spec)
    except Exception:
        return None


def _wait_all_done(client: ServeClient, timeout: float = 180.0) -> list:
    """Poll until every job the daemon knows is terminal."""
    deadline = time.monotonic() + timeout
    while True:
        jobs = client.jobs()
        if all(job["state"] in ("done", "failed", "cancelled")
               for job in jobs):
            return jobs
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"jobs not terminal: "
                f"{[(j['id'], j['state']) for j in jobs]}")
        time.sleep(0.05)


def _crash_round(tmp_path, direct: _DirectRuns, crash_after: int,
                 crash_mode: str, gateway: bool = False) -> None:
    """One kill-and-resume cycle; asserts the full contract."""
    store = os.path.join(str(tmp_path), f"store-{crash_mode}-{crash_after}")
    corpus = _corpus(tmp_path)
    proc, url = _spawn(store, crash_after=crash_after,
                       crash_mode=crash_mode, gateway=gateway)
    acked = []
    try:
        if url is not None:
            client = ServeClient(url, timeout=10.0)
            for kind, spec in _job_specs(corpus):
                job = _try_submit(client, kind, spec)
                if job is not None:
                    acked.append(job)
        # The injected crash fires once the Nth append happens — either
        # during the submits above or while workers journal progress.
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            # Crash point beyond this round's journal traffic: the run
            # completed; kill it anyway to exercise resume-from-done.
            proc.kill()
            proc.wait()
        assert proc.poll() is not None
    finally:
        _stop(proc)

    proc, url = _spawn(store, gateway=gateway)
    try:
        assert url is not None, "restarted daemon failed to serve"
        client = ServeClient(url, timeout=10.0)
        jobs = _wait_all_done(client)

        # Zero duplicated jobs: ids are unique, and each acknowledged
        # submission appears exactly once.
        ids = [job["id"] for job in jobs]
        assert len(ids) == len(set(ids))
        known = set(ids)
        for job in acked:
            assert job["id"] in known, f"lost acknowledged {job['id']}"
        # Zero lost jobs, and every result byte-identical to a direct
        # run of the same canonical spec.
        for job in jobs:
            assert job["state"] == "done", (job, jobs)
            result = client.result(job["id"])
            assert _canonical(result) == direct.canonical(job["kind"],
                                                          job["spec"])
    finally:
        _stop(proc)


# --------------------------------------------------------------------------
# Tier-1: daemon parity + a derandomized sample of crash points
# --------------------------------------------------------------------------

class TestDaemonParity:
    def test_results_byte_identical_to_direct_runs(self, tmp_path):
        """No crash: daemon results == direct runs, byte for byte."""
        direct = _DirectRuns(tmp_path / "ref")
        store = str(tmp_path / "store")
        corpus = _corpus(tmp_path)
        daemon = Daemon(store, workers=2, configure_sim_cache=False)
        server = make_server(daemon, port=0)
        daemon.start()
        import threading
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        client = ServeClient(f"http://127.0.0.1:"
                             f"{server.server_address[1]}")
        try:
            specs = _job_specs(corpus) + [
                ("evaluate", {"suite": "scripts",
                              "models": ["ours-13b"], "samples": 2}),
                ("experiment", {"name": "table1"}),
            ]
            submitted = [client.submit(kind, spec)["id"]
                         for kind, spec in specs]
            jobs = client.wait(submitted, timeout=180)
            for job_id, job in jobs.items():
                assert job["state"] == "done", job
                assert _canonical(client.result(job_id)) == \
                    direct.canonical(job["kind"], job["spec"])
            health = client.health()
            assert health["jobs"] == {"done": len(specs)}
            assert health["queue_depths"] == {}
            assert "summary" in health["sim_backend"]
            assert any(name.startswith("aug-")
                       for name in health["caches"])
        finally:
            server.shutdown()
            server.server_close()
            daemon.stop()

    def test_http_error_paths(self, tmp_path):
        daemon = Daemon(str(tmp_path / "store"), workers=1,
                        configure_sim_cache=False)
        server = make_server(daemon, port=0)
        daemon.start()
        import threading
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        client = ServeClient(f"http://127.0.0.1:"
                             f"{server.server_address[1]}")
        try:
            with pytest.raises(ServeError) as err:
                client.status("job-999999")
            assert err.value.status == 404
            with pytest.raises(ServeError) as err:
                client.submit("evaluate", {"suite": "no-such-suite"})
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.submit("frobnicate", {})
            assert err.value.status == 400
            job = client.submit("simulate", {"source": TB_PASS})
            client.wait([job["id"]], timeout=60)
            with pytest.raises(ServeError) as err:
                client.cancel(job["id"])     # terminal: not cancellable
            assert err.value.status == 409
        finally:
            server.shutdown()
            server.server_close()
            daemon.stop()

    def test_cli_default_port_matches_daemon(self):
        from repro.cli import build_parser
        from repro.serve import DEFAULT_PORT
        args = build_parser().parse_args(["serve", "--store", "x"])
        assert args.port == DEFAULT_PORT
        args = build_parser().parse_args(["status"])
        assert args.url.endswith(f":{DEFAULT_PORT}")


class TestKillAndResume:
    """SIGKILL at fixed journal points (tier-1 sample)."""

    @pytest.mark.parametrize("crash_after", [3, 7])
    def test_sigkill_after_append(self, tmp_path, crash_after):
        _crash_round(tmp_path, _DirectRuns(tmp_path / "ref"),
                     crash_after, "kill")

    def test_sigkill_mid_write_torn_line(self, tmp_path):
        _crash_round(tmp_path, _DirectRuns(tmp_path / "ref"), 5, "torn")


@pytest.mark.tier2
class TestKillAndResumeRandomized:
    """The full randomized sweep (``pytest -m tier2``)."""

    POINTS = sorted(random.Random(2024).sample(range(2, 14), 6))

    @pytest.mark.parametrize("crash_after", POINTS)
    @pytest.mark.parametrize("crash_mode", ["kill", "torn"])
    def test_randomized_crash_points(self, tmp_path, crash_after,
                                     crash_mode):
        _crash_round(tmp_path, _DirectRuns(tmp_path / "ref"),
                     crash_after, crash_mode)


# --------------------------------------------------------------------------
# In-process store fault injection (exceptions, not signals)
# --------------------------------------------------------------------------

def _scripted_ops(store: JobStore, acked: list[str]) -> None:
    """A fixed transition script; appends each op's label to ``acked``
    as it is acknowledged (so a mid-script exception loses nothing)."""
    ops = [
        ("submit-1", lambda: store.submit("simulate",
                                          {"source": TB_PASS})),
        ("submit-2", lambda: store.submit("simulate",
                                          {"source": TB_COUNT})),
        ("start-1", lambda: store.mark_running("job-000001")),
        ("done-1", lambda: store.mark_done("job-000001", {"ok": True})),
        ("start-2", lambda: store.mark_running("job-000002")),
        ("fail-2", lambda: store.mark_failed("job-000002", "boom")),
        ("submit-3", lambda: store.submit("simulate",
                                          {"source": TB_PASS})),
        ("cancel-3", lambda: store.mark_cancelled("job-000003")),
    ]
    for label, op in ops:
        op()
        acked.append(label)


#: op label → (job id, state it durably commits)
_OP_STATES = {
    "submit-1": ("job-000001", QUEUED),
    "submit-2": ("job-000002", QUEUED),
    "start-1": ("job-000001", RUNNING),
    "done-1": ("job-000001", "done"),
    "start-2": ("job-000002", RUNNING),
    "fail-2": ("job-000002", "failed"),
    "submit-3": ("job-000003", QUEUED),
    "cancel-3": ("job-000003", "cancelled"),
}


def _check_recovery(root: str, acked: list[str]) -> None:
    """Reopen the store and assert acked ops survived, exactly once."""
    store = JobStore(root)
    expected: dict[str, str] = {}
    for label in acked:
        job_id, state = _OP_STATES[label]
        expected[job_id] = state
    # Interrupted `running` jobs come back queued.
    expected = {job_id: (QUEUED if state == RUNNING else state)
                for job_id, state in expected.items()}
    assert {job_id: job.state for job_id, job in store.jobs.items()} \
        == expected
    if "done-1" in acked:
        assert store.result("job-000001") == {"ok": True}
    store.close()


class TestInjectedWriteFailures:
    """``raise`` mode: the disk fails mid-journal; nothing is lost."""

    @pytest.mark.parametrize("crash_after", [1, 4, 6])
    def test_exception_at_fixed_points(self, tmp_path, crash_after):
        root = str(tmp_path / "store")
        store = JobStore(root, crash_after=crash_after,
                         crash_mode="raise")
        acked: list[str] = []
        try:
            _scripted_ops(store, acked)
        except OSError:
            pass
        # The crashed handle is abandoned (as a dying daemon would).
        store._journal.close()
        _check_recovery(root, acked)

    @pytest.mark.tier2
    @pytest.mark.parametrize("crash_after", range(1, 9))
    def test_exception_at_every_point(self, tmp_path, crash_after):
        self.test_exception_at_fixed_points(tmp_path, crash_after)


class TestStoreRecoveryUnits:
    def test_torn_final_line_is_ignored(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root)
        store.submit("simulate", {"source": TB_PASS})
        store.submit("simulate", {"source": TB_COUNT})
        store._journal.close()
        path = os.path.join(root, "journal.jsonl")
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + '{"n": 3, "event": "sub')
        reopened = JobStore(root)
        assert sorted(reopened.jobs) == ["job-000001", "job-000002"]
        # The torn event's number is reused by the next append.
        reopened.submit("simulate", {"source": TB_PASS})
        assert sorted(reopened.jobs) == \
            ["job-000001", "job-000002", "job-000003"]
        reopened.close()

    # Blobs over INLINE_RESULT_LIMIT take the result-file path; the
    # lost/corrupt-file recovery below only applies to them (small
    # blobs ride inside the fsync'd done event and cannot be lost
    # separately from it).
    BIG_BLOB = {"ok": True, "pad": "x" * (JobStore.INLINE_RESULT_LIMIT)}

    def test_done_without_result_blob_requeues(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root)
        job = store.submit("simulate", {"source": TB_PASS})
        store.mark_running(job.id)
        store.mark_done(job.id, self.BIG_BLOB)
        store._journal.close()
        os.unlink(os.path.join(root, "results", f"{job.id}.json"))
        reopened = JobStore(root)
        assert reopened.jobs[job.id].state == QUEUED
        assert reopened.recovered == [job.id]
        reopened.close()

    def test_corrupt_result_blob_requeues(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root)
        job = store.submit("simulate", {"source": TB_PASS})
        store.mark_running(job.id)
        store.mark_done(job.id, self.BIG_BLOB)
        store._journal.close()
        with open(os.path.join(root, "results", f"{job.id}.json"),
                  "w", encoding="utf-8") as handle:
            handle.write('{"ok": "tampered"}\n')
        reopened = JobStore(root)
        assert reopened.jobs[job.id].state == QUEUED
        reopened.close()

    def test_inline_result_survives_reload_and_compaction(self, tmp_path):
        """Small blobs journal inline with the done event: no result
        file, same result() payload across replay *and* across a clean
        close (snapshot + journal compaction)."""
        root = str(tmp_path / "store")
        store = JobStore(root)
        job = store.submit("simulate", {"source": TB_PASS})
        store.mark_running(job.id)
        store.mark_done(job.id, {"ok": True, "n": 7})
        assert not os.path.exists(
            os.path.join(root, "results", f"{job.id}.json"))
        store._journal.close()      # hard stop: replay from journal
        reopened = JobStore(root)
        assert reopened.jobs[job.id].state == DONE
        assert reopened.result(job.id) == {"ok": True, "n": 7}
        reopened.close()            # compaction: snapshot-only now
        again = JobStore(root)
        assert again.result(job.id) == {"ok": True, "n": 7}
        again.close()

    def test_running_jobs_requeue_on_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root)
        job = store.submit("simulate", {"source": TB_PASS})
        store.mark_running(job.id)
        store._journal.close()
        reopened = JobStore(root)
        assert reopened.jobs[job.id].state == QUEUED
        assert reopened.jobs[job.id].attempts == 1
        reopened.close()

    def test_clean_close_compacts_journal(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root)
        for _ in range(5):
            store.submit("simulate", {"source": TB_PASS})
        store.close()
        with open(os.path.join(root, "journal.jsonl"),
                  encoding="utf-8") as handle:
            assert handle.read() == ""
        reopened = JobStore(root)
        assert len(reopened.jobs) == 5
        assert reopened._next_job_seq == 6
        reopened.close()

    def test_snapshot_plus_suffix_replay(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root)
        ids = [store.submit("simulate", {"source": TB_PASS}).id
               for _ in range(3)]
        store.write_snapshot()
        store.mark_running(ids[0])        # journal suffix, post-snapshot
        store._journal.close()
        reopened = JobStore(root)
        assert reopened.jobs[ids[0]].state == QUEUED   # requeued
        assert reopened.jobs[ids[1]].state == QUEUED
        assert reopened.recovered == [ids[0]]
        reopened.close()

    def test_future_format_version_is_rejected(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root)
        store.submit("simulate", {"source": TB_PASS})
        store.close()
        path = os.path.join(root, "snapshot.json")
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        snapshot["version"] = 99
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle)
        with pytest.raises(StoreError):
            JobStore(root)


class TestSpecValidation:
    def test_specs_are_canonicalised(self):
        spec = validate_spec("evaluate", {"suite": "scripts"})
        assert spec["samples"] == 10 and spec["models"]
        assert spec["levels"] == []
        spec = validate_spec("evaluate", {"suite": "thakur"})
        assert spec["levels"] == ["low", "middle", "high"]
        spec = validate_spec("experiment", {"name": "table1"})
        assert spec == {"name": "table1", "quick": True}

    def test_bad_specs_are_rejected(self):
        with pytest.raises(SpecError):
            validate_spec("augment", {"paths": []})
        with pytest.raises(SpecError):
            validate_spec("evaluate", {"suite": "scripts",
                                       "models": ["no-such-model"]})
        with pytest.raises(SpecError):
            validate_spec("simulate", {"source": "   "})
        with pytest.raises(SpecError):
            validate_spec("experiment", {"name": "table99"})
        with pytest.raises(SpecError):
            validate_spec("frobnicate", {})


class TestHardeningRegressions:
    """Regressions for review findings on the first cut of the store."""

    def test_torn_tail_is_truncated_before_new_appends(self, tmp_path):
        """Appending after a torn tail must not merge into it: events
        acknowledged *after* a torn-tail recovery survive a second
        crash."""
        root = str(tmp_path / "store")
        store = JobStore(root)
        store.submit("simulate", {"source": TB_PASS})
        store._journal.close()
        path = os.path.join(root, "journal.jsonl")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"n": 2, "event": "sub')      # torn, no \n
        second = JobStore(root)
        second.submit("simulate", {"source": TB_COUNT})  # acknowledged
        second._journal.close()                          # crash again
        third = JobStore(root)
        assert sorted(third.jobs) == ["job-000001", "job-000002"]
        third.close()

    def test_live_foreign_owner_is_rejected(self, tmp_path):
        root = str(tmp_path / "store")
        os.makedirs(root, exist_ok=True)
        helper = subprocess.Popen([sys.executable, "-c",
                                   "import time; time.sleep(60)"])
        try:
            with open(os.path.join(root, "lock"), "w",
                      encoding="utf-8") as handle:
                handle.write(f"{helper.pid}\n")
            with pytest.raises(StoreError):
                JobStore(root)
        finally:
            helper.kill()
            helper.wait()
        # Once the owner is dead the lock is stale and stolen.
        store = JobStore(root)
        store.close()

    def test_same_process_reopen_steals_own_stale_lock(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root)
        store.submit("simulate", {"source": TB_PASS})
        store._journal.close()       # abandoned without close()
        reopened = JobStore(root)    # same pid: not a live foreign owner
        assert len(reopened.jobs) == 1
        reopened.close()

    def test_evaluate_levels_are_validated(self):
        with pytest.raises(SpecError):
            validate_spec("evaluate", {"suite": "thakur",
                                       "levels": "low"})
        with pytest.raises(SpecError):
            validate_spec("evaluate", {"suite": "thakur",
                                       "levels": ["bogus"]})
        spec = validate_spec("evaluate", {"suite": "thakur",
                                          "levels": ["middle"]})
        assert spec["levels"] == ["middle"]
