// Golden: register file with write port and two read paths.
module tb;
  reg clk, we; reg [2:0] waddr, raddr; reg [7:0] wdata;
  reg [7:0] regs [0:7];
  wire [7:0] rdata;
  reg [7:0] snapshot;
  integer i;
  assign rdata = regs[raddr];
  always @(posedge clk)
    if (we) regs[waddr] <= wdata;
  initial begin
    clk = 0; we = 1;
    for (i = 0; i < 8; i = i + 1) begin
      waddr = i[2:0]; wdata = 8'd17 * i[7:0] + 8'd5;
      #5 clk = ~clk; #5 clk = ~clk;
    end
    we = 0;
    for (i = 7; i >= 0; i = i - 1) begin
      raddr = i[2:0];
      #2;
      snapshot = rdata;
      $display("regs[%0d]=%d (snap=%h)", i, rdata, snapshot);
    end
    $finish;
  end
endmodule
