// Golden: three-state Mealy controller with case-based transitions.
module fsm (input clk, input rst, input req, input done,
            output reg [1:0] state, output reg grant);
  localparam IDLE = 2'd0, BUSY = 2'd1, COOL = 2'd2;
  always @(posedge clk)
    if (rst) state <= IDLE;
    else
      case (state)
        IDLE: state <= req ? BUSY : IDLE;
        BUSY: state <= done ? COOL : BUSY;
        COOL: state <= IDLE;
        default: state <= IDLE;
      endcase
  always @(*) grant = (state == BUSY);
endmodule

module tb;
  reg clk, rst, req, done; wire [1:0] state; wire grant;
  fsm dut (.clk(clk), .rst(rst), .req(req), .done(done),
           .state(state), .grant(grant));
  task_free_monitor m ();
  initial begin
    clk = 0; rst = 1; req = 0; done = 0;
    repeat (4) #5 clk = ~clk;
    rst = 0;
    $display("t=%0t state=%d grant=%b", $time, state, grant);
    req = 1;
    repeat (2) #5 clk = ~clk;
    $display("t=%0t state=%d grant=%b", $time, state, grant);
    req = 0; done = 1;
    repeat (2) #5 clk = ~clk;
    $display("t=%0t state=%d grant=%b", $time, state, grant);
    done = 0;
    repeat (2) #5 clk = ~clk;
    $display("t=%0t state=%d grant=%b", $time, state, grant);
    repeat (2) #5 clk = ~clk;
    $display("t=%0t state=%d grant=%b", $time, state, grant);
    $finish;
  end
endmodule

module task_free_monitor ();
  // Placeholder module: exercises multi-module elaboration with an
  // empty instance.
endmodule
