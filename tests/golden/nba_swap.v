// Golden: non-blocking semantics — swap, pipelines, delayed NBA.
module tb;
  reg clk; reg [3:0] a, b; reg [3:0] p0, p1, p2;
  reg [7:0] late;
  always @(posedge clk) begin a <= b; b <= a; end
  always @(posedge clk) begin p0 <= a ^ b; p1 <= p0; p2 <= p1; end
  initial begin
    clk = 0; a = 4'h3; b = 4'hC; p0 = 0; p1 = 0; p2 = 0;
    late = 8'd1;
    late <= #13 8'd99;
    repeat (6) begin
      #5 clk = ~clk;
      $display("t=%0t clk=%b a=%h b=%h pipe=%h%h%h late=%d",
               $time, clk, a, b, p0, p1, p2, late);
    end
    $finish;
  end
endmodule
