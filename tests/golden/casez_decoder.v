// Golden: priority decoder via casez wildcards (x/z handling).
module decoder (input [7:0] req, output reg [2:0] grant,
                output reg valid);
  always @(*) begin
    valid = 1'b1;
    casez (req)
      8'b1???????: grant = 3'd7;
      8'b01??????: grant = 3'd6;
      8'b001?????: grant = 3'd5;
      8'b0001????: grant = 3'd4;
      8'b00001???: grant = 3'd3;
      8'b000001??: grant = 3'd2;
      8'b0000001?: grant = 3'd1;
      8'b00000001: grant = 3'd0;
      default: begin grant = 3'd0; valid = 1'b0; end
    endcase
  end
endmodule

module tb;
  reg [7:0] req; wire [2:0] grant; wire valid;
  integer i;
  decoder dut (.req(req), .grant(grant), .valid(valid));
  initial begin
    req = 8'h00; #1;
    $display("req=%b grant=%d valid=%b", req, grant, valid);
    for (i = 0; i < 8; i = i + 1) begin
      req = (8'h01 << i[2:0]) | (8'h01 >> 1);
      #1;
      $display("req=%b grant=%d valid=%b", req, grant, valid);
    end
    req = 8'b0010_1100; #1;
    $display("mixed req=%b grant=%d valid=%b", req, grant, valid);
    $finish;
  end
endmodule
