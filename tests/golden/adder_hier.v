// Golden: structural ripple-carry adder (nested instances).
module full_adder (input a, input b, input cin, output s, output cout);
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | (cin & (a ^ b));
endmodule

module adder4 (input [3:0] a, input [3:0] b, input cin,
               output [3:0] sum, output cout);
  wire [3:0] carry;
  full_adder fa0 (.a(a[0]), .b(b[0]), .cin(cin),      .s(sum[0]), .cout(carry[0]));
  full_adder fa1 (.a(a[1]), .b(b[1]), .cin(carry[0]), .s(sum[1]), .cout(carry[1]));
  full_adder fa2 (.a(a[2]), .b(b[2]), .cin(carry[1]), .s(sum[2]), .cout(carry[2]));
  full_adder fa3 (.a(a[3]), .b(b[3]), .cin(carry[2]), .s(sum[3]), .cout(carry[3]));
  assign cout = carry[3];
endmodule

module adder8 (input [7:0] a, input [7:0] b, output [7:0] sum,
               output cout);
  wire mid;
  adder4 lo (.a(a[3:0]), .b(b[3:0]), .cin(1'b0), .sum(sum[3:0]), .cout(mid));
  adder4 hi (.a(a[7:4]), .b(b[7:4]), .cin(mid),  .sum(sum[7:4]), .cout(cout));
endmodule

module tb;
  reg [7:0] a, b; wire [7:0] sum; wire cout;
  integer i;
  adder8 dut (.a(a), .b(b), .sum(sum), .cout(cout));
  initial begin
    for (i = 0; i < 6; i = i + 1) begin
      a = 8'd37 * i[7:0]; b = 8'd11 + 8'd29 * i[7:0];
      #2;
      $display("%d + %d = %d cout=%b (lo carry=%b)",
               a, b, sum, cout, dut.lo.carry);
    end
    $finish;
  end
endmodule
