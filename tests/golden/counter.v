// Golden: enabled counter with synchronous reset.
module counter (input clk, input rst, input en, output reg [3:0] count);
  always @(posedge clk)
    if (rst) count <= 4'd0;
    else if (en) count <= count + 4'd1;
endmodule

module tb;
  reg clk, rst, en; wire [3:0] count;
  integer i;
  counter dut (.clk(clk), .rst(rst), .en(en), .count(count));
  initial begin
    clk = 0; rst = 1; en = 0;
    repeat (4) #5 clk = ~clk;
    rst = 0; en = 1;
    for (i = 0; i < 40; i = i + 1) begin
      #5 clk = ~clk;
      if (i % 10 == 0) $display("t=%0t count=%d", $time, count);
    end
    en = 0;
    repeat (4) #5 clk = ~clk;
    $display("final count=%d (%b)", count, count);
    $finish;
  end
endmodule
