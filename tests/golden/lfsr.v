// Golden: 16-bit Fibonacci LFSR, 300 cycles with running checksum.
// Long-running on purpose: this design carries most of the cycles/sec
// weight in benchmarks/bench_sim.py.
module lfsr (input clk, input rst, output reg [15:0] q);
  wire fb;
  assign fb = q[15] ^ q[13] ^ q[12] ^ q[10];
  always @(posedge clk)
    if (rst) q <= 16'hACE1;
    else q <= {q[14:0], fb};
endmodule

module tb;
  reg clk, rst; wire [15:0] q;
  reg [31:0] checksum;
  lfsr dut (.clk(clk), .rst(rst), .q(q));
  always @(posedge clk)
    if (rst) checksum <= 32'd0;
    else checksum <= checksum + {16'd0, q};
  initial begin
    clk = 0; rst = 1;
    repeat (4) #5 clk = ~clk;
    rst = 0;
    repeat (600) #5 clk = ~clk;
    $display("q=%h checksum=%h t=%0t", q, checksum, $time);
    $finish;
  end
endmodule
