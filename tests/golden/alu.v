// Golden: combinational ALU swept across all opcodes.
module alu (input [7:0] a, input [7:0] b, input [2:0] op,
            output reg [7:0] y, output reg zero);
  always @(*) begin
    case (op)
      3'd0: y = a + b;
      3'd1: y = a - b;
      3'd2: y = a & b;
      3'd3: y = a | b;
      3'd4: y = a ^ b;
      3'd5: y = ~a;
      3'd6: y = a << 1;
      default: y = a >> 1;
    endcase
    zero = (y == 8'd0);
  end
endmodule

module tb;
  reg [7:0] a, b; reg [2:0] op; wire [7:0] y; wire zero;
  integer i;
  alu dut (.a(a), .b(b), .op(op), .y(y), .zero(zero));
  initial begin
    a = 8'hC3; b = 8'h3C;
    for (i = 0; i < 8; i = i + 1) begin
      op = i[2:0];
      #2;
      $display("op=%d y=%h zero=%b", op, y, zero);
    end
    a = 8'h00; b = 8'h00; op = 3'd0; #2;
    $display("zero case: y=%h zero=%b", y, zero);
    $finish;
  end
endmodule
