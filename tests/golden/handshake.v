// Golden: two processes coordinating through wait() and event controls.
module tb;
  reg clk, valid, ready;
  reg [7:0] data, received;
  reg [7:0] total;
  integer sent;
  always #4 clk = ~clk;
  initial begin
    clk = 0; valid = 0; ready = 0; data = 8'd10;
    total = 0; sent = 0; received = 0;
    #3;
    repeat (5) begin
      valid = 1;
      wait (ready);
      @(posedge clk);
      data = data + 8'd10;
      valid = 0;
      sent = sent + 1;
      wait (!ready);
    end
    $display("sent=%0d last_data=%d total=%d t=%0t",
             sent, data, total, $time);
    $finish;
  end
  initial begin
    forever begin
      wait (valid);
      @(posedge clk);
      received = data;
      total = total + received;
      ready = 1;
      @(negedge clk);
      ready = 0;
    end
  end
endmodule
