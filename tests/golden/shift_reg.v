// Golden: serial-in shift register with taps.
module shift_reg (input clk, input rst, input d, output reg [7:0] q);
  always @(posedge clk)
    if (rst) q <= 8'h00;
    else q <= {q[6:0], d};
endmodule

module tb;
  reg clk, rst, d; wire [7:0] q;
  reg [15:0] pattern;
  integer i;
  shift_reg dut (.clk(clk), .rst(rst), .d(d), .q(q));
  initial begin
    clk = 0; rst = 1; d = 0; pattern = 16'b1011_0010_1110_0101;
    repeat (4) #5 clk = ~clk;
    rst = 0;
    for (i = 15; i >= 0; i = i - 1) begin
      d = pattern[i];
      #5 clk = ~clk;
      #5 clk = ~clk;
      if (i % 4 == 0) $display("i=%0d q=%b taps=%b", i, q, {q[7], q[3], q[0]});
    end
    $display("final q=%h", q);
    $finish;
  end
endmodule
