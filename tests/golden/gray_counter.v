// Golden: gray-code counter using a conversion function, 200 cycles.
module tb;
  reg clk, rst;
  reg [7:0] bin;
  wire [7:0] gray;
  reg [15:0] transitions;
  function [7:0] to_gray;
    input [7:0] value;
    begin
      to_gray = value ^ (value >> 1);
    end
  endfunction
  assign gray = to_gray(bin);
  always @(posedge clk)
    if (rst) begin bin <= 8'd0; transitions <= 16'd0; end
    else begin
      bin <= bin + 8'd1;
      transitions <= transitions + {15'd0, ^(gray ^ to_gray(bin + 8'd1))};
    end
  initial begin
    clk = 0; rst = 1;
    repeat (4) #5 clk = ~clk;
    rst = 0;
    repeat (400) #5 clk = ~clk;
    $display("bin=%d gray=%b transitions=%d", bin, gray, transitions);
    $finish;
  end
endmodule
