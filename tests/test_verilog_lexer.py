"""Unit tests for the Verilog lexer."""

import pytest

from repro.verilog import Lexer, TokenKind, VerilogLexError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_and_identifiers(self):
        toks = tokenize("module counter endmodule foo")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.ID
        assert toks[2].kind is TokenKind.KEYWORD
        assert toks[3].kind is TokenKind.ID

    def test_identifier_with_dollar_and_digits(self):
        assert values("a1_$x") == ["a1_$x"]

    def test_eof_token_always_present(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_escaped_identifier(self):
        toks = tokenize(r"\bus+index other")
        assert toks[0].kind is TokenKind.ID
        assert toks[0].value == "bus+index"
        assert toks[1].value == "other"

    def test_system_identifier(self):
        toks = tokenize("$display $finish")
        assert all(t.kind is TokenKind.SYSTEM_ID for t in toks[:-1])
        assert values("$display $finish") == ["$display", "$finish"]


class TestNumbers:
    @pytest.mark.parametrize("text", [
        "42", "8'hFF", "4'b10x1", "'b1010", "12'o777", "16'd255",
        "8'sb1010_1010", "3 'd7",
    ])
    def test_number_forms_single_token(self, text):
        toks = tokenize(text)
        assert toks[0].kind is TokenKind.NUMBER
        assert len(toks) == 2  # number + EOF

    def test_underscores_allowed(self):
        assert values("32'h dead_beef")[0] == "32'h dead_beef"

    def test_real_literal(self):
        toks = tokenize("3.14")
        assert toks[0].kind is TokenKind.NUMBER
        assert toks[0].value == "3.14"

    def test_number_then_colon_not_base(self):
        # "2:0" in a range must not eat ':' as part of the number.
        assert values("[2:0]") == ["[", "2", ":", "0", "]"]

    def test_based_no_digits_raises(self):
        with pytest.raises(VerilogLexError):
            tokenize("8'h ;")


class TestOperators:
    def test_multichar_operators_greedy(self):
        assert values("<= === <<< ~^ +: ->") == \
            ["<=", "===", "<<<", "~^", "+:", "->"]

    def test_shift_vs_relational(self):
        assert values("a<<2") == ["a", "<<", "2"]
        assert values("a<2") == ["a", "<", "2"]

    def test_unknown_character_raises(self):
        with pytest.raises(VerilogLexError):
            tokenize("reg \x01 x;")


class TestTrivia:
    def test_line_comment_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(VerilogLexError):
            tokenize("/* never ends")

    def test_directive_skipped(self):
        assert values("`timescale 1ns/1ps\nmodule") == ["module"]

    def test_string_literal(self):
        toks = tokenize('"hello %d"')
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].value == "hello %d"

    def test_unterminated_string_raises(self):
        with pytest.raises(VerilogLexError):
            tokenize('"abc')


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("module m;\n  wire x;")
        wire = [t for t in toks if t.value == "wire"][0]
        assert wire.line == 2
        assert wire.col == 3

    def test_position_after_block_comment(self):
        toks = tokenize("/* a\nb */ module")
        assert toks[0].line == 2
