"""Differential fuzzing: the compiled backend vs the interpreter.

A hypothesis generator emits random — but race-free — RTL modules from
the simulator's supported subset: parameterized widths, mixes of
continuous assigns / clocked ``always`` (non-blocking) / combinational
``always @(*)`` (blocking), case/if nests, memories, functions, 4-state
literals and a testbench process with delays and ``$display``.

For every generated module both backends must produce **identical**
final signal states, ``$display`` transcripts, simulation times and
finish flags.  The compiled backend must genuinely compile (a fallback
would make the comparison vacuous), which also pins the lowerer's
coverage of the generated subset.

The tier-1 run is a quick derandomized smoke pass; the deep pass runs
under ``-m slow``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import (Simulator, Value, compile_design, elaborate,
                       generate_module, load_generated)
from repro.verilog import parse

# ---------------------------------------------------------------------------
# Random-RTL generator
# ---------------------------------------------------------------------------

_FMT = ("%d", "%h", "%b", "%0d")
_BIN_OPS = ("+", "-", "*", "&", "|", "^", "==", "!=", "<", "<=", ">",
            ">=", "&&", "||")
_UN_OPS = ("~", "-", "!", "&", "|", "^")


@st.composite
def _literal(draw, width: int) -> str:
    kind = draw(st.integers(0, 3))
    value = draw(st.integers(0, (1 << width) - 1))
    if kind == 0:
        return str(value)                       # unsized decimal
    if kind == 1:
        return f"{width}'d{value}"
    if kind == 2:
        bits = format(value, f"0{width}b")
        if draw(st.booleans()):                 # sprinkle 4-state digits
            pos = draw(st.integers(0, width - 1))
            bits = bits[:pos] + draw(st.sampled_from("xz")) \
                + bits[pos + 1:]
        return f"{width}'b{bits}"
    return f"{width}'h{value:x}"


@st.composite
def _expr(draw, pool: list[tuple[str, int]], depth: int,
          must_read: bool = False) -> str:
    """A parenthesised expression over ``pool`` signals and literals."""
    if depth <= 0 or draw(st.integers(0, 3)) == 0:
        # leaf
        if pool and (must_read or draw(st.booleans())):
            name, width = draw(st.sampled_from(pool))
            form = draw(st.integers(0, 2))
            if form == 1 and width > 1:
                bit = draw(st.integers(0, width - 1))
                return f"{name}[{bit}]"
            if form == 2 and width > 2:
                hi = draw(st.integers(1, width - 1))
                lo = draw(st.integers(0, hi))
                return f"{name}[{hi}:{lo}]"
            return name
        return draw(_literal(draw(st.integers(1, 8))))
    shape = draw(st.integers(0, 6))
    if shape == 0:
        op = draw(st.sampled_from(_UN_OPS))
        operand = draw(_expr(pool, depth - 1, must_read=must_read))
        return f"({op} {operand})"
    if shape == 1:
        cond = draw(_expr(pool, depth - 1, must_read=must_read))
        a = draw(_expr(pool, depth - 1))
        b = draw(_expr(pool, depth - 1))
        return f"({cond} ? {a} : {b})"
    if shape == 2:
        parts = [draw(_expr(pool, depth - 1, must_read=must_read))]
        for _ in range(draw(st.integers(1, 2))):
            parts.append(draw(_expr(pool, depth - 1)))
        return "{" + ", ".join(parts) + "}"
    if shape == 3:
        count = draw(st.integers(1, 3))
        inner = draw(_expr(pool, depth - 1, must_read=must_read))
        return f"{{{count}{{{inner}}}}}"
    if shape == 4:
        operand = draw(_expr(pool, depth - 1, must_read=must_read))
        op = draw(st.sampled_from(("<<", ">>", ">>>")))
        return f"({operand} {op} {draw(st.integers(0, 7))})"
    if shape == 5 and draw(st.booleans()):
        a = draw(_expr(pool, depth - 1, must_read=must_read))
        b = draw(_expr(pool, depth - 1))
        op = draw(st.sampled_from(("/", "%")))
        return f"({a} {op} {b})"
    op = draw(st.sampled_from(_BIN_OPS))
    a = draw(_expr(pool, depth - 1, must_read=must_read))
    b = draw(_expr(pool, depth - 1))
    return f"({a} {op} {b})"


@st.composite
def _nba_stmt(draw, targets: list[tuple[str, int]],
              pool: list[tuple[str, int]], depth: int) -> str:
    """One non-blocking statement (possibly an if/case nest)."""
    shape = draw(st.integers(0, 3)) if depth > 0 else 0
    if shape == 0:
        name, width = draw(st.sampled_from(targets))
        form = draw(st.integers(0, 2))
        rhs = draw(_expr(pool, 2))
        if form == 1 and width > 1:
            bit = draw(st.integers(0, width - 1))
            return f"{name}[{bit}] <= {rhs};"
        if form == 2 and width > 2:
            hi = draw(st.integers(1, width - 1))
            lo = draw(st.integers(0, hi))
            return f"{name}[{hi}:{lo}] <= {rhs};"
        return f"{name} <= {rhs};"
    if shape == 1:
        cond = draw(_expr(pool, 1, must_read=True))
        a = draw(_nba_stmt(targets, pool, depth - 1))
        b = draw(_nba_stmt(targets, pool, depth - 1))
        return f"if ({cond}) begin {a} end else begin {b} end"
    if shape == 2:
        kind = draw(st.sampled_from(("case", "casez")))
        sel_name, sel_width = draw(st.sampled_from(pool))
        width = min(sel_width, 3)
        arms = []
        for label in range(draw(st.integers(1, 3))):
            arm = draw(_nba_stmt(targets, pool, depth - 1))
            arms.append(f"{width}'d{label}: begin {arm} end")
        arms.append(f"default: begin "
                    f"{draw(_nba_stmt(targets, pool, depth - 1))} end")
        return (f"{kind} ({sel_name}[{width - 1}:0]) "
                + " ".join(arms) + " endcase")
    first = draw(_nba_stmt(targets, pool, depth - 1))
    second = draw(_nba_stmt(targets, pool, depth - 1))
    return f"begin {first} {second} end"


@st.composite
def _blocking_stmt(draw, targets: list[tuple[str, int]],
                   pool: list[tuple[str, int]], depth: int) -> str:
    """One blocking statement for a combinational always block."""
    shape = draw(st.integers(0, 2)) if depth > 0 else 0
    if shape == 0:
        name, _width = draw(st.sampled_from(targets))
        rhs = draw(_expr(pool, 2, must_read=True))
        return f"{name} = {rhs};"
    if shape == 1:
        cond = draw(_expr(pool, 1, must_read=True))
        a = draw(_blocking_stmt(targets, pool, depth - 1))
        b = draw(_blocking_stmt(targets, pool, depth - 1))
        return f"if ({cond}) begin {a} end else begin {b} end"
    first = draw(_blocking_stmt(targets, pool, depth - 1))
    second = draw(_blocking_stmt(targets, pool, depth - 1))
    return f"begin {first} {second} end"


@st.composite
def rtl_module(draw) -> str:
    """A complete self-finishing testbench module.

    Race-free by construction: every signal is written by exactly one
    process, and combinational signals (nets + ``@(*)`` regs) read only
    strictly lower-ranked combinational signals, so no zero-delay loops
    can form.
    """
    lines = ["module tb;", "  reg clk, rst;"]
    drv = [(f"drv{i}", draw(st.integers(1, 10)))
           for i in range(draw(st.integers(1, 3)))]
    seq = [(f"seq{i}", draw(st.integers(1, 10)))
           for i in range(draw(st.integers(1, 4)))]
    n_comb = draw(st.integers(0, 2))
    n_net = draw(st.integers(0, 3))
    comb = [(f"comb{i}", draw(st.integers(1, 10)))
            for i in range(n_comb)]
    net = [(f"net{i}", draw(st.integers(1, 10))) for i in range(n_net)]
    use_mem = draw(st.booleans())
    use_fn = draw(st.booleans())

    for name, width in drv + seq + comb:
        rng = f"[{width - 1}:0] " if width > 1 else ""
        lines.append(f"  reg {rng}{name};")
    for name, width in net:
        rng = f"[{width - 1}:0] " if width > 1 else ""
        lines.append(f"  wire {rng}{name};")
    if use_mem:
        lines.append("  reg [7:0] mem [0:7];")
        lines.append("  wire [7:0] memout;")

    if use_fn:
        lines.append("  function [7:0] mixer;")
        lines.append("    input [7:0] x;")
        lines.append("    begin mixer = (x ^ (x >> 2)) + 8'd3; end")
        lines.append("  endfunction")

    state_pool = drv + seq           # stable within a delta cycle
    # Combinational rank order: net0 < net1 < … < comb0 < comb1 < …
    comb_ranked = net + comb
    for rank, (name, width) in enumerate(comb_ranked):
        pool = state_pool + comb_ranked[:rank]
        if name.startswith("net"):
            rhs = draw(_expr(pool, 2, must_read=True))
            if use_fn and draw(st.integers(0, 3)) == 0:
                rhs = f"(mixer({rhs}) ^ {rhs})"
            lines.append(f"  assign {name} = {rhs};")
    if use_mem:
        idx = draw(_expr(state_pool, 1, must_read=True))
        lines.append(f"  assign memout = mem[({idx}) & 3'h7];")

    full_pool = state_pool + comb_ranked + ([("memout", 8)] if use_mem
                                            else [])

    # Clocked always block(s): each sequential reg belongs to one block.
    n_blocks = draw(st.integers(1, min(2, len(seq))))
    groups = [seq[i::n_blocks] for i in range(n_blocks)]
    for group in groups:
        if not group:
            continue
        resets = " ".join(
            f"{name} <= {draw(_literal(width))};"
            for name, width in group)
        body = " ".join(
            draw(_nba_stmt(group, full_pool, 2))
            for _ in range(draw(st.integers(1, 3))))
        lines.append("  always @(posedge clk)")
        lines.append(f"    if (rst) begin {resets} end")
        lines.append(f"    else begin {body} end")
    if use_mem:
        widx = draw(_expr(state_pool, 1, must_read=True))
        wdata = draw(_expr(full_pool, 2))
        lines.append("  always @(posedge clk)")
        lines.append(f"    if (!rst) mem[({widx}) & 3'h7] <= {wdata};")

    # Combinational always blocks (blocking assigns).
    for rank_base, (name, width) in enumerate(comb):
        rank = len(net) + rank_base
        pool = state_pool + comb_ranked[:rank]
        body = draw(_blocking_stmt([(name, width)], pool, 2))
        lines.append(f"  always @(*) begin {body} end")

    # The driving process: reset, clock toggles, drive updates, report.
    lines.append("  initial begin")
    lines.append("    clk = 0; rst = 1;")
    for name, width in drv:
        lines.append(f"    {name} = {draw(_literal(width))};")
    lines.append("    repeat (4) #5 clk = ~clk;")
    lines.append("    rst = 0;")
    for _ in range(draw(st.integers(1, 3))):
        toggles = draw(st.integers(2, 8))
        lines.append(f"    repeat ({toggles}) #5 clk = ~clk;")
        if drv and draw(st.booleans()):
            name, width = draw(st.sampled_from(drv))
            lines.append(f"    {name} = {draw(_literal(width))};")
    for name, _width in full_pool:
        fmt = draw(st.sampled_from(_FMT))
        lines.append(f'    $display("{name}={fmt} @%0t", {name}, '
                     f'$time);')
    lines.append('    $display("done t=%0d", $time);')
    lines.append("    $finish;")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Differential check
# ---------------------------------------------------------------------------

def run_interp(text: str):
    design = elaborate(parse(text), "tb")
    sim = Simulator(design)
    sim.run(max_time=100_000)
    return sim


def run_compiled(text: str):
    design = elaborate(parse(text), "tb")
    compiled = compile_design(design)      # CompileUnsupported = failure:
    sim = compiled.simulator()             # a fallback would be vacuous
    sim.run(max_time=100_000)
    return sim


def run_codegen(text: str):
    design = elaborate(parse(text), "tb")
    source = generate_module(design, "fuzz")   # CodegenUnsupported =
    sim = load_generated(source).simulator()   # failure, like compiled
    sim.run(max_time=100_000)
    return sim


def _assert_matches_interp(interp, comp, text: str) -> None:
    assert interp.display_lines == comp.display_lines, text
    assert interp.time == comp.time, text
    assert interp.finished == comp.finished, text
    for name, signal in interp.design.signals.items():
        if signal.is_array:
            continue
        assert signal.value == comp.value_of(name), \
            f"{name}: {signal.value} != {comp.value_of(name)}\n{text}"
    # Memory contents must match element-for-element.
    for name, signal in interp.design.signals.items():
        if not signal.is_array:
            continue
        comp_slot = comp.compiled.slots[name]
        comp_array = comp.arrays[comp_slot]
        indices = set(signal.array) | set(comp_array)
        for index in indices:
            assert signal.element(index) == comp_array.get(
                index, Value.unknown(signal.width)), \
                f"{name}[{index}]\n{text}"


def assert_equivalent(text: str) -> None:
    interp = run_interp(text)
    _assert_matches_interp(interp, run_compiled(text), text)
    _assert_matches_interp(interp, run_codegen(text), text)


_COMMON = dict(deadline=None, derandomize=True,
               suppress_health_check=(HealthCheck.too_slow,
                                      HealthCheck.data_too_large,
                                      HealthCheck.filter_too_much))


@settings(max_examples=25, **_COMMON)
@given(rtl_module())
def test_differential_smoke(source):
    """Tier-1: a quick, deterministic sample of the fuzz space."""
    assert_equivalent(source)


@pytest.mark.slow
@settings(max_examples=400, **_COMMON)
@given(rtl_module())
def test_differential_deep(source):
    """The full fuzz pass (run with ``pytest -m slow``)."""
    assert_equivalent(source)


def test_differential_fixed_corners():
    """Hand-picked designs covering scheduler-sensitive shapes."""
    designs = [
        # NBA swap between two clocked blocks sharing a clock.
        """
module tb;
  reg clk; reg [3:0] a, b;
  always @(posedge clk) a <= b;
  always @(posedge clk) b <= a;
  initial begin
    clk = 0; a = 4'd1; b = 4'd2;
    repeat (5) #5 clk = ~clk;
    $display("a=%d b=%d", a, b);
    $finish;
  end
endmodule
""",
        # Chained combinational assigns with an x-producing divide.
        """
module tb;
  reg [3:0] d; wire [3:0] q0, q1, q2;
  assign q0 = d + 4'd3;
  assign q1 = q0 / (d - 4'd5);
  assign q2 = q1 ^ q0;
  initial begin
    d = 4'd5; #1;
    $display("%b %b %b", q0, q1, q2);
    d = 4'd9; #1;
    $display("%b %b %b", q0, q1, q2);
    $finish;
  end
endmodule
""",
        # Mid-body event controls and waits in one process.
        """
module tb;
  reg clk, go; reg [7:0] n;
  always #3 clk = ~clk;
  initial begin
    clk = 0; go = 0; n = 0;
    #10 go = 1;
  end
  initial begin
    wait (go);
    @(posedge clk) n = n + 8'd1;
    @(negedge clk) n = n + 8'd10;
    $display("n=%d t=%0t", n, $time);
    $finish;
  end
endmodule
""",
        # Intra-assignment delays, delayed NBA, $random agreement.
        """
module tb;
  reg [7:0] a, b; reg [31:0] r1, r2;
  initial begin
    a = 8'd5;
    b = #4 a;
    a = 8'd7;
    a <= #10 8'd99;
    r1 = $random;
    r2 = $random;
    #20;
    $display("a=%d b=%d r=%d %d", a, b, r1 & 32'hFF, r2 & 32'hFF);
    $finish;
  end
endmodule
""",
        # Hierarchy, parameter overrides, hierarchical probes.
        """
module ff #(parameter W = 2) (input clk, input [W-1:0] d,
                              output reg [W-1:0] q);
  always @(posedge clk) q <= d;
endmodule
module tb;
  reg clk; reg [3:0] d; wire [3:0] q;
  ff #(.W(4)) dut (.clk(clk), .d(d), .q(q));
  initial begin
    clk = 0; d = 4'hC;
    #1 clk = 1; #1 clk = 0; d = dut.q ^ 4'h3;
    #1 clk = 1; #1;
    $display("q=%h inner=%h", q, dut.q);
    $finish;
  end
endmodule
""",
        # Concat lvalues, indexed part selects (read + write), casex.
        """
module tb;
  reg [3:0] hi, lo; reg [7:0] v; integer i;
  reg [1:0] tag;
  initial begin
    {hi, lo} = 8'hA5;
    v = 8'h0F;
    i = 4;
    v[i +: 4] = hi;
    v[3 -: 2] = lo[1:0];
    casex (v[3:0])
      4'b1xx0: tag = 2'd1;
      4'b01x1: tag = 2'd2;
      default: tag = 2'd3;
    endcase
    $display("hi=%h lo=%h v=%b tag=%d", hi, lo, v, tag);
    $finish;
  end
endmodule
""",
        # Signed countdown loops, reduction ops, $signed compare.
        """
module tb;
  integer i; reg [7:0] acc; reg [4:0] r;
  initial begin
    acc = 0;
    for (i = 4; i >= 0; i = i - 1) acc = acc + 1;
    r = 5'b10110;
    $display("acc=%d and=%b or=%b xor=%b", acc, &r, |r, ^r);
    if ($signed(4'b1111) < 0) $display("signed ok");
    $finish;
  end
endmodule
""",
        # $display through a function with module-signal side reads.
        """
module tb;
  reg [7:0] x; reg [7:0] seen;
  function [7:0] probe;
    input [7:0] k;
    begin
      probe = k + x;
    end
  endfunction
  initial begin
    x = 8'd7;
    seen = probe(8'd35);
    $display("seen=%d probe=%d", seen, probe(8'd1));
    $finish;
  end
endmodule
""",
    ]
    for text in designs:
        assert_equivalent(text)
