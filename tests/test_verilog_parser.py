"""Unit tests for the Verilog parser and unparser round-trip."""

import pytest

from repro.verilog import VerilogSyntaxError, ast, parse, parse_module, unparse

COUNTER = """
module counter (clk, rst, en, count);
  input clk, rst, en;
  output reg [1:0] count;
  always @(posedge clk)
    if (rst)
      count <= 2'd0;
    else if (en)
      count <= count + 2'd1;
endmodule
"""

ANSI_ADDER = """
module adder #(parameter WIDTH = 8) (
  input  [WIDTH-1:0] a,
  input  [WIDTH-1:0] b,
  input              cin,
  output [WIDTH-1:0] sum,
  output             cout
);
  assign {cout, sum} = a + b + cin;
endmodule
"""


class TestModuleHeaders:
    def test_non_ansi_ports(self):
        mod = parse_module(COUNTER)
        assert mod.name == "counter"
        assert [p.name for p in mod.ports] == ["clk", "rst", "en", "count"]
        assert all(p.decl is None for p in mod.ports)

    def test_ansi_ports(self):
        mod = parse_module(ANSI_ADDER)
        assert [p.name for p in mod.ports] == ["a", "b", "cin", "sum", "cout"]
        assert mod.ports[0].decl.direction == "input"
        assert mod.ports[3].decl.direction == "output"

    def test_header_parameters(self):
        mod = parse_module(ANSI_ADDER)
        assert len(mod.params) == 1
        assert mod.params[0].assignments[0].name == "WIDTH"

    def test_empty_port_list(self):
        mod = parse_module("module tb (); endmodule")
        assert mod.ports == []

    def test_no_port_list(self):
        mod = parse_module("module tb; endmodule")
        assert mod.ports == []

    def test_multiple_modules(self):
        src = parse("module a; endmodule module b; endmodule")
        assert [m.name for m in src.modules] == ["a", "b"]
        assert src.module("b").name == "b"
        with pytest.raises(KeyError):
            src.module("c")


class TestDeclarations:
    def test_output_reg_with_range(self):
        mod = parse_module(COUNTER)
        decls = mod.items_of_type(ast.PortDecl)
        out = [d for d in decls if d.direction == "output"][0]
        assert out.net_kind == "reg"
        assert unparse(out.range.msb) == "1"

    def test_wire_with_init(self):
        mod = parse_module("module m; wire w = 1'b0; endmodule")
        decl = mod.items_of_type(ast.Decl)[0]
        assert decl.kind == "wire"
        assert decl.declarators[0].init is not None

    def test_memory_declaration(self):
        mod = parse_module("module m; reg [7:0] mem [0:255]; endmodule")
        decl = mod.items_of_type(ast.Decl)[0]
        assert decl.declarators[0].array is not None
        assert unparse(decl.declarators[0].array.lsb) == "255"

    def test_signed_reg(self):
        mod = parse_module("module m; reg signed [7:0] s; endmodule")
        assert mod.items_of_type(ast.Decl)[0].signed

    def test_localparam(self):
        mod = parse_module("module m; localparam N = 4, M = 2; endmodule")
        param = mod.items_of_type(ast.ParamDecl)[0]
        assert param.kind == "localparam"
        assert [a.name for a in param.assignments] == ["N", "M"]

    def test_integer_decl(self):
        mod = parse_module("module m; integer i; endmodule")
        assert mod.items_of_type(ast.Decl)[0].kind == "integer"


class TestBehavioral:
    def test_always_posedge(self):
        mod = parse_module(COUNTER)
        always = mod.items_of_type(ast.Always)[0]
        assert always.senslist.items[0].edge == "posedge"
        assert isinstance(always.body, ast.IfStmt)

    def test_always_star(self):
        mod = parse_module("module m; reg y; always @(*) y = 1; endmodule")
        assert mod.items_of_type(ast.Always)[0].senslist.is_star

    def test_always_star_bare(self):
        mod = parse_module("module m; reg y; always @* y = 1; endmodule")
        assert mod.items_of_type(ast.Always)[0].senslist.is_star

    def test_sensitivity_or_and_comma(self):
        mod = parse_module(
            "module m; reg y; always @(a or b, c) y = a; endmodule")
        sens = mod.items_of_type(ast.Always)[0].senslist
        assert len(sens.items) == 3

    def test_always_without_event_control(self):
        mod = parse_module("module m; reg clk; always #5 clk = ~clk; "
                           "endmodule")
        always = mod.items_of_type(ast.Always)[0]
        assert always.senslist is None
        assert isinstance(always.body, ast.DelayStmt)

    def test_nonblocking_vs_blocking(self):
        mod = parse_module("""
module m; reg a, b;
always @(posedge c) begin a <= 1; b = 0; end
endmodule""")
        block = mod.items_of_type(ast.Always)[0].body
        assert isinstance(block.stmts[0], ast.NonBlockingAssign)
        assert isinstance(block.stmts[1], ast.BlockingAssign)

    def test_case_statement(self):
        mod = parse_module("""
module m; reg [1:0] y; always @(*) case (s)
  2'b00: y = 0;
  2'b01, 2'b10: y = 1;
  default: y = 2;
endcase endmodule""")
        case = mod.items_of_type(ast.Always)[0].body
        assert case.kind == "case"
        assert len(case.items) == 3
        assert len(case.items[1].exprs) == 2
        assert case.items[2].exprs == []

    def test_for_loop(self):
        mod = parse_module("""
module m; integer i; reg [7:0] a;
initial for (i = 0; i < 8; i = i + 1) a[i] = 0;
endmodule""")
        loop = mod.items_of_type(ast.Initial)[0].body
        assert isinstance(loop, ast.ForStmt)

    def test_named_block_and_disable(self):
        mod = parse_module("""
module m; initial begin : blk disable blk; end endmodule""")
        block = mod.items_of_type(ast.Initial)[0].body
        assert block.name == "blk"
        assert isinstance(block.stmts[0], ast.DisableStmt)

    def test_initial_with_delays_and_tasks(self):
        mod = parse_module("""
module tb; reg clk;
initial begin
  clk = 0;
  #10 clk = 1;
  $display("t=%0d", $time);
  #5;
  $finish;
end
endmodule""")
        block = mod.items_of_type(ast.Initial)[0].body
        assert isinstance(block.stmts[1], ast.DelayStmt)
        assert isinstance(block.stmts[2], ast.SysTaskCall)
        assert block.stmts[2].name == "$display"

    def test_wait_and_event_control_stmt(self):
        mod = parse_module("""
module tb; initial begin wait (done); @(posedge clk); end endmodule""")
        block = mod.items_of_type(ast.Initial)[0].body
        assert isinstance(block.stmts[0], ast.WaitStmt)
        assert isinstance(block.stmts[1], ast.EventControlStmt)


class TestExpressions:
    def _rhs(self, expr_text):
        mod = parse_module(f"module m; wire y; assign y = {expr_text}; "
                           "endmodule")
        return mod.items_of_type(ast.ContinuousAssign)[0].assignments[0][1]

    def test_precedence_add_mul(self):
        expr = self._rhs("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_logical(self):
        expr = self._rhs("a && b || c")
        assert expr.op == "||"

    def test_ternary_nesting(self):
        expr = self._rhs("s ? a : t ? b : c")
        assert isinstance(expr.if_false, ast.Ternary)

    def test_concat_and_replication(self):
        expr = self._rhs("{a, 2'b01, {4{b}}}")
        assert isinstance(expr, ast.Concat)
        assert isinstance(expr.parts[2], ast.Repl)

    def test_part_select_modes(self):
        assert isinstance(self._rhs("v[7:4]"), ast.PartSelect)
        assert self._rhs("v[i +: 4]").mode == "+:"
        assert self._rhs("v[i -: 4]").mode == "-:"

    def test_reduction_unary(self):
        expr = self._rhs("&bus ^ |bus")
        assert expr.op == "^"
        assert isinstance(expr.left, ast.Unary)

    def test_system_function_call(self):
        expr = self._rhs("$signed(a)")
        assert expr.is_system

    def test_number_attributes(self):
        expr = self._rhs("8'hFF")
        assert expr.width == 8
        assert expr.base == "h"
        assert expr.digits == "FF"

    def test_relational_le_in_expression(self):
        expr = self._rhs("a <= b")
        assert expr.op == "<="


class TestInstantiation:
    def test_named_connections(self):
        mod = parse_module("""
module top; wire c, s;
adder u0 (.a(1'b0), .b(1'b1), .sum(s), .cout(c));
endmodule""")
        inst = mod.items_of_type(ast.Instantiation)[0]
        assert inst.module == "adder"
        assert inst.instances[0].connections[0].name == "a"

    def test_ordered_connections(self):
        mod = parse_module("module top; inv u1 (a, y); endmodule")
        conns = mod.items_of_type(ast.Instantiation)[0] \
            .instances[0].connections
        assert all(c.name is None for c in conns)

    def test_parameter_overrides(self):
        mod = parse_module(
            "module top; ff #(.W(4)) u (.d(d), .q(q)); endmodule")
        inst = mod.items_of_type(ast.Instantiation)[0]
        assert inst.param_overrides[0].name == "W"

    def test_unconnected_port(self):
        mod = parse_module("module top; ff u (.d(d), .q()); endmodule")
        conns = mod.items_of_type(ast.Instantiation)[0] \
            .instances[0].connections
        assert conns[1].expr is None


class TestSyntaxErrors:
    @pytest.mark.parametrize("text,fragment", [
        ("module m endmodule", "unexpected 'endmodule'"),
        ("module m; wire ; endmodule", "unexpected ';'"),
        ("module m; assign = 1; endmodule", "unexpected '='"),
        ("module m; always @(posedge ]) x = 1; endmodule", "unexpected ']'"),
        ("module m; wire w;", "unexpected $end"),
    ])
    def test_error_messages(self, text, fragment):
        with pytest.raises(VerilogSyntaxError) as err:
            parse(text)
        assert fragment in str(err.value)

    def test_error_has_yosys_format(self):
        with pytest.raises(VerilogSyntaxError) as err:
            parse("module m;\nwire [;\nendmodule", filename="./m.v")
        assert str(err.value).startswith("./m.v:2: ERROR: ")

    def test_missing_module_keyword(self):
        with pytest.raises(VerilogSyntaxError):
            parse("wire x;")


class TestRoundTrip:
    @pytest.mark.parametrize("source", [
        COUNTER,
        ANSI_ADDER,
        "module m; reg [7:0] mem [0:15]; endmodule",
        "module m; assign #2 y = a & b; endmodule",
        """module fsm (input clk, input rst, output reg [1:0] state);
        localparam S0 = 0, S1 = 1;
        always @(posedge clk or negedge rst)
          if (!rst) state <= S0;
          else case (state)
            S0: state <= S1;
            default: state <= S0;
          endcase
        endmodule""",
        "module t; initial begin : b integer i; end endmodule",
        "module t; wire y; f u (.a(x), .y(y)); endmodule",
    ])
    def test_parse_unparse_parse_stable(self, source):
        first = parse(source)
        text1 = unparse(first)
        second = parse(text1)
        assert unparse(second) == text1

    def test_unparse_contains_key_constructs(self):
        text = unparse(parse(COUNTER))
        assert "always @(posedge clk)" in text
        assert "count <= 2'd0;" in text
        assert text.strip().endswith("endmodule")
