"""The asyncio gateway: tenants, backpressure, SSE, and parity.

The gateway adds admission semantics in front of the daemon but no
execution semantics: results must stay byte-identical to direct runs,
and the kill-and-resume contract must hold with the gateway as the
front end (the crash round here reuses the fault-injection harness
from ``test_serve_recovery``).
"""

import json
import time
import urllib.request

import pytest

from repro.serve import (Daemon, GatewayConfig, GatewayServer,
                         ServeClient, ServeError, TenantPolicy,
                         execute_job)
from test_serve_recovery import TB_PASS, _canonical, _crash_round, \
    _DirectRuns


@pytest.fixture
def stack(tmp_path):
    """A daemon + gateway with tight, test-friendly admission knobs."""
    daemon = Daemon(str(tmp_path / "store"), workers=2,
                    configure_sim_cache=False)
    daemon.start()
    config = GatewayConfig(
        max_queue_depth=4,
        retry_after=0.05,
        tenants={
            "throttled": TenantPolicy(name="throttled", rate=1.0,
                                      burst=2),
            "capped": TenantPolicy(name="capped", max_active=1),
            "vip": TenantPolicy(name="vip", priority_boost=10),
        })
    server = GatewayServer(daemon, config=config).start()
    yield daemon, server
    server.stop()
    daemon.stop()


def test_results_byte_identical_to_direct_runs(stack, tmp_path):
    daemon, server = stack
    client = ServeClient(server.url)
    specs = [("probe", {"payload": {"n": 7}}),
             ("simulate", {"source": TB_PASS})]
    submitted = [client.submit(kind, spec)["id"] for kind, spec in specs]
    jobs = client.wait(submitted, timeout=120)
    for (kind, spec), job_id in zip(specs, submitted):
        job = jobs[job_id]
        assert job["state"] == "done", job
        direct = execute_job(kind, spec,
                             str(tmp_path / f"direct-{job_id}"))
        assert _canonical(client.result(job_id)) == _canonical(direct)


def test_rate_limit_429_with_retry_after(stack):
    _, server = stack
    client = ServeClient(server.url, tenant="throttled")
    codes = []
    for index in range(4):
        try:
            client.submit("probe", {"payload": index})
            codes.append(200)
        except ServeError as exc:
            codes.append(exc.status)
            assert exc.retry_after is not None and exc.retry_after > 0
    # burst of 2 admits the first two; the bucket is then empty.
    assert codes[:2] == [200, 200]
    assert 429 in codes[2:]


def test_wait_retries_through_429(monkeypatch):
    # No live server: the poll loop's 429 handling is exercised by
    # stubbing the batched query it wraps.
    client = ServeClient("http://127.0.0.1:1")
    calls = {"n": 0}

    def throttled_then_done(ids=None):
        calls["n"] += 1
        if calls["n"] <= 2:
            raise ServeError(429, {"error": "rate limited"},
                             retry_after=0.01)
        return [{"id": "j1", "state": "done"}]

    monkeypatch.setattr(client, "jobs", throttled_then_done)
    jobs = client.wait(["j1"], timeout=5, poll=0.01)
    assert jobs["j1"]["state"] == "done"
    assert calls["n"] == 3


def test_wait_429_past_deadline_raises_timeout(monkeypatch):
    client = ServeClient("http://127.0.0.1:1")

    def always_throttled(ids=None):
        raise ServeError(429, {"error": "rate limited"},
                         retry_after=60.0)

    monkeypatch.setattr(client, "jobs", always_throttled)
    with pytest.raises(TimeoutError, match="rate-limited"):
        client.wait(["j1"], timeout=0.05, poll=0.01)


def test_wait_non_429_errors_escape(monkeypatch):
    client = ServeClient("http://127.0.0.1:1")

    def server_error(ids=None):
        raise ServeError(500, {"error": "boom"})

    monkeypatch.setattr(client, "jobs", server_error)
    with pytest.raises(ServeError) as err:
        client.wait(["j1"], timeout=1)
    assert err.value.status == 500


def test_tenant_quota_and_release(stack):
    _, server = stack
    client = ServeClient(server.url, tenant="capped")
    job = client.submit("probe", {"payload": "a", "sleep_ms": 300})
    with pytest.raises(ServeError) as err:
        client.submit("probe", {"payload": "b"})
    assert err.value.status == 429
    client.wait([job["id"]], timeout=30)
    # Quota is released once the job is terminal.
    deadline = time.monotonic() + 10
    while True:
        try:
            client.submit("probe", {"payload": "c"})
            break
        except ServeError as exc:
            assert exc.status == 429
            assert time.monotonic() < deadline, "quota never released"
            time.sleep(0.05)


def test_queue_depth_backpressure(stack):
    _, server = stack
    client = ServeClient(server.url)
    jobs = []
    rejected = 0
    for index in range(8):          # depth ceiling is 4
        try:
            jobs.append(client.submit(
                "probe", {"payload": index, "sleep_ms": 200})["id"])
        except ServeError as exc:
            assert exc.status == 429
            assert exc.retry_after is not None
            rejected += 1
    assert rejected > 0, "queue-depth ceiling never triggered"
    done = client.wait(jobs, timeout=60)
    assert all(job["state"] == "done" for job in done.values())
    # Depth drains: a new submit is admitted again.
    deadline = time.monotonic() + 10
    while True:
        try:
            client.submit("probe", {"payload": "post-drain"})
            break
        except ServeError:
            assert time.monotonic() < deadline, "depth never released"
            time.sleep(0.05)


def test_priority_boost(stack):
    _, server = stack
    vip = ServeClient(server.url, tenant="vip")
    job = vip.submit("probe", {"payload": "v"}, priority=1)
    assert job["priority"] == 11


def test_sse_stream_reaches_terminal(stack):
    _, server = stack
    client = ServeClient(server.url)
    job = client.submit("probe", {"payload": "sse", "sleep_ms": 150})
    request = urllib.request.Request(
        f"{server.url}/api/events/{job['id']}")
    states = []
    with urllib.request.urlopen(request, timeout=30) as stream:
        data = b""
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            data += stream.read(256)
            # Parse complete lines only — a 256-byte read can split a
            # data: line in half.
            complete = data.decode().rsplit("\n", 1)[0]
            states = [json.loads(line[6:])["state"]
                      for line in complete.splitlines()
                      if line.startswith("data: ")]
            if states and states[-1] in ("done", "failed", "cancelled"):
                break
    assert states[-1] == "done"
    assert states[0] in ("queued", "running", "done")


def test_sse_unknown_job_404(stack):
    _, server = stack
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(f"{server.url}/api/events/job-999999",
                               timeout=10)
    assert err.value.code == 404


def test_batched_wait_and_ids_query(stack):
    _, server = stack
    client = ServeClient(server.url)
    ids = [client.submit("probe", {"payload": index})["id"]
           for index in range(3)]
    subset = client.jobs(ids=ids[:2])
    assert [job["id"] for job in subset] == ids[:2]
    done = client.wait(ids, timeout=30)
    assert sorted(done) == sorted(ids)
    with pytest.raises(ServeError) as err:
        client.wait(["job-424242"], timeout=5)
    assert err.value.status == 404


def test_cancel_and_result_conflict(stack):
    _, server = stack
    client = ServeClient(server.url)
    job = client.submit("probe", {"payload": "x", "sleep_ms": 2000})
    blocker = client.submit("probe", {"payload": "y", "sleep_ms": 0})
    with pytest.raises(ServeError) as err:
        client.result(job["id"])
    assert err.value.status == 409
    del blocker
    with pytest.raises(ServeError) as err:
        client.cancel("job-999999")
    assert err.value.status == 404


def test_gateway_stats_endpoint(stack):
    _, server = stack
    client = ServeClient(server.url, tenant="vip")
    client.wait([client.submit("probe", {"payload": 1})["id"]],
                timeout=30)
    blob = json.loads(urllib.request.urlopen(
        f"{server.url}/api/gateway", timeout=10).read())
    assert blob["max_queue_depth"] == 4
    assert blob["tenants"]["vip"]["submitted"] >= 1


def test_kill_and_resume_through_gateway(tmp_path):
    """The recovery contract holds with the gateway as the front end:
    SIGKILL at a journal point, restart, zero lost/duplicated jobs,
    results byte-identical to direct runs."""
    direct = _DirectRuns(tmp_path / "ref")
    _crash_round(tmp_path, direct, crash_after=6, crash_mode="kill",
                 gateway=True)
