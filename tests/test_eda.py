"""Tests for the EDA substrate: synthesis, flow, Chip API, script runner."""

import pytest

from repro.eda import (BENCHMARK_SCRIPTS, DESIGN_SOURCES, SKY130, Chip,
                       Flow, FlowConstraints, SCError, SynthesisError,
                       reference_corpus, run_script, synthesize)

COUNTER = """module counter (input clk, input rst, input en,
                output reg [3:0] count);
  always @(posedge clk)
    if (rst) count <= 4'd0;
    else if (en) count <= count + 4'd1;
endmodule
"""


class TestSynthesis:
    def test_counter_structure(self):
        result = synthesize(COUNTER)
        assert result.cell_counts["DFF"] == 4
        assert result.num_cells > 10
        assert result.area_um2 > 0

    def test_combinational_only_has_no_flops(self):
        result = synthesize("""
module gates (input a, input b, output x, output y);
  assign x = a & b;
  assign y = a ^ b;
endmodule
""")
        assert "DFF" not in result.cell_counts
        assert result.cell_counts["AND2"] == 1
        assert result.cell_counts["XOR2"] == 1

    def test_mux_from_ternary(self):
        result = synthesize("""
module m (input [3:0] a, input [3:0] b, input s, output [3:0] y);
  assign y = s ? a : b;
endmodule
""")
        assert result.cell_counts["MUX2"] == 4

    def test_case_statement_synthesizes(self):
        result = synthesize(DESIGN_SOURCES["alu_slice.v"])
        assert result.num_cells > 10

    def test_critical_path_positive_and_bounded(self):
        result = synthesize(COUNTER)
        assert 0 < result.critical_path_ns < 50
        assert result.fmax_mhz > 1

    def test_wider_adder_has_longer_path(self):
        def adder(width):
            return synthesize(f"""
module a (input [{width - 1}:0] x, input [{width - 1}:0] y,
          output [{width - 1}:0] s);
  assign s = x + y;
endmodule
""")
        assert adder(16).critical_path_ns > adder(4).critical_path_ns

    def test_memory_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize("module m (input clk); reg [7:0] mem [0:3]; "
                       "endmodule")

    def test_parse_error_raises_synthesis_error(self):
        with pytest.raises(SynthesisError):
            synthesize("module m (input a; endmodule")

    def test_shift_by_constant(self):
        result = synthesize("""
module s (input [7:0] a, output [7:0] y);
  assign y = a << 2;
endmodule
""")
        assert result.num_cells >= 8  # buffers for outputs


class TestFlow:
    def test_full_flow_green(self):
        flow = Flow(SKY130)
        result = flow.run(COUNTER, None, FlowConstraints(
            clock_period_ns=10))
        assert result.ok, result.summary()
        stage_names = [s.name for s in result.stages]
        assert stage_names == ["import", "syn", "floorplan", "place",
                               "cts", "route", "sta", "power", "export"]
        assert result.ppa is not None
        assert result.ppa.utilization_pct < 100
        assert result.gds["cell_count"] == result.ppa.num_cells

    def test_lint_failure_stops_at_import(self):
        result = Flow().run("module m (input a; endmodule", None,
                            FlowConstraints())
        assert not result.ok
        assert result.stages[-1].name == "import"

    def test_timing_violation_detected(self):
        wide = """
module slow (input clk, input [15:0] a, input [15:0] b,
             output reg [15:0] p);
  always @(posedge clk) p <= a * b;
endmodule
"""
        fast = Flow().run(wide, None, FlowConstraints(clock_period_ns=100))
        tight = Flow().run(wide, None,
                           FlowConstraints(clock_period_ns=0.5))
        assert fast.ok, fast.summary()
        assert not tight.ok
        assert tight.stages[-1].name == "sta"

    def test_too_small_die_fails_floorplan(self):
        result = Flow().run(COUNTER, None, FlowConstraints(
            die_area=(5, 5), core_margin_um=1))
        assert not result.ok
        assert result.stages[-1].name == "floorplan"

    def test_summary_contains_ppa_rows(self):
        result = Flow().run(COUNTER, None, FlowConstraints())
        text = result.summary()
        assert "fmax (MHz)" in text
        assert "power (mW)" in text

    def test_gds_cells_have_positions(self):
        result = Flow().run(COUNTER, None, FlowConstraints())
        cells = result.gds["cells"]
        assert len(cells) == result.ppa.num_cells
        die = result.gds["die"]
        for cell in cells:
            assert die[0] <= cell["xy"][0] <= die[2]
            assert die[1] <= cell["xy"][1] <= die[3]


class TestChipAPI:
    def test_basic_run(self):
        chip = Chip("heartbeat")
        chip.input("heartbeat.v")
        chip.clock("clk", period=10)
        chip.load_target("skywater130_demo")
        result = chip.run()
        assert result.ok
        assert "SUMMARY" in chip.summary()

    def test_invalid_keypath_rejected(self):
        chip = Chip("x")
        with pytest.raises(SCError):
            chip.set("undocumented", "knob", 1)

    def test_unknown_target_rejected(self):
        chip = Chip("x")
        with pytest.raises(SCError):
            chip.load_target("tsmc5")

    def test_run_without_target_rejected(self):
        chip = Chip("heartbeat")
        chip.input("heartbeat.v")
        with pytest.raises(SCError):
            chip.run()

    def test_missing_source_file(self):
        chip = Chip("ghost")
        chip.input("ghost.v")
        chip.load_target("skywater130_demo")
        with pytest.raises(SCError):
            chip.run()

    def test_diearea_constraint_applied(self):
        chip = Chip("heartbeat")
        chip.input("heartbeat.v")
        chip.set("asic", "diearea", [(0, 0), (150, 150)])
        chip.load_target("skywater130_demo")
        result = chip.run()
        assert result.ok
        assert result.gds["die"][2] == 150.0

    def test_summary_before_run_rejected(self):
        with pytest.raises(SCError):
            Chip("x").summary()


class TestScriptRunner:
    @pytest.mark.parametrize("task", sorted(BENCHMARK_SCRIPTS))
    def test_benchmark_scripts_pass(self, task):
        check = run_script(BENCHMARK_SCRIPTS[task])
        assert check.syntax_ok and check.function_ok, check.summary

    def test_python_syntax_error(self):
        check = run_script("chip = Chip('x'\n")
        assert not check.syntax_ok

    def test_semantic_error_bad_keypath(self):
        check = run_script(
            "chip = Chip('heartbeat')\n"
            "chip.set('undocumented', 'clock', 'period', 10)\n")
        assert check.syntax_ok
        assert not check.function_ok

    def test_semantic_error_unknown_method(self):
        check = run_script(
            "chip = Chip('heartbeat')\nchip.clock_pin('clk')\n")
        assert check.syntax_ok and not check.function_ok

    def test_script_without_run_fails_function(self):
        check = run_script("chip = Chip('heartbeat')\n"
                           "chip.input('heartbeat.v')\n")
        assert check.syntax_ok and not check.function_ok
        assert "never ran" in check.error

    def test_expectation_enforced(self):
        check = run_script(
            BENCHMARK_SCRIPTS["Clock Period"],
            expectation=lambda chip: chip.get("clock", "period") == 99)
        assert not check.function_ok

    def test_extra_sources_injected(self):
        script = ("chip = Chip('inv')\nchip.input('inv.v')\n"
                  "chip.load_target('skywater130_demo')\n"
                  "chip.run()\n")
        check = run_script(script, extra_sources={
            "inv.v": "module inv (input a, output y); assign y = ~a; "
                     "endmodule"})
        assert check.function_ok, check.summary


class TestReferenceCorpus:
    def test_corpus_count_and_uniqueness(self):
        corpus = reference_corpus(200)
        assert len(corpus) == 200
        assert len(set(corpus)) == 200

    def test_corpus_deterministic(self):
        assert reference_corpus(50) == reference_corpus(50)

    def test_sampled_scripts_actually_run(self):
        corpus = reference_corpus(200)
        for script in corpus[::40]:          # 5 samples
            check = run_script(script)
            assert check.function_ok, f"{check.summary}\n{script}"


class TestBarrelShifter:
    def test_variable_left_shift_synthesizes(self):
        result = synthesize("""
module dec (input [2:0] sel, output [7:0] y);
  assign y = 8'd1 << sel;
endmodule
""")
        assert result.cell_counts.get("MUX2", 0) >= 8

    def test_variable_shift_equivalence(self):
        from repro.eda import check_equivalence
        outcome = check_equivalence("""
module sh (input [7:0] a, input [2:0] amt, output [7:0] l,
           output [7:0] r);
  assign l = a << amt;
  assign r = a >> amt;
endmodule
""", vectors=16, seed=4)
        assert outcome.equivalent, outcome.error

    def test_overflow_amount_shifts_to_zero(self):
        from repro.eda import check_equivalence
        outcome = check_equivalence("""
module sh (input [3:0] a, input [3:0] amt, output [3:0] y);
  assign y = a << amt;
endmodule
""", vectors=16, seed=5)
        assert outcome.equivalent, outcome.error
