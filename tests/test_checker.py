"""Tests for the yosys-style checker."""

from repro.checker import check_source, yosys_feedback

GOOD_COUNTER = """
module counter (clk, rst, en, count);
  input clk, rst, en;
  output reg [1:0] count;
  always @(posedge clk)
    if (rst) count <= 2'd0;
    else if (en) count <= count + 2'd1;
endmodule
"""


class TestCleanDesigns:
    def test_counter_is_clean(self):
        result = check_source(GOOD_COUNTER)
        assert result.ok
        assert result.first_error() is None

    def test_ansi_module_is_clean(self):
        result = check_source("""
module mux (input [7:0] a, input [7:0] b, input s, output [7:0] y);
  assign y = s ? b : a;
endmodule
""")
        assert result.ok

    def test_hierarchy_is_clean(self):
        result = check_source("""
module inv (input a, output y); assign y = ~a; endmodule
module top (input a, output y);
  wire m;
  inv u0 (.a(a), .y(m));
  inv u1 (.a(m), .y(y));
endmodule
""")
        assert result.ok

    def test_report_ok(self):
        assert check_source(GOOD_COUNTER, "c.v").report() == "c.v: OK"


class TestSyntaxErrors:
    def test_unexpected_bracket_like_paper_fig6(self):
        broken = """
module LFSR_3bit (
  input [2:0] SW,
  input [1:0] KEY,
  output reg [2:0] LEDR
);
  always @(posedge KEY0])
    LEDR <= KEY[1] ? SW : {LEDR[2] ^ LEDR[1], LEDR[0], LEDR[2]};
endmodule
"""
        feedback = yosys_feedback(broken, "./111_3-bit LFSR.v")
        assert feedback is not None
        assert feedback.startswith("./111_3-bit LFSR.v:7: ERROR: ")
        assert "unexpected ']'" in feedback

    def test_missing_semicolon(self):
        result = check_source("module m; wire a\nwire b; endmodule")
        assert not result.ok
        assert "syntax error" in result.first_error()

    def test_error_line_number(self):
        result = check_source("module m;\nwire a;\nassign = 1;\nendmodule",
                              "x.v")
        assert result.errors[0].line == 3


class TestSemanticErrors:
    def test_undeclared_identifier(self):
        result = check_source("""
module m (input a, output y);
  assign y = a & enable;
endmodule
""")
        assert not result.ok
        assert "identifier 'enable' is not declared" in \
            result.first_error()

    def test_duplicate_declaration(self):
        result = check_source("""
module m;
  wire x;
  wire x;
endmodule
""")
        assert any("duplicate declaration of 'x'" in d.message
                   for d in result.errors)

    def test_header_port_never_declared(self):
        result = check_source("""
module m (a, b);
  input a;
endmodule
""")
        assert any("port 'b' is not declared" in d.message
                   for d in result.errors)

    def test_procedural_assign_to_wire(self):
        result = check_source("""
module m (input clk, input d, output q);
  always @(posedge clk) q <= d;
endmodule
""")
        assert any("cannot assign to wire 'q'" in d.message
                   for d in result.errors)

    def test_continuous_assign_to_reg(self):
        result = check_source("""
module m (input a, output reg y);
  assign y = a;
endmodule
""")
        assert any("reg 'y' cannot be driven" in d.message
                   for d in result.errors)

    def test_output_reg_assigned_in_always_ok(self):
        assert check_source(GOOD_COUNTER).ok

    def test_unknown_port_in_instance(self):
        result = check_source("""
module inv (input a, output y); assign y = ~a; endmodule
module top; wire w, z;
  inv u0 (.a(w), .out(z));
endmodule
""")
        assert any("has no port 'out'" in d.message for d in result.errors)

    def test_unknown_module_is_warning(self):
        result = check_source("""
module top; wire w, z;
  blackbox u0 (.a(w), .y(z));
endmodule
""")
        assert result.ok
        assert any("is not defined" in d.message for d in result.warnings)

    def test_unknown_function(self):
        result = check_source("""
module m (input [3:0] a, output [3:0] y);
  assign y = mystery(a);
endmodule
""")
        assert any("function 'mystery' is not declared" in d.message
                   for d in result.errors)

    def test_wire_type_error_detected_after_mutation(self):
        # paper's "type error" rule: reg flipped to wire must be caught
        result = check_source("""
module counter (input clk, output wire [1:0] count);
  always @(posedge clk) count <= count + 1;
endmodule
""")
        assert not result.ok


class TestWarnings:
    def test_truncation_warning(self):
        result = check_source("""
module m (input [7:0] a, output [3:0] y);
  assign y = a;
endmodule
""")
        assert result.ok
        assert any("truncates 8 bits to 4 bits" in d.message
                   for d in result.warnings)

    def test_no_truncation_warning_when_widths_match(self):
        result = check_source("""
module m (input [3:0] a, output [3:0] y);
  assign y = a;
endmodule
""")
        assert not result.warnings

    def test_block_locals_are_declared(self):
        result = check_source("""
module m;
  initial begin : blk
    integer i;
    i = 3;
  end
endmodule
""")
        assert result.ok
