"""The unified evaluation engine: determinism, cache, pass@k, dispatch."""

import dataclasses
import json

import pytest

from repro.bench import EVAL_SUITES, generation_suite, scgen_suite, thakur_suite
from repro.eval import (EvalEngine, EvalTask, clear_cache,
                        evaluate_generation, evaluate_repair,
                        evaluate_scripts, render_table4, render_table5,
                        run_eval_task)
from repro.experiments import EXPERIMENTS, run_selected
from repro.llm import get_model
from repro.scale import LRUCache

MODELS = ("ours-13b", "llama2-13b")


def _models():
    return [get_model(name) for name in MODELS]


def _problems(count=4):
    return list(thakur_suite())[:count]


def _rendered(engine=None, n_samples=3):
    problems = _problems()
    report = evaluate_generation(_models(), problems,
                                 levels=("low", "middle"),
                                 n_samples=n_samples, engine=engine)
    return render_table5(report, [p.name for p in problems], [],
                         levels=("low", "middle"))


class TestParallelDeterminism:
    def test_process_pool_report_byte_identical_to_serial(self):
        serial = _rendered(EvalEngine(jobs=1))
        parallel = _rendered(EvalEngine(jobs=4))
        assert parallel == serial

    def test_thread_pool_report_byte_identical_to_serial(self):
        serial = _rendered(EvalEngine(jobs=1))
        threaded = _rendered(EvalEngine(jobs=4, use_threads=True))
        assert threaded == serial

    def test_repair_and_scripts_parallel_parity(self):
        from repro.bench import rtllm_suite
        problems = list(rtllm_suite())[:4]
        serial = evaluate_repair(_models(), problems, n_samples=3,
                                 engine=EvalEngine(jobs=1))
        parallel = evaluate_repair(_models(), problems, n_samples=3,
                                   engine=EvalEngine(jobs=3))
        assert parallel.cells == serial.cells
        tasks = list(scgen_suite())
        s = evaluate_scripts(_models(), tasks, engine=EvalEngine(jobs=1))
        p = evaluate_scripts(_models(), tasks, engine=EvalEngine(jobs=3))
        assert render_table4(p, [t.name for t in tasks]) == \
            render_table4(s, [t.name for t in tasks])

    def test_repair_benchmark_is_order_invariant(self):
        """Broken cases derive from content, not suite position."""
        from repro.bench import rtllm_suite
        problems = list(rtllm_suite())[:4]
        forward = evaluate_repair(_models(), problems, n_samples=3)
        backward = evaluate_repair(_models(), problems[::-1], n_samples=3)
        for model in MODELS:
            assert backward.cells[model] == {
                name: forward.cells[model][name]
                for name in reversed(list(forward.cells[model]))}


class TestEvalCache:
    def test_warm_rerun_records_zero_misses(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = EvalEngine(jobs=2, cache_dir=cache)
        first = _rendered(cold)
        assert cold.stats.cache_misses == cold.stats.tasks > 0
        warm = EvalEngine(jobs=2, cache_dir=cache)
        second = _rendered(warm)
        assert second == first
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hits == warm.stats.tasks
        assert warm.stats.computed == 0
        manifest = json.loads((tmp_path / "cache" /
                               "manifest.json").read_text())
        assert manifest["last_run"] == {"hits": warm.stats.tasks,
                                        "misses": 0}

    def test_editing_one_problem_invalidates_only_its_cells(self,
                                                            tmp_path):
        cache = str(tmp_path / "cache")
        problems = _problems()
        levels = ("low", "middle")
        evaluate_generation(_models(), problems, levels=levels,
                            n_samples=3,
                            engine=EvalEngine(cache_dir=cache))
        victim = problems[1]
        edited = dataclasses.replace(
            victim, reference=victim.reference + "\n// touched\n")
        rerun = EvalEngine(cache_dir=cache)
        evaluate_generation(_models(),
                            [edited if p.name == victim.name else p
                             for p in problems],
                            levels=levels, n_samples=3, engine=rerun)
        per_problem = len(MODELS) * len(levels)
        assert rerun.stats.cache_misses == per_problem
        assert rerun.stats.cache_hits == \
            per_problem * (len(problems) - 1)

    def test_sample_budget_change_is_a_miss_not_a_stale_hit(self,
                                                            tmp_path):
        cache = str(tmp_path / "cache")
        problems = _problems(2)
        evaluate_generation(_models(), problems, levels=("middle",),
                            n_samples=3,
                            engine=EvalEngine(cache_dir=cache))
        rerun = EvalEngine(cache_dir=cache)
        report = evaluate_generation(_models(), problems,
                                     levels=("middle",), n_samples=5,
                                     engine=rerun)
        assert rerun.stats.cache_hits == 0
        cell = report.cell(MODELS[0], problems[0].name, "middle")
        assert cell.samples == 5

    def test_corrupt_cell_file_degrades_to_miss(self, tmp_path):
        cache = str(tmp_path / "cache")
        problems = _problems(2)
        evaluate_generation(_models(), problems, levels=("middle",),
                            n_samples=3,
                            engine=EvalEngine(cache_dir=cache))
        for cell_file in (tmp_path / "cache" / "cells").iterdir():
            cell_file.write_text("{not json")
        rerun = EvalEngine(cache_dir=cache)
        evaluate_generation(_models(), problems, levels=("middle",),
                            n_samples=3, engine=rerun)
        assert rerun.stats.cache_hits == 0
        assert rerun.stats.computed == rerun.stats.tasks

    def test_shared_cache_dir_across_suites_no_collisions(self, tmp_path):
        cache = str(tmp_path / "cache")
        from repro.bench import rtllm_suite
        problems = list(rtllm_suite())[:3]
        evaluate_repair(_models(), problems, n_samples=3,
                        engine=EvalEngine(cache_dir=cache))
        evaluate_scripts(_models(), list(scgen_suite()),
                         engine=EvalEngine(cache_dir=cache))
        warm_repair = EvalEngine(cache_dir=cache)
        evaluate_repair(_models(), problems, n_samples=3,
                        engine=warm_repair)
        warm_scripts = EvalEngine(cache_dir=cache)
        evaluate_scripts(_models(), list(scgen_suite()),
                         engine=warm_scripts)
        assert warm_repair.stats.cache_misses == 0
        assert warm_scripts.stats.cache_misses == 0


class TestInMemoryLayer:
    def test_lru_is_bounded(self):
        cache = LRUCache(maxsize=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert 9 in cache and 0 not in cache

    def test_lru_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)          # evicts "b", the least recent
        assert "a" in cache and "b" not in cache

    def test_clear_cache_hook_still_works(self):
        from repro.eval import verilog_eval
        problem = _problems(1)[0]
        from repro.eval import evaluate_candidate
        evaluate_candidate(problem.reference, problem)
        assert len(verilog_eval._CACHE) > 0
        clear_cache()
        assert len(verilog_eval._CACHE) == 0


class TestPassAtK:
    @pytest.fixture(scope="class")
    def report(self):
        return evaluate_generation(_models(), _problems(6),
                                   levels=("middle",), n_samples=5)

    def test_cells_carry_pass_counts(self, report):
        for model in MODELS:
            for levels in report.cells[model].values():
                for cell in levels.values():
                    assert 0 <= cell.passes <= cell.samples

    def test_pass_at_k_bounds_and_monotonicity(self, report):
        for model in MODELS:
            p1 = report.pass_at_k(model, 1)
            p5 = report.pass_at_k(model, 5)
            assert 0.0 <= p1 <= p5 <= 1.0
        assert report.pass_at_k("ours-13b", 5) >= \
            report.pass_at_k("llama2-13b", 5)

    def test_render_table5_surfaces_pass_rows(self, report):
        names = [p.name for p in _problems(6)]
        text = render_table5(report, names, [], levels=("middle",))
        assert "pass@1" in text
        assert "pass@5" in text


class TestTaskAndRegistry:
    def test_run_eval_task_rejects_unknown_kind(self):
        task = EvalTask(kind="nonsense", model=_models()[0],
                        payload=_problems(1)[0])
        with pytest.raises(ValueError):
            run_eval_task(task)

    def test_generation_suite_by_name(self):
        assert len(generation_suite("thakur")) == 17
        assert len(generation_suite("rtllm")) == 18
        assert len(generation_suite("rtllm-full")) == 29
        assert len(generation_suite("generation")) == 35
        with pytest.raises(KeyError):
            generation_suite("nope")

    def test_cli_suite_choices_match_registry(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(["evaluate", "--suite", "rtllm"])
        assert args.suite == "rtllm"
        for suite in EVAL_SUITES:
            parser.parse_args(["evaluate", "--suite", suite])
        with pytest.raises(SystemExit):
            parser.parse_args(["evaluate", "--suite", "bogus"])


class TestLazyDispatch:
    def test_only_requested_experiments_run(self, monkeypatch):
        def boom(**kwargs):
            raise AssertionError("table5 must not run for --only table1")
        monkeypatch.setitem(EXPERIMENTS, "table5", boom)
        results = run_selected(["table1"])
        assert list(results) == ["table1"]
        assert "ChipNeMo" in results["table1"]

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_selected(["table99"])

    def test_cli_tables_only_is_lazy(self, monkeypatch, capsys):
        from repro.cli import main
        def boom(**kwargs):
            raise AssertionError("table5 must not run for --only table1")
        monkeypatch.setitem(EXPERIMENTS, "table5", boom)
        assert main(["tables", "--only", "table1"]) == 0
        assert "TABLE1" in capsys.readouterr().out

    def test_cli_tables_unknown_id_errors(self, capsys):
        from repro.cli import main
        assert main(["tables", "--only", "tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCliEvaluate:
    def test_jobs_parity_and_warm_cache(self, tmp_path, capsys):
        from repro.cli import main
        cache = str(tmp_path / "cache")
        serial_out = str(tmp_path / "serial.txt")
        parallel_out = str(tmp_path / "parallel.txt")
        common = ["evaluate", "--suite", "thakur", "--models",
                  ",".join(MODELS), "--samples", "3",
                  "--levels", "middle"]
        assert main([*common, "--jobs", "1", "--out", serial_out]) == 0
        assert main([*common, "--jobs", "2", "--cache-dir", cache,
                     "--out", parallel_out]) == 0
        capsys.readouterr()
        assert (open(serial_out, "rb").read()
                == open(parallel_out, "rb").read())
        assert main([*common, "--jobs", "2", "--cache-dir", cache]) == 0
        assert "0 miss(es)" in capsys.readouterr().out

    def test_scripts_suite(self, capsys):
        from repro.cli import main
        assert main(["evaluate", "--suite", "scripts",
                     "--models", "ours-13b,llama2-13b"]) == 0
        out = capsys.readouterr().out
        assert ">10" in out
        assert "cell(s)" in out


class TestBackendStatsAggregation:
    """Fix: `--jobs > 1` used to silently undercount simulator-backend
    counters (they lived in pool workers); the engine now aggregates
    each worker's per-task deltas back through its result stream."""

    def _sweep(self, engine):
        clear_cache()
        return evaluate_generation(_models(), _problems(2),
                                   levels=("low",), n_samples=2,
                                   engine=engine)

    def test_process_pool_stats_no_longer_undercount(self):
        from repro.sim import backend_stats
        engine = EvalEngine(jobs=3)
        before = backend_stats().copy()
        self._sweep(engine)
        main_delta = backend_stats().delta_since(before)
        # All simulation happened in forked workers: the calling
        # thread's own counters see none of it...
        assert main_delta.total_runs == 0
        # ...but the engine's aggregate does.
        assert engine.sim_stats.total_runs > 0
        assert engine.sim_stats.compiles > 0

    def test_aggregated_stats_deterministic_across_pools(self):
        # Forked workers inherit no warm in-memory candidate cache
        # (clear_cache runs pre-fork), so worker-side sim counts are a
        # pure function of the task set — identical run to run.
        first = EvalEngine(jobs=3)
        self._sweep(first)
        second = EvalEngine(jobs=3)
        self._sweep(second)
        assert first.sim_stats.total_runs > 0
        for field in ("compiled_runs", "interp_runs", "fallbacks",
                      "compiles"):
            assert getattr(first.sim_stats, field) == \
                getattr(second.sim_stats, field)

    def test_thread_pool_and_serial_stats_are_counted(self):
        serial = EvalEngine(jobs=1)
        self._sweep(serial)
        assert serial.sim_stats.total_runs > 0
        threaded = EvalEngine(jobs=3, use_threads=True)
        self._sweep(threaded)
        assert threaded.sim_stats.total_runs > 0

    def test_counters_are_thread_local(self):
        import threading
        from repro.sim import backend_stats
        main = backend_stats()
        seen = {}
        def bump():
            stats = backend_stats()
            stats.compiled_runs += 7
            seen["worker"] = stats.compiled_runs
        before = main.compiled_runs
        thread = threading.Thread(target=bump)
        thread.start()
        thread.join()
        assert seen["worker"] == 7
        assert main.compiled_runs == before

    def test_stats_copy_delta_add_arithmetic(self):
        from repro.sim import BackendStats
        stats = BackendStats(compiled_runs=3, interp_runs=1,
                             compiles=2)
        stats.record_fallback("delay in function")
        snap = stats.copy()
        stats.compiled_runs += 2
        stats.record_fallback("delay in function")
        stats.record_fallback("other thing")
        delta = stats.delta_since(snap)
        assert delta.compiled_runs == 2
        assert delta.interp_runs == 0
        assert delta.fallbacks == 2
        assert delta.fallback_reasons == {"delay in function": 1,
                                          "other thing": 1}
        total = BackendStats()
        total.add(snap)
        total.add(delta)
        assert total.compiled_runs == stats.compiled_runs
        assert total.fallbacks == stats.fallbacks
        assert total.fallback_reasons == stats.fallback_reasons
