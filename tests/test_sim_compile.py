"""Unit tests for the compiled backend's plumbing.

The *semantics* of the compiled backend are pinned by the differential
fuzz harness and the golden-trace suite; this file covers the machinery
around it: backend selection, the two-layer
:class:`~repro.sim.compile.CompiledDesignCache`, fallback accounting,
and the ``sim_backend`` threading through the evaluation stack.
"""

import os

import pytest

from repro.bench import thakur_suite
from repro.eval import clear_cache, evaluate_candidate
from repro.eval.engine import EvalTask
from repro.llm import get_model
from repro.sim import (CompiledDesignCache, backend_stats,
                       compile_design, configure_design_cache, elaborate,
                       reset_backend_stats, run_simulation, source_digest)
from repro.verilog import parse

SIMPLE = """
module tb;
  reg [3:0] x;
  initial begin x = 4'd9; $display("x=%d", x); $finish; end
endmodule
"""

# Non-identifier sensitivity: lowering refuses; interpreter handles it.
NEEDS_FALLBACK = """
module tb;
  reg a; reg y;
  always @(a[0]) y = ~a;
  initial begin a = 0; #1 a = 1; #1 $display("y=%b", y); $finish; end
endmodule
"""


@pytest.fixture(autouse=True)
def fresh_backend_state():
    configure_design_cache()
    reset_backend_stats()
    yield
    configure_design_cache()
    reset_backend_stats()


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_simulation(SIMPLE, backend="vcs")

    def test_explicit_interp_is_counted(self):
        result = run_simulation(SIMPLE, backend="interp")
        assert result.ok
        assert backend_stats().interp_runs == 1
        assert backend_stats().compiled_runs == 0

    def test_default_is_compiled(self):
        result = run_simulation(SIMPLE)
        assert result.ok
        assert backend_stats().compiled_runs == 1

    def test_fallback_is_counted_and_equivalent(self):
        r_compiled = run_simulation(NEEDS_FALLBACK)
        r_interp = run_simulation(NEEDS_FALLBACK, backend="interp")
        stats = backend_stats()
        assert stats.fallbacks == 1
        assert stats.fallback_reasons  # reason recorded
        assert r_compiled.display == r_interp.display
        assert r_compiled.time == r_interp.time


class TestTimeoutConvergence:
    """Step budgets are charged differently by the two runtimes, so a
    compiled-side timeout falls back to the interpreter — the final
    verdict (pass or timeout) is interp-authoritative either way."""

    # A forever loop exhausts both runtimes' budgets quickly (the flat
    # +50/iteration charge dominates), keeping these tests cheap.
    RUNAWAY = """
module tb;
  integer i;
  initial begin
    i = 0;
    forever i = i + 1;
  end
endmodule
"""
    BOUNDED = """
module tb;
  integer i; reg [31:0] acc;
  initial begin
    acc = 0;
    for (i = 0; i < 1000; i = i + 1) acc = acc + (i * 3) + (acc >> 2);
    $display("done %0d acc=%0d", i, acc);
    $finish;
  end
endmodule
"""

    @pytest.mark.parametrize("text", [BOUNDED, RUNAWAY],
                             ids=["bounded", "over-budget"])
    def test_verdicts_match_across_budget_boundary(self, text):
        r_compiled = run_simulation(text)
        r_interp = run_simulation(text, backend="interp")
        assert r_compiled.ok == r_interp.ok
        assert r_compiled.display == r_interp.display
        assert r_compiled.error == r_interp.error

    def test_compiled_timeout_counts_as_fallback(self):
        run_simulation(self.RUNAWAY)
        stats = backend_stats()
        assert stats.fallbacks == 1
        # Keyed under a stable reason so long sweeps aggregate instead
        # of growing one key per timing-out design.
        assert stats.fallback_reasons.get("timeout") == 1
        assert stats.compiled_runs == 0

    def test_compiled_budget_is_no_laxer_than_interp(self):
        # Direct runtimes with a small budget: if the interpreter
        # times out, the compiled runtime must too (overcharge-only
        # divergence, which the fallback then converges).
        from repro.sim import Simulator, SimulationTimeout
        text = """
module tb;
  integer i; reg [31:0] acc;
  initial begin
    acc = 0;
    for (i = 0; i < 100000; i = i + 1) acc = acc + i;
    $finish;
  end
endmodule
"""
        interp = Simulator(elaborate(parse(text), "tb"),
                           step_budget=50_000)
        with pytest.raises(SimulationTimeout):
            interp.run(max_time=1000)
        compiled = compile_design(elaborate(parse(text), "tb"))
        with pytest.raises(SimulationTimeout):
            compiled.simulator(step_budget=50_000).run(max_time=1000)

    def test_failed_compiled_run_still_counted(self):
        result = run_simulation(
            "module tb; initial undeclared_x = 1; endmodule")
        assert not result.ok
        assert backend_stats().compiled_runs == 1


class TestSourceDigest:
    def test_digest_tracks_text_and_top(self):
        base = source_digest(SIMPLE, None)
        assert source_digest(SIMPLE, None) == base
        assert source_digest(SIMPLE + " ", None) != base
        assert source_digest(SIMPLE, "tb") != base


class TestCompiledDesignCache:
    def test_in_memory_reuse(self):
        run_simulation(SIMPLE)
        run_simulation(SIMPLE)
        stats = backend_stats()
        assert stats.compiles == 1
        assert stats.cache_hits == 1

    def test_lru_bound(self):
        cache = CompiledDesignCache(maxsize=2)
        design = compile_design(elaborate(parse(SIMPLE), "tb"))
        cache.put("a", design)
        cache.put("b", design)
        cache.put("c", design)
        assert cache.get("a") is None      # evicted
        assert cache.get("c") is design

    def test_persistent_verdicts(self, tmp_path):
        root = str(tmp_path / "sim-cache")
        configure_design_cache(root=root)
        run_simulation(SIMPLE)
        run_simulation(NEEDS_FALLBACK)
        # Only the *unsupported* verdict persists: a "supported" entry
        # would save nothing (the artefact must be re-lowered anyway)
        # and would churn one file per evaluated candidate.
        entries = os.listdir(os.path.join(root, "designs"))
        assert len(entries) == 1
        assert os.path.exists(os.path.join(root, "manifest.json"))

        # A fresh cache (new process, in effect) reads the verdict:
        # the unsupported design skips its doomed compile attempt.
        configure_design_cache(root=root)
        reset_backend_stats()
        run_simulation(NEEDS_FALLBACK)
        stats = backend_stats()
        assert stats.fallbacks == 1
        assert stats.compiles == 0
        # The supported design lowers as usual.
        run_simulation(SIMPLE)
        assert backend_stats().compiles == 1

    def test_verdict_flush_merges_concurrent_writers(self, tmp_path):
        # Two cache instances sharing a root (stand-ins for two pool
        # workers): the second flush must not clobber the first's
        # verdict out of the manifest.
        root = str(tmp_path / "sim-cache")
        a = CompiledDesignCache(root=root)
        b = CompiledDesignCache(root=root)
        a.record_unsupported("a" * 64, "reason-a")
        b.record_unsupported("b" * 64, "reason-b")
        fresh = CompiledDesignCache(root=root)
        assert fresh.verdict("a" * 64) is not None
        assert fresh.verdict("b" * 64) is not None

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        root = str(tmp_path / "sim-cache")
        configure_design_cache(root=root)
        run_simulation(NEEDS_FALLBACK)
        design_dir = os.path.join(root, "designs")
        for name in os.listdir(design_dir):
            with open(os.path.join(design_dir, name), "w") as fh:
                fh.write("not json")
        configure_design_cache(root=root)
        reset_backend_stats()
        run_simulation(NEEDS_FALLBACK)   # verdict unreadable: re-tries
        assert backend_stats().fallbacks == 1


class TestCompiledDesignReuse:
    def test_runs_are_isolated(self):
        compiled = compile_design(elaborate(parse("""
module tb;
  reg [7:0] n;
  initial begin n = 8'd0; #1 n = n + 8'd5; $finish; end
endmodule"""), "tb"))
        first = compiled.simulator()
        first.run(max_time=100)
        second = compiled.simulator()
        second.run(max_time=100)
        assert first.value_of("n").val == 5
        assert second.value_of("n").val == 5
        assert first.store is not second.store


class TestEvalThreading:
    def test_candidate_verdicts_match_across_backends(self):
        problem = list(thakur_suite())[0]
        clear_cache()
        compiled = evaluate_candidate(problem.reference, problem,
                                      sim_backend="compiled")
        clear_cache()
        interp = evaluate_candidate(problem.reference, problem,
                                    sim_backend="interp")
        assert compiled == interp
        clear_cache()

    def test_eval_task_key_excludes_backend(self):
        problem = list(thakur_suite())[0]
        model = get_model("ours-13b")
        a = EvalTask(kind="generation", model=model, payload=problem,
                     level="middle", sim_backend="compiled")
        b = EvalTask(kind="generation", model=model, payload=problem,
                     level="middle", sim_backend="interp")
        # Proven output-identical backends share cached cells.
        assert a.key() == b.key()
        assert a.slot() == b.slot()
