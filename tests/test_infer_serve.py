"""The ``infer`` job kind: spec validation, batching, determinism.

The serving contract under test: an infer job's result blob is a pure
function of its canonical spec and its train dependency's artefact —
independent of batch composition (rows decode token-identically solo or
shared, and per-row seeds derive from each job's own spec, never from
batch position).
"""

import dataclasses

import pytest

from repro.llm.behavioral import PROFILES
from repro.llm.tiny_transformer import (TinyTransformerLM,
                                        TransformerConfig)
from repro.llm.tokenizer import Tokenizer
from repro.serve import Job, SpecError, compat_key, validate_spec
from repro.serve.executor import execute_batch, execute_job
from repro.train import model_weights_bundle

TRAINED = {"name": "fresh", "job": "job-000001"}


def _bundle(seed: int = 0) -> dict:
    model = TinyTransformerLM(TransformerConfig(
        vocab_size=48, d_model=16, n_heads=2, n_layers=1, d_ff=32,
        max_len=24, seed=seed))
    tokenizer = Tokenizer.train(
        ["module counter endmodule always begin end wire reg"],
        vocab_size=48)
    return model_weights_bundle(model, tokenizer)


def _train_blob(name: str = "fresh", bundle: dict | None = None) -> dict:
    profile = dataclasses.replace(PROFILES["llama2-13b"], name=name,
                                  display=f"Trained({name})")
    return {"artifact": {"name": name,
                         "profile": dataclasses.asdict(profile),
                         "weights": (bundle if bundle is not None
                                     else _bundle())}}


class TestInferSpec:
    def test_defaults_are_canonicalised(self):
        spec = validate_spec("infer", {"prompts": ["module counter"],
                                       "trained": TRAINED})
        assert spec == {"prompts": ["module counter"],
                        "trained": TRAINED, "max_tokens": 32,
                        "temperature": 0.0, "seed": 0}

    def test_bad_specs_are_rejected(self):
        good = {"prompts": ["p"], "trained": TRAINED}
        for broken in ({**good, "prompts": []},
                       {**good, "prompts": ["p", ""]},
                       {**good, "prompts": "p"},
                       {"prompts": ["p"]},                  # no trained
                       {**good, "trained": {"name": "fresh"}},
                       {**good, "max_tokens": 0},
                       {**good, "max_tokens": "8"},
                       {**good, "temperature": -0.5},
                       {**good, "temperature": True}):
            with pytest.raises(SpecError):
                validate_spec("infer", broken)

    def test_trained_name_cannot_shadow_builtins(self):
        with pytest.raises(SpecError, match="shadows a built-in"):
            validate_spec("infer", {"prompts": ["p"],
                                    "trained": {"name": "ours-13b",
                                                "job": "job-000001"}})

    def test_compat_key_is_the_train_job(self):
        def job(seq, trained):
            return Job(id=f"job-{seq:06d}", seq=seq, kind="infer",
                       spec=validate_spec(
                           "infer", {"prompts": ["p"],
                                     "trained": trained}))
        same_a = job(2, TRAINED)
        same_b = job(3, {"name": "other", "job": TRAINED["job"]})
        other = job(4, {"name": "fresh", "job": "job-000009"})
        assert compat_key(same_a) == compat_key(same_b)
        assert compat_key(same_a) != compat_key(other)


class TestInferExecution:
    def test_end_to_end_and_deterministic(self, tmp_path):
        resolve = {TRAINED["job"]: _train_blob()}.get
        spec = {"prompts": ["module counter", "always begin"],
                "trained": TRAINED, "max_tokens": 8,
                "temperature": 0.9, "seed": 5}
        blobs = [execute_job("infer", dict(spec), str(tmp_path / w),
                             resolve=resolve) for w in ("a", "b")]
        assert blobs[0] == blobs[1]
        blob = blobs[0]
        assert blob["kind"] == "infer" and blob["model"] == "fresh"
        assert len(blob["completions"]) == 2
        for entry, prompt in zip(blob["completions"], spec["prompts"]):
            assert entry["prompt"] == prompt
            assert 0 <= entry["tokens"] <= spec["max_tokens"]
            assert isinstance(entry["text"], str)

    def test_blob_is_batch_composition_independent(self, tmp_path):
        """A job decodes the same rows alone or sharing a batch (even
        with different per-job knobs in the same batch)."""
        bundle = _bundle(3)
        resolve = {TRAINED["job"]: _train_blob(bundle=bundle)}.get

        def job(seq, prompts, max_tokens, temperature, seed):
            return Job(id=f"job-{seq:06d}", seq=seq, kind="infer",
                       spec=validate_spec(
                           "infer", {"prompts": prompts,
                                     "trained": TRAINED,
                                     "max_tokens": max_tokens,
                                     "temperature": temperature,
                                     "seed": seed}))
        one = job(10, ["module counter begin"], 4, 0.0, 1)
        two = job(11, ["wire reg always", "end endmodule"], 9, 1.1, 2)
        merged = execute_batch("infer", [one, two],
                               str(tmp_path / "merged"),
                               resolve=resolve)
        solo = {}
        for index, shared in enumerate([one, two]):
            alone = Job(id=shared.id, seq=shared.seq, kind="infer",
                        spec=dict(shared.spec))
            result = execute_batch("infer", [alone],
                                   str(tmp_path / f"solo-{index}"),
                                   resolve=resolve)
            solo[shared.id] = result.outcomes[shared.id]
        for job_id, outcome in merged.outcomes.items():
            assert outcome.ok
            assert outcome.blob == solo[job_id].blob

    def test_artifact_without_weights_fails_loudly(self, tmp_path):
        blob = _train_blob()
        del blob["artifact"]["weights"]
        resolve = {TRAINED["job"]: blob}.get
        with pytest.raises(RuntimeError, match="no weights bundle"):
            execute_job("infer", {"prompts": ["p"], "trained": TRAINED},
                        str(tmp_path), resolve=resolve)

    def test_missing_dependency_fails_loudly(self, tmp_path):
        with pytest.raises(RuntimeError, match="has no result"):
            execute_job("infer", {"prompts": ["p"], "trained": TRAINED},
                        str(tmp_path), resolve={}.get)

    def test_wrong_artifact_name_fails_loudly(self, tmp_path):
        resolve = {TRAINED["job"]: _train_blob(name="other")}.get
        with pytest.raises(RuntimeError, match="not 'fresh'"):
            execute_job("infer", {"prompts": ["p"], "trained": TRAINED},
                        str(tmp_path), resolve=resolve)
