"""Benchmark: unified evaluation engine throughput + cache warm-up.

Measures evaluated cells/sec at jobs=1 vs jobs=N and cold- vs warm-cache
wall time over a generation sweep, then writes ``BENCH_eval.json`` at
the repo root so the perf trajectory is tracked from PR to PR (the eval
twin of ``bench_scale.py``).
"""

import json
import os
import time

from repro.bench import thakur_suite
from repro.eval import EvalEngine, clear_cache, evaluate_generation
from repro.llm import get_model

MODELS = ("ours-13b", "gpt-3.5", "llama2-13b")
LEVELS = ("low", "middle", "high")
N_SAMPLES = 5
JOBS = min(4, os.cpu_count() or 1)
RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_eval.json")


def _timed(engine):
    models = [get_model(name) for name in MODELS]
    problems = list(thakur_suite())
    clear_cache()   # drop the in-memory layer so runs are comparable
    start = time.perf_counter()
    report = evaluate_generation(models, problems, levels=LEVELS,
                                 n_samples=N_SAMPLES, engine=engine)
    return time.perf_counter() - start, report


def run_eval_sweep(cache_root: str) -> dict:
    serial_s, serial = _timed(EvalEngine(jobs=1))
    parallel_s, parallel = _timed(EvalEngine(jobs=JOBS))
    assert parallel.cells == serial.cells

    cache_dir = os.path.join(cache_root, ".eval-cache")
    cold_engine = EvalEngine(jobs=JOBS, cache_dir=cache_dir)
    cold_s, _ = _timed(cold_engine)
    warm_engine = EvalEngine(jobs=JOBS, cache_dir=cache_dir)
    warm_s, warm = _timed(warm_engine)
    assert warm_engine.stats.cache_misses == 0, "warm run recomputed cells"
    assert warm.cells == serial.cells

    cells = len(MODELS) * len(list(thakur_suite())) * len(LEVELS)
    return {
        "models": len(MODELS),
        "problems": len(list(thakur_suite())),
        "levels": len(LEVELS),
        "cells": cells,
        "samples_per_cell": N_SAMPLES,
        "jobs": JOBS,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "cells_per_sec_serial": round(cells / serial_s, 1),
        "cells_per_sec_parallel": round(cells / parallel_s, 1),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "cold_cache_s": round(cold_s, 4),
        "warm_cache_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "warm_cache_misses": warm_engine.stats.cache_misses,
    }


def test_eval_throughput_and_cache(once, benchmark, tmp_path):
    result = once(run_eval_sweep, str(tmp_path))
    benchmark.extra_info.update(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + json.dumps(result, indent=2, sort_keys=True))
    assert result["warm_cache_misses"] == 0
    assert result["cells_per_sec_parallel"] > 0
