"""Benchmark: training throughput, checkpoint overhead, resume latency.

Measures sequences/sec through the trainer at ``jobs=1`` vs ``jobs=N``
(threads and processes — the contract is identical output, so the
numbers are purely operational), the wall-clock cost per checkpoint
write, and how quickly a finished run's checkpoint store resumes, then
writes ``BENCH_train.json`` at the repo root so the training-layer
trajectory is tracked from PR to PR.
"""

import json
import os
import time

from repro.core.records import Dataset, Task, make_record
from repro.train import TrainConfig, train_run

N_RECORDS = 96
RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_train.json")


def _dataset() -> Dataset:
    records = []
    for index in range(N_RECORDS):
        records.append(make_record(
            Task.NL_VERILOG,
            f"a module named unit{index} with {index % 7} inputs and "
            f"a registered output updated on the positive clock edge",
            f"module unit{index}(input clk, input [{index % 7}:0] d, "
            f"output reg q);\n  always @(posedge clk) q <= ^d;\n"
            f"endmodule"))
    return Dataset(records=records)


def _config(**overrides) -> TrainConfig:
    base = dict(epochs=1, batch_size=8, micro_batch=2, seq_len=48,
                vocab_size=256, d_model=32, n_heads=2, n_layers=1,
                d_ff=64, max_records=None, checkpoint_every=0)
    base.update(overrides)
    return TrainConfig(**base)


def _timed_run(dataset, config, **kwargs):
    start = time.perf_counter()
    report = train_run(dataset, config, **kwargs)
    return report, time.perf_counter() - start


def bench_throughput(dataset) -> dict:
    result = {}
    reference = None
    for label, kwargs in (("jobs1", {"jobs": 1}),
                          ("jobs4_threads", {"jobs": 4,
                                             "use_threads": True}),
                          ("jobs4_procs", {"jobs": 4})):
        report, wall = _timed_run(dataset, _config(), **kwargs)
        if reference is None:
            reference = report.weights_sha256
        assert report.weights_sha256 == reference   # contract holds
        sequences = report.records * report.epochs
        result[f"seq_per_sec_{label}"] = round(sequences / wall, 1)
        result[f"wall_s_{label}"] = round(wall, 4)
    result["steps"] = report.steps
    return result


def bench_checkpoint_overhead(dataset, root: str) -> dict:
    _, plain = _timed_run(dataset, _config())
    report, checked = _timed_run(
        dataset, _config(checkpoint_every=1),
        checkpoint_dir=os.path.join(root, "every-step"))
    writes = report.checkpoints_written
    return {"checkpoint_writes": writes,
            "checkpoint_overhead_ms": round(
                max(checked - plain, 0.0) / max(writes, 1) * 1000, 3)}


def bench_cold_resume(dataset, root: str) -> dict:
    ckpt = os.path.join(root, "resume")
    first, _ = _timed_run(dataset, _config(checkpoint_every=4),
                          checkpoint_dir=ckpt)
    resumed, wall = _timed_run(dataset, _config(checkpoint_every=4),
                               checkpoint_dir=ckpt)
    assert resumed.resumed_steps == first.steps
    assert resumed.weights_sha256 == first.weights_sha256
    return {"cold_resume_s": round(wall, 4)}


def run_train_bench(root: str) -> dict:
    dataset = _dataset()
    result = {"records": len(dataset)}
    result.update(bench_throughput(dataset))
    result.update(bench_checkpoint_overhead(dataset, root))
    result.update(bench_cold_resume(dataset, root))
    return result


def test_train_throughput_and_resume(once, benchmark, tmp_path):
    result = once(run_train_bench, str(tmp_path))
    benchmark.extra_info.update(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + json.dumps(result, indent=2, sort_keys=True))
    assert result["seq_per_sec_jobs1"] > 0
    assert result["cold_resume_s"] > 0
