"""Benchmark: training throughput, checkpoint overhead, resume, tuning.

Measures sequences/sec through the trainer at ``jobs=1`` vs ``jobs=4``
(threads and processes — the contract is identical output, so the
numbers are purely operational), the explicit speedup ratios, the
wall-clock cost per checkpoint write, how quickly a finished run's
checkpoint store resumes, and the throughput under the machine-local
``repro tune`` winner (the tuner runs here, so ``work/tune.json`` is
always fresh for this host).  Writes ``BENCH_train.json`` at the repo
root so the training-layer trajectory is tracked from PR to PR;
``cpus`` is recorded because parallel speedup is bounded by the
machine (CI gates on the procs ratio only when cpus > 1).

A ratio below 1.0 prints a loud regression warning: resident workers
exist precisely so ``--jobs 4`` never loses to serial on multi-core.
"""

import json
import os
import time

from repro.core.records import Dataset, Task, make_record
from repro.train import TrainConfig, load_tuned, save_tuned, \
    train_run, tune_corpus
from repro.train.tune import TuneCandidate, machine_cpus

N_RECORDS = 96
REPO_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_train.json")
TUNE_PATH = os.path.join(REPO_ROOT, "work", "tune.json")


def _dataset() -> Dataset:
    records = []
    for index in range(N_RECORDS):
        records.append(make_record(
            Task.NL_VERILOG,
            f"a module named unit{index} with {index % 7} inputs and "
            f"a registered output updated on the positive clock edge",
            f"module unit{index}(input clk, input [{index % 7}:0] d, "
            f"output reg q);\n  always @(posedge clk) q <= ^d;\n"
            f"endmodule"))
    return Dataset(records=records)


def _config(**overrides) -> TrainConfig:
    # Sized so one optimizer step carries real compute and the run has
    # enough steps to amortize lane startup (fork + one-time weight
    # ship) — the regime the resident-worker path exists for.  Serial
    # still finishes in ~1 s.
    base = dict(epochs=2, batch_size=8, micro_batch=2, seq_len=64,
                vocab_size=256, d_model=96, n_heads=2, n_layers=1,
                d_ff=192, max_records=None, checkpoint_every=0)
    base.update(overrides)
    return TrainConfig(**base)


def _timed_run(dataset, config, **kwargs):
    start = time.perf_counter()
    report = train_run(dataset, config, **kwargs)
    return report, time.perf_counter() - start


def bench_throughput(dataset) -> dict:
    result = {}
    reference = None
    for label, kwargs in (("jobs1", {"jobs": 1}),
                          ("jobs4_threads", {"jobs": 4,
                                             "use_threads": True}),
                          ("jobs4_procs", {"jobs": 4})):
        report, wall = _timed_run(dataset, _config(), **kwargs)
        if reference is None:
            reference = report.weights_sha256
        assert report.weights_sha256 == reference   # contract holds
        sequences = report.records * report.epochs
        result[f"seq_per_sec_{label}"] = round(sequences / wall, 1)
        result[f"wall_s_{label}"] = round(wall, 4)
        result[f"transport_{label}"] = report.transport
    for label in ("jobs4_threads", "jobs4_procs"):
        result[f"speedup_{label}"] = round(
            result[f"seq_per_sec_{label}"]
            / result["seq_per_sec_jobs1"], 3)
    result["steps"] = report.steps
    return result


def bench_checkpoint_overhead(dataset, root: str) -> dict:
    _, plain = _timed_run(dataset, _config())
    report, checked = _timed_run(
        dataset, _config(checkpoint_every=1),
        checkpoint_dir=os.path.join(root, "every-step"))
    writes = report.checkpoints_written
    return {"checkpoint_writes": writes,
            "checkpoint_ms_per_write": round(
                max(checked - plain, 0.0) / max(writes, 1) * 1000, 3)}


def bench_cold_resume(dataset, root: str) -> dict:
    ckpt = os.path.join(root, "resume")
    first, _ = _timed_run(dataset, _config(checkpoint_every=4),
                          checkpoint_dir=ckpt)
    resumed, wall = _timed_run(dataset, _config(checkpoint_every=4),
                               checkpoint_dir=ckpt)
    assert resumed.resumed_steps == first.steps
    assert resumed.weights_sha256 == first.weights_sha256
    return {"cold_resume_s": round(wall, 4)}


def bench_tuned(dataset, root: str) -> dict:
    """Run the autotuner's service-job grid, persist the winner to
    ``work/tune.json``, and measure the bench dataset under it."""
    corpus = os.path.join(root, "tune-corpus")
    os.makedirs(corpus, exist_ok=True)
    for index in range(4):
        with open(os.path.join(corpus, f"probe{index}.v"), "w",
                  encoding="utf-8") as handle:
            handle.write(
                f"module probe{index}(input clk, input a, "
                f"output reg q);\n  always @(posedge clk) "
                f"q <= a ^ {index % 2};\nendmodule\n")
    jobs = min(4, max(2, machine_cpus()))
    grid = [TuneCandidate(1, None, 2, 4),
            TuneCandidate(jobs, "threads", 2, 4),
            TuneCandidate(jobs, "procs", 2, 4)]
    report = tune_corpus([corpus], store_dir=os.path.join(root, "tune"),
                         grid=grid, max_records=32)
    save_tuned(report, TUNE_PATH)
    tuned = load_tuned(TUNE_PATH)
    assert tuned is not None            # bench consumes the tuner's file
    run, wall = _timed_run(
        dataset,
        _config(micro_batch=tuned["micro_batch"],
                checkpoint_every=tuned["checkpoint_every"] or 0),
        jobs=tuned["jobs"], use_threads=tuned["pool"] == "threads")
    return {"tuned_jobs": tuned["jobs"],
            "tuned_pool": tuned["pool"] or "serial",
            "seq_per_sec_tuned": round(
                run.records * run.epochs / wall, 1)}


def run_train_bench(root: str) -> dict:
    dataset = _dataset()
    result = {"records": len(dataset), "cpus": machine_cpus()}
    result.update(bench_throughput(dataset))
    result.update(bench_checkpoint_overhead(dataset, root))
    result.update(bench_cold_resume(dataset, root))
    result.update(bench_tuned(dataset, root))
    return result


def _warn_regressions(result: dict) -> list[str]:
    warnings = []
    for label in ("jobs4_threads", "jobs4_procs"):
        ratio = result[f"speedup_{label}"]
        if ratio < 1.0:
            warnings.append(
                f"REGRESSION WARNING: {label} is {ratio:.2f}x jobs1 "
                f"(< 1.0) on {result['cpus']} cpu(s)")
    return warnings


def test_train_throughput_and_resume(once, benchmark, tmp_path):
    result = once(run_train_bench, str(tmp_path))
    benchmark.extra_info.update(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + json.dumps(result, indent=2, sort_keys=True))
    for warning in _warn_regressions(result):
        print(warning)
    assert result["seq_per_sec_jobs1"] > 0
    assert result["cold_resume_s"] > 0
    assert result["seq_per_sec_tuned"] > 0
