"""Ablation benchmarks beyond the paper's figures.

These probe the design choices DESIGN.md calls out:

* per-mutation-rule checker detection rate (how often each of the five
  paper rules yields a file the checker rejects);
* alignment rule subsets (how much NL each rule family contributes);
* completion-level mix (the 1 + j + i split of Sec. 3.1.1).
"""

from repro.checker import check_source
from repro.core import (MUTATION_RULES, Mutator, completion_records,
                        segment_count)
from repro.corpus import generate_corpus
from repro.nl import RULE_ORDER, Ruleset
from repro.verilog import parse_module


def _detection_rates(corpus, samples=6):
    rates = {}
    for rule in MUTATION_RULES:
        rejected = total = 0
        for index, text in enumerate(corpus):
            for seed in range(samples):
                result = Mutator(seed=index * 100 + seed) \
                    .mutate(text, count=1, rule=rule)
                if not result.changed:
                    continue
                total += 1
                if not check_source(result.mutated).ok:
                    rejected += 1
        rates[rule] = rejected / total if total else 0.0
    return rates


def test_ablation_mutation_rule_detection(once, benchmark):
    corpus = generate_corpus(10, seed=5)
    rates = once(_detection_rates, corpus)
    print("\nchecker detection rate per mutation rule:")
    for rule, rate in rates.items():
        print(f"  {rule:<16} {rate:6.1%}")
    benchmark.extra_info["rates"] = rates
    # Structural rules are reliably caught; width errors are the
    # stealthiest (they often stay syntactically legal).
    assert rates["word_missing"] > 0.6
    assert rates["additional_word"] > 0.6
    assert min(rates.values()) == rates["width_error"] or \
        rates["width_error"] < 0.7


def _rule_contributions(corpus):
    contributions = {}
    modules = [parse_module(text) for text in corpus]
    for rule in RULE_ORDER:
        ruleset = Ruleset(enabled={rule})
        sentences = sum(len(ruleset.apply(module)) for module in modules)
        contributions[rule] = sentences
    return contributions


def test_ablation_alignment_rule_contributions(once, benchmark):
    corpus = generate_corpus(15, seed=7)
    contributions = once(_rule_contributions, corpus)
    print("\nsentences contributed per alignment rule:")
    for rule, count in contributions.items():
        print(f"  {rule:<20} {count}")
    benchmark.extra_info["contributions"] = contributions
    assert contributions["module_ports"] == 15      # one per module
    assert contributions["behavior"] > 0
    total = sum(contributions.values())
    assert total > 45                                # rich descriptions


def _completion_mix(corpus):
    counts = {"module": 0, "statement": 0, "token": 0, "formula": 0}
    for text in corpus:
        records = list(completion_records(text))
        for record in records:
            level = dict(record.meta)["level"]
            counts[level] += 1
        counts["formula"] += segment_count(text)
    return counts


def test_ablation_completion_levels(once, benchmark):
    corpus = generate_corpus(8, seed=9)
    counts = once(_completion_mix, corpus)
    print("\ncompletion record mix:", counts)
    generated = counts["module"] + counts["statement"] + counts["token"]
    # 1 + j + i formula: tokens dominate, one module record per file.
    assert counts["module"] == 8
    assert counts["token"] > counts["statement"] > counts["module"]
    # Formula counts the same segments the generator emits (token level
    # includes the final EOF-adjacent segment the generator skips).
    assert abs(counts["formula"] - generated - 8) <= 2 * 8
