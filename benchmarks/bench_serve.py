"""Benchmark: job-service throughput + cold-resume latency.

Measures end-to-end jobs/sec through the daemon's HTTP API (submit →
schedule → execute → journal → fetch result) and how quickly a fresh
daemon resumes a journaled backlog after a hard stop, then writes
``BENCH_serve.json`` at the repo root so the serving-layer trajectory
is tracked from PR to PR.
"""

import json
import os
import threading
import time

from repro.serve import Daemon, JobStore, ServeClient, make_server

N_THROUGHPUT_JOBS = 24
N_BACKLOG_JOBS = 12
N_JOURNAL_EVENTS = 600
RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_serve.json")


def _tb_source(index: int) -> str:
    """Distinct testbenches so nothing short-circuits through caches."""
    return (f"module tb;\n"
            f"  reg [7:0] n;\n"
            f"  initial begin\n"
            f"    n = 8'd{index % 200};\n"
            f"    $display(\"PASS %0d\", n + 8'd1);\n"
            f"    $finish;\n"
            f"  end\nendmodule\n")


def _run_daemon(store: str):
    daemon = Daemon(store, workers=2, configure_sim_cache=False)
    server = make_server(daemon, port=0)
    daemon.start()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServeClient(f"http://127.0.0.1:{server.server_address[1]}")
    return daemon, server, client


def _shutdown(daemon, server) -> None:
    server.shutdown()
    server.server_close()
    daemon.stop()


def bench_throughput(store: str) -> dict:
    """End-to-end jobs/sec over the HTTP API."""
    daemon, server, client = _run_daemon(store)
    try:
        start = time.perf_counter()
        ids = [client.submit("simulate",
                             {"source": _tb_source(i)})["id"]
               for i in range(N_THROUGHPUT_JOBS)]
        jobs = client.wait(ids, timeout=300)
        elapsed = time.perf_counter() - start
        assert all(job["state"] == "done" for job in jobs.values())
        for job_id in ids[:3]:
            assert client.result(job_id)["ok"]
    finally:
        _shutdown(daemon, server)
    return {"jobs": N_THROUGHPUT_JOBS,
            "wall_s": round(elapsed, 4),
            "jobs_per_sec": round(N_THROUGHPUT_JOBS / elapsed, 1)}


def bench_cold_resume(store: str) -> dict:
    """Latency from daemon construction to a drained resumed backlog.

    The backlog is journaled by a first daemon that is stopped without
    letting its workers start (workers=never started), simulating a
    killed service with queued work.
    """
    writer = JobStore(store)
    for index in range(N_BACKLOG_JOBS):
        writer.submit("simulate", {"source": _tb_source(index)})
    writer._journal.close()     # hard stop: no snapshot, no compaction

    start = time.perf_counter()
    daemon = Daemon(store, workers=2, configure_sim_cache=False)
    load_s = time.perf_counter() - start
    daemon.start()
    assert daemon.wait_idle(timeout=300)
    drain_s = time.perf_counter() - start
    counts = daemon.store.counts()
    daemon.stop()
    assert counts == {"done": N_BACKLOG_JOBS}, counts
    return {"backlog_jobs": N_BACKLOG_JOBS,
            "store_load_s": round(load_s, 4),
            "resume_drain_s": round(drain_s, 4)}


def bench_journal_replay(store: str) -> dict:
    """Pure store recovery cost over a long journal (no snapshot help
    beyond the periodic cadence)."""
    writer = JobStore(store)
    events = 0
    index = 0
    while events < N_JOURNAL_EVENTS:
        job = writer.submit("simulate", {"source": _tb_source(index)})
        writer.mark_running(job.id)
        writer.mark_done(job.id, {"ok": True, "index": index})
        events += 3
        index += 1
    writer._journal.close()
    start = time.perf_counter()
    reloaded = JobStore(store)
    replay_s = time.perf_counter() - start
    jobs = len(reloaded.jobs)
    reloaded.close()
    return {"journal_events": events,
            "journal_jobs": jobs,
            "replay_s": round(replay_s, 4),
            "events_per_sec": round(events / max(replay_s, 1e-9), 1)}


def run_serve_bench(root: str) -> dict:
    result = {}
    result.update(bench_throughput(os.path.join(root, "throughput")))
    result.update(bench_cold_resume(os.path.join(root, "resume")))
    result.update(bench_journal_replay(os.path.join(root, "journal")))
    return result


def test_serve_throughput_and_resume(once, benchmark, tmp_path):
    result = once(run_serve_bench, str(tmp_path))
    benchmark.extra_info.update(result)
    # Merge-write: bench_gateway.py contributes scenario entries to the
    # same file (and collects first alphabetically) — a blind overwrite
    # here would drop them.
    merged = {}
    try:
        with open(RESULT_PATH, encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        pass
    merged.update(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + json.dumps(result, indent=2, sort_keys=True))
    assert result["jobs_per_sec"] > 0
    assert result["resume_drain_s"] > 0
    assert result["journal_jobs"] == N_JOURNAL_EVENTS // 3
