"""Benchmark: regenerate Table 4 (SiliconCompiler script generation)."""

from repro.experiments import run_table4


def test_table4_script_generation(once, benchmark):
    result = once(run_table4)
    print("\n" + result.rendered)
    report = result.report
    ours13 = report.results["ours-13b"]
    ours7 = report.results["ours-7b"]
    gpt = report.results["gpt-3.5"]
    # Ours: one-shot on four tasks, two iterations on Mixed (paper rows).
    for task in ("Basic", "Layout", "Clock Period", "Core Area"):
        assert ours13[task].function_iteration == 1
        assert ours7[task].function_iteration == 1
    assert ours13["Mixed"].function_iteration == 2
    # GPT-3.5 needs 8-10 iterations on Basic/Layout, fails the rest.
    assert gpt["Basic"].syntax_iteration == 8
    assert gpt["Basic"].function_iteration == 9
    assert gpt["Core Area"].function_iteration is None
    # Verilog-tuned baselines never produce a valid script.
    for name in ("thakur", "llama2-13b"):
        for task_result in report.results[name].values():
            assert task_result.function_iteration is None
