"""Benchmark: sharded augmentation throughput + cache warm-up.

Measures records/sec at jobs=1 vs jobs=N and cold- vs warm-cache wall
time, then writes ``BENCH_scale.json`` at the repo root so the perf
trajectory is tracked from PR to PR.
"""

import json
import os
import time

from repro.core import PipelineConfig
from repro.corpus import generate_corpus
from repro.scale import augment_distributed

CORPUS_SIZE = 32
JOBS = min(4, os.cpu_count() or 1)
RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_scale.json")


def _timed(fn):
    start = time.perf_counter()
    report = fn()
    return time.perf_counter() - start, report


def run_scale_sweep(corpus_root: str, cache_root: str) -> dict:
    os.makedirs(corpus_root, exist_ok=True)
    for index, text in enumerate(generate_corpus(CORPUS_SIZE, seed=0)):
        with open(os.path.join(corpus_root, f"design_{index}.v"), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
    config = PipelineConfig(eda_scripts=False)
    paths = [corpus_root]

    serial_s, serial = _timed(
        lambda: augment_distributed(paths, config, jobs=1))
    parallel_s, parallel = _timed(
        lambda: augment_distributed(paths, config, jobs=JOBS))
    assert parallel.dataset.to_jsonl() == serial.dataset.to_jsonl()

    cache_dir = os.path.join(cache_root, ".cache")
    cold_s, cold = _timed(
        lambda: augment_distributed(paths, config, jobs=JOBS,
                                    cache_dir=cache_dir))
    warm_s, warm = _timed(
        lambda: augment_distributed(paths, config, jobs=JOBS,
                                    cache_dir=cache_dir))
    assert warm.shards_computed == 0, "warm run recomputed shards"

    records = len(serial.dataset)
    return {
        "corpus_files": CORPUS_SIZE,
        "records": records,
        "jobs": JOBS,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "records_per_sec_serial": round(records / serial_s, 1),
        "records_per_sec_parallel": round(records / parallel_s, 1),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "cold_cache_s": round(cold_s, 4),
        "warm_cache_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "warm_shards_computed": warm.shards_computed,
        "shards": cold.shards_total,
    }


def test_scale_throughput_and_cache(once, benchmark, tmp_path):
    result = once(run_scale_sweep, str(tmp_path / "corpus"),
                  str(tmp_path))
    benchmark.extra_info.update(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + json.dumps(result, indent=2, sort_keys=True))
    assert result["warm_shards_computed"] == 0
    assert result["records_per_sec_parallel"] > 0
