"""Benchmark: regenerate Table 3 (Verilog repair on RTLLM)."""

import pytest

from repro.experiments import TABLE3_PAPER_SUCCESS, run_table3


def test_table3_verilog_repair(once, benchmark):
    result = once(run_table3)
    print("\n" + result.rendered)
    measured = {name: result.success(name)
                for name in TABLE3_PAPER_SUCCESS}
    benchmark.extra_info["success"] = measured
    # Exact ordering + close rates (who wins, by what factor).
    assert measured["ours-13b"] > measured["ours-7b"] > \
        measured["gpt-3.5"] > measured["llama2-13b"]
    for name, paper in TABLE3_PAPER_SUCCESS.items():
        assert measured[name] == pytest.approx(paper, abs=0.08), name
    # ours-13B beats GPT-3.5 by roughly the paper's 37.9-point margin.
    assert measured["ours-13b"] - measured["gpt-3.5"] > 0.25
