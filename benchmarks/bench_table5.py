"""Benchmark: regenerate Table 5 (Verilog generation, full sweep).

This is the headline result: 6 models × (17 Thakur problems × 3 prompt
levels + 18 RTLLM problems) × 5 samples, every candidate checked by the
yosys-style checker and simulated against its testbench.
"""

import pytest

from repro.eval import clear_cache
from repro.experiments import TABLE5_PAPER_SUCCESS, run_table5


def test_table5_verilog_generation(once, benchmark):
    clear_cache()
    result = once(run_table5)
    print("\n" + result.rendered)
    measured = {name: {which: result.success(name, which)
                       for which in ("thakur", "rtllm", "all")}
                for name in TABLE5_PAPER_SUCCESS}
    benchmark.extra_info["success"] = measured
    for name, paper in TABLE5_PAPER_SUCCESS.items():
        for which, value in paper.items():
            assert measured[name][which] == \
                pytest.approx(value, abs=0.07), (name, which)
    # Headline: ours-13B improves over Thakur et al. 58.8% → 70.6%.
    assert measured["ours-13b"]["thakur"] > \
        measured["thakur"]["thakur"] + 0.08
    # Alignment-data gain: general aug 25.7% → ours 45.7% overall.
    assert measured["ours-13b"]["all"] > \
        measured["llama2-general-aug"]["all"] + 0.12
