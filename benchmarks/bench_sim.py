"""Benchmark: compiled + codegen simulation backends vs the interpreter.

Runs every golden design (``tests/golden/*.v``) through
:func:`repro.sim.run_simulation` on all three backends and reports
cycles/sec (one cycle = 10 time units — all golden clocks use a #5 half
period), plus cold- vs warm-cache wall time.  Writes ``BENCH_sim.json``
at the repo root so the perf trajectory is tracked from PR to PR (the
simulator twin of ``bench_scale.py`` / ``bench_eval.py``).

``BENCH_sim.json`` fields:

- ``designs`` / ``cycles_per_pass`` — workload size: golden design
  count and simulated cycles per full sweep.
- All ``*_s`` fields are single-threaded CPU seconds
  (``time.process_time``; warm fields are min over WARM_REPS rounds
  interleaved across backends) — immune to the wall-clock jitter and
  the slow machine-speed drift of shared CI runners.
- ``interp_s`` — sweep seconds for the tree-walking interpreter
  (parses + elaborates every run, like always).
- ``compiled_cold_s`` / ``compiled_warm_s`` — closure backend, first
  pass (pays parse+elaborate+lower) vs warm in-memory cache.
- ``codegen_cold_s`` / ``codegen_warm_s`` — codegen backend, first
  pass (emits + persists the generated module source) vs warm
  in-memory cache.
- ``codegen_worker_warm_s`` — a *fresh* cache over the hot disk root,
  modelling a new pool worker: the generated source is exec'd, never
  re-lowered (``worker_compiles`` must be 0).
- ``cycles_per_sec_*`` / ``speedup_*`` — the above as throughput and
  as ratios over ``interp_s``.
- ``compiles`` / ``compile_cache_hits`` / ``fallbacks`` — closure
  backend counters for the cold+warm passes.
- ``gen_source_misses`` — disk-layer misses during the codegen cold
  pass (one per design); ``gen_source_hits`` — disk-layer hits in the
  fresh-worker pass (one per design).  Mirrors the
  ``codegen_hits``/``codegen_misses`` counters in ``/api/health``.
- ``worker_compiles`` — lowering passes in the fresh-worker pass
  (the warm-pool contract: always 0).

The ≥3x closure floor and the ≥8x codegen floor asserted here are the
acceptance bars for the two compiled backends.
"""

import gc
import glob
import json
import os
import tempfile
import time

from repro.sim import (backend_stats, configure_design_cache,
                       reset_backend_stats, run_simulation)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "tests", "golden")
RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_sim.json")
# Warm passes are ~10ms each: min over several samples irons out the
# occasional scheduler or allocator hiccup a single pass would let gate.
WARM_REPS = 7


def _designs() -> dict[str, str]:
    out = {}
    for path in sorted(glob.glob(os.path.join(GOLDEN_DIR, "*.v"))):
        name = os.path.splitext(os.path.basename(path))[0]
        with open(path, encoding="utf-8") as fh:
            out[name] = fh.read()
    return out


def _sweep(designs: dict[str, str], backend: str) -> tuple[float, int]:
    """Total CPU seconds and simulated cycles for one pass.

    CPU time (``time.process_time``), not wall time: the sweeps are
    single-threaded pure Python, and on shared CI runners wall-clock
    jitter of ±25% would swamp the speedup gates below.
    """
    start = time.process_time()
    cycles = 0
    for text in designs.values():
        result = run_simulation(text, backend=backend)
        assert result.ok and result.finished, result.error
        cycles += result.time // 10
    return time.process_time() - start, cycles


def run_sim_bench() -> dict:
    designs = _designs()
    assert len(designs) >= 10, "golden suite shrank below contract"

    # A GC pause inside a ~10ms warm pass skews the ratio by 2x; the
    # sweeps allocate only short-lived Values, so collection can wait.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return _run_sim_bench(designs)
    finally:
        if gc_was_enabled:
            gc.enable()


def _run_sim_bench(designs: dict[str, str]) -> dict:
    _, cycles = _sweep(designs, "interp")

    with tempfile.TemporaryDirectory(prefix="bench-sim-gen-") as root:
        # Cold passes: fresh cache, first sweep pays parse+elaborate+
        # lower (codegen additionally emits + persists module source
        # under the disk root so the fresh-worker pass below can skip
        # lowering entirely).  The two compiled backends key their LRU
        # entries differently, so one shared cache stays warm for both.
        configure_design_cache(root=root)
        reset_backend_stats()
        cold_s, _ = _sweep(designs, "compiled")
        assert backend_stats().fallbacks == 0, \
            backend_stats().fallback_reasons

        codegen_cold_s, _ = _sweep(designs, "codegen")
        cold_gen = backend_stats().copy()
        assert cold_gen.fallbacks == 0, cold_gen.fallback_reasons
        assert cold_gen.codegen_misses == len(designs)

        # Warm passes, interleaved round-robin: the speedup gates are
        # ratios, and machine speed drifts over a multi-second bench
        # run — sampling all three backends within each round keeps
        # numerator and denominator in the same drift regime.
        interp_samples, warm_samples, cg_samples = [], [], []
        for _ in range(WARM_REPS):
            interp_samples.append(_sweep(designs, "interp")[0])
            warm_samples.append(_sweep(designs, "compiled")[0])
            cg_samples.append(_sweep(designs, "codegen")[0])
        interp_s = min(interp_samples)
        warm_s = min(warm_samples)
        codegen_warm_s = min(cg_samples)
        stats = backend_stats().copy()
        assert stats.fallbacks == 0, stats.fallback_reasons
        assert stats.cache_hits >= 2 * len(designs) * WARM_REPS

        # Fresh worker over the hot disk cache: exec only, zero
        # re-lowers — the warm-pool contract.
        configure_design_cache(root=root)
        reset_backend_stats()
        worker_s, _ = _sweep(designs, "codegen")
        worker = backend_stats().copy()
        assert worker.compiles == 0, worker.summary()
        assert worker.codegen_hits == len(designs), worker.summary()
    configure_design_cache()

    result = {
        "designs": len(designs),
        "cycles_per_pass": cycles,
        "interp_s": round(interp_s, 4),
        "compiled_cold_s": round(cold_s, 4),
        "compiled_warm_s": round(warm_s, 4),
        "codegen_cold_s": round(codegen_cold_s, 4),
        "codegen_warm_s": round(codegen_warm_s, 4),
        "codegen_worker_warm_s": round(worker_s, 4),
        "cycles_per_sec_interp": round(cycles / interp_s, 1),
        "cycles_per_sec_compiled_cold": round(cycles / cold_s, 1),
        "cycles_per_sec_compiled_warm": round(cycles / warm_s, 1),
        "cycles_per_sec_codegen_warm": round(cycles / codegen_warm_s, 1),
        "speedup_cold": round(interp_s / cold_s, 2),
        "speedup_warm": round(interp_s / warm_s, 2),
        "speedup_codegen_warm": round(interp_s / codegen_warm_s, 2),
        "compiles": stats.compiles,
        "compile_cache_hits": stats.cache_hits,
        "fallbacks": stats.fallbacks,
        "gen_source_hits": worker.codegen_hits,
        "gen_source_misses": cold_gen.codegen_misses,
        "worker_compiles": worker.compiles,
    }
    return result


def test_sim_backend_throughput(once, benchmark):
    result = once(run_sim_bench)
    benchmark.extra_info.update(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + json.dumps(result, indent=2, sort_keys=True))
    assert result["fallbacks"] == 0
    assert result["worker_compiles"] == 0
    # Acceptance bars, warm cycles/sec over the interpreter on the
    # golden designs: ≥3x for the closure backend, ≥8x for codegen.
    assert result["speedup_warm"] >= 3.0, result
    assert result["speedup_codegen_warm"] >= 8.0, result
