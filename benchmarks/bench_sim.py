"""Benchmark: compiled simulation backend vs the interpreter.

Runs every golden design (``tests/golden/*.v``) through
:func:`repro.sim.run_simulation` on both backends and reports
cycles/sec (one cycle = 10 time units — all golden clocks use a #5 half
period), plus cold- vs warm-compile-cache wall time: a warm
:class:`~repro.sim.compile.CompiledDesignCache` skips parse, elaborate
*and* lowering.  Writes ``BENCH_sim.json`` at the repo root so the perf
trajectory is tracked from PR to PR (the simulator twin of
``bench_scale.py`` / ``bench_eval.py``).

The ≥3x compiled-over-interpreted cycles/sec floor asserted here is the
acceptance bar for the compiled backend.
"""

import glob
import json
import os
import time

from repro.sim import (backend_stats, configure_design_cache,
                       reset_backend_stats, run_simulation)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "tests", "golden")
RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_sim.json")
REPS = 3


def _designs() -> dict[str, str]:
    out = {}
    for path in sorted(glob.glob(os.path.join(GOLDEN_DIR, "*.v"))):
        name = os.path.splitext(os.path.basename(path))[0]
        with open(path, encoding="utf-8") as fh:
            out[name] = fh.read()
    return out


def _sweep(designs: dict[str, str], backend: str) -> tuple[float, int]:
    """Total wall seconds and simulated cycles for one pass."""
    start = time.perf_counter()
    cycles = 0
    for text in designs.values():
        result = run_simulation(text, backend=backend)
        assert result.ok and result.finished, result.error
        cycles += result.time // 10
    return time.perf_counter() - start, cycles


def run_sim_bench() -> dict:
    designs = _designs()
    assert len(designs) >= 10, "golden suite shrank below contract"

    # Interpreter baseline (parses + elaborates every run, like always).
    interp_s, cycles = min(
        (_sweep(designs, "interp") for _ in range(REPS)),
        key=lambda pair: pair[0])

    # Cold: fresh cache, first pass pays parse+elaborate+lower.
    configure_design_cache()
    reset_backend_stats()
    cold_s, _ = _sweep(designs, "compiled")
    assert backend_stats().fallbacks == 0, \
        backend_stats().fallback_reasons

    # Warm: same process-wide cache, lowering fully amortised.
    warm_s = min(_sweep(designs, "compiled")[0] for _ in range(REPS))
    stats = backend_stats()
    assert stats.fallbacks == 0, stats.fallback_reasons
    assert stats.cache_hits >= len(designs) * REPS

    result = {
        "designs": len(designs),
        "cycles_per_pass": cycles,
        "interp_s": round(interp_s, 4),
        "compiled_cold_s": round(cold_s, 4),
        "compiled_warm_s": round(warm_s, 4),
        "cycles_per_sec_interp": round(cycles / interp_s, 1),
        "cycles_per_sec_compiled_cold": round(cycles / cold_s, 1),
        "cycles_per_sec_compiled_warm": round(cycles / warm_s, 1),
        "speedup_cold": round(interp_s / cold_s, 2),
        "speedup_warm": round(interp_s / warm_s, 2),
        "compiles": stats.compiles,
        "compile_cache_hits": stats.cache_hits,
        "fallbacks": stats.fallbacks,
    }
    return result


def test_sim_backend_throughput(once, benchmark):
    result = once(run_sim_bench)
    benchmark.extra_info.update(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + json.dumps(result, indent=2, sort_keys=True))
    assert result["fallbacks"] == 0
    # Acceptance bar: ≥3x cycles/sec over the interpreter on the
    # golden designs once the compile cache is warm.
    assert result["speedup_warm"] >= 3.0, result
