"""Benchmarks: regenerate Figures 2, 3, 5/6 and 7."""

from repro.experiments import run_fig2, run_fig3, run_fig5, run_fig7


def test_fig2_language_scarcity(once, benchmark):
    result = once(run_fig2)
    print("\n" + result.rendered)
    assert result.claim_holds
    assert result.github_ratio > 10          # orders of magnitude
    assert result.stackoverflow_ratio > 100


def test_fig3_scaling_law(once, benchmark):
    result = once(run_fig3, corpus_size=30)
    print("\n" + result.rendered)
    benchmark.extra_info["points"] = result.points
    assert result.monotone_trend
    # Largest training set at least 10x the smallest.
    assert result.points[-1][0] > 8 * result.points[0][0]


def test_fig5_program_analysis_case_study(once, benchmark):
    result = once(run_fig5)
    print("\n" + result.rendered)
    assert "module <counter> has <four> ports" in result.nl_annotated
    assert "<add> <2'd1> to the count" in result.nl_annotated
    # The Fig. 6 feedback line matches the paper's format.
    assert result.fig6_feedback.startswith("./111_3-bit LFSR.v:")
    assert "unexpected ']'" in result.fig6_feedback


def test_fig7_dataset_mix_ablation(once, benchmark):
    result = once(run_fig7, corpus_size=24)
    print("\n" + result.rendered)
    benchmark.extra_info["losses"] = result.losses
    assert result.alignment_beats_completion
    # Table-5 tie-in: 25.7% -> 45.7% all-success.
    general, ours = result.pass_gap
    assert ours - general > 0.15
