"""Benchmark beyond the paper: synthesis correctness via equivalence.

Every synthesizable design family in the corpus is checked for
random-vector equivalence against its own gate-level netlist — the
repo's regression gate for the yosys-stand-in synthesizer that backs the
Table-4 flow evaluation.
"""

import random

from repro.corpus import generate_design
from repro.eda import check_equivalence

SYNTHESIZABLE_FAMILIES = (
    "counter", "alu", "mux", "adder", "comparator", "decoder",
    "edge_detect", "freq_divider", "gray_counter", "parity", "pwm",
    "shift_register", "fsm",
)


def _sweep(seeds=(0, 1)):
    outcomes = {}
    for family in SYNTHESIZABLE_FAMILIES:
        for seed in seeds:
            text = generate_design(random.Random(seed), seed, family)
            result = check_equivalence(text, vectors=8, seed=seed)
            outcomes[(family, seed)] = result
    return outcomes


def test_synthesis_equivalence_sweep(once, benchmark):
    outcomes = once(_sweep)
    failures = {key: result for key, result in outcomes.items()
                if not result.equivalent}
    print(f"\nequivalence sweep: {len(outcomes)} designs, "
          f"{len(failures)} failures")
    for (family, seed), result in failures.items():
        print(f"  FAIL {family}#{seed}: {result.error or result.mismatches}")
    assert not failures
