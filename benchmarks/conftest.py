"""Shared benchmark configuration.

Every benchmark runs its experiment once per round (the sweeps are the
workload, not micro-ops) and attaches the reproduced table plus paper
targets to ``benchmark.extra_info`` so `--benchmark-verbose` shows the
side-by-side.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the target exactly once and return its result."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner
