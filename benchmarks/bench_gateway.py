"""Scenario benchmarks for the asyncio serving gateway.

Three scenarios in the fixed-total/fixed-concurrency style (stress,
cold-start, kill-a-worker-mid-drain), each reporting wall time,
sustained jobs/s and p50/p95/p99 end-to-end latency where it applies.
Results merge into ``BENCH_serve.json`` under ``"scenarios"`` next to
the legacy daemon numbers, so the serving-layer trajectory (ROADMAP
Open item 1: 10–100x the threaded ~311 jobs/s) is tracked per PR.

* **stress** — C concurrent keep-alive clients each push M probe jobs
  through ``POST /api/submit`` with a bounded in-flight window; one
  watcher polls a single batched ``GET /api/jobs?ids=…`` query.
  Latency is submit-request → observed-terminal per job.
* **cold_start** — journal a probe backlog, hard-stop, then measure
  store replay, gateway time-to-first-health, and backlog drain.
* **kill_worker** — a real ``repro serve --gateway`` subprocess is
  SIGKILLed mid-drain and restarted; the round trip must lose nothing
  and the re-drain time is reported.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from urllib.parse import urlsplit

from repro.serve import (Daemon, GatewayConfig, GatewayServer, JobStore,
                         ServeClient, TERMINAL_STATES)

REPO = os.path.join(os.path.dirname(__file__), os.pardir)
RESULT_PATH = os.path.join(REPO, "BENCH_serve.json")

STRESS_CLIENTS = 32
STRESS_JOBS_PER_CLIENT = 125
STRESS_WINDOW = 8
COLD_BACKLOG = 300
KILL_JOBS = 60
KILL_SLEEP_MS = 10


def _percentiles(samples: list[float]) -> dict:
    ordered = sorted(samples)
    pick = lambda q: ordered[min(len(ordered) - 1,
                                 int(q * len(ordered)))]
    return {"p50_ms": round(pick(0.50) * 1000, 2),
            "p95_ms": round(pick(0.95) * 1000, 2),
            "p99_ms": round(pick(0.99) * 1000, 2)}


class _Conn:
    """Minimal keep-alive HTTP/1.1 client over asyncio streams."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, url: str) -> "_Conn":
        parts = urlsplit(url)
        reader, writer = await asyncio.open_connection(
            parts.hostname, parts.port)
        return cls(reader, writer)

    async def request(self, method: str, path: str,
                      body: dict | None = None):
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        head = (f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n")
        self.writer.write(head.encode("latin-1") + payload)
        await self.writer.drain()
        status_line = await self.reader.readline()
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        blob = json.loads(await self.reader.readexactly(length))
        return status, blob, headers

    def close(self) -> None:
        self.writer.close()


async def _stress_run(url: str) -> dict:
    total = STRESS_CLIENTS * STRESS_JOBS_PER_CLIENT
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    pending: dict[str, tuple] = {}
    throttled = 0

    async def submitter(client_index: int) -> None:
        nonlocal throttled
        conn = await _Conn.open(url)
        outstanding: set = set()
        try:
            for index in range(STRESS_JOBS_PER_CLIENT):
                while len(outstanding) >= STRESS_WINDOW:
                    done, outstanding_left = await asyncio.wait(
                        outstanding,
                        return_when=asyncio.FIRST_COMPLETED)
                    outstanding = set(outstanding_left)
                started = time.perf_counter()
                while True:
                    status, blob, headers = await conn.request(
                        "POST", "/api/submit",
                        {"kind": "probe",
                         "spec": {"payload":
                                  f"{client_index}-{index}"}})
                    if status == 200:
                        break
                    if status == 429:       # honour backpressure
                        throttled += 1
                        await asyncio.sleep(
                            float(headers.get("retry-after", "0.05")))
                        continue
                    raise RuntimeError(f"submit failed: {status} "
                                       f"{blob}")
                future = loop.create_future()
                pending[blob["id"]] = (started, future)
                outstanding.add(future)
            if outstanding:
                await asyncio.wait(outstanding)
        finally:
            conn.close()

    async def watcher() -> None:
        conn = await _Conn.open(url)
        try:
            while len(latencies) < total:
                if pending:
                    ids = list(pending)[:256]
                    _, states, _ = await conn.request(
                        "GET", "/api/states?ids=" + ",".join(ids))
                    now = time.perf_counter()
                    for job_id, state in states.items():
                        if state in TERMINAL_STATES:
                            assert state == "done", (job_id, state)
                            started, future = pending.pop(job_id)
                            latencies.append(now - started)
                            future.set_result(None)
                await asyncio.sleep(0.003)
        finally:
            conn.close()

    start = time.perf_counter()
    await asyncio.gather(watcher(),
                         *(submitter(index)
                           for index in range(STRESS_CLIENTS)))
    elapsed = time.perf_counter() - start
    result = {"jobs": total, "clients": STRESS_CLIENTS,
              "window": STRESS_WINDOW,
              "wall_s": round(elapsed, 4),
              "jobs_per_sec": round(total / elapsed, 1),
              "throttled_429": throttled}
    result.update(_percentiles(latencies))
    return result


def bench_stress(store: str) -> dict:
    """Concurrency-ramp stress: fixed request total, fixed clients."""
    daemon = Daemon(store, workers=2, batch_limit=128,
                    configure_sim_cache=False)
    daemon.start()
    server = GatewayServer(
        daemon, config=GatewayConfig(max_queue_depth=512)).start()
    try:
        return asyncio.run(_stress_run(server.url))
    finally:
        server.stop()
        daemon.stop()


def bench_cold_start(store: str) -> dict:
    """Journal a backlog, hard-stop, measure resume-to-drained."""
    writer = JobStore(store)
    writer.submit_many([("probe", {"payload": index, "sleep_ms": 0},
                         0, []) for index in range(COLD_BACKLOG)])
    writer._journal.close()     # hard stop: no snapshot, no compaction

    start = time.perf_counter()
    daemon = Daemon(store, workers=2, batch_limit=64,
                    configure_sim_cache=False)
    replay_s = time.perf_counter() - start
    server = GatewayServer(daemon).start()
    ServeClient(server.url).health()
    ready_s = time.perf_counter() - start
    daemon.start()
    assert daemon.wait_idle(timeout=300)
    drain_s = time.perf_counter() - start
    counts = daemon.store.counts()
    server.stop()
    daemon.stop()
    assert counts == {"done": COLD_BACKLOG}, counts
    return {"backlog_jobs": COLD_BACKLOG,
            "replay_s": round(replay_s, 4),
            "gateway_ready_s": round(ready_s, 4),
            "drain_s": round(drain_s, 4),
            "drain_jobs_per_sec": round(
                COLD_BACKLOG / max(drain_s - ready_s, 1e-9), 1)}


def _spawn_gateway(store: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", store,
         "--port", "0", "--workers", "2", "--gateway"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=REPO)
    url = None
    while True:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            url = match.group(1)
            break
    assert url is not None, "gateway subprocess failed to serve"
    return proc, url


def bench_kill_worker(store: str) -> dict:
    """SIGKILL a draining gateway process; restart; lose nothing."""
    proc, url = _spawn_gateway(store)
    client = ServeClient(url, timeout=10)
    ids = [client.submit("probe", {"payload": index,
                                   "sleep_ms": KILL_SLEEP_MS})["id"]
           for index in range(KILL_JOBS)]
    # Let the drain get properly underway before the kill.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        done = sum(job["state"] == "done"
                   for job in client.jobs(ids=ids))
        if done >= KILL_JOBS // 4:
            break
        time.sleep(0.01)
    kill_at = time.perf_counter()
    proc.kill()
    proc.wait()
    proc.stdout.close()

    proc, url = _spawn_gateway(store)
    try:
        client = ServeClient(url, timeout=10)
        jobs = client.wait(ids, timeout=120)
        redrain_s = time.perf_counter() - kill_at
        lost = [job_id for job_id, job in jobs.items()
                if job["state"] != "done"]
        assert not lost, f"lost jobs across kill: {lost}"
        assert len(jobs) == KILL_JOBS
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
        proc.stdout.close()
    return {"jobs": KILL_JOBS, "done_before_kill": done,
            "redrain_s": round(redrain_s, 4), "lost": 0}


def run_gateway_bench(root: str) -> dict:
    return {"stress": bench_stress(os.path.join(root, "stress")),
            "cold_start": bench_cold_start(os.path.join(root, "cold")),
            "kill_worker": bench_kill_worker(
                os.path.join(root, "kill"))}


def test_gateway_scenarios(once, benchmark, tmp_path):
    scenarios = once(run_gateway_bench, str(tmp_path))
    benchmark.extra_info.update(
        {f"stress_{key}": value
         for key, value in scenarios["stress"].items()})
    merged = {}
    try:
        with open(RESULT_PATH, encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        pass
    merged["scenarios"] = scenarios
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + json.dumps(scenarios, indent=2, sort_keys=True))
    assert scenarios["stress"]["jobs"] == \
        STRESS_CLIENTS * STRESS_JOBS_PER_CLIENT
    assert scenarios["stress"]["jobs_per_sec"] > 0
    assert scenarios["kill_worker"]["lost"] == 0
