"""Benchmark: inference decoding throughput and model-host latency.

Measures tokens/sec through the naive full-window ``generate()`` loop
vs the batched KV-cache decoder (:func:`repro.infer.sample_tokens`) at
batch=1 and batched, plus the :class:`repro.infer.ModelHost` cold-load
vs warm-hit latency, then writes ``BENCH_infer.json`` at the repo root
so the serving-layer trajectory is tracked from PR to PR.

Every timed decode asserts token-identity between the two paths first —
a speedup over a wrong decoder would be worthless.
"""

import json
import os
import time

import numpy as np

from repro.infer import ModelHost, sample_tokens
from repro.llm.tiny_transformer import (TinyTransformerLM,
                                        TransformerConfig)
from repro.llm.tokenizer import Tokenizer
from repro.train import model_weights_bundle

RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_infer.json")

#: Production-shaped decode scale: real width, prompts + completions
#: inside the window so the KV path never recomputes a full prefix.
D_MODEL = 64
MAX_LEN = 128
VOCAB = 192
PROMPT_LEN = 24
NEW_TOKENS = 96
BATCH = 8


def _model(seed: int = 0) -> TinyTransformerLM:
    return TinyTransformerLM(TransformerConfig(
        vocab_size=VOCAB, d_model=D_MODEL, n_heads=4, n_layers=2,
        d_ff=4 * D_MODEL, max_len=MAX_LEN, seed=seed))


def _prompts(count: int) -> list[list[int]]:
    rng = np.random.default_rng(7)
    return [[3] + list(rng.integers(4, VOCAB, size=PROMPT_LEN - 1))
            for _ in range(count)]


def bench_decode_throughput(model) -> dict:
    prompts = _prompts(BATCH)
    seeds = list(range(BATCH))

    start = time.perf_counter()
    naive = [model.generate(p, NEW_TOKENS, 0.8, seed)
             for p, seed in zip(prompts, seeds)]
    naive_wall = time.perf_counter() - start

    start = time.perf_counter()
    kv_solo = [sample_tokens(model, [p], max_tokens=NEW_TOKENS,
                             temperature=0.8, seeds=seed)[0]
               for p, seed in zip(prompts, seeds)]
    kv_solo_wall = time.perf_counter() - start

    start = time.perf_counter()
    kv_batched = sample_tokens(model, prompts, max_tokens=NEW_TOKENS,
                               temperature=0.8, seeds=seeds)
    kv_batched_wall = time.perf_counter() - start

    assert kv_solo == naive and kv_batched == naive  # token-identical
    tokens = BATCH * NEW_TOKENS
    return {
        "decode_tokens": tokens,
        "tok_per_sec_naive": round(tokens / naive_wall, 1),
        "tok_per_sec_kv_batch1": round(tokens / kv_solo_wall, 1),
        "tok_per_sec_kv_batched": round(tokens / kv_batched_wall, 1),
        "kv_speedup_batch1": round(naive_wall / kv_solo_wall, 2),
        "kv_speedup_batched": round(naive_wall / kv_batched_wall, 2),
    }


def bench_host_latency(model) -> dict:
    bundle = model_weights_bundle(
        model, Tokenizer.train(["module wire endmodule"], vocab_size=64))
    host = ModelHost(capacity=2)
    start = time.perf_counter()
    host.load_bundle(bundle)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(50):
        host.load_bundle(bundle)
    warm = (time.perf_counter() - start) / 50
    assert host.stats.misses == 1 and host.stats.hits == 50
    return {"host_cold_load_ms": round(cold * 1000, 3),
            "host_warm_hit_us": round(warm * 1e6, 2)}


def run_infer_bench() -> dict:
    model = _model()
    result = {"d_model": D_MODEL, "max_len": MAX_LEN, "batch": BATCH,
              "new_tokens": NEW_TOKENS}
    result.update(bench_decode_throughput(model))
    result.update(bench_host_latency(model))
    return result


def test_infer_throughput_and_host(once, benchmark):
    result = once(run_infer_bench)
    benchmark.extra_info.update(result)
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + json.dumps(result, indent=2, sort_keys=True))
    # The tentpole's perf claim: KV-cache decoding beats the naive
    # full-window loop by >= 3x at bench scale, batched or not.
    assert result["kv_speedup_batch1"] >= 3.0
    assert result["kv_speedup_batched"] >= 3.0
    assert result["host_warm_hit_us"] < result["host_cold_load_ms"] * 1000
