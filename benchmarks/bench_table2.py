"""Benchmark: regenerate Table 2 (dataset scale through augmentation)."""

from repro.core import Task
from repro.experiments import run_table2


def test_table2_dataset_scale(once, benchmark):
    result = once(run_table2, corpus_size=24)
    print("\n" + result.rendered)
    benchmark.extra_info["records_total"] = result.raw_count
    # Shape checks mirroring the paper's Table 2 ordering:
    assert result.count(Task.EDA_SCRIPT) == 200          # exactly 200
    assert result.count(Task.WORD_COMPLETION) > \
        result.count(Task.STATEMENT_COMPLETION)
    assert result.count(Task.STATEMENT_COMPLETION) > \
        result.count(Task.MODULE_COMPLETION)
    assert result.count(Task.NL_VERILOG) > 0
    assert result.count(Task.DEBUG) > 0
