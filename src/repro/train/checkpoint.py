"""Atomic, digest-verified training checkpoints with resume.

Layout under the checkpoint root::

    manifest.json               index: format, fingerprint, checkpoints
    checkpoint-<step>.json      full training state after <step> steps

**Write discipline** (journal-first, mirroring ``repro.serve.store``):
a checkpoint blob is atomically written — and durably renamed into
place — *before* the manifest is rewritten to point at it, and the
manifest records the blob's sha256.  A crash between the two writes
leaves the manifest pointing at the previous checkpoint, which is
always safe: replaying the extra steps from there is deterministic and
converges on identical weights.  A fingerprint mismatch (different
train config, different dataset, format bump) discards old checkpoints
instead of resuming across incompatible state.

**Fault injection.** ``REPRO_TRAIN_CRASH_AFTER`` SIGKILLs the process
around the Nth checkpoint write; ``REPRO_TRAIN_CRASH_MODE`` picks the
point — ``kill`` after the full commit (blob + manifest), ``early``
after the blob but *before* the manifest update (exercising the
journal-first ordering).  See ``tests/test_train_service.py``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import queue
import signal
import threading

import numpy as np

from ..core.records import atomic_write_text

#: Bump when the checkpoint blob format changes; old stores are
#: discarded (training restarts from scratch — still deterministic).
#: v2: payloads carry ``model_config`` + ``tokenizer`` so inference
#: can load weights straight from a checkpoint directory.
TRAIN_FORMAT_VERSION = 2

#: Environment hooks for the SIGKILL-at-checkpoint tests.
CRASH_AFTER_ENV = "REPRO_TRAIN_CRASH_AFTER"
CRASH_MODE_ENV = "REPRO_TRAIN_CRASH_MODE"

#: Checkpoints kept in the manifest (latest N; older files unlinked).
KEEP_CHECKPOINTS = 2


def encode_array(array: np.ndarray) -> dict:
    """Lossless JSON form of one ndarray (raw bytes, base64)."""
    contiguous = np.ascontiguousarray(array)
    return {"dtype": str(contiguous.dtype),
            "shape": list(contiguous.shape),
            "data": base64.b64encode(contiguous.tobytes()).decode("ascii")}


def decode_array(blob: dict) -> np.ndarray:
    """Inverse of :func:`encode_array` (bit-exact round trip)."""
    raw = base64.b64decode(blob["data"])
    return np.frombuffer(raw, dtype=np.dtype(blob["dtype"])) \
        .reshape(blob["shape"]).copy()


def state_digest(arrays: list[np.ndarray]) -> str:
    """sha256 over the raw bytes (+ shapes) of an ordered array list."""
    hasher = hashlib.sha256()
    for array in arrays:
        contiguous = np.ascontiguousarray(array)
        hasher.update(str(contiguous.shape).encode("utf-8"))
        hasher.update(str(contiguous.dtype).encode("utf-8"))
        hasher.update(contiguous.tobytes())
    return hasher.hexdigest()


class CheckpointStore:
    """Manifest-indexed checkpoint blobs for one training run.

    ``fingerprint`` must hash everything that defines the run (format
    version, train config, dataset digest); a store opened under a
    different fingerprint starts clean rather than resuming
    incompatible state.
    """

    def __init__(self, root: str, fingerprint: str,
                 crash_after: int | None = None,
                 crash_mode: str | None = None):
        self.root = root
        self.fingerprint = fingerprint
        self.writes = 0
        self._manifest_path = os.path.join(root, "manifest.json")
        self._checkpoints: list[dict] = []      # [{step, file, sha256}]
        if crash_after is None:
            crash_after = int(os.environ.get(CRASH_AFTER_ENV, "0") or 0)
            crash_mode = crash_mode or os.environ.get(CRASH_MODE_ENV)
        self._crash_after = crash_after or 0
        self._crash_mode = crash_mode or "kill"
        self._load_manifest()

    # -- manifest ---------------------------------------------------------

    def _load_manifest(self) -> None:
        try:
            with open(self._manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return
        if (manifest.get("version") != TRAIN_FORMAT_VERSION
                or manifest.get("fingerprint") != self.fingerprint):
            self._clear_files()     # stale config/data: start clean
            return
        self._checkpoints = list(manifest.get("checkpoints", []))

    def _clear_files(self) -> None:
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in names:
            if name.startswith("checkpoint-") and name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.root, name))
                except OSError:
                    pass

    def _write_manifest(self) -> None:
        manifest = {"version": TRAIN_FORMAT_VERSION,
                    "fingerprint": self.fingerprint,
                    "checkpoints": self._checkpoints}
        atomic_write_text(self._manifest_path,
                          json.dumps(manifest, indent=2, sort_keys=True)
                          + "\n")

    # -- save / load ------------------------------------------------------

    def _crash(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)

    def save(self, step: int, payload: dict) -> None:
        """Commit one checkpoint: blob first, then the manifest entry."""
        text = json.dumps(payload, ensure_ascii=False, sort_keys=True) \
            + "\n"
        path = os.path.join(self.root, f"checkpoint-{step:08d}.json")
        atomic_write_text(path, text)
        self.writes += 1
        fire = self._crash_after and self.writes >= self._crash_after
        if fire and self._crash_mode == "early":
            self._crash()       # blob durable, manifest not yet updated
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        entry = {"step": step, "file": os.path.basename(path),
                 "sha256": digest}
        self._checkpoints = [c for c in self._checkpoints
                             if c["step"] != step] + [entry]
        self._checkpoints.sort(key=lambda c: c["step"])
        dropped = self._checkpoints[:-KEEP_CHECKPOINTS]
        self._checkpoints = self._checkpoints[-KEEP_CHECKPOINTS:]
        self._write_manifest()
        for old in dropped:     # after the manifest stops naming them
            try:
                os.unlink(os.path.join(self.root, old["file"]))
            except OSError:
                pass
        if fire:
            self._crash()       # full commit completed

    def latest(self) -> dict | None:
        """The newest digest-verified checkpoint payload, or None.

        Walks backwards past corrupt/missing blobs (e.g. a crash that
        beat the unlink of a superseded file) — resuming from an older
        checkpoint is always correct, just slower.
        """
        for entry in reversed(self._checkpoints):
            path = os.path.join(self.root, entry["file"])
            try:
                with open(path, encoding="utf-8") as handle:
                    text = handle.read()
            except OSError:
                continue
            if hashlib.sha256(
                    text.encode("utf-8")).hexdigest() != entry["sha256"]:
                continue
            try:
                return json.loads(text)
            except ValueError:
                continue
        return None


class AsyncCheckpointWriter:
    """Overlap checkpoint encode+write with training compute.

    The hot path hands over a *snapshot* — raw array copies, the only
    part that must happen synchronously so the state can keep mutating
    — and a single writer thread does the expensive part (base64/JSON
    encoding plus :meth:`CheckpointStore.save`) while the next steps
    run.  Commit order is queue order, so the journal-first discipline
    of the store is untouched: blobs still land before their manifest
    entries, in step order.

    A failed write is re-raised on the *next* :meth:`submit` (or on
    :meth:`close`): the trainer never runs more than ``maxsize`` steps
    past an unreported checkpoint failure.  :meth:`close` drains the
    queue — callers rely on that barrier before reading
    ``store.writes`` or treating the final checkpoint as durable.
    """

    def __init__(self, store: CheckpointStore, maxsize: int = 2):
        self.store = store
        self._queue: queue.Queue = queue.Queue(maxsize=maxsize)
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run,
                                        name="ckpt-writer", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            step, encode = job
            try:
                self.store.save(step, encode())
            except BaseException as exc:       # noqa: BLE001 - re-raised
                self._error = exc

    def _check(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def submit(self, step: int, encode) -> None:
        """Queue one checkpoint: ``encode()`` runs on the writer thread
        and must close over state that no longer mutates (a snapshot)."""
        self._check()
        self._queue.put((step, encode))

    def close(self) -> None:
        """Drain pending writes and stop the thread; raises the first
        unreported write error.  Idempotent."""
        if self._thread.is_alive():
            self._queue.put(None)
            self._thread.join()
        self._check()
