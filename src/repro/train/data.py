"""Deterministic training data: shard-cache loading + epoch schedules.

**Corpus loading.** Training data comes from the same sharded,
content-addressed augmentation layer the rest of the system uses:
:func:`corpus_dataset` drives :class:`repro.scale.AugmentationService`
over the corpus with a shard cache attached, so a pipeline whose
augment stage already ran sees ``misses == 0`` — every shard is *read*
from the cache, nothing is re-augmented — and the merged dataset is in
canonical (content digest, discovery index) order regardless of corpus
listing, shard count or ``jobs``.

**Schedules.** Everything downstream is a pure function of
``(dataset digest, train config)``: the per-epoch permutation is seeded
by :func:`stable_seed` (a content hash, mirroring
``repro.core.content_seed``), and :func:`epoch_plan` slices the
permuted sequences into macro-steps of fixed micro-batches.  Micro-
batch boundaries never depend on worker count, which is what lets the
service reduce gradients in canonical micro-batch order and stay
byte-identical across ``--jobs``.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable

import numpy as np

from ..core.pipeline import PipelineConfig
from ..core.records import Dataset
from ..llm.tokenizer import Tokenizer
from ..llm.trainer import records_to_text
from ..scale.service import augment_distributed
from ..scale.store import DEFAULT_NUM_SHARDS


def corpus_dataset(paths: Iterable[str],
                   config: PipelineConfig | None = None,
                   cache_dir: str | None = None, jobs: int = 1,
                   num_shards: int = DEFAULT_NUM_SHARDS,
                   use_threads: bool = False):
    """Canonically-ordered training dataset for a corpus.

    Returns ``(dataset, scale_report)``.  With a warm ``cache_dir``
    every shard comes straight from the cache
    (``scale_report.cache_misses == 0``) — the train stage of a
    pipeline re-reads what the augment stage computed instead of
    re-augmenting.
    """
    report = augment_distributed(paths, config=config, jobs=jobs,
                                 cache_dir=cache_dir,
                                 num_shards=num_shards,
                                 use_threads=use_threads)
    return report.dataset, report


def dataset_digest(dataset: Dataset) -> str:
    """Content digest of a dataset in its lossless record form.

    The anchor for every derived seed and for checkpoint-store
    compatibility: two corpora that merge to the same records train
    identically, and an edited corpus invalidates old checkpoints.
    """
    hasher = hashlib.sha256()
    for record in dataset:
        hasher.update(json.dumps(record.to_dict(), ensure_ascii=False,
                                 sort_keys=True).encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()


def stable_seed(*parts: object) -> int:
    """Content-hash seed (process-hash-randomisation-proof)."""
    digest = hashlib.sha256(
        "\x1f".join(str(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << 63) - 1)


def encode_sequences(dataset: Dataset, tokenizer: Tokenizer
                     ) -> list[list[int]]:
    """Token-id sequences in dataset (= canonical) order."""
    return [tokenizer.encode(text, add_special=True)
            for text in records_to_text(dataset)]


def _pad_batch(sequences: list[list[int]], pad_id: int,
               seq_len: int) -> tuple[np.ndarray, np.ndarray]:
    """(ids, targets) arrays for one micro-batch; targets −1 on pads."""
    batch_ids, batch_targets = [], []
    for sequence in sequences:
        clipped = sequence[:seq_len + 1]
        ids = clipped[:-1]
        targets = clipped[1:]
        pad = seq_len - len(ids)
        batch_ids.append(ids + [pad_id] * pad)
        batch_targets.append(targets + [-1] * pad)
    return np.array(batch_ids), np.array(batch_targets)


def epoch_plan(sequences: list[list[int]], digest: str, seed: int,
               epoch: int, batch_size: int, micro_batch: int,
               seq_len: int, pad_id: int
               ) -> list[list[tuple[np.ndarray, np.ndarray]]]:
    """The epoch's optimizer steps: ``[step][micro] -> (ids, targets)``.

    Sequences are permuted with a seed derived from
    ``(dataset digest, seed, epoch)``, sliced into macro-steps of
    ``batch_size`` and further into micro-batches of ``micro_batch``.
    A pure function of its arguments — never of worker count — so the
    reduction order over micro-batches is identical for any ``jobs``.
    """
    rng = np.random.default_rng(stable_seed("epoch", digest, seed, epoch))
    order = rng.permutation(len(sequences))
    usable = [sequences[i] for i in order if len(sequences[i]) >= 2]
    plan: list[list[tuple[np.ndarray, np.ndarray]]] = []
    for start in range(0, len(usable), batch_size):
        macro = usable[start:start + batch_size]
        micros = [_pad_batch(macro[m:m + micro_batch], pad_id, seq_len)
                  for m in range(0, len(macro), micro_batch)]
        plan.append(micros)
    return plan
