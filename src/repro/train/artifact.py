"""The trained-model artefact: what a finetuning run hands to eval.

A training run's deliverable is a small JSON blob — no weights — that
the evaluation layer can score like any other model: the derived
:class:`~repro.llm.behavioral.ModelProfile` (registered at evaluation
time via :func:`repro.llm.register_artifact`) plus the provenance that
makes the derivation auditable (weights digest, loss trajectory,
dataset composition).  It is a pure function of the training run, so
job-service result blobs carrying it stay byte-identical across
direct/daemon/resumed execution.

The profile derivation applies the same saturating data-scaling link
the built-in profiles are calibrated with
(:func:`repro.llm.behavioral.derived_solve_rate`): the base model is
the paper's finetuning starting point (Llama2-13B), aligned-pair volume
lifts the solve rates, debug-pair volume lifts the repair rate, and
EDA-script pairs unlock script skill — which is exactly the paper's
Table-5/Fig-7 claim that the *data mix* is what moves these numbers.
A validation-loss factor scales the uplift so an undertrained run
(high loss) earns less of it.
"""

from __future__ import annotations

import math
from dataclasses import asdict

from ..core.records import Dataset, Task
from ..llm.behavioral import (PROFILES, ModelProfile, ScriptSkill,
                              derived_solve_rate)

#: Bump when the artefact schema or profile derivation changes.
#: v2: artefacts embed the trained weights bundle, so evaluation
#: samples the actual transformer instead of the behavioural bridge.
TRAIN_ARTIFACT_VERSION = 2

#: The finetuning starting point (the paper finetunes Llama-2).
BASE_PROFILE = "llama2-13b"

#: Script skill granted once the dataset contains EDA-script pairs
#: (mirrors the ours-* calibration; see Table 4).
_TRAINED_SCRIPTS = {
    "Basic": ScriptSkill(1, 2),
    "Layout": ScriptSkill(2, 2),
    "Clock Period": ScriptSkill(2, 3),
    "Core Area": ScriptSkill(2, 3),
    "Mixed": ScriptSkill(3, 4),
}


def _loss_factor(final_loss: float) -> float:
    """How much of the data uplift the run earned, in [0.25, 1].

    A saturating logistic on the validation loss: a well-converged run
    (loss well under ~4 nats/token for these tiny vocabularies) keeps
    the full uplift, an undertrained one keeps a floor fraction.  Pure
    float arithmetic on one input — deterministic.
    """
    if not math.isfinite(final_loss) or final_loss > 700.0:
        return 0.25     # divergent run (or exp would overflow): floor
    return 0.25 + 0.75 / (1.0 + math.exp(final_loss - 4.0))


def derive_profile(name: str, dataset: Dataset, final_loss: float,
                   params_b: int = 13) -> ModelProfile:
    """Behavioural profile for a finetuned model, from its run.

    Deterministic in ``(name, dataset records, final_loss, params_b)``.
    """
    base = PROFILES[BASE_PROFILE]
    counts = dataset.task_counts()
    aligned = counts.get(Task.NL_VERILOG, 0)
    debug = (counts.get(Task.DEBUG, 0)
             + counts.get(Task.MASK_COMPLETION, 0))
    scripts = counts.get(Task.EDA_SCRIPT, 0)
    total = len(dataset)
    factor = _loss_factor(final_loss)
    solve_rate = {}
    for tier, rate in base.solve_rate.items():
        lifted = derived_solve_rate(rate, aligned, total, params_b)
        solve_rate[tier] = round(rate + (lifted - rate) * factor, 6)
    repair_gain = 0.18 * math.log10(1 + debug) * factor
    noise_drop = min(0.4, 0.12 * math.log10(1 + total) * factor)
    return ModelProfile(
        name=name, display=f"Trained({name})", params_b=params_b,
        solve_rate=solve_rate,
        solved_syntax_noise=round(
            base.solved_syntax_noise * (1 - noise_drop), 6),
        failed_syntax_rate=round(
            base.failed_syntax_rate * (1 - noise_drop), 6),
        repair_rate=round(min(base.repair_rate + repair_gain, 0.95), 6),
        script_skill=(dict(_TRAINED_SCRIPTS) if scripts
                      else {k: ScriptSkill(99, 99)
                            for k in _TRAINED_SCRIPTS}))


def _artifact_base(name: str, report, dataset: Dataset) -> dict:
    profile = derive_profile(name, dataset, report.final_loss)
    per_task = {task.value: count
                for task, count in sorted(dataset.task_counts().items(),
                                          key=lambda kv: kv[0].value)}
    return {
        "format": TRAIN_ARTIFACT_VERSION,
        "name": name,
        "profile": asdict(profile),
        "weights_sha256": report.weights_sha256,
        "final_loss": report.final_loss,
        "losses": list(report.losses),
        "val_losses": list(report.val_losses),
        "steps": report.steps,
        "epochs": report.epochs,
        "trained_tokens": report.trained_tokens,
        "dataset": {"records": len(dataset),
                    "digest": report.dataset_digest,
                    "per_task": per_task},
    }


def build_artifact(name: str, report, dataset: Dataset) -> dict:
    """The artefact blob for one finished run (pure in run + dataset).

    ``report`` is a :class:`repro.train.service.TrainReport`; the
    import is kept out of module scope to avoid a cycle (the service
    builds artefacts).  When the report carries a weights bundle it is
    embedded verbatim: ``repro evaluate --artifact`` and the serve
    pipeline then score *sampled* transformer output, and inference
    jobs can decode from the artefact with no filesystem coupling.
    """
    blob = _artifact_base(name, report, dataset)
    if getattr(report, "weights_bundle", None) is not None:
        blob["weights"] = report.weights_bundle
    return blob
