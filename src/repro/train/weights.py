"""Portable weight bundles: the checkpoint → inference handoff.

A *weights bundle* is the JSON-safe, self-contained form of one trained
model: the ``TransformerConfig`` fields, the tokenizer's inverse vocab,
every parameter in canonical ``params()`` order (losslessly base64
encoded), an optional LoRA section (rank/alpha/seed, so adapters can be
re-attached before the saved A/B factors are restored), and the sha256
:func:`state_digest` of the saved arrays — the identity the inference
:class:`repro.infer.ModelHost` keys its LRU on and verifies at load.

Bundles travel inside train artifacts (``repro train --out`` /
the serve ``train`` result blob) so evaluation and inference are pure
functions of job specs — no filesystem coupling — and can also be
pulled straight out of a :class:`CheckpointStore` directory via
:func:`bundle_from_checkpoint` for local serving.
"""

from __future__ import annotations

import json
import os

from ..llm.lora import attach_lora
from ..llm.tiny_transformer import TinyTransformerLM, TransformerConfig
from ..llm.tokenizer import Tokenizer
from .checkpoint import (CheckpointStore, decode_array, encode_array,
                         state_digest)

__all__ = ["model_weights_bundle", "model_from_bundle",
           "bundle_from_checkpoint", "bundle_from_payload"]


def model_weights_bundle(model: TinyTransformerLM, tokenizer: Tokenizer,
                         lora: dict | None = None) -> dict:
    """Snapshot ``model`` (+ tokenizer) as a portable bundle.

    ``lora`` must be ``{"rank", "alpha", "seed"}`` when adapters are
    attached, so :func:`model_from_bundle` can rebuild the same
    parameter layout before restoring the saved factors.
    """
    arrays = [p.value for p in model.params()]
    bundle = {
        "model": {"vocab_size": model.config.vocab_size,
                  "d_model": model.config.d_model,
                  "n_heads": model.config.n_heads,
                  "n_layers": model.config.n_layers,
                  "d_ff": model.config.d_ff,
                  "max_len": model.config.max_len,
                  "seed": model.config.seed},
        "tokenizer": list(tokenizer.inverse),
        "params": [encode_array(a) for a in arrays],
        "weights_sha256": state_digest(arrays),
    }
    if lora is not None:
        bundle["lora"] = {"rank": int(lora["rank"]),
                          "alpha": float(lora["alpha"]),
                          "seed": int(lora.get("seed", 0))}
    return bundle


def model_from_bundle(bundle: dict, merge: bool = True
                      ) -> tuple[TinyTransformerLM, Tokenizer]:
    """Rebuild the live model + tokenizer from a bundle.

    Verifies the restored arrays against ``weights_sha256`` (a corrupt
    or hand-edited bundle fails loudly, mirroring ``CheckpointStore``'s
    digest discipline).  With ``merge`` (the default, what inference
    wants) any LoRA adapters are folded into the base weights after
    restore, so the served model is a plain dense transformer.
    """
    for field in ("model", "tokenizer", "params", "weights_sha256"):
        if field not in bundle:
            raise ValueError(f"weights bundle missing {field!r} "
                             "(checkpoint predates weight bundles?)")
    model = TinyTransformerLM(TransformerConfig(**bundle["model"]))
    lora = bundle.get("lora")
    if lora is not None:
        attach_lora(model, rank=lora["rank"], alpha=lora["alpha"],
                    seed=lora.get("seed", 0), freeze_base=True)
    params = model.params()
    if len(params) != len(bundle["params"]):
        raise ValueError(
            f"weights bundle has {len(bundle['params'])} arrays, "
            f"model expects {len(params)}")
    arrays = [decode_array(blob) for blob in bundle["params"]]
    digest = state_digest(arrays)
    if digest != bundle["weights_sha256"]:
        raise ValueError("weights bundle digest mismatch: "
                         f"{digest[:12]} != "
                         f"{bundle['weights_sha256'][:12]}")
    for param, array in zip(params, arrays):
        if param.value.shape != array.shape:
            raise ValueError(f"shape mismatch {param.value.shape} "
                             f"vs {array.shape}")
        param.value[...] = array
    if lora is not None and merge:
        from ..llm.lora import merge_lora
        merge_lora(model)
    inverse = list(bundle["tokenizer"])
    tokenizer = Tokenizer(vocab={piece: index
                                 for index, piece in enumerate(inverse)},
                          inverse=inverse)
    return model, tokenizer


def bundle_from_payload(payload: dict) -> dict:
    """Bundle form of one checkpoint payload (see ``service._payload``)."""
    for field in ("model_config", "tokenizer", "params"):
        if field not in payload:
            raise ValueError(
                f"checkpoint payload missing {field!r} — written by a "
                "pre-inference repro.train? retrain to serve it")
    arrays = [decode_array(blob) for blob in payload["params"]]
    return {"model": dict(payload["model_config"]),
            "tokenizer": list(payload["tokenizer"]),
            "params": payload["params"],
            "weights_sha256": state_digest(arrays),
            **({"lora": payload["lora"]} if "lora" in payload else {})}


def bundle_from_checkpoint(root: str,
                           fingerprint: str | None = None) -> dict:
    """Load the newest verified checkpoint under ``root`` as a bundle.

    With ``fingerprint=None`` the store's own manifest fingerprint is
    trusted (read-only open of an existing run directory).
    """
    if fingerprint is None:
        manifest_path = os.path.join(root, "manifest.json")
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                fingerprint = json.load(handle).get("fingerprint", "")
        except (OSError, ValueError) as exc:
            raise ValueError(f"no readable manifest under {root}") \
                from exc
    payload = CheckpointStore(root, fingerprint).latest()
    if payload is None:
        raise ValueError(f"no verified checkpoint under {root}")
    return bundle_from_payload(payload)
