"""Shared-memory gradient transport for resident training workers.

When micro-batch gradients cross a process boundary every optimizer
step, pickling them (base-64 of raw tensor bytes through the executor's
result queue) dominates the step.  This module gives each resident
worker *lane* a pair of preallocated float64 mailboxes instead:

* ``bcast``   — one block shared by every lane; the service writes the
  step's reduced gradient there once and each worker replays the
  optimizer update from it (see :mod:`repro.train.worker`).
* ``out[s]``  — one block per lane ``s``, laid out as ``(rows, size)``;
  the worker stores each micro-batch's flat gradient in its own row and
  only ``(index, row, loss, count)`` tuples travel through pickle.

The transport is purely operational: the same float64 values cross the
boundary either way, so loss curves and weights are byte-identical to
the pickle fallback (and to ``jobs=1``).  Three backends:

* ``local`` — plain numpy arrays, for thread pools (same process).
* ``shm``   — :mod:`multiprocessing.shared_memory` blocks, for process
  pools.  Workers attach by name; the service owns the lifetime and
  unlinks on close.
* pickle fallback — when shared memory is unavailable (exotic
  platforms, permission-locked ``/dev/shm``), ``open_channel_group``
  returns ``None`` and the worker protocol ships gradients in the
  payloads/results instead.

Ordering is free of torn reads by construction: the service writes
``bcast`` strictly before dispatching a step and reads ``out`` rows
strictly after every lane's future resolved; workers touch the blocks
only inside their step call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

try:                            # pragma: no cover - import probe
    from multiprocessing import shared_memory
except ImportError:             # pragma: no cover - exotic platforms
    shared_memory = None


@dataclass
class GradChannel:
    """One lane's view of the transport: ``bcast`` in, ``out`` rows out."""

    bcast: np.ndarray
    out: np.ndarray
    _shms: tuple = ()

    def close(self) -> None:
        """Drop this process's mappings (the service unlinks)."""
        self.bcast = None
        self.out = None
        for shm in self._shms:
            try:
                shm.close()
            except Exception:
                pass
        self._shms = ()


@dataclass
class ChannelGroup:
    """Service-side ownership of every lane's blocks for one run."""

    bcast: np.ndarray
    outs: list[np.ndarray]
    specs: list[dict]
    kind: str = "local"
    _shms: list = field(default_factory=list)

    def close(self) -> None:
        """Release and (for shm) unlink every block.  Idempotent."""
        self.bcast = None
        self.outs = []
        for shm in self._shms:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass
        self._shms = []


def open_channel_group(width: int, rows: int, size: int,
                       use_threads: bool) -> ChannelGroup | None:
    """Allocate transport for ``width`` lanes of ``rows`` micro-batches.

    Returns ``None`` when no zero-copy transport exists for the pool
    type (process pools without working shared memory) — callers fall
    back to pickled gradients, which is slower but identical in output.
    """
    rows = max(1, rows)
    if use_threads:
        bcast = np.zeros(size)
        outs = [np.zeros((rows, size)) for _ in range(width)]
        specs = [{"kind": "local", "bcast": bcast, "out": out}
                 for out in outs]
        return ChannelGroup(bcast=bcast, outs=outs, specs=specs,
                            kind="local")
    if shared_memory is None:
        return None
    shms = []
    try:
        bcast_shm = shared_memory.SharedMemory(create=True, size=size * 8)
        shms.append(bcast_shm)
        bcast = np.ndarray((size,), dtype=np.float64,
                           buffer=bcast_shm.buf)
        bcast[...] = 0.0
        outs, specs = [], []
        for _ in range(width):
            out_shm = shared_memory.SharedMemory(create=True,
                                                 size=rows * size * 8)
            shms.append(out_shm)
            out = np.ndarray((rows, size), dtype=np.float64,
                             buffer=out_shm.buf)
            out[...] = 0.0
            outs.append(out)
            specs.append({"kind": "shm", "bcast": bcast_shm.name,
                          "out": out_shm.name, "rows": rows,
                          "size": size})
    except (OSError, ValueError):
        for shm in shms:
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass
        return None
    return ChannelGroup(bcast=bcast, outs=outs, specs=specs, kind="shm",
                        _shms=shms)


def attach_channel(spec: dict | None) -> GradChannel | None:
    """Worker-side view of a lane's transport (``None`` = pickle)."""
    if spec is None:
        return None
    if spec["kind"] == "local":
        return GradChannel(bcast=spec["bcast"], out=spec["out"])
    # Fork-pool workers share the parent's resource tracker, so the
    # attach-side register is idempotent with the parent's create-side
    # one; the parent's close()+unlink() retires the name exactly once.
    bcast_shm = shared_memory.SharedMemory(name=spec["bcast"])
    out_shm = shared_memory.SharedMemory(name=spec["out"])
    bcast = np.ndarray((spec["size"],), dtype=np.float64,
                       buffer=bcast_shm.buf)
    out = np.ndarray((spec["rows"], spec["size"]), dtype=np.float64,
                     buffer=out_shm.buf)
    return GradChannel(bcast=bcast, out=out,
                       _shms=(bcast_shm, out_shm))
