"""Checkpointed, sharded finetuning service (the ``repro.train`` layer).

The last one-shot subsystem — ``llm.trainer`` — scaled out the same way
``repro.scale`` scaled augmentation: training becomes a crash-safe,
parallel, cache-aware workload that closes the paper's
augment → train → evaluate loop.

* :mod:`data`       — deterministic corpus loading straight from the
  ``repro.scale`` shard caches (content-ordered, no re-augmentation on
  a warm cache) plus the epoch/batch schedule, a pure function of
  (dataset digest, config)
* :mod:`checkpoint` — :class:`CheckpointStore`: atomic, digest-verified
  ``checkpoint-<step>.json`` blobs behind a journal-first manifest
  (blob durably on disk *before* the manifest points at it)
* :mod:`worker`     — fused flat-buffer gradient kernel plus the
  resident-worker protocol (weights live in the worker across steps;
  only schedule slices and gradients cross the pool boundary)
* :mod:`shm`        — shared-memory gradient mailboxes for fork pools
  (gradients stop round-tripping through pickle)
* :mod:`tune`       — ``repro tune``: profile a (jobs, pool,
  micro_batch, cadence) grid as ordinary service jobs and persist the
  machine-local winner (``work/tune.json``)
* :mod:`artifact`   — the trained-model artefact and its derived
  behavioural profile (what ``repro.eval`` scores via ``llm.registry``)
* :mod:`service`    — :class:`TrainerService`: data-parallel gradient
  accumulation with canonical-order reduction (loss curves and final
  weights are byte-identical across ``--jobs``) and checkpoint/resume
  (a SIGKILL'd run resumes to bit-identical weights)

See ROADMAP "repro.train" for the guarantees and the proof harness
(``tests/test_train_service.py``, ``tests/test_pipeline_e2e.py``).
"""

from .artifact import (TRAIN_ARTIFACT_VERSION, build_artifact,
                       derive_profile)
from .checkpoint import (CRASH_AFTER_ENV, CRASH_MODE_ENV,
                         TRAIN_FORMAT_VERSION, CheckpointStore,
                         decode_array, encode_array, state_digest)
from .data import (corpus_dataset, dataset_digest, encode_sequences,
                   epoch_plan, stable_seed)
from .service import TrainConfig, TrainReport, TrainerService, train_run
from .tune import (TuneCandidate, TuneOutcome, TuneReport, default_grid,
                   load_tuned, save_tuned, tune_corpus)
from .weights import (bundle_from_checkpoint, bundle_from_payload,
                      model_from_bundle, model_weights_bundle)
from .worker import (FlatGrads, flat_microbatch_grads, microbatch_grads,
                     model_state, resident_close, resident_init,
                     resident_step, run_train_chunk, set_model_state)

__all__ = [
    "TrainConfig", "TrainReport", "TrainerService", "train_run",
    "CheckpointStore", "TRAIN_FORMAT_VERSION", "CRASH_AFTER_ENV",
    "CRASH_MODE_ENV", "encode_array", "decode_array", "state_digest",
    "corpus_dataset", "dataset_digest", "encode_sequences", "epoch_plan",
    "stable_seed",
    "run_train_chunk", "microbatch_grads", "model_state",
    "set_model_state", "FlatGrads", "flat_microbatch_grads",
    "resident_init", "resident_step", "resident_close",
    "TuneCandidate", "TuneOutcome", "TuneReport", "default_grid",
    "tune_corpus", "save_tuned", "load_tuned",
    "build_artifact", "derive_profile", "TRAIN_ARTIFACT_VERSION",
    "model_weights_bundle", "model_from_bundle", "bundle_from_payload",
    "bundle_from_checkpoint",
]
