"""Checkpointed, sharded finetuning service (the ``repro.train`` layer).

The last one-shot subsystem — ``llm.trainer`` — scaled out the same way
``repro.scale`` scaled augmentation: training becomes a crash-safe,
parallel, cache-aware workload that closes the paper's
augment → train → evaluate loop.

* :mod:`data`       — deterministic corpus loading straight from the
  ``repro.scale`` shard caches (content-ordered, no re-augmentation on
  a warm cache) plus the epoch/batch schedule, a pure function of
  (dataset digest, config)
* :mod:`checkpoint` — :class:`CheckpointStore`: atomic, digest-verified
  ``checkpoint-<step>.json`` blobs behind a journal-first manifest
  (blob durably on disk *before* the manifest points at it)
* :mod:`worker`     — module-level micro-batch gradient kernel mapped
  over :class:`repro.scale.runner.WorkPool` workers
* :mod:`artifact`   — the trained-model artefact and its derived
  behavioural profile (what ``repro.eval`` scores via ``llm.registry``)
* :mod:`service`    — :class:`TrainerService`: data-parallel gradient
  accumulation with canonical-order reduction (loss curves and final
  weights are byte-identical across ``--jobs``) and checkpoint/resume
  (a SIGKILL'd run resumes to bit-identical weights)

See ROADMAP "repro.train" for the guarantees and the proof harness
(``tests/test_train_service.py``, ``tests/test_pipeline_e2e.py``).
"""

from .artifact import (TRAIN_ARTIFACT_VERSION, build_artifact,
                       derive_profile)
from .checkpoint import (CRASH_AFTER_ENV, CRASH_MODE_ENV,
                         TRAIN_FORMAT_VERSION, CheckpointStore,
                         decode_array, encode_array, state_digest)
from .data import (corpus_dataset, dataset_digest, encode_sequences,
                   epoch_plan, stable_seed)
from .service import TrainConfig, TrainReport, TrainerService, train_run
from .weights import (bundle_from_checkpoint, bundle_from_payload,
                      model_from_bundle, model_weights_bundle)
from .worker import (microbatch_grads, model_state, run_train_chunk,
                     set_model_state)

__all__ = [
    "TrainConfig", "TrainReport", "TrainerService", "train_run",
    "CheckpointStore", "TRAIN_FORMAT_VERSION", "CRASH_AFTER_ENV",
    "CRASH_MODE_ENV", "encode_array", "decode_array", "state_digest",
    "corpus_dataset", "dataset_digest", "encode_sequences", "epoch_plan",
    "stable_seed",
    "run_train_chunk", "microbatch_grads", "model_state",
    "set_model_state",
    "build_artifact", "derive_profile", "TRAIN_ARTIFACT_VERSION",
    "model_weights_bundle", "model_from_bundle", "bundle_from_payload",
    "bundle_from_checkpoint",
]
