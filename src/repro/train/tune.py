"""``repro tune`` — machine-local autotuning for the trainer.

In the spirit of NeMo's pretraining autotuner: generate a small grid of
(jobs, pool type, micro_batch, checkpoint cadence) candidates, run a
short profiling slice for each, and persist the winner so every later
``repro train`` / ``bench_train`` starts from the fastest known
configuration *for this machine* — core count, fork cost, and /dev/shm
behaviour differ per host, so the right pool is an empirical question.

The profiling slices are **ordinary service jobs**: each candidate is a
normalised ``train`` job submitted to a :class:`~repro.serve.store
.JobStore`, dispatched by the :class:`~repro.serve.scheduler.Scheduler`
and executed through :func:`~repro.serve.executor.execute_batch` — the
exact code path the daemon runs, so a tuned config is measured under
real service conditions (spec normalisation, checkpoint stores, the
shared augment shard cache).  A warm-up ``augment`` job runs first so
corpus augmentation is charged once, not to the first candidate.

Output knobs vs operational knobs: ``micro_batch`` changes gradient
grouping and therefore the trained weights (it is part of the config
fingerprint); ``jobs``/``pool``/``checkpoint_every`` must not change
anything.  The tuner *verifies* that on its own results — candidates
with equal ``micro_batch`` must report byte-identical weights digests,
or tuning aborts rather than recommend a config that broke
determinism.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections.abc import Callable, Sequence
from dataclasses import asdict, dataclass, field

from ..core.records import atomic_write_text

#: Environment override for where the tuned config lives.
TUNE_CONFIG_ENV = "REPRO_TUNE_CONFIG"

#: Default machine-local location ``repro train``/benchmarks consult.
DEFAULT_TUNE_PATH = os.path.join("work", "tune.json")

TUNE_FORMAT_VERSION = 1


def machine_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass(frozen=True)
class TuneCandidate:
    """One grid point: an operational config to profile."""

    jobs: int = 1
    pool: str | None = None         # None = serial; "threads" | "procs"
    micro_batch: int = 2
    checkpoint_every: int = 4

    def label(self) -> str:
        pool = self.pool or "serial"
        return (f"jobs={self.jobs} pool={pool} "
                f"micro_batch={self.micro_batch} "
                f"ckpt={self.checkpoint_every}")


@dataclass
class TuneOutcome:
    """One candidate's measured profile slice."""

    candidate: TuneCandidate
    job_id: str
    ok: bool
    seconds: float = 0.0
    seq_per_sec: float = 0.0
    steps: int = 0
    weights_sha256: str = ""
    error: str | None = None


@dataclass
class TuneReport:
    """Every outcome plus the winning config."""

    outcomes: list[TuneOutcome] = field(default_factory=list)
    best: TuneOutcome | None = None
    cpus: int = 1

    def to_blob(self) -> dict:
        """The persisted ``work/tune.json`` shape."""
        best = self.best
        return {
            "version": TUNE_FORMAT_VERSION,
            "cpus": self.cpus,
            "config": None if best is None else {
                "jobs": best.candidate.jobs,
                "pool": best.candidate.pool,
                "micro_batch": best.candidate.micro_batch,
                "checkpoint_every": best.candidate.checkpoint_every,
            },
            "seq_per_sec": None if best is None else best.seq_per_sec,
            "candidates": [
                {**asdict(out.candidate), "job": out.job_id,
                 "ok": out.ok, "seconds": round(out.seconds, 4),
                 "seq_per_sec": round(out.seq_per_sec, 2),
                 "weights_sha256": out.weights_sha256,
                 "error": out.error}
                for out in self.outcomes],
        }


def default_grid(max_jobs: int | None = None,
                 micro_batches: Sequence[int] = (1, 2),
                 cadence: int = 4) -> list[TuneCandidate]:
    """The stock grid: serial vs thread vs process lanes, per
    micro-batch size, plus a checkpoint-cadence probe on the serial
    baseline (cadence is output-invariant, so one probe suffices)."""
    if max_jobs is None:
        max_jobs = min(4, max(2, machine_cpus()))
    grid: list[TuneCandidate] = []
    for micro in micro_batches:
        grid.append(TuneCandidate(1, None, micro, cadence))
        if max_jobs > 1:
            grid.append(TuneCandidate(max_jobs, "threads", micro,
                                      cadence))
            grid.append(TuneCandidate(max_jobs, "procs", micro, cadence))
    grid.append(TuneCandidate(1, None, micro_batches[0], 0))
    return grid


def _probe_spec(paths: list[str], candidate: TuneCandidate, *,
                epochs: int, batch_size: int, seq_len: int,
                vocab_size: int, d_model: int, max_records: int,
                seed: int) -> dict:
    """A short-slice train spec for one candidate (normalised at
    submit time by ``validate_spec``, like any service job)."""
    return {"paths": list(paths), "seed": seed,
            "register_as": "tune-probe",
            "epochs": epochs, "batch_size": batch_size,
            "micro_batch": candidate.micro_batch,
            "seq_len": seq_len, "vocab_size": vocab_size,
            "d_model": d_model, "max_records": max_records,
            "checkpoint_every": candidate.checkpoint_every,
            "pool": candidate.pool,
            "pool_jobs": (None if candidate.jobs <= 1
                          else candidate.jobs)}


def tune_corpus(paths: list[str], store_dir: str | None = None,
                grid: Sequence[TuneCandidate] | None = None, *,
                epochs: int = 1, batch_size: int = 8, seq_len: int = 32,
                vocab_size: int = 192, d_model: int = 16,
                max_records: int = 48, seed: int = 0,
                log: Callable[[str], None] | None = None) -> TuneReport:
    """Profile every grid candidate as a service job; pick the fastest.

    ``store_dir`` hosts the job store + workdir for this tuning session
    (default: a fresh temp dir, so candidate checkpoints can never
    resume across sessions and inflate a timing).
    """
    from ..serve.executor import execute_batch
    from ..serve.jobs import validate_spec
    from ..serve.scheduler import Scheduler
    from ..serve.store import JobStore

    if store_dir is None:
        store_dir = tempfile.mkdtemp(prefix="repro-tune-")
    grid = list(grid) if grid is not None else default_grid()
    if not grid:
        raise ValueError("empty tuning grid")
    say = log or (lambda message: None)
    store = JobStore(os.path.join(store_dir, "store"))
    workdir = os.path.join(store_dir, "work")
    report = TuneReport(cpus=machine_cpus())
    try:
        scheduler = Scheduler(
            state_fn=lambda job_id: (store.jobs[job_id].state
                                     if job_id in store.jobs else None))
        # Warm the shared augment shard cache through the same
        # machinery, so augmentation cost lands on this job instead of
        # skewing the first candidate's timing.
        warm = store.submit(
            "augment",
            validate_spec("augment", {"paths": list(paths),
                                      "seed": seed}))
        scheduler.submit(warm)
        candidates: dict[str, TuneCandidate] = {}
        for candidate in grid:
            # Normalised at submit time, like any daemon submission —
            # the journal only ever holds runnable specs.
            job = store.submit(
                "train",
                validate_spec(
                    "train",
                    _probe_spec(paths, candidate, epochs=epochs,
                                batch_size=batch_size, seq_len=seq_len,
                                vocab_size=vocab_size, d_model=d_model,
                                max_records=max_records, seed=seed)),
                after=[warm.id])
            scheduler.submit(job)
            candidates[job.id] = candidate
        while True:
            batch = scheduler.next_batch()
            if batch is None:
                break
            for job in batch.jobs:
                store.mark_running(job.id)
            start = time.perf_counter()
            result = execute_batch(batch.kind, batch.jobs, workdir,
                                   engine_jobs=1, resolve=store.result)
            elapsed = time.perf_counter() - start
            for job in batch.jobs:
                outcome = result.outcomes[job.id]
                if outcome.ok:
                    store.mark_done(job.id, outcome.blob)
                else:
                    store.mark_failed(job.id, outcome.error or "failed")
                if job.id not in candidates:
                    continue        # the augment warm-up
                candidate = candidates[job.id]
                if outcome.ok:
                    steps = int(outcome.blob["steps"])
                    rate = (steps * batch_size / elapsed
                            if elapsed > 0 else 0.0)
                    out = TuneOutcome(
                        candidate=candidate, job_id=job.id, ok=True,
                        seconds=elapsed, seq_per_sec=rate, steps=steps,
                        weights_sha256=outcome.blob["weights_sha256"])
                else:
                    out = TuneOutcome(candidate=candidate,
                                      job_id=job.id, ok=False,
                                      error=outcome.error)
                report.outcomes.append(out)
                say(f"{candidate.label()}: "
                    + (f"{out.seq_per_sec:.1f} seq/s "
                       f"({out.seconds * 1e3:.0f} ms)" if out.ok
                       else f"FAILED ({out.error})"))
            scheduler.finish(batch)
    finally:
        store.close()
    _check_determinism(report.outcomes)
    winners = [out for out in report.outcomes if out.ok]
    if not winners:
        detail = "; ".join(f"{out.candidate.label()}: {out.error}"
                           for out in report.outcomes) or "no outcomes"
        raise RuntimeError(f"every tuning candidate failed ({detail})")
    report.best = max(winners, key=lambda out: out.seq_per_sec)
    say(f"winner: {report.best.candidate.label()} "
        f"({report.best.seq_per_sec:.1f} seq/s)")
    return report


def _check_determinism(outcomes: list[TuneOutcome]) -> None:
    """Candidates differing only in operational knobs must agree on
    weights byte-for-byte; a drifting transport disqualifies the whole
    tuning session (better no tuned config than a wrong one)."""
    groups: dict[int, dict[str, str]] = {}
    for out in outcomes:
        if out.ok:
            groups.setdefault(out.candidate.micro_batch, {})[
                out.candidate.label()] = out.weights_sha256
    for micro, digests in groups.items():
        if len(set(digests.values())) > 1:
            detail = ", ".join(f"{label}={digest[:12]}"
                               for label, digest in digests.items())
            raise RuntimeError(
                f"tuning candidates at micro_batch={micro} disagree on "
                f"final weights — determinism regression: {detail}")


def save_tuned(report: TuneReport,
               path: str = DEFAULT_TUNE_PATH) -> str:
    """Persist the winning config (atomic write); returns the path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    atomic_write_text(path, json.dumps(report.to_blob(), indent=2,
                                       sort_keys=True) + "\n")
    return path


def load_tuned(path: str | None = None) -> dict | None:
    """The machine-local tuned config, or None.

    Resolution order: explicit ``path`` → ``$REPRO_TUNE_CONFIG`` →
    ``./work/tune.json``.  Returns the ``config`` mapping
    (``jobs``/``pool``/``micro_batch``/``checkpoint_every``) — callers
    apply only the knobs they honour.
    """
    candidate = path or os.environ.get(TUNE_CONFIG_ENV) \
        or DEFAULT_TUNE_PATH
    try:
        with open(candidate, encoding="utf-8") as handle:
            blob = json.load(handle)
    except (OSError, ValueError):
        return None
    if blob.get("version") != TUNE_FORMAT_VERSION:
        return None
    config = blob.get("config")
    if not isinstance(config, dict):
        return None
    jobs = config.get("jobs")
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
        return None
    if config.get("pool") not in (None, "threads", "procs"):
        return None
    return config
