"""The checkpointed, data-parallel trainer.

**Determinism contract.**  A run's loss curve and final weights are a
pure function of ``(dataset, TrainConfig)`` — never of ``jobs``,
thread vs process pools, checkpoint cadence, or how many SIGKILL-and-
resume cycles it survived.  Three mechanisms enforce this:

1. the epoch/batch schedule is a pure function of the dataset digest
   and config (:func:`repro.train.data.epoch_plan`);
2. per-micro-batch gradients are reduced in canonical micro-batch
   index order, weighted by valid-token counts — identical arithmetic
   whether the micro-batches ran inline, on threads, or on forked
   workers (:mod:`repro.train.worker`);
3. checkpoints capture the *complete* optimisation state (weights,
   Adam moments and step count, loss history, schedule position) in a
   lossless encoding, so a resumed run replays the remaining steps
   with bit-identical inputs (:mod:`repro.train.checkpoint`).

Proven by ``tests/test_train_service.py`` (property + SIGKILL
harness).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.records import Dataset
from ..llm.tiny_transformer import Adam, TinyTransformerLM, \
    TransformerConfig
from ..llm.tokenizer import Tokenizer
from ..llm.trainer import evaluate_transformer, records_to_text, \
    split_dataset
from ..scale.runner import WorkPool
from .checkpoint import (TRAIN_FORMAT_VERSION, CheckpointStore,
                         decode_array, encode_array, state_digest)
from .data import dataset_digest, encode_sequences, epoch_plan
from .weights import model_weights_bundle
from .worker import microbatch_grads, model_state, run_train_chunk, \
    set_model_state


@dataclass
class TrainConfig:
    """Every knob that affects training output (all in the fingerprint).

    Defaults are sized for the tiny numpy transformer: small enough
    that a full pipeline run stays interactive, big enough that the
    loss curve genuinely falls.
    """

    epochs: int = 2
    batch_size: int = 4
    micro_batch: int = 2
    seq_len: int = 48
    lr: float = 3e-3
    seed: int = 0
    vocab_size: int = 384
    d_model: int = 16
    n_heads: int = 2
    n_layers: int = 1
    d_ff: int = 32
    #: Canonical-order prefix cap on the training dataset (None = all).
    max_records: int | None = 256
    #: Checkpoint cadence in optimizer steps (0 = final only).
    checkpoint_every: int = 4
    val_fraction: float = 0.1

    def validate(self) -> None:
        if self.epochs < 1 or self.batch_size < 1 or self.micro_batch < 1:
            raise ValueError("epochs/batch_size/micro_batch must be >= 1")
        if self.seq_len < 2:
            raise ValueError("seq_len must be >= 2")
        if self.d_model % self.n_heads:
            raise ValueError("n_heads must divide d_model")
        if not (0.0 < self.val_fraction < 1.0):
            raise ValueError("val_fraction must be in (0, 1)")

    def fingerprint(self) -> str:
        """Stable hash of every knob; stamps the checkpoint store."""
        blob = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def model_config(self, vocab: int) -> dict:
        """:class:`TransformerConfig` fields for this run's model."""
        return {"vocab_size": vocab, "d_model": self.d_model,
                "n_heads": self.n_heads, "n_layers": self.n_layers,
                "d_ff": self.d_ff, "max_len": self.seq_len,
                "seed": self.seed}


@dataclass
class TrainReport:
    """What one (possibly resumed) run produced.

    Only spec-pure fields belong in service result blobs:
    ``resumed_steps``/``checkpoints_written`` describe *this
    invocation* and differ between a fresh and a resumed run even
    though the trained weights are identical.
    """

    steps: int = 0
    epochs: int = 0
    records: int = 0
    trained_tokens: int = 0
    losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    weights_sha256: str = ""
    dataset_digest: str = ""
    completed: bool = True
    jobs: int = 1
    resumed_steps: int = 0
    checkpoints_written: int = 0
    #: Portable weights bundle (see :mod:`repro.train.weights`) — a
    #: pure function of the trained weights + tokenizer, embedded in
    #: artifacts so inference/eval need no filesystem access.
    weights_bundle: dict | None = None

    @property
    def final_loss(self) -> float:
        if self.val_losses:
            return self.val_losses[-1]
        return self.losses[-1] if self.losses else float("inf")

    def summary(self) -> str:
        resumed = (f", resumed at step {self.resumed_steps}"
                   if self.resumed_steps else "")
        return (f"{self.steps} step(s) over {self.records} record(s) "
                f"[jobs={self.jobs}{resumed}]; final loss "
                f"{self.final_loss:.4f}; weights "
                f"{self.weights_sha256[:12]}")


class TrainerService:
    """Run finetuning with checkpoints, resume, and a worker pool."""

    def __init__(self, config: TrainConfig | None = None, jobs: int = 1,
                 use_threads: bool = False,
                 checkpoint_dir: str | None = None):
        self.config = config or TrainConfig()
        self.config.validate()
        self.jobs = max(1, jobs)
        self.use_threads = use_threads
        self.checkpoint_dir = checkpoint_dir

    # -- one optimizer step ----------------------------------------------

    def _step(self, model: TinyTransformerLM, optimizer: Adam,
              micros: list, cfg_blob: dict, pool: WorkPool) -> float:
        """Accumulate one macro-batch's gradients and step.

        Micro-batches may run anywhere; the reduction below walks them
        in index order so the summed gradient (and the returned
        token-weighted loss) is byte-identical for any ``jobs``.
        ``pool`` is the run's persistent :class:`WorkPool` — one
        executor spans every step, so ``jobs > 1`` pays pool spawn once
        per run, not once per step.
        """
        n = len(micros)
        if self.jobs == 1 or n == 1:
            results = {index: microbatch_grads(model, ids, targets)
                       for index, (ids, targets) in enumerate(micros)}
        else:
            state = model_state(model)
            width = min(self.jobs, n)
            bounds = [round(i * n / width) for i in range(width + 1)]
            chunks = {c: (state, cfg_blob,
                          [(i, micros[i][0], micros[i][1])
                           for i in range(bounds[c], bounds[c + 1])])
                      for c in range(width) if bounds[c] < bounds[c + 1]}
            results = {}
            for part in pool.map(run_train_chunk, chunks).values():
                results.update(part)
        params = model.params()
        acc = [np.zeros_like(param.value) for param in params]
        loss_sum = 0.0
        total = 0
        for index in range(n):              # canonical reduction order
            loss, count, grads = results[index]
            loss_sum += loss * count
            total += count
            for slot, grad in zip(acc, grads):
                slot += count * grad
        for param, slot in zip(params, acc):
            param.grad[...] = slot / total
        optimizer.step()
        return loss_sum / total

    # -- checkpoint plumbing ---------------------------------------------

    @staticmethod
    def _payload(model: TinyTransformerLM, optimizer: Adam,
                 steps_done: int, val_done: int, losses: list[float],
                 val_losses: list[float], cfg_blob: dict,
                 tokenizer: Tokenizer) -> dict:
        params = model.params()
        return {"steps_done": steps_done, "val_done": val_done,
                "losses": list(losses), "val_losses": list(val_losses),
                "params": [encode_array(p.value) for p in params],
                "adam_m": [encode_array(p.m) for p in params],
                "adam_v": [encode_array(p.v) for p in params],
                "adam_step": optimizer.step_count,
                # Inference handoff: enough to rebuild model + tokenizer
                # straight from a checkpoint (repro.train.weights).
                "model_config": dict(cfg_blob),
                "tokenizer": list(tokenizer.inverse)}

    @staticmethod
    def _restore(model: TinyTransformerLM, optimizer: Adam,
                 payload: dict) -> None:
        set_model_state(model, [decode_array(blob)
                                for blob in payload["params"]])
        for param, m_blob, v_blob in zip(model.params(),
                                         payload["adam_m"],
                                         payload["adam_v"]):
            param.m = decode_array(m_blob)
            param.v = decode_array(v_blob)
        optimizer.step_count = payload["adam_step"]

    # -- the run ----------------------------------------------------------

    def run(self, dataset: Dataset,
            stop_after_steps: int | None = None) -> TrainReport:
        """Train (or resume training) on ``dataset``.

        ``stop_after_steps`` caps the number of optimizer steps
        *executed by this call* (a checkpoint is committed before
        returning) — the in-process interruption hook the resume tests
        drive; production interruption is simply SIGKILL.
        """
        config = self.config
        records = list(dataset)
        if config.max_records is not None:
            records = records[:config.max_records]
        if not records:
            raise ValueError("training dataset is empty")
        capped = Dataset(records=records)
        digest = dataset_digest(capped)
        train_set, val_set = split_dataset(
            capped, val_fraction=config.val_fraction, seed=config.seed)
        tokenizer = Tokenizer.train(records_to_text(train_set),
                                    vocab_size=config.vocab_size)
        sequences = encode_sequences(train_set, tokenizer)
        val_sequences = encode_sequences(val_set, tokenizer)
        if not any(len(s) >= 2 for s in sequences):
            raise ValueError("no trainable sequences in dataset")
        cfg_blob = config.model_config(len(tokenizer))
        model = TinyTransformerLM(TransformerConfig(**cfg_blob))
        optimizer = Adam(model.params(), lr=config.lr)

        store = None
        done_steps = 0
        val_done = 0
        losses: list[float] = []
        val_losses: list[float] = []
        resumed_steps = 0
        if self.checkpoint_dir:
            run_id = hashlib.sha256(
                f"{TRAIN_FORMAT_VERSION}\x1f{config.fingerprint()}"
                f"\x1f{digest}".encode("utf-8")).hexdigest()
            store = CheckpointStore(self.checkpoint_dir, run_id)
            payload = store.latest()
            if payload is not None:
                self._restore(model, optimizer, payload)
                done_steps = payload["steps_done"]
                val_done = payload["val_done"]
                losses = list(payload["losses"])
                val_losses = list(payload["val_losses"])
                resumed_steps = done_steps

        def save(step: int) -> None:
            if store is not None:
                store.save(step, self._payload(model, optimizer, step,
                                               val_done, losses,
                                               val_losses, cfg_blob,
                                               tokenizer))

        global_step = 0
        executed = 0
        completed = True
        with WorkPool(jobs=self.jobs,
                      use_threads=self.use_threads) as pool:
            for epoch in range(config.epochs):
                plan = epoch_plan(sequences, digest, config.seed, epoch,
                                  config.batch_size, config.micro_batch,
                                  config.seq_len, tokenizer.pad_id)
                for micros in plan:
                    global_step += 1
                    if global_step <= done_steps:
                        continue    # replayed from the checkpoint
                    losses.append(self._step(model, optimizer, micros,
                                             cfg_blob, pool))
                    done_steps = global_step
                    executed += 1
                    if (config.checkpoint_every
                            and global_step % config.checkpoint_every
                            == 0):
                        save(global_step)
                    if (stop_after_steps is not None
                            and executed >= stop_after_steps):
                        completed = False
                        break
                if not completed:
                    break
                if epoch + 1 > val_done:
                    val_losses.append(evaluate_transformer(
                        model, val_sequences, tokenizer.pad_id,
                        config.seq_len))
                    val_done = epoch + 1
        save(done_steps)            # final (or interruption) checkpoint
        return TrainReport(
            steps=done_steps, epochs=val_done, records=len(capped),
            trained_tokens=sum(len(s) for s in sequences),
            losses=losses, val_losses=val_losses,
            weights_sha256=state_digest(model_state(model)),
            dataset_digest=digest, completed=completed, jobs=self.jobs,
            resumed_steps=resumed_steps,
            checkpoints_written=store.writes if store else 0,
            weights_bundle=model_weights_bundle(model, tokenizer))


def train_run(dataset: Dataset, config: TrainConfig | None = None,
              jobs: int = 1, use_threads: bool = False,
              checkpoint_dir: str | None = None,
              stop_after_steps: int | None = None) -> TrainReport:
    """One-shot convenience wrapper around :class:`TrainerService`."""
    service = TrainerService(config, jobs=jobs, use_threads=use_threads,
                             checkpoint_dir=checkpoint_dir)
    return service.run(dataset, stop_after_steps=stop_after_steps)
