"""The checkpointed, data-parallel trainer (resident-worker edition).

**Determinism contract.**  A run's loss curve and final weights are a
pure function of ``(dataset, TrainConfig)`` — never of ``jobs``,
thread vs process pools, checkpoint cadence, transport, or how many
SIGKILL-and-resume cycles it survived.  Three mechanisms enforce this:

1. the epoch/batch schedule is a pure function of the dataset digest
   and config (:func:`repro.train.data.epoch_plan`);
2. per-micro-batch gradients are reduced in canonical micro-batch
   index order, weighted by valid-token counts — identical arithmetic
   whether the micro-batches ran inline, on threads, or on forked
   workers (:mod:`repro.train.worker`);
3. checkpoints capture the *complete* optimisation state (weights,
   Adam moments and step count, loss history, schedule position) in a
   lossless encoding, so a resumed run replays the remaining steps
   with bit-identical inputs (:mod:`repro.train.checkpoint`).

**The parallel hot path** is :class:`_StepRunner`.  ``jobs=1`` runs the
fused inline kernel (one preallocated gradient buffer, zero copies).
``jobs>1`` keeps a *resident* replica on every worker lane: weights
ship once at session start, each optimizer step crosses the boundary
as (previous step's reduced gradient to replay, this step's schedule
slices) in and per-micro-batch gradients out — via shared-memory
mailboxes on fork pools (:mod:`repro.train.shm`), so the steady state
pickles only index/loss/count tuples.  Replicas stay bit-identical to
the service model by replaying the identical Adam update from the
identical reduced-gradient bytes; a state-digest handshake every
``digest_every`` steps proves it at runtime.  Checkpoint encode+write
runs on an overlapped writer thread (journal-first order preserved) so
the step loop never waits on serialization.

Proven by ``tests/test_train_service.py`` (property + SIGKILL
harness).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.records import Dataset
from ..llm.tiny_transformer import Adam, TinyTransformerLM, \
    TransformerConfig
from ..llm.tokenizer import Tokenizer
from ..llm.trainer import evaluate_transformer, records_to_text, \
    split_dataset
from ..scale.runner import WorkPool
from .checkpoint import (TRAIN_FORMAT_VERSION, AsyncCheckpointWriter,
                         CheckpointStore, decode_array, encode_array,
                         state_digest)
from .data import dataset_digest, encode_sequences, epoch_plan
from .shm import open_channel_group
from .weights import model_weights_bundle
from .worker import FlatGrads, flat_microbatch_grads, model_state, \
    resident_close, resident_init, resident_step, set_model_state


@dataclass
class TrainConfig:
    """Every knob that affects training output (all in the fingerprint).

    Defaults are sized for the tiny numpy transformer: small enough
    that a full pipeline run stays interactive, big enough that the
    loss curve genuinely falls.
    """

    epochs: int = 2
    batch_size: int = 4
    micro_batch: int = 2
    seq_len: int = 48
    lr: float = 3e-3
    seed: int = 0
    vocab_size: int = 384
    d_model: int = 16
    n_heads: int = 2
    n_layers: int = 1
    d_ff: int = 32
    #: Canonical-order prefix cap on the training dataset (None = all).
    max_records: int | None = 256
    #: Checkpoint cadence in optimizer steps (0 = final only).
    checkpoint_every: int = 4
    val_fraction: float = 0.1

    def validate(self) -> None:
        if self.epochs < 1 or self.batch_size < 1 or self.micro_batch < 1:
            raise ValueError("epochs/batch_size/micro_batch must be >= 1")
        if self.seq_len < 2:
            raise ValueError("seq_len must be >= 2")
        if self.d_model % self.n_heads:
            raise ValueError("n_heads must divide d_model")
        if not (0.0 < self.val_fraction < 1.0):
            raise ValueError("val_fraction must be in (0, 1)")

    def fingerprint(self) -> str:
        """Stable hash of every knob; stamps the checkpoint store."""
        blob = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def model_config(self, vocab: int) -> dict:
        """:class:`TransformerConfig` fields for this run's model."""
        return {"vocab_size": vocab, "d_model": self.d_model,
                "n_heads": self.n_heads, "n_layers": self.n_layers,
                "d_ff": self.d_ff, "max_len": self.seq_len,
                "seed": self.seed}


@dataclass
class TrainReport:
    """What one (possibly resumed) run produced.

    Only spec-pure fields belong in service result blobs:
    ``resumed_steps``/``checkpoints_written``/``transport``/
    ``replica_checks`` describe *this invocation* and differ between a
    fresh and a resumed run (or between pool types) even though the
    trained weights are identical.
    """

    steps: int = 0
    epochs: int = 0
    records: int = 0
    trained_tokens: int = 0
    losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    weights_sha256: str = ""
    dataset_digest: str = ""
    completed: bool = True
    jobs: int = 1
    resumed_steps: int = 0
    checkpoints_written: int = 0
    #: How gradients crossed the pool boundary: ``inline`` (no pool),
    #: ``local`` (thread lanes, shared arrays), ``shm`` (process lanes,
    #: shared memory), ``pickle`` (process lanes, fallback).
    transport: str = "inline"
    #: Digest handshakes that confirmed worker replicas bit-identical.
    replica_checks: int = 0
    #: Portable weights bundle (see :mod:`repro.train.weights`) — a
    #: pure function of the trained weights + tokenizer, embedded in
    #: artifacts so inference/eval need no filesystem access.
    weights_bundle: dict | None = None

    @property
    def final_loss(self) -> float:
        if self.val_losses:
            return self.val_losses[-1]
        return self.losses[-1] if self.losses else float("inf")

    def summary(self) -> str:
        resumed = (f", resumed at step {self.resumed_steps}"
                   if self.resumed_steps else "")
        return (f"{self.steps} step(s) over {self.records} record(s) "
                f"[jobs={self.jobs}{resumed}]; final loss "
                f"{self.final_loss:.4f}; weights "
                f"{self.weights_sha256[:12]}")


#: Per-process counter distinguishing resident sessions (a long-lived
#: process — tests, the daemon — may run many trainings).
_SESSION_IDS = itertools.count()


class _StepRunner:
    """Owns one run's optimizer-step machinery.

    * ``jobs=1`` (or single-micro-batch schedules): the fused inline
      kernel — every ``param.grad`` is a view into one flat buffer
      (:class:`~repro.train.worker.FlatGrads`), so a step is
      zero-the-buffer → backward → weighted accumulate, no per-param
      loops or copies.
    * ``jobs>1``: resident lanes.  Lanes are provisioned lazily on the
      first parallel step (:meth:`WorkPool.ensure_slots` — one
      single-worker executor per lane, so lane ``c`` is always the
      same OS thread/process), weights+Adam state ship once
      (:func:`resident_init`, digest-acknowledged), then every step is
      one :meth:`WorkPool.slot_map` round of :func:`resident_step`.
      Idle lanes (steps with fewer micro-batches than lanes) still
      receive apply-only payloads so no replica misses an update.

    The reduction is identical float arithmetic in both modes:
    ``acc += count * grad`` in micro-batch index order, then one
    divide into the flat buffer, then ``optimizer.step()``.
    """

    def __init__(self, model: TinyTransformerLM, optimizer: Adam,
                 cfg_blob: dict, pool: WorkPool, jobs: int,
                 use_threads: bool, max_micros: int, digest_every: int):
        self.model = model
        self.optimizer = optimizer
        self.cfg_blob = cfg_blob
        self.pool = pool
        self.use_threads = use_threads
        self.digest_every = max(0, digest_every)
        self.grads = FlatGrads(model)
        self.acc = np.zeros(self.grads.size)
        self.width = min(jobs, max_micros) if jobs > 1 else 1
        self.rows = -(-max_micros // self.width)
        self.transport = "inline"
        self.replica_checks = 0
        self.session: str | None = None
        self.group = None
        self._pending = False       # lanes owe a replay of grads.flat
        self._lane_steps = 0

    # -- shared reduction tail --------------------------------------------

    def _apply(self, total: int) -> None:
        """Divide the accumulated gradient and step the optimizer."""
        np.divide(self.acc, total, out=self.grads.flat)
        self.optimizer.step()

    def _digest(self) -> str:
        return state_digest([p.value for p in self.model.params()])

    # -- inline (jobs == 1) -----------------------------------------------

    def _inline_step(self, micros: list) -> float:
        self.acc[...] = 0.0
        loss_sum, total = 0.0, 0
        for ids, targets in micros:
            loss, count = flat_microbatch_grads(self.model, self.grads,
                                                ids, targets)
            loss_sum += loss * count
            total += count
            self.acc += count * self.grads.flat
        self._apply(total)
        return loss_sum / total

    # -- resident lanes (jobs > 1) ----------------------------------------

    def _start_lanes(self) -> None:
        self.width = self.pool.ensure_slots(self.width)
        self.session = f"train-{os.getpid()}-{next(_SESSION_IDS)}"
        self.group = open_channel_group(self.width, self.rows,
                                        self.grads.size,
                                        self.use_threads)
        self.transport = (self.group.kind if self.group is not None
                          else "pickle")
        state = model_state(self.model)
        params = self.model.params()
        base = {"session": self.session, "parent": os.getpid(),
                "config": self.cfg_blob,
                "state": state,
                "adam_m": [p.m for p in params],
                "adam_v": [p.v for p in params],
                "adam_step": self.optimizer.step_count,
                "lr": self.optimizer.lr,
                "betas": (self.optimizer.beta1, self.optimizer.beta2),
                "eps": self.optimizer.eps}
        payloads = {slot: {**base, "slot": slot,
                           "channel": (self.group.specs[slot]
                                       if self.group is not None
                                       else None)}
                    for slot in range(self.width)}
        acks = self.pool.slot_map(resident_init, payloads)
        expected = self._digest()
        for slot, ack in acks.items():
            if ack != expected:
                raise RuntimeError(
                    f"resident lane {slot} installed state {ack[:12]} "
                    f"!= service {expected[:12]}")
        self.replica_checks += 1

    def _lane_step(self, micros: list) -> float:
        if self.session is None:
            self._start_lanes()
        n = len(micros)
        self._lane_steps += 1
        want_digest = bool(
            self._pending and self.digest_every
            and self._lane_steps % self.digest_every == 0)
        expected = self._digest() if want_digest else None
        grad_blob = None
        in_channel = False
        if self._pending:
            # grads.flat still holds the previous step's reduced
            # gradient (nothing wrote it since the last _apply).
            if self.group is not None:
                self.group.bcast[...] = self.grads.flat
                in_channel = True
            else:
                grad_blob = self.grads.flat.copy()
        bounds = [round(i * n / self.width)
                  for i in range(self.width + 1)]
        payloads = {}
        for lane in range(self.width):
            chunk = [(i, micros[i][0], micros[i][1])
                     for i in range(bounds[lane], bounds[lane + 1])]
            payload = {"session": self.session, "slot": lane,
                       "micros": chunk, "want_digest": want_digest,
                       "grad_in_channel": in_channel}
            if grad_blob is not None:
                payload["grad"] = grad_blob
            payloads[lane] = payload
        outs = self.pool.slot_map(resident_step, payloads)
        if want_digest:
            for lane, out in outs.items():
                if out.get("digest") != expected:
                    raise RuntimeError(
                        f"replica drift on lane {lane}: "
                        f"{str(out.get('digest'))[:12]} != service "
                        f"{expected[:12]} after step {self._lane_steps}")
            self.replica_checks += 1
        table: dict[int, tuple[float, int, np.ndarray]] = {}
        for lane, out in outs.items():
            pickled = out.get("grads")
            for pos, (index, row, loss, count) in \
                    enumerate(out["micros"]):
                vec = (self.group.outs[lane][row]
                       if self.group is not None else pickled[pos])
                table[index] = (loss, count, vec)
        self.acc[...] = 0.0
        loss_sum, total = 0.0, 0
        for index in range(n):          # canonical reduction order
            loss, count, vec = table[index]
            loss_sum += loss * count
            total += count
            self.acc += count * vec
        self._apply(total)
        self._pending = True
        return loss_sum / total

    # -- public -----------------------------------------------------------

    def step(self, micros: list) -> float:
        """One optimizer step over one macro-batch's micro-batches."""
        if self.width <= 1:
            return self._inline_step(micros)
        return self._lane_step(micros)

    def shutdown(self) -> None:
        """Tear down lanes + transport.  Safe to call on any failure."""
        if self.session is not None:
            payloads = {lane: {"session": self.session, "slot": lane}
                        for lane in range(self.width)}
            try:
                self.pool.slot_map(resident_close, payloads)
            except Exception:
                pass            # broken pool: workers die with it
            self.session = None
        if self.group is not None:
            self.group.close()
            self.group = None


class TrainerService:
    """Run finetuning with checkpoints, resume, and resident workers."""

    def __init__(self, config: TrainConfig | None = None, jobs: int = 1,
                 use_threads: bool = False,
                 checkpoint_dir: str | None = None,
                 digest_every: int = 16):
        self.config = config or TrainConfig()
        self.config.validate()
        self.jobs = max(1, jobs)
        self.use_threads = use_threads
        self.checkpoint_dir = checkpoint_dir
        #: Replica-digest handshake cadence in lane steps (0 = only the
        #: init handshake).  Operational only — never affects output —
        #: so it lives on the service, not in the fingerprint.
        self.digest_every = digest_every

    # -- checkpoint plumbing ---------------------------------------------

    @staticmethod
    def _snapshot(model: TinyTransformerLM, optimizer: Adam,
                  steps_done: int, val_done: int, losses: list[float],
                  val_losses: list[float], cfg_blob: dict,
                  tokenizer: Tokenizer) -> dict:
        """Raw-array state capture — the only synchronous part of a
        checkpoint.  Cheap (array copies), so the step loop can keep
        mutating the live state while the writer thread encodes."""
        params = model.params()
        return {"steps_done": steps_done, "val_done": val_done,
                "losses": list(losses), "val_losses": list(val_losses),
                "params": [p.value.copy() for p in params],
                "adam_m": [p.m.copy() for p in params],
                "adam_v": [p.v.copy() for p in params],
                "adam_step": optimizer.step_count,
                # Inference handoff: enough to rebuild model + tokenizer
                # straight from a checkpoint (repro.train.weights).
                "model_config": dict(cfg_blob),
                "tokenizer": list(tokenizer.inverse)}

    @staticmethod
    def _encode(snapshot: dict) -> dict:
        """Writer-thread half: lossless-encode a :meth:`_snapshot`."""
        payload = dict(snapshot)
        for key in ("params", "adam_m", "adam_v"):
            payload[key] = [encode_array(a) for a in snapshot[key]]
        return payload

    @staticmethod
    def _restore(model: TinyTransformerLM, optimizer: Adam,
                 payload: dict) -> None:
        set_model_state(model, [decode_array(blob)
                                for blob in payload["params"]])
        for param, m_blob, v_blob in zip(model.params(),
                                         payload["adam_m"],
                                         payload["adam_v"]):
            param.m = decode_array(m_blob)
            param.v = decode_array(v_blob)
        optimizer.step_count = payload["adam_step"]

    # -- the run ----------------------------------------------------------

    def run(self, dataset: Dataset,
            stop_after_steps: int | None = None) -> TrainReport:
        """Train (or resume training) on ``dataset``.

        ``stop_after_steps`` caps the number of optimizer steps
        *executed by this call* (a checkpoint is committed before
        returning) — the in-process interruption hook the resume tests
        drive; production interruption is simply SIGKILL.
        """
        config = self.config
        records = list(dataset)
        if config.max_records is not None:
            records = records[:config.max_records]
        if not records:
            raise ValueError("training dataset is empty")
        capped = Dataset(records=records)
        digest = dataset_digest(capped)
        train_set, val_set = split_dataset(
            capped, val_fraction=config.val_fraction, seed=config.seed)
        tokenizer = Tokenizer.train(records_to_text(train_set),
                                    vocab_size=config.vocab_size)
        sequences = encode_sequences(train_set, tokenizer)
        val_sequences = encode_sequences(val_set, tokenizer)
        if not any(len(s) >= 2 for s in sequences):
            raise ValueError("no trainable sequences in dataset")
        cfg_blob = config.model_config(len(tokenizer))
        model = TinyTransformerLM(TransformerConfig(**cfg_blob))
        optimizer = Adam(model.params(), lr=config.lr)

        store = None
        writer: AsyncCheckpointWriter | None = None
        done_steps = 0
        val_done = 0
        losses: list[float] = []
        val_losses: list[float] = []
        resumed_steps = 0
        if self.checkpoint_dir:
            run_id = hashlib.sha256(
                f"{TRAIN_FORMAT_VERSION}\x1f{config.fingerprint()}"
                f"\x1f{digest}".encode("utf-8")).hexdigest()
            store = CheckpointStore(self.checkpoint_dir, run_id)
            payload = store.latest()
            if payload is not None:
                self._restore(model, optimizer, payload)
                done_steps = payload["steps_done"]
                val_done = payload["val_done"]
                losses = list(payload["losses"])
                val_losses = list(payload["val_losses"])
                resumed_steps = done_steps

        def save(step: int) -> None:
            # Hot path: snapshot only.  Encode + journal-first commit
            # happen on the writer thread, overlapped with compute.
            nonlocal writer
            if store is None:
                return
            snapshot = self._snapshot(model, optimizer, step, val_done,
                                      losses, val_losses, cfg_blob,
                                      tokenizer)
            if writer is None:
                # Created lazily *after* worker lanes forked (the first
                # step precedes the first save), so fork pools never
                # inherit a live writer thread.
                writer = AsyncCheckpointWriter(store)
            writer.submit(step, lambda snap=snapshot: self._encode(snap))

        global_step = 0
        executed = 0
        completed = True
        max_micros = -(-config.batch_size // config.micro_batch)
        with WorkPool(jobs=self.jobs,
                      use_threads=self.use_threads) as pool:
            runner = _StepRunner(model, optimizer, cfg_blob, pool,
                                 self.jobs, self.use_threads,
                                 max_micros, self.digest_every)
            try:
                for epoch in range(config.epochs):
                    plan = epoch_plan(sequences, digest, config.seed,
                                      epoch, config.batch_size,
                                      config.micro_batch,
                                      config.seq_len, tokenizer.pad_id)
                    for micros in plan:
                        global_step += 1
                        if global_step <= done_steps:
                            continue    # replayed from the checkpoint
                        losses.append(runner.step(micros))
                        done_steps = global_step
                        executed += 1
                        if (config.checkpoint_every
                                and global_step
                                % config.checkpoint_every == 0):
                            save(global_step)
                        if (stop_after_steps is not None
                                and executed >= stop_after_steps):
                            completed = False
                            break
                    if not completed:
                        break
                    if epoch + 1 > val_done:
                        val_losses.append(evaluate_transformer(
                            model, val_sequences, tokenizer.pad_id,
                            config.seq_len))
                        val_done = epoch + 1
            finally:
                runner.shutdown()
        save(done_steps)            # final (or interruption) checkpoint
        if writer is not None:
            writer.close()          # durability barrier before report
        return TrainReport(
            steps=done_steps, epochs=val_done, records=len(capped),
            trained_tokens=sum(len(s) for s in sequences),
            losses=losses, val_losses=val_losses,
            weights_sha256=state_digest(model_state(model)),
            dataset_digest=digest, completed=completed, jobs=self.jobs,
            resumed_steps=resumed_steps,
            checkpoints_written=store.writes if store else 0,
            transport=runner.transport,
            replica_checks=runner.replica_checks,
            weights_bundle=model_weights_bundle(model, tokenizer))


def train_run(dataset: Dataset, config: TrainConfig | None = None,
              jobs: int = 1, use_threads: bool = False,
              checkpoint_dir: str | None = None,
              stop_after_steps: int | None = None,
              digest_every: int = 16) -> TrainReport:
    """One-shot convenience wrapper around :class:`TrainerService`."""
    service = TrainerService(config, jobs=jobs, use_threads=use_threads,
                             checkpoint_dir=checkpoint_dir,
                             digest_every=digest_every)
    return service.run(dataset, stop_after_steps=stop_after_steps)
