"""Micro-batch gradient kernels and the resident-worker protocol.

Two generations of the data-parallel boundary live here:

**Chunk workers** (:func:`run_train_chunk`, kept for compatibility and
as the one-shot fallback) ship the full weight state inside every chunk
payload and rebuild the model per call — correct, but the state copy ×
pickle × model re-init per optimizer step made ``--jobs 4`` *slower*
than serial.

**Resident workers** (:func:`resident_init` / :func:`resident_step` /
:func:`resident_close`) fix that: weights cross the pool boundary once
per run.  Each worker lane keeps a live model *and* an Adam replica in
module state, and every step receives only (the previous step's reduced
gradient to replay, this step's micro-batch slices) and sends back only
per-micro-batch gradients — through a :class:`~repro.train.shm.GradChannel`
mailbox when one is attached, so gradient tensors never round-trip
through pickle on process pools.  Replaying the optimizer update from
the *identical* reduced-gradient bytes with identical Adam state is
bit-exact, so replicas never drift from the service model; the service
verifies that with a state-digest handshake every K steps.

The reduction stays the service's job, strictly in micro-batch index
order — float addition is not associative, so canonical-order reduction
(never completion or worker order) is what keeps loss curves and final
weights byte-identical across ``--jobs``, threads vs processes, and
chunk boundaries.  With ``jobs=1`` the service calls
:func:`flat_microbatch_grads` directly on its live model (no copies,
same arithmetic).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from ..llm.tiny_transformer import Adam, TinyTransformerLM, \
    TransformerConfig
from .checkpoint import state_digest
from .shm import attach_channel


def model_state(model: TinyTransformerLM) -> list[np.ndarray]:
    """Copies of every parameter tensor, in canonical params() order."""
    return [param.value.copy() for param in model.params()]


def set_model_state(model: TinyTransformerLM,
                    arrays: list[np.ndarray]) -> None:
    """Load a :func:`model_state` snapshot (by copy) into ``model``."""
    params = model.params()
    if len(params) != len(arrays):
        raise ValueError(f"state has {len(arrays)} tensors, model has "
                         f"{len(params)}")
    for param, array in zip(params, arrays):
        if param.value.shape != array.shape:
            raise ValueError(f"shape mismatch {array.shape} vs "
                             f"{param.value.shape}")
        param.value[...] = array


class FlatGrads:
    """Rebind every param's ``.grad`` to slices of one flat buffer.

    Zeroing becomes a single vectorised store and a whole gradient
    crosses reduction/transport as one contiguous vector — replacing
    the per-param zero/backward/copy loop.  The views alias exactly the
    memory the backward pass accumulates into, so the arithmetic (and
    therefore every loss/weight byte) is unchanged.
    """

    def __init__(self, model: TinyTransformerLM):
        params = model.params()
        self.size = int(sum(param.value.size for param in params))
        self.flat = np.zeros(self.size)
        offset = 0
        for param in params:
            end = offset + param.value.size
            param.grad = self.flat[offset:end] \
                .reshape(param.value.shape)
            offset = end

    def zero(self) -> None:
        self.flat[...] = 0.0


def flat_microbatch_grads(model: TinyTransformerLM, grads: FlatGrads,
                          ids: np.ndarray, targets: np.ndarray
                          ) -> tuple[float, int]:
    """(mean loss, valid-token count); gradients land in ``grads.flat``.

    The fused twin of :func:`microbatch_grads`: one buffer zero, one
    backward pass, no per-param copies.
    """
    grads.zero()
    loss = model.loss_and_backward(ids, targets)
    return loss, int((targets >= 0).sum())


def microbatch_grads(model: TinyTransformerLM, ids: np.ndarray,
                     targets: np.ndarray
                     ) -> tuple[float, int, list[np.ndarray]]:
    """(mean loss, valid-token count, per-param grads) for one micro-batch.

    Gradients are the model's own per-micro-batch normalisation (mean
    over the micro-batch's valid tokens); callers re-weight them by
    ``count`` when reducing, so the combined step gradient equals a
    token-weighted mean over the whole macro-batch.
    """
    for param in model.params():
        param.zero_grad()
    loss = model.loss_and_backward(ids, targets)
    count = int((targets >= 0).sum())
    return loss, count, [param.grad.copy() for param in model.params()]


def run_train_chunk(payload: tuple[list[np.ndarray], dict,
                                   list[tuple[int, np.ndarray,
                                              np.ndarray]]]
                    ) -> dict[int, tuple[float, int, list[np.ndarray]]]:
    """One-shot gradient pass over ``(state, config, micro-batches)``.

    The pre-resident protocol: the worker rebuilds the model from the
    shipped state every call.  Kept as the compatibility/fallback path;
    the service now drives :func:`resident_step` instead.
    """
    state, config_blob, chunk = payload
    model = TinyTransformerLM(TransformerConfig(**config_blob))
    set_model_state(model, state)
    return {index: microbatch_grads(model, ids, targets)
            for index, ids, targets in chunk}


# --------------------------------------------------------------------------
# Resident workers
# --------------------------------------------------------------------------

class _Resident:
    """One lane's live replica: model + Adam state + grad buffer."""

    def __init__(self, payload: dict):
        self.model = TinyTransformerLM(
            TransformerConfig(**payload["config"]))
        set_model_state(self.model, payload["state"])
        params = self.model.params()
        for param, m, v in zip(params, payload["adam_m"],
                               payload["adam_v"]):
            param.m = np.array(m, dtype=np.float64, copy=True)
            param.v = np.array(v, dtype=np.float64, copy=True)
        self.optimizer = Adam(params, lr=payload["lr"],
                              betas=tuple(payload["betas"]),
                              eps=payload["eps"])
        self.optimizer.step_count = payload["adam_step"]
        self.grads = FlatGrads(self.model)
        self.channel = attach_channel(payload.get("channel"))

    def replay(self, reduced: np.ndarray) -> None:
        """Apply one optimizer step from the service's reduced gradient.

        Identical bytes in, identical Adam state → identical weights
        out: the replica advances in lockstep with the service model.
        """
        self.grads.flat[...] = reduced
        self.optimizer.step()

    def digest(self) -> str:
        return state_digest([p.value for p in self.model.params()])

    def close(self) -> None:
        if self.channel is not None:
            self.channel.close()
            self.channel = None


#: Live replicas, keyed by (session id, lane).  In process pools each
#: lane process sees only its own key; in thread pools all lanes share
#: the dict (distinct keys), which is why sessions carry the lane.
_RESIDENTS: dict[tuple[str, int], _Resident] = {}

_WATCHDOG_STARTED = False


def _start_parent_watchdog(parent_pid: int) -> None:
    """Exit this worker process when its trainer parent disappears.

    A SIGKILL'd parent cannot shut its pools down, and forked executor
    workers inherit a dup of their own call-queue write end — the queue
    read never sees EOF, so orphaned residents would linger forever
    (holding the parent's stdout/stderr pipes open, which in turn hangs
    anything capturing the trainer's output).  Reparenting is the one
    reliable death signal, so a daemon thread polls for it.
    """
    global _WATCHDOG_STARTED
    if _WATCHDOG_STARTED or os.getpid() == parent_pid:
        return      # thread lanes run inside the trainer itself
    _WATCHDOG_STARTED = True

    def watch() -> None:
        while os.getppid() == parent_pid:
            time.sleep(0.5)
        os._exit(0)

    threading.Thread(target=watch, daemon=True,
                     name="parent-watchdog").start()


def resident_init(payload: dict) -> str:
    """Install a lane's replica; returns its state digest as the ack.

    The only call that ships full weights (plus Adam moments, so replays
    are bit-exact mid-run/after resume).  Module-level and picklable —
    runs on :meth:`repro.scale.runner.WorkPool.slot_map` lanes.
    """
    _start_parent_watchdog(payload["parent"])
    key = (payload["session"], payload["slot"])
    old = _RESIDENTS.pop(key, None)
    if old is not None:
        old.close()
    resident = _Resident(payload)
    _RESIDENTS[key] = resident
    return resident.digest()


def resident_step(payload: dict) -> dict:
    """One lane's share of one optimizer step.

    Payload: ``session``/``slot`` select the replica; ``grad`` (or
    ``grad_in_channel``) carries the previous step's reduced gradient
    to replay *before* computing this step's micro-batches — so grads
    are always taken at the service model's current weights;
    ``micros`` lists ``(index, ids, targets)``; ``want_digest``
    requests a handshake digest of the replayed state.

    Returns ``{"micros": [(index, row, loss, count), ...]}`` plus
    ``"grads"`` (pickle fallback) or nothing (gradients already in the
    channel's ``out`` rows) and optionally ``"digest"``.
    """
    resident = _RESIDENTS.get((payload["session"], payload["slot"]))
    if resident is None:
        raise RuntimeError(
            f"resident session {payload['session']!r} lane "
            f"{payload['slot']} lost (worker restarted?)")
    reduced = payload.get("grad")
    if reduced is None and payload.get("grad_in_channel"):
        reduced = resident.channel.bcast
    if reduced is not None:
        resident.replay(reduced)
    out: dict = {"micros": []}
    grads = None if resident.channel is not None else []
    for row, (index, ids, targets) in enumerate(payload["micros"]):
        loss, count = flat_microbatch_grads(resident.model,
                                            resident.grads, ids, targets)
        out["micros"].append((index, row, loss, count))
        if resident.channel is not None:
            resident.channel.out[row, :] = resident.grads.flat
        else:
            grads.append(resident.grads.flat.copy())
    if grads is not None:
        out["grads"] = grads
    if payload.get("want_digest"):
        out["digest"] = resident.digest()
    return out


def resident_close(payload: dict) -> bool:
    """Tear down a lane's replica (and its channel mappings)."""
    resident = _RESIDENTS.pop((payload["session"], payload["slot"]),
                              None)
    if resident is None:
        return False
    resident.close()
    return True
