"""Micro-batch gradient kernel, mapped over :class:`WorkPool` workers.

The unit of parallel work is one *chunk* of micro-batches: the worker
rebuilds the model from the shipped weight state, computes per-micro-
batch gradients, and returns them **unreduced**, keyed by micro-batch
index.  The service then reduces strictly in micro-batch index order —
float addition is not associative, so reducing in a canonical order
(never in completion or worker order) is what makes loss curves and
final weights byte-identical across ``--jobs``, threads vs processes,
and chunk boundaries.

Everything here is module-level and operates on plain arrays, so
chunks pickle cleanly into a process pool; with ``jobs=1`` the service
calls :func:`microbatch_grads` directly on its live model (no copies,
same arithmetic).
"""

from __future__ import annotations

import numpy as np

from ..llm.tiny_transformer import TinyTransformerLM, TransformerConfig


def model_state(model: TinyTransformerLM) -> list[np.ndarray]:
    """Copies of every parameter tensor, in canonical params() order."""
    return [param.value.copy() for param in model.params()]


def set_model_state(model: TinyTransformerLM,
                    arrays: list[np.ndarray]) -> None:
    """Load a :func:`model_state` snapshot (by copy) into ``model``."""
    params = model.params()
    if len(params) != len(arrays):
        raise ValueError(f"state has {len(arrays)} tensors, model has "
                         f"{len(params)}")
    for param, array in zip(params, arrays):
        if param.value.shape != array.shape:
            raise ValueError(f"shape mismatch {array.shape} vs "
                             f"{param.value.shape}")
        param.value[...] = array


def microbatch_grads(model: TinyTransformerLM, ids: np.ndarray,
                     targets: np.ndarray
                     ) -> tuple[float, int, list[np.ndarray]]:
    """(mean loss, valid-token count, per-param grads) for one micro-batch.

    Gradients are the model's own per-micro-batch normalisation (mean
    over the micro-batch's valid tokens); the service re-weights them
    by ``count`` when reducing, so the combined step gradient equals a
    token-weighted mean over the whole macro-batch.
    """
    for param in model.params():
        param.zero_grad()
    loss = model.loss_and_backward(ids, targets)
    count = int((targets >= 0).sum())
    return loss, count, [param.grad.copy() for param in model.params()]


def run_train_chunk(payload: tuple[list[np.ndarray], dict,
                                   list[tuple[int, np.ndarray,
                                              np.ndarray]]]
                    ) -> dict[int, tuple[float, int, list[np.ndarray]]]:
    """Gradient pass over one chunk: ``(state, config, micro-batches)``.

    ``config`` is a :class:`TransformerConfig` field dict; micro-batches
    arrive as ``(index, ids, targets)`` and results come back keyed by
    that index so the caller can reduce canonically.  Module-level
    (picklable) so the :class:`~repro.scale.runner.WorkPool` can run it
    in a worker process.
    """
    state, config_blob, chunk = payload
    model = TinyTransformerLM(TransformerConfig(**config_blob))
    set_model_state(model, state)
    return {index: microbatch_grads(model, ids, targets)
            for index, ids, targets in chunk}
