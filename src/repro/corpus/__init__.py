"""Synthetic data sources: Verilog corpus generator + Fig. 2 statistics."""

from .generator import family_names, generate_corpus, generate_design
from .github_stats import (COUNTS, HARDWARE_LANGUAGES, LANGUAGES,
                           hardware_is_scarcer_everywhere, render_fig2,
                           scarcity_ratio)

__all__ = [
    "generate_corpus", "generate_design", "family_names",
    "LANGUAGES", "HARDWARE_LANGUAGES", "COUNTS",
    "scarcity_ratio", "hardware_is_scarcer_everywhere", "render_fig2",
]
