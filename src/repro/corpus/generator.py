"""Synthetic Verilog corpus generator (GitHub/HuggingFace stand-in).

The paper's Step 1 collects Verilog from GitHub and HuggingFace.  Offline,
we synthesise a corpus instead: a family of parameterised RTL design
templates (counters, shift registers, muxes, ALUs, FSMs, FIFOs, …) with
randomised widths, names and feature flags.  Every generated file parses
with :mod:`repro.verilog` and lints clean with :mod:`repro.checker`, so the
augmentation pipeline sees realistic, well-formed input.
"""

from __future__ import annotations

import random
from collections.abc import Callable

Generator = Callable[[random.Random, int], str]

_FAMILIES: dict[str, Generator] = {}


def family(name: str) -> Callable[[Generator], Generator]:
    def register(fn: Generator) -> Generator:
        _FAMILIES[name] = fn
        return fn
    return register


def family_names() -> tuple[str, ...]:
    return tuple(sorted(_FAMILIES))


@family("counter")
def _counter(rng: random.Random, idx: int) -> str:
    width = rng.choice([2, 4, 8, 12, 16])
    has_enable = rng.random() < 0.6
    name = f"counter{width}_{idx}"
    enable_port = "input en," if has_enable else ""
    guard = "else if (en)" if has_enable else "else"
    return f"""module {name} (
  input clk,
  input rst,
  {enable_port}
  output reg [{width - 1}:0] count
);
  always @(posedge clk)
    if (rst) count <= {width}'d0;
    {guard} count <= count + {width}'d1;
endmodule
"""


@family("shift_register")
def _shift_register(rng: random.Random, idx: int) -> str:
    width = rng.choice([4, 8, 16])
    direction = rng.choice(["left", "right"])
    name = f"shift_{direction}_{width}_{idx}"
    if direction == "left":
        body = f"q <= {{q[{width - 2}:0], d}};"
    else:
        body = f"q <= {{d, q[{width - 1}:1]}};"
    return f"""module {name} (
  input clk,
  input d,
  output reg [{width - 1}:0] q
);
  always @(posedge clk)
    {body}
endmodule
"""


@family("mux")
def _mux(rng: random.Random, idx: int) -> str:
    width = rng.choice([1, 4, 8, 16])
    ways = rng.choice([2, 4])
    name = f"mux{ways}_{width}_{idx}"
    if ways == 2:
        return f"""module {name} (
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  input sel,
  output [{width - 1}:0] y
);
  assign y = sel ? b : a;
endmodule
"""
    return f"""module {name} (
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  input [{width - 1}:0] c,
  input [{width - 1}:0] d,
  input [1:0] sel,
  output reg [{width - 1}:0] y
);
  always @(*)
    case (sel)
      2'd0: y = a;
      2'd1: y = b;
      2'd2: y = c;
      default: y = d;
    endcase
endmodule
"""


@family("adder")
def _adder(rng: random.Random, idx: int) -> str:
    width = rng.choice([4, 8, 16, 32])
    has_carry = rng.random() < 0.5
    name = f"adder{width}_{idx}"
    if has_carry:
        return f"""module {name} (
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  input cin,
  output [{width - 1}:0] sum,
  output cout
);
  assign {{cout, sum}} = a + b + cin;
endmodule
"""
    return f"""module {name} (
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  output [{width - 1}:0] sum
);
  assign sum = a + b;
endmodule
"""


@family("alu")
def _alu(rng: random.Random, idx: int) -> str:
    width = rng.choice([4, 8, 16])
    name = f"alu{width}_{idx}"
    return f"""module {name} (
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  input [1:0] op,
  output reg [{width - 1}:0] y
);
  always @(*)
    case (op)
      2'b00: y = a + b;
      2'b01: y = a - b;
      2'b10: y = a & b;
      default: y = a | b;
    endcase
endmodule
"""


@family("fsm")
def _fsm(rng: random.Random, idx: int) -> str:
    name = f"fsm_{idx}"
    return f"""module {name} (
  input clk,
  input rst,
  input go,
  output reg [1:0] state
);
  localparam IDLE = 2'd0, RUN = 2'd1, DONE = 2'd2;
  always @(posedge clk)
    if (rst) state <= IDLE;
    else case (state)
      IDLE: if (go) state <= RUN;
      RUN: state <= DONE;
      DONE: state <= IDLE;
      default: state <= IDLE;
    endcase
endmodule
"""


@family("edge_detect")
def _edge_detect(rng: random.Random, idx: int) -> str:
    name = f"edge_detect_{idx}"
    kind = rng.choice(["rise", "fall"])
    expr = "~last & sig" if kind == "rise" else "last & ~sig"
    return f"""module {name} (
  input clk,
  input sig,
  output pulse
);
  reg last;
  always @(posedge clk)
    last <= sig;
  assign pulse = {expr};
endmodule
"""


@family("register_file")
def _register_file(rng: random.Random, idx: int) -> str:
    width = rng.choice([8, 16, 32])
    depth_bits = rng.choice([2, 3, 4])
    name = f"regfile{width}x{1 << depth_bits}_{idx}"
    return f"""module {name} (
  input clk,
  input we,
  input [{depth_bits - 1}:0] waddr,
  input [{width - 1}:0] wdata,
  input [{depth_bits - 1}:0] raddr,
  output [{width - 1}:0] rdata
);
  reg [{width - 1}:0] mem [0:{(1 << depth_bits) - 1}];
  always @(posedge clk)
    if (we) mem[waddr] <= wdata;
  assign rdata = mem[raddr];
endmodule
"""


@family("parity")
def _parity(rng: random.Random, idx: int) -> str:
    width = rng.choice([4, 8, 16])
    kind = rng.choice(["even", "odd"])
    name = f"parity_{kind}{width}_{idx}"
    op = "^" if kind == "even" else "~^"
    return f"""module {name} (
  input [{width - 1}:0] data,
  output p
);
  assign p = {op}data;
endmodule
"""


@family("comparator")
def _comparator(rng: random.Random, idx: int) -> str:
    width = rng.choice([4, 8, 16])
    name = f"cmp{width}_{idx}"
    return f"""module {name} (
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  output eq,
  output lt,
  output gt
);
  assign eq = a == b;
  assign lt = a < b;
  assign gt = a > b;
endmodule
"""


@family("gray_counter")
def _gray_counter(rng: random.Random, idx: int) -> str:
    width = rng.choice([3, 4, 5])
    name = f"gray{width}_{idx}"
    return f"""module {name} (
  input clk,
  input rst,
  output [{width - 1}:0] gray
);
  reg [{width - 1}:0] bin;
  always @(posedge clk)
    if (rst) bin <= {width}'d0;
    else bin <= bin + {width}'d1;
  assign gray = bin ^ (bin >> 1);
endmodule
"""


@family("freq_divider")
def _freq_divider(rng: random.Random, idx: int) -> str:
    bits = rng.choice([2, 3, 4])
    name = f"freqdiv{1 << bits}_{idx}"
    return f"""module {name} (
  input clk,
  input rst,
  output clk_out
);
  reg [{bits - 1}:0] cnt;
  always @(posedge clk)
    if (rst) cnt <= 0;
    else cnt <= cnt + 1;
  assign clk_out = cnt[{bits - 1}];
endmodule
"""


@family("fifo")
def _fifo(rng: random.Random, idx: int) -> str:
    width = rng.choice([8, 16])
    depth_bits = 2
    depth = 1 << depth_bits
    name = f"fifo{width}x{depth}_{idx}"
    return f"""module {name} (
  input clk,
  input rst,
  input push,
  input pop,
  input [{width - 1}:0] din,
  output [{width - 1}:0] dout,
  output empty,
  output full
);
  reg [{width - 1}:0] mem [0:{depth - 1}];
  reg [{depth_bits}:0] count;
  reg [{depth_bits - 1}:0] rptr, wptr;
  assign empty = count == 0;
  assign full = count == {depth};
  assign dout = mem[rptr];
  always @(posedge clk)
    if (rst) begin
      count <= 0;
      rptr <= 0;
      wptr <= 0;
    end else begin
      if (push && !full) begin
        mem[wptr] <= din;
        wptr <= wptr + 1;
        if (!(pop && !empty)) count <= count + 1;
      end
      if (pop && !empty) begin
        rptr <= rptr + 1;
        if (!(push && !full)) count <= count - 1;
      end
    end
endmodule
"""


@family("pwm")
def _pwm(rng: random.Random, idx: int) -> str:
    bits = rng.choice([4, 8])
    name = f"pwm{bits}_{idx}"
    return f"""module {name} (
  input clk,
  input rst,
  input [{bits - 1}:0] duty,
  output pwm_out
);
  reg [{bits - 1}:0] cnt;
  always @(posedge clk)
    if (rst) cnt <= 0;
    else cnt <= cnt + 1;
  assign pwm_out = cnt < duty;
endmodule
"""


@family("decoder")
def _decoder(rng: random.Random, idx: int) -> str:
    sel_bits = rng.choice([2, 3])
    name = f"dec{sel_bits}to{1 << sel_bits}_{idx}"
    return f"""module {name} (
  input [{sel_bits - 1}:0] sel,
  input en,
  output [{(1 << sel_bits) - 1}:0] y
);
  assign y = en ? ({(1 << sel_bits)}'d1 << sel) : {(1 << sel_bits)}'d0;
endmodule
"""


def generate_design(rng: random.Random, index: int,
                    family_name: str | None = None) -> str:
    """One synthetic design; random family unless ``family_name`` given."""
    if family_name is None:
        family_name = rng.choice(sorted(_FAMILIES))
    return _FAMILIES[family_name](rng, index)


def generate_corpus(count: int, seed: int = 0,
                    families: tuple[str, ...] | None = None) -> list[str]:
    """A corpus of ``count`` well-formed synthetic Verilog files."""
    rng = random.Random(seed)
    pool = list(families) if families else sorted(_FAMILIES)
    corpus = []
    for index in range(count):
        name = pool[index % len(pool)]
        corpus.append(_FAMILIES[name](rng, index))
    return corpus
