"""Language dataset-scale statistics (paper Fig. 2).

Fig. 2 motivates the work: hardware languages have orders of magnitude
fewer public code artifacts than software languages, on both StackOverflow
and GitHub.  The counts below (in thousands of entries) are representative
of the figure's log2-scale bars; `render_fig2` reproduces the chart and
`scarcity_ratio` the headline "orders of magnitude" comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

LANGUAGES = ("Verilog", "VHDL", "Python", "Java", "C", "Scala")
HARDWARE_LANGUAGES = frozenset({"Verilog", "VHDL"})

#: Entries (thousands), shaped after the paper's Fig. 2 bars.
COUNTS: dict[str, dict[str, float]] = {
    "Stackoverflow": {
        "Verilog": 4.2, "VHDL": 5.1,
        "Python": 2100.0, "Java": 1900.0, "C": 400.0, "Scala": 112.0,
    },
    "Github": {
        "Verilog": 45.0, "VHDL": 32.0,
        "Python": 2400.0, "Java": 2900.0, "C": 1100.0, "Scala": 95.0,
    },
}


@dataclass(frozen=True)
class LanguageBar:
    source: str
    language: str
    count_thousands: float

    @property
    def log2_height(self) -> float:
        return math.log2(max(self.count_thousands, 1e-6))


def bars() -> list[LanguageBar]:
    """All (source, language) bars in figure order."""
    out = []
    for source in ("Stackoverflow", "Github"):
        for language in LANGUAGES:
            out.append(LanguageBar(source, language,
                                   COUNTS[source][language]))
    return out


def scarcity_ratio(source: str = "Github",
                   software: str = "Python",
                   hardware: str = "Verilog") -> float:
    """How many times more data the software language has."""
    return COUNTS[source][software] / COUNTS[source][hardware]


def hardware_is_scarcer_everywhere() -> bool:
    """The figure's claim: each HW language < each SW language, per source."""
    for source, table in COUNTS.items():
        hw_max = max(table[lang] for lang in HARDWARE_LANGUAGES)
        sw_min = min(table[lang] for lang in LANGUAGES
                     if lang not in HARDWARE_LANGUAGES)
        if hw_max >= sw_min:
            return False
    return True


def render_fig2(width: int = 48) -> str:
    """ASCII log2 bar chart in the style of the paper's Fig. 2."""
    entries = bars()
    peak = max(bar.log2_height for bar in entries)
    lines = ["Code Statistic Data (log2 scale, thousands of entries)"]
    current_source = None
    for bar in entries:
        if bar.source != current_source:
            current_source = bar.source
            lines.append(f"-- {bar.source} --")
        filled = int(round(width * max(bar.log2_height, 0) / peak))
        lines.append(f"{bar.language:>8} | {'#' * filled} "
                     f"{bar.count_thousands:g}k")
    return "\n".join(lines)
