"""Experiment: Fig. 3 — scaling law (loss decreases with dataset size).

A real training experiment: the backoff n-gram LM is fit on growing
fractions of an actually-augmented dataset and evaluated on a held-out
split.  The paper's claim to reproduce is the monotone-ish downward trend
of loss vs data volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import AugmentationPipeline, PipelineConfig
from ..corpus import generate_corpus
from ..llm import scaling_curve

DEFAULT_FRACTIONS = [0.05, 0.1, 0.2, 0.4, 0.7, 1.0]


@dataclass
class Fig3Result:
    points: list[tuple[int, float]]      # (train tokens, val loss)
    rendered: str

    @property
    def monotone_trend(self) -> bool:
        """Loss at the largest size is below loss at the smallest."""
        return self.points[-1][1] < self.points[0][1]


def run_fig3(corpus_size: int = 30, seed: int = 0,
             fractions: list[float] | None = None,
             quick: bool = False) -> Fig3Result:
    if quick:
        corpus_size = min(corpus_size, 12)
        fractions = fractions or [0.1, 0.4, 1.0]
    fractions = fractions or DEFAULT_FRACTIONS
    corpus = generate_corpus(corpus_size, seed=seed)
    config = PipelineConfig(seed=seed, eda_scripts=False,
                            statement_cap=16, token_cap=32)
    report = AugmentationPipeline(config).run(corpus)
    points = scaling_curve(report.dataset, fractions, seed=seed)
    lines = ["Fig. 3 — validation loss vs training tokens (n-gram LM on "
             "augmented data)",
             f"{'tokens':>12} {'loss (nats/token)':>20}"]
    peak = max(loss for _, loss in points)
    for tokens, loss in points:
        bar = "#" * int(30 * loss / peak)
        lines.append(f"{tokens:>12,} {loss:>20.4f}  {bar}")
    return Fig3Result(points=points, rendered="\n".join(lines))
