"""Experiment: Table 4 — SiliconCompiler script generation.

Paper: ours-7B/13B reach syntax- and function-correct scripts in 1
iteration (2 for Mixed); GPT-3.5 needs 8–10+; Thakur et al. and plain
Llama2 never succeed within pass@10.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench import scgen_suite
from ..eval import ScriptReport, evaluate_scripts, render_table4
from ..llm import TABLE4_MODEL_ORDER, get_model

PAPER_ITERATIONS = {
    ("ours-13b", "Basic"): (1, 1),
    ("ours-13b", "Mixed"): (2, 2),
    ("ours-7b", "Basic"): (1, 1),
    ("gpt-3.5", "Basic"): (8, 9),
    ("llama2-13b", "Basic"): (None, None),   # >10
    ("thakur", "Basic"): (None, None),       # >10
}


@dataclass
class Table4Result:
    report: ScriptReport
    rendered: str


def run_table4(max_attempts: int = 10,
               quick: bool = False, engine=None) -> Table4Result:
    tasks = list(scgen_suite())
    models = [get_model(name) for name in TABLE4_MODEL_ORDER]
    if quick:
        models = [get_model(name)
                  for name in ("gpt-3.5", "ours-13b", "llama2-13b")]
    report = evaluate_scripts(models, tasks, max_attempts=max_attempts,
                              engine=engine)
    rendered = render_table4(report, [t.name for t in tasks])
    return Table4Result(report=report, rendered=rendered)
