"""Experiment: Table 3 — Verilog repair on the RTLLM suite.

Paper success rates: ours-13B 72.4%, ours-7B 51.7%, GPT-3.5 34.5%,
Llama2-13B 10.3% over 29 designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench import rtllm_suite
from ..eval import RepairReport, evaluate_repair, render_table3
from ..llm import TABLE3_MODEL_ORDER, get_model

PAPER_SUCCESS = {
    "ours-13b": 0.724,
    "ours-7b": 0.517,
    "gpt-3.5": 0.345,
    "llama2-13b": 0.103,
}


@dataclass
class Table3Result:
    report: RepairReport
    rendered: str

    def success(self, model: str) -> float:
        return self.report.success_rate(model)


def run_table3(seed: int = 0, n_samples: int = 5,
               quick: bool = False, engine=None) -> Table3Result:
    problems = list(rtllm_suite())
    if quick:
        problems = problems[::3]
        n_samples = 3
    models = [get_model(name) for name in TABLE3_MODEL_ORDER]
    report = evaluate_repair(models, problems, seed=seed,
                             n_samples=n_samples, engine=engine)
    rendered = render_table3(report, [p.name for p in problems])
    return Table3Result(report=report, rendered=rendered)
