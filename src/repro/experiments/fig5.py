"""Experiment: Fig. 5 + Fig. 6 — program-analysis case studies.

Fig. 5: the counter module compiled line-by-line to natural language.
Fig. 6: a mutated LFSR paired with the checker's yosys-style feedback —
the exact repair-data record shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..checker import yosys_feedback
from ..core import Task, feedback_repair_records
from ..nl import describe_source

FIG5_COUNTER = """module counter (clk, rst, en, count);
  input clk, rst, en;
  output reg [1:0] count;
  always @(posedge clk)
    if (rst)
      count <= 2'd0;
    else if (en)
      count <= count + 2'd1;
endmodule
"""

#: The paper's Fig. 6 input (broken LFSR with a stray ']').
FIG6_BROKEN_LFSR = """module LFSR_3bit (
  input [2:0] SW,
  input [1:0] KEY,
  output reg [2:0] LEDR
);
  always @(posedge KEY0])
    LEDR <= KEY[1] ? SW : {LEDR[2] ^ LEDR[1], LEDR[0], LEDR[2]};
endmodule
"""

FIG6_CORRECT_LFSR = FIG6_BROKEN_LFSR.replace("KEY0]", "KEY[0]")


@dataclass
class Fig5Result:
    nl_annotated: str
    fig6_feedback: str
    repair_record_preview: str
    rendered: str


def run_fig5(quick: bool = False) -> Fig5Result:
    description = describe_source(FIG5_COUNTER)
    feedback = yosys_feedback(FIG6_BROKEN_LFSR, "./111_3-bit LFSR.v")
    records = list(feedback_repair_records(FIG6_CORRECT_LFSR, seed=4,
                                           variants=6))
    preview = records[0].to_json()[:400] if records else "(none)"
    rendered = "\n".join([
        "Fig. 5 — AST → natural language (counter case study)",
        description.annotated(),
        "",
        "Fig. 6 — repair pair with EDA tool feedback",
        f"input feedback: {feedback}",
        f"record task: {Task.DEBUG.value}",
        f"record preview: {preview}",
    ])
    return Fig5Result(nl_annotated=description.annotated(),
                      fig6_feedback=feedback or "",
                      repair_record_preview=preview,
                      rendered=rendered)
