"""Experiment: Table 5 — Verilog generation on Thakur + RTLLM benchmarks.

Paper success rates:

==================  =======  =======  =====
model               Thakur   RTLLM    All
==================  =======  =======  =====
GPT-3.5             64.7%    27.8%    45.7%
Ours-7B             64.7%     5.6%    34.3%
Ours-13B            70.6%    22.2%    45.7%
Thakur et al.       58.8%     5.6%    31.4%
Llama2-13B          41.2%     5.6%    22.9%
Llama2-General Aug  47.1%     5.6%    25.7%
==================  =======  =======  =====
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench import (PROMPT_LEVELS, rtllm_table5_subset, thakur_suite)
from ..eval import GenerationReport, evaluate_generation, render_table5
from ..llm import TABLE5_MODEL_ORDER, get_model

PAPER_SUCCESS = {
    "gpt-3.5": {"thakur": 0.647, "rtllm": 0.278, "all": 0.457},
    "ours-7b": {"thakur": 0.647, "rtllm": 0.056, "all": 0.343},
    "ours-13b": {"thakur": 0.706, "rtllm": 0.222, "all": 0.457},
    "thakur": {"thakur": 0.588, "rtllm": 0.056, "all": 0.314},
    "llama2-13b": {"thakur": 0.412, "rtllm": 0.056, "all": 0.229},
    "llama2-general-aug": {"thakur": 0.471, "rtllm": 0.056, "all": 0.257},
}


@dataclass
class Table5Result:
    report: GenerationReport
    rendered: str
    thakur_names: list[str]
    rtllm_names: list[str]

    def success(self, model: str, which: str = "all") -> float:
        if which == "thakur":
            return self.report.success_rate(model, self.thakur_names)
        if which == "rtllm":
            return self.report.success_rate(model, self.rtllm_names)
        return self.report.success_rate(
            model, self.thakur_names + self.rtllm_names)


def run_table5(n_samples: int = 5, quick: bool = False,
               models: list[str] | None = None,
               engine=None, artifact: dict | None = None) -> Table5Result:
    """Regenerate Table 5; ``artifact`` adds a freshly trained model.

    The artefact (a :func:`repro.train.artifact.build_artifact` blob)
    is registered with the model registry and scored as an extra
    column, so a pipeline run renders its finetuned model next to the
    paper's six.
    """
    levels = PROMPT_LEVELS if not quick else ("middle",)
    if quick:
        n_samples = 3
    model_names = models or list(TABLE5_MODEL_ORDER)
    if artifact is not None:
        from ..llm import register_artifact
        name = register_artifact(artifact).name
        if name not in model_names:
            model_names = model_names + [name]
    problems = list(thakur_suite()) + list(rtllm_table5_subset())
    report = evaluate_generation(
        [get_model(name) for name in model_names], problems,
        levels=levels, n_samples=n_samples, engine=engine)
    thakur_names = [p.name for p in thakur_suite()]
    rtllm_names = [p.name for p in rtllm_table5_subset()]
    rendered = render_table5(report, thakur_names, rtllm_names,
                             levels=levels)
    return Table5Result(report=report, rendered=rendered,
                        thakur_names=thakur_names,
                        rtllm_names=rtllm_names)
