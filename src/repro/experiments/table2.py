"""Experiment: Table 2 — dataset scale through the augmentation framework.

Runs the full pipeline over a synthetic corpus plus the 200-script
SiliconCompiler corpus and reports per-task record counts and serialized
sizes next to the paper's numbers.  The paper crawled GitHub/HuggingFace;
our corpus is smaller, so the *shape* to check is the relative ordering
(word-level ≫ statement-level ≫ module-level; EDA scripts exactly 200).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import (AugmentationPipeline, PipelineConfig, Task,
                    dataset_stats, render_table2)
from ..core.stats import TaskStats
from ..corpus import generate_corpus
from ..eda import reference_corpus


@dataclass
class Table2Result:
    stats: list[TaskStats]
    rendered: str
    raw_count: int
    trimmed_count: int

    def count(self, task: Task) -> int:
        for entry in self.stats:
            if entry.task is task:
                return entry.count
        return 0


def run_table2(corpus_size: int = 40, seed: int = 0,
               quick: bool = False) -> Table2Result:
    """Regenerate Table 2 at reproduction scale."""
    if quick:
        corpus_size = min(corpus_size, 12)
    corpus = generate_corpus(corpus_size, seed=seed)
    scripts = reference_corpus(200, seed=seed)
    config = PipelineConfig(seed=seed, statement_cap=None,
                            token_cap=None if not quick else 64)
    report = AugmentationPipeline(config).run(corpus, eda_scripts=scripts)
    stats = dataset_stats(report.dataset)
    note = (f"reproduction corpus: {corpus_size} synthetic Verilog files "
            f"+ 200 SiliconCompiler scripts (paper: GitHub/HuggingFace "
            f"crawl)")
    return Table2Result(stats=stats,
                        rendered=render_table2(stats, scale_note=note),
                        raw_count=report.raw_count,
                        trimmed_count=report.trimmed_count)
