"""Experiment: Fig. 2 — hardware-language data scarcity."""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus import (hardware_is_scarcer_everywhere, render_fig2,
                      scarcity_ratio)


@dataclass
class Fig2Result:
    rendered: str
    github_ratio: float
    stackoverflow_ratio: float
    claim_holds: bool


def run_fig2(quick: bool = False) -> Fig2Result:
    return Fig2Result(
        rendered=render_fig2(),
        github_ratio=scarcity_ratio("Github", "Python", "Verilog"),
        stackoverflow_ratio=scarcity_ratio("Stackoverflow", "Python",
                                           "Verilog"),
        claim_holds=hardware_is_scarcer_everywhere())
