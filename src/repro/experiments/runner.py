"""Run every experiment and collect the rendered tables/figures."""

from __future__ import annotations

from ..eval import render_table1
from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig5 import run_fig5
from .fig7 import run_fig7
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5


def run_all(quick: bool = True) -> dict[str, str]:
    """Every table and figure, rendered; quick mode trims sweep sizes."""
    return {
        "table1": render_table1(),
        "table2": run_table2(quick=quick).rendered,
        "table3": run_table3(quick=quick).rendered,
        "table4": run_table4(quick=quick).rendered,
        "table5": run_table5(quick=quick).rendered,
        "fig2": run_fig2(quick=quick).rendered,
        "fig3": run_fig3(quick=quick).rendered,
        "fig5": run_fig5(quick=quick).rendered,
        "fig7": run_fig7(quick=quick).rendered,
    }


def main() -> None:
    import argparse
    parser = argparse.ArgumentParser(
        description="Regenerate every table/figure of the paper")
    parser.add_argument("--full", action="store_true",
                        help="full-size sweeps (slower)")
    parser.add_argument("--only", help="single experiment id, e.g. table5")
    args = parser.parse_args()
    results = run_all(quick=not args.full) if args.only is None else {
        args.only: run_all(quick=not args.full)[args.only]}
    for name, text in results.items():
        print(f"\n{'=' * 72}\n{name.upper()}\n{'=' * 72}")
        print(text)


if __name__ == "__main__":
    main()
