"""Experiment dispatch: run selected tables/figures, lazily.

``EXPERIMENTS`` maps every experiment id to a thunk; ``run_selected``
computes *only* the requested ones (``repro tables --only table5`` no
longer sweeps all nine).  The benchmark-table thunks accept the shared
evaluation engine so ``--jobs``/``--cache-dir`` reach Tables 3–5.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..eval import render_table1
from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig5 import run_fig5
from .fig7 import run_fig7
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5

#: id → thunk(quick, engine) rendering one experiment.  The figure and
#: Table-1/2 thunks ignore ``engine``; Tables 3–5 evaluate through it.
EXPERIMENTS: dict[str, Callable[..., str]] = {
    "table1": lambda quick=True, engine=None: render_table1(),
    "table2": lambda quick=True, engine=None:
        run_table2(quick=quick).rendered,
    "table3": lambda quick=True, engine=None:
        run_table3(quick=quick, engine=engine).rendered,
    "table4": lambda quick=True, engine=None:
        run_table4(quick=quick, engine=engine).rendered,
    "table5": lambda quick=True, engine=None:
        run_table5(quick=quick, engine=engine).rendered,
    "fig2": lambda quick=True, engine=None: run_fig2(quick=quick).rendered,
    "fig3": lambda quick=True, engine=None: run_fig3(quick=quick).rendered,
    "fig5": lambda quick=True, engine=None: run_fig5(quick=quick).rendered,
    "fig7": lambda quick=True, engine=None: run_fig7(quick=quick).rendered,
}


def run_selected(names: Iterable[str] | None = None, quick: bool = True,
                 engine=None) -> dict[str, str]:
    """Render the requested experiments (all of them when ``names`` is
    None), computing nothing else."""
    wanted = list(EXPERIMENTS) if names is None else list(names)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment(s) {', '.join(unknown)}; "
                       f"available: {', '.join(EXPERIMENTS)}")
    return {name: EXPERIMENTS[name](quick=quick, engine=engine)
            for name in wanted}


def run_all(quick: bool = True, engine=None) -> dict[str, str]:
    """Every table and figure, rendered; quick mode trims sweep sizes."""
    return run_selected(None, quick=quick, engine=engine)


def main() -> None:
    import argparse
    parser = argparse.ArgumentParser(
        description="Regenerate every table/figure of the paper")
    parser.add_argument("--full", action="store_true",
                        help="full-size sweeps (slower)")
    parser.add_argument("--only",
                        help="comma-separated ids, e.g. table5,fig3")
    args = parser.parse_args()
    names = args.only.split(",") if args.only else None
    results = run_selected(names, quick=not args.full)
    for name, text in results.items():
        print(f"\n{'=' * 72}\n{name.upper()}\n{'=' * 72}")
        print(text)


if __name__ == "__main__":
    main()
