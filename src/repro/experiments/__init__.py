"""Per-experiment drivers: one module per paper table/figure."""

from .fig2 import Fig2Result, run_fig2
from .fig3 import Fig3Result, run_fig3
from .fig5 import Fig5Result, run_fig5
from .fig7 import Fig7Result, run_fig7
from .runner import EXPERIMENTS, run_all, run_selected
from .table2 import Table2Result, run_table2
from .table3 import PAPER_SUCCESS as TABLE3_PAPER_SUCCESS
from .table3 import Table3Result, run_table3
from .table4 import Table4Result, run_table4
from .table5 import PAPER_SUCCESS as TABLE5_PAPER_SUCCESS
from .table5 import Table5Result, run_table5

__all__ = [
    "run_table2", "run_table3", "run_table4", "run_table5",
    "run_fig2", "run_fig3", "run_fig5", "run_fig7", "run_all",
    "run_selected", "EXPERIMENTS",
    "Table2Result", "Table3Result", "Table4Result", "Table5Result",
    "Fig2Result", "Fig3Result", "Fig5Result", "Fig7Result",
    "TABLE3_PAPER_SUCCESS", "TABLE5_PAPER_SUCCESS",
]
