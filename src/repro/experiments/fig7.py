"""Experiment: Fig. 7 — dataset-mix ablation.

The paper compares completion-only data, natural-language-only data, and
the full progressive mix.  Two measurable claims are reproduced:

1. **Real training**: the n-gram LM finetuned on the full mix reaches a
   lower validation loss on held-out NL→Verilog pairs than the
   completion-only mix of the same base corpus (alignment data teaches
   the NL↔code mapping that completion data cannot).
2. **Pass rates** (Table 5 tie-in): the behavioural ours-13B vs
   general-aug profiles show the 25.7% → 45.7% "All success" gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import (AugmentationPipeline, Dataset, PipelineConfig, Task)
from ..corpus import generate_corpus
from ..llm import Tokenizer, records_to_text, train_ngram
from .table5 import PAPER_SUCCESS


@dataclass
class Fig7Result:
    losses: dict[str, float]             # mix name -> val loss
    pass_gap: tuple[float, float]        # (general-aug, ours) all-success
    rendered: str

    @property
    def alignment_beats_completion(self) -> bool:
        return self.losses["progressive (ours)"] < \
            self.losses["completion only"]


def _validation_set(corpus: list[str], seed: int) -> Dataset:
    """Held-out NL→Verilog pairs from unseen designs."""
    config = PipelineConfig.nl_only()
    config.seed = seed
    return AugmentationPipeline(config).run(corpus).dataset


def run_fig7(corpus_size: int = 24, seed: int = 0,
             quick: bool = False) -> Fig7Result:
    if quick:
        corpus_size = min(corpus_size, 10)
    train_corpus = generate_corpus(corpus_size, seed=seed)
    val_corpus = generate_corpus(max(corpus_size // 3, 4),
                                 seed=seed + 1000)
    val_set = _validation_set(val_corpus, seed)

    mixes = {
        "completion only": PipelineConfig.completion_only(),
        "natural language only": PipelineConfig.nl_only(),
        "progressive (ours)": PipelineConfig(eda_scripts=False),
    }
    # One shared tokenizer so losses are comparable across mixes.
    full = AugmentationPipeline(mixes["progressive (ours)"]) \
        .run(train_corpus).dataset
    tokenizer = Tokenizer.train(records_to_text(full)
                                + records_to_text(val_set))
    losses: dict[str, float] = {}
    for name, config in mixes.items():
        config.seed = seed
        config.statement_cap = 16
        config.token_cap = 32
        dataset = AugmentationPipeline(config).run(train_corpus).dataset
        _, result, _ = train_ngram(dataset, val_set, tokenizer=tokenizer)
        losses[name] = result.final_loss

    gap = (PAPER_SUCCESS["llama2-general-aug"]["all"],
           PAPER_SUCCESS["ours-13b"]["all"])
    lines = ["Fig. 7 — ablation: validation loss on held-out NL→Verilog "
             "pairs"]
    for name, loss in losses.items():
        lines.append(f"  {name:<24} {loss:.4f} nats/token")
    lines.append("")
    lines.append(f"Table-5 tie-in: general aug {gap[0]:.1%} → "
                 f"ours {gap[1]:.1%} all-benchmark success")
    return Fig7Result(losses=losses, pass_gap=gap,
                      rendered="\n".join(lines))
