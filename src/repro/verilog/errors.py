"""Error types raised by the Verilog front-end.

The message layout intentionally mirrors yosys' Verilog front-end so that
downstream consumers (the repair-data generator, Fig. 6 of the paper) can pair
error text with broken source files in the same format the paper shows.
"""

from __future__ import annotations


class VerilogError(Exception):
    """Base class for all Verilog front-end errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0,
                 filename: str = "<input>"):
        self.message = message
        self.line = line
        self.col = col
        self.filename = filename
        super().__init__(self.formatted())

    def formatted(self) -> str:
        """Render the error the way yosys prints it: ``./f.v:7: ERROR: …``."""
        return f"{self.filename}:{self.line}: ERROR: {self.message}"


class VerilogLexError(VerilogError):
    """Raised when the lexer meets a character it cannot tokenize."""


class VerilogSyntaxError(VerilogError):
    """Raised by the parser on grammar violations.

    ``unexpected`` carries the offending token text, so messages read like
    yosys' bison output: ``syntax error, unexpected ']'``.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0,
                 filename: str = "<input>", unexpected: str | None = None):
        self.unexpected = unexpected
        super().__init__(message, line, col, filename)


class VerilogSemanticError(VerilogError):
    """Raised by the checker for well-formed but ill-typed programs."""
