"""Hand-written lexer for the Verilog-2001 subset.

Design notes
------------
* Comments and compiler directives (`` `timescale``, `` `define`` …) are
  skipped; the augmentation pipeline operates on the code itself.
* Based numbers (``8'hFF``, ``'b10x1``) are lexed as a single NUMBER token
  containing the exact source text.  Numeric *interpretation* lives in
  :mod:`repro.sim.values`, keeping the lexer purely lexical.
* Positions are 1-based (line, column) to match yosys error messages.
"""

from __future__ import annotations

from .errors import VerilogLexError
from .tokens import (KEYWORDS, MULTI_CHAR_OPS, SINGLE_CHAR_OPS, Token,
                     TokenKind)

_ID_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CHARS = _ID_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_BASE_CHARS = frozenset("0123456789abcdefABCDEFxXzZ?_")


class Lexer:
    """Tokenise Verilog source text.

    >>> [t.value for t in Lexer("module m; endmodule").tokenize()[:3]]
    ['module', 'm', ';']
    """

    def __init__(self, text: str, filename: str = "<input>"):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor helpers -------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.text):
                return
            if self.text[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    # -- skipping ------------------------------------------------------------

    def _skip_trivia(self) -> None:
        """Skip whitespace, comments and preprocessor directives."""
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise VerilogLexError("unterminated block comment",
                                          start_line, self.col, self.filename)
            elif ch == "`":
                # Compiler directive: consume to end of line.
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    # -- token producers -------------------------------------------------

    def _lex_identifier(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while self._peek() in _ID_CHARS:
            self._advance()
        word = self.text[start:self.pos]
        kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.ID
        return Token(kind, word, line, col)

    def _lex_escaped_identifier(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # backslash
        start = self.pos
        while self.pos < len(self.text) and self._peek() not in " \t\r\n":
            self._advance()
        return Token(TokenKind.ID, self.text[start:self.pos], line, col)

    def _lex_system_id(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        self._advance()  # $
        while self._peek() in _ID_CHARS:
            self._advance()
        return Token(TokenKind.SYSTEM_ID, self.text[start:self.pos], line, col)

    def _lex_string(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        start = self.pos
        while self.pos < len(self.text) and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self.pos >= len(self.text):
            raise VerilogLexError("unterminated string", line, col,
                                  self.filename)
        value = self.text[start:self.pos]
        self._advance()  # closing quote
        return Token(TokenKind.STRING, value, line, col)

    def _lex_number(self) -> Token:
        """Lex decimal, based, or real literals as one token."""
        line, col = self.line, self.col
        start = self.pos
        while self._peek() in _DIGITS or self._peek() == "_":
            self._advance()
        # Real literal: 3.14 (no base follows).
        if self._peek() == "." and self._peek(1) in _DIGITS:
            self._advance()
            while self._peek() in _DIGITS or self._peek() == "_":
                self._advance()
            return Token(TokenKind.NUMBER, self.text[start:self.pos],
                         line, col)
        self._maybe_consume_base()
        return Token(TokenKind.NUMBER, self.text[start:self.pos], line, col)

    def _lex_based_number(self) -> Token:
        """Number starting with ' (width-less based literal, e.g. 'b1010)."""
        line, col = self.line, self.col
        start = self.pos
        if not self._consume_base():
            raise VerilogLexError("invalid based literal", line, col,
                                  self.filename)
        return Token(TokenKind.NUMBER, self.text[start:self.pos], line, col)

    def _maybe_consume_base(self) -> None:
        # Allow whitespace between the size and the base, as Verilog does:
        # "8 'hFF".  We only look ahead past spaces/tabs, not newlines.
        save = (self.pos, self.line, self.col)
        while self._peek() and self._peek() in " \t":
            self._advance()
        if not self._consume_base():
            self.pos, self.line, self.col = save

    def _consume_base(self) -> bool:
        if self._peek() != "'":
            return False
        signed_offset = 2 if self._peek(1) and self._peek(1) in "sS" else 1
        base_char = self._peek(signed_offset).lower()
        if not base_char or base_char not in "bodh":
            return False
        self._advance(signed_offset + 1)
        while self._peek() and self._peek() in " \t":
            self._advance()
        if self._peek() not in _BASE_CHARS:
            raise VerilogLexError("based literal has no digits",
                                  self.line, self.col, self.filename)
        while self._peek() in _BASE_CHARS:
            self._advance()
        return True

    def _lex_operator(self) -> Token:
        line, col = self.line, self.col
        for op in MULTI_CHAR_OPS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenKind.OP, op, line, col)
        ch = self._peek()
        if ch in SINGLE_CHAR_OPS:
            self._advance()
            return Token(TokenKind.OP, ch, line, col)
        raise VerilogLexError(f"unexpected character '{ch}'", line, col,
                              self.filename)

    # -- public API ------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Return the full token stream, terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                tokens.append(Token(TokenKind.EOF, "", self.line, self.col))
                return tokens
            ch = self._peek()
            if ch in _ID_START:
                tokens.append(self._lex_identifier())
            elif ch == "\\":
                tokens.append(self._lex_escaped_identifier())
            elif ch == "$":
                tokens.append(self._lex_system_id())
            elif ch == '"':
                tokens.append(self._lex_string())
            elif ch in _DIGITS:
                tokens.append(self._lex_number())
            elif ch == "'":
                tokens.append(self._lex_based_number())
            else:
                tokens.append(self._lex_operator())


def tokenize(text: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: tokenize ``text`` in one call."""
    return Lexer(text, filename).tokenize()
