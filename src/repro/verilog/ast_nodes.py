"""Typed AST for the Verilog-2001 subset.

Every node records its 1-based source ``line`` so that downstream passes
(the yosys-style checker, the mutation engine, the NL rule set) can report
positions and edit precisely.

The node inventory intentionally mirrors the grammar fragments the paper's
Fig. 5 lists (``module_declaration``, ``list_of_port_declarations``,
``module_item``, …): those are exactly the shapes the alignment rules
translate to natural language.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    """Base class; ``line`` is the source line the construct starts on."""

    line: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class HierarchicalId(Expr):
    """Dotted reference such as ``dut.count`` (testbench probing)."""

    parts: list[str]


@dataclass
class Number(Expr):
    """Integer literal, preserving the exact source text.

    ``width`` is None for unsized literals; ``base`` is one of
    ``'d' 'b' 'o' 'h'``.  ``text`` keeps the original spelling so the
    unparser round-trips losslessly.
    """

    text: str
    width: int | None = None
    base: str = "d"
    signed: bool = False

    @property
    def digits(self) -> str:
        """The digit portion of the literal (after the base, if any)."""
        if "'" not in self.text:
            return self.text.replace("_", "")
        after = self.text.split("'", 1)[1]
        return after.lstrip("sS")[1:].replace("_", "").replace(" ", "")


@dataclass
class RealLiteral(Expr):
    text: str


@dataclass
class StringLiteral(Expr):
    value: str


@dataclass
class Unary(Expr):
    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass
class Concat(Expr):
    parts: list[Expr]


@dataclass
class Repl(Expr):
    """Replication ``{count{expr, …}}``."""

    count: Expr
    parts: list[Expr]


@dataclass
class Index(Expr):
    """Bit-select or array element select: ``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class PartSelect(Expr):
    """Constant or indexed part select: ``base[msb:lsb]``, ``base[i +: w]``."""

    base: Expr
    msb: Expr
    lsb: Expr
    mode: str = ":"  # ':' | '+:' | '-:'


@dataclass
class FunctionCall(Expr):
    """User function or system function call (``$time``, ``clog2`` …)."""

    name: str
    args: list[Expr]
    is_system: bool = False


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------

@dataclass
class Range(Node):
    """Packed range ``[msb:lsb]``."""

    msb: Expr
    lsb: Expr


@dataclass
class Declarator(Node):
    """One name in a declaration, possibly with unpacked dims and an init."""

    name: str
    array: Range | None = None
    init: Expr | None = None


@dataclass
class Decl(Node):
    """wire/reg/integer/parameter/… declaration."""

    kind: str                      # wire|reg|integer|real|time|genvar|tri|...
    signed: bool = False
    range: Range | None = None
    declarators: list[Declarator] = field(default_factory=list)


@dataclass
class PortDecl(Node):
    """input/output/inout declaration (ANSI or non-ANSI)."""

    direction: str                 # input|output|inout
    net_kind: str | None = None    # None (implicit wire) | 'reg' | 'wire'
    signed: bool = False
    range: Range | None = None
    names: list[str] = field(default_factory=list)


@dataclass
class Port(Node):
    """Entry of the module port list header."""

    name: str
    decl: PortDecl | None = None   # present for ANSI-style headers


@dataclass
class ParamDecl(Node):
    kind: str                      # parameter|localparam
    range: Range | None = None
    signed: bool = False
    assignments: list[Declarator] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    """``begin … end`` (optionally named)."""

    stmts: list[Stmt]
    name: str | None = None


@dataclass
class BlockingAssign(Stmt):
    lhs: Expr
    rhs: Expr
    delay: Expr | None = None


@dataclass
class NonBlockingAssign(Stmt):
    lhs: Expr
    rhs: Expr
    delay: Expr | None = None


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_stmt: Stmt | None
    else_stmt: Stmt | None = None


@dataclass
class CaseItem(Node):
    exprs: list[Expr]              # empty == default
    stmt: Stmt | None = None


@dataclass
class CaseStmt(Stmt):
    kind: str                      # case|casez|casex
    expr: Expr = None              # type: ignore[assignment]
    items: list[CaseItem] = field(default_factory=list)


@dataclass
class ForStmt(Stmt):
    init: Stmt
    cond: Expr
    step: Stmt
    body: Stmt


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class RepeatStmt(Stmt):
    count: Expr
    body: Stmt


@dataclass
class ForeverStmt(Stmt):
    body: Stmt


@dataclass
class DelayStmt(Stmt):
    """``#10 <stmt>`` — also models a bare ``#10;``."""

    delay: Expr
    stmt: Stmt | None = None


@dataclass
class EventControlStmt(Stmt):
    """``@(posedge clk) <stmt>`` inside procedural code."""

    senslist: SensList
    stmt: Stmt | None = None


@dataclass
class WaitStmt(Stmt):
    cond: Expr
    stmt: Stmt | None = None


@dataclass
class SysTaskCall(Stmt):
    """``$display(…)``, ``$finish`` and friends."""

    name: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class TaskCall(Stmt):
    name: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class NullStmt(Stmt):
    pass


@dataclass
class DisableStmt(Stmt):
    target: str = ""


# --------------------------------------------------------------------------
# Module items
# --------------------------------------------------------------------------

@dataclass
class SensItem(Node):
    """Sensitivity-list entry: edge is None (level) | 'posedge' | 'negedge'."""

    edge: str | None
    signal: Expr | None = None     # None only for '*'


@dataclass
class SensList(Node):
    items: list[SensItem] = field(default_factory=list)

    @property
    def is_star(self) -> bool:
        return len(self.items) == 1 and self.items[0].signal is None


@dataclass
class Always(Node):
    senslist: SensList | None
    body: Stmt = None              # type: ignore[assignment]


@dataclass
class Initial(Node):
    body: Stmt


@dataclass
class ContinuousAssign(Node):
    assignments: list[tuple[Expr, Expr]] = field(default_factory=list)
    delay: Expr | None = None


@dataclass
class PortConnection(Node):
    name: str | None               # None for ordered connection
    expr: Expr | None = None


@dataclass
class Instance(Node):
    name: str
    connections: list[PortConnection] = field(default_factory=list)


@dataclass
class Instantiation(Node):
    module: str
    param_overrides: list[PortConnection] = field(default_factory=list)
    instances: list[Instance] = field(default_factory=list)


@dataclass
class FunctionDecl(Node):
    name: str
    range: Range | None = None
    signed: bool = False
    items: list[Node] = field(default_factory=list)   # decls
    body: Stmt | None = None


@dataclass
class Module(Node):
    name: str
    ports: list[Port] = field(default_factory=list)
    items: list[Node] = field(default_factory=list)
    params: list[ParamDecl] = field(default_factory=list)  # #(…) header

    def items_of_type(self, node_type: type) -> list:
        return [item for item in self.items if isinstance(item, node_type)]


@dataclass
class SourceFile(Node):
    modules: list[Module] = field(default_factory=list)

    def module(self, name: str) -> Module:
        for mod in self.modules:
            if mod.name == name:
                return mod
        raise KeyError(f"no module named {name!r}")
