"""AST → Verilog source text.

The unparser produces canonical, consistently-indented source.  It is used
by the completion augmenter (to split modules into header/body and statement
prefixes), by the mutation engine (to re-emit edited ASTs), and by the
behavioural models (to emit candidate code).

Round-trip property (checked by tests): ``parse(unparse(parse(x)))`` equals
``parse(x)`` structurally.
"""

from __future__ import annotations

from . import ast_nodes as ast

_INDENT = "  "


class Unparser:
    """Stateless pretty-printer over the AST node classes."""

    # -- expressions -------------------------------------------------------

    def expr(self, node: ast.Expr) -> str:
        method = getattr(self, f"_expr_{type(node).__name__}", None)
        if method is None:
            raise TypeError(f"cannot unparse expression {type(node).__name__}")
        return method(node)

    def _expr_Identifier(self, node: ast.Identifier) -> str:
        return node.name

    def _expr_HierarchicalId(self, node: ast.HierarchicalId) -> str:
        return ".".join(node.parts)

    def _expr_Number(self, node: ast.Number) -> str:
        return node.text

    def _expr_RealLiteral(self, node: ast.RealLiteral) -> str:
        return node.text

    def _expr_StringLiteral(self, node: ast.StringLiteral) -> str:
        return f'"{node.value}"'

    def _expr_Unary(self, node: ast.Unary) -> str:
        operand = self.expr(node.operand)
        if isinstance(node.operand, (ast.Binary, ast.Ternary, ast.Unary)):
            operand = f"({operand})"
        return f"{node.op}{operand}"

    def _expr_Binary(self, node: ast.Binary) -> str:
        left = self.expr(node.left)
        right = self.expr(node.right)
        if isinstance(node.left, (ast.Binary, ast.Ternary)):
            left = f"({left})"
        if isinstance(node.right, (ast.Binary, ast.Ternary)):
            right = f"({right})"
        return f"{left} {node.op} {right}"

    def _expr_Ternary(self, node: ast.Ternary) -> str:
        cond = self.expr(node.cond)
        if isinstance(node.cond, (ast.Binary, ast.Ternary)):
            cond = f"({cond})"
        return (f"{cond} ? {self.expr(node.if_true)} : "
                f"{self.expr(node.if_false)}")

    def _expr_Concat(self, node: ast.Concat) -> str:
        return "{" + ", ".join(self.expr(p) for p in node.parts) + "}"

    def _expr_Repl(self, node: ast.Repl) -> str:
        inner = ", ".join(self.expr(p) for p in node.parts)
        return "{" + self.expr(node.count) + "{" + inner + "}}"

    def _expr_Index(self, node: ast.Index) -> str:
        return f"{self.expr(node.base)}[{self.expr(node.index)}]"

    def _expr_PartSelect(self, node: ast.PartSelect) -> str:
        return (f"{self.expr(node.base)}[{self.expr(node.msb)}"
                f"{node.mode}{self.expr(node.lsb)}]")

    def _expr_FunctionCall(self, node: ast.FunctionCall) -> str:
        if not node.args and node.is_system:
            return node.name
        args = ", ".join(self.expr(a) for a in node.args)
        return f"{node.name}({args})"

    # -- small helpers -----------------------------------------------------

    def range(self, rng: ast.Range | None) -> str:
        if rng is None:
            return ""
        return f"[{self.expr(rng.msb)}:{self.expr(rng.lsb)}]"

    def _senslist(self, senslist: ast.SensList) -> str:
        if senslist.is_star:
            return "@(*)"
        rendered = []
        for item in senslist.items:
            prefix = f"{item.edge} " if item.edge else ""
            rendered.append(prefix + self.expr(item.signal))
        return "@(" + " or ".join(rendered) + ")"

    # -- statements --------------------------------------------------------

    def stmt(self, node: ast.Stmt, depth: int = 0) -> list[str]:
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            raise TypeError(f"cannot unparse statement {type(node).__name__}")
        return method(node, depth)

    def _pad(self, depth: int) -> str:
        return _INDENT * depth

    def _stmt_Block(self, node: ast.Block, depth: int) -> list[str]:
        header = self._pad(depth) + "begin"
        if node.name:
            header += f" : {node.name}"
        lines = [header]
        for stmt in node.stmts:
            if isinstance(stmt, ast.Decl):
                lines.extend(self.item(stmt, depth + 1))
            else:
                lines.extend(self.stmt(stmt, depth + 1))
        lines.append(self._pad(depth) + "end")
        return lines

    def _stmt_BlockingAssign(self, node: ast.BlockingAssign,
                             depth: int) -> list[str]:
        delay = f"#{self.expr(node.delay)} " if node.delay else ""
        return [f"{self._pad(depth)}{self.expr(node.lhs)} = "
                f"{delay}{self.expr(node.rhs)};"]

    def _stmt_NonBlockingAssign(self, node: ast.NonBlockingAssign,
                                depth: int) -> list[str]:
        delay = f"#{self.expr(node.delay)} " if node.delay else ""
        return [f"{self._pad(depth)}{self.expr(node.lhs)} <= "
                f"{delay}{self.expr(node.rhs)};"]

    def _stmt_IfStmt(self, node: ast.IfStmt, depth: int) -> list[str]:
        lines = [f"{self._pad(depth)}if ({self.expr(node.cond)})"]
        lines.extend(self._nested(node.then_stmt, depth))
        if node.else_stmt is not None:
            lines.append(f"{self._pad(depth)}else")
            if isinstance(node.else_stmt, ast.IfStmt):
                nested = self.stmt(node.else_stmt, depth)
                lines[-1] = f"{self._pad(depth)}else " + nested[0].lstrip()
                lines.extend(nested[1:])
            else:
                lines.extend(self._nested(node.else_stmt, depth))
        return lines

    def _nested(self, stmt: ast.Stmt | None, depth: int) -> list[str]:
        if stmt is None:
            return [self._pad(depth + 1) + ";"]
        if isinstance(stmt, ast.Block):
            return self.stmt(stmt, depth)
        return self.stmt(stmt, depth + 1)

    def _stmt_CaseStmt(self, node: ast.CaseStmt, depth: int) -> list[str]:
        lines = [f"{self._pad(depth)}{node.kind} ({self.expr(node.expr)})"]
        for item in node.items:
            label = ("default" if not item.exprs
                     else ", ".join(self.expr(e) for e in item.exprs))
            lines.append(f"{self._pad(depth + 1)}{label}:")
            lines.extend(self._nested(item.stmt, depth + 1))
        lines.append(f"{self._pad(depth)}endcase")
        return lines

    def _stmt_ForStmt(self, node: ast.ForStmt, depth: int) -> list[str]:
        init = self.stmt(node.init, 0)[0].rstrip(";")
        step = self.stmt(node.step, 0)[0].rstrip(";")
        lines = [f"{self._pad(depth)}for ({init}; "
                 f"{self.expr(node.cond)}; {step})"]
        lines.extend(self._nested(node.body, depth))
        return lines

    def _stmt_WhileStmt(self, node: ast.WhileStmt, depth: int) -> list[str]:
        lines = [f"{self._pad(depth)}while ({self.expr(node.cond)})"]
        lines.extend(self._nested(node.body, depth))
        return lines

    def _stmt_RepeatStmt(self, node: ast.RepeatStmt, depth: int) -> list[str]:
        lines = [f"{self._pad(depth)}repeat ({self.expr(node.count)})"]
        lines.extend(self._nested(node.body, depth))
        return lines

    def _stmt_ForeverStmt(self, node: ast.ForeverStmt,
                          depth: int) -> list[str]:
        lines = [f"{self._pad(depth)}forever"]
        lines.extend(self._nested(node.body, depth))
        return lines

    def _stmt_DelayStmt(self, node: ast.DelayStmt, depth: int) -> list[str]:
        if node.stmt is None:
            return [f"{self._pad(depth)}#{self.expr(node.delay)};"]
        inner = self.stmt(node.stmt, depth)
        first = inner[0].lstrip()
        return ([f"{self._pad(depth)}#{self.expr(node.delay)} {first}"]
                + inner[1:])

    def _stmt_EventControlStmt(self, node: ast.EventControlStmt,
                               depth: int) -> list[str]:
        ctrl = self._senslist(node.senslist)
        if node.stmt is None:
            return [f"{self._pad(depth)}{ctrl};"]
        inner = self.stmt(node.stmt, depth)
        first = inner[0].lstrip()
        return [f"{self._pad(depth)}{ctrl} {first}"] + inner[1:]

    def _stmt_WaitStmt(self, node: ast.WaitStmt, depth: int) -> list[str]:
        if node.stmt is None:
            return [f"{self._pad(depth)}wait ({self.expr(node.cond)});"]
        inner = self.stmt(node.stmt, depth)
        first = inner[0].lstrip()
        return [f"{self._pad(depth)}wait ({self.expr(node.cond)}) {first}"] \
            + inner[1:]

    def _stmt_SysTaskCall(self, node: ast.SysTaskCall,
                          depth: int) -> list[str]:
        if node.args:
            args = ", ".join(self.expr(a) for a in node.args)
            return [f"{self._pad(depth)}{node.name}({args});"]
        return [f"{self._pad(depth)}{node.name};"]

    def _stmt_TaskCall(self, node: ast.TaskCall, depth: int) -> list[str]:
        if node.args:
            args = ", ".join(self.expr(a) for a in node.args)
            return [f"{self._pad(depth)}{node.name}({args});"]
        return [f"{self._pad(depth)}{node.name};"]

    def _stmt_NullStmt(self, node: ast.NullStmt, depth: int) -> list[str]:
        return [self._pad(depth) + ";"]

    def _stmt_DisableStmt(self, node: ast.DisableStmt,
                          depth: int) -> list[str]:
        return [f"{self._pad(depth)}disable {node.target};"]

    # -- module items --------------------------------------------------------

    def item(self, node: ast.Node, depth: int = 1) -> list[str]:
        pad = self._pad(depth)
        if isinstance(node, ast.PortDecl):
            return [pad + self._port_decl_text(node) + ";"]
        if isinstance(node, ast.Decl):
            rng = self.range(node.range)
            rng = f" {rng}" if rng else ""
            signed = " signed" if node.signed else ""
            names = ", ".join(self._declarator(d) for d in node.declarators)
            return [f"{pad}{node.kind}{signed}{rng} {names};"]
        if isinstance(node, ast.ParamDecl):
            rng = self.range(node.range)
            rng = f" {rng}" if rng else ""
            names = ", ".join(self._declarator(d) for d in node.assignments)
            return [f"{pad}{node.kind}{rng} {names};"]
        if isinstance(node, ast.ContinuousAssign):
            delay = f"#{self.expr(node.delay)} " if node.delay else ""
            rendered = ", ".join(f"{self.expr(lhs)} = {self.expr(rhs)}"
                                 for lhs, rhs in node.assignments)
            return [f"{pad}assign {delay}{rendered};"]
        if isinstance(node, ast.Always):
            header = f"{pad}always"
            if node.senslist is not None:
                header += f" {self._senslist(node.senslist)}"
            inner = self.stmt(node.body, depth)
            return [header + " " + inner[0].lstrip()] + inner[1:]
        if isinstance(node, ast.Initial):
            inner = self.stmt(node.body, depth)
            return [f"{pad}initial " + inner[0].lstrip()] + inner[1:]
        if isinstance(node, ast.Instantiation):
            return self._instantiation(node, depth)
        if isinstance(node, ast.FunctionDecl):
            return self._function(node, depth)
        raise TypeError(f"cannot unparse module item {type(node).__name__}")

    def _declarator(self, decl: ast.Declarator) -> str:
        text = decl.name
        if decl.array is not None:
            text += f" {self.range(decl.array)}"
        if decl.init is not None:
            text += f" = {self.expr(decl.init)}"
        return text

    def _port_decl_text(self, node: ast.PortDecl) -> str:
        parts = [node.direction]
        if node.net_kind:
            parts.append(node.net_kind)
        if node.signed:
            parts.append("signed")
        rng = self.range(node.range)
        if rng:
            parts.append(rng)
        parts.append(", ".join(node.names))
        return " ".join(parts)

    def _instantiation(self, node: ast.Instantiation,
                       depth: int) -> list[str]:
        pad = self._pad(depth)
        text = node.module
        if node.param_overrides:
            text += " #(" + ", ".join(self._connection(c)
                                      for c in node.param_overrides) + ")"
        rendered_instances = []
        for inst in node.instances:
            conns = ", ".join(self._connection(c) for c in inst.connections)
            rendered_instances.append(f"{inst.name} ({conns})")
        return [f"{pad}{text} " + ", ".join(rendered_instances) + ";"]

    def _connection(self, conn: ast.PortConnection) -> str:
        if conn.name is None:
            return self.expr(conn.expr)
        inner = self.expr(conn.expr) if conn.expr is not None else ""
        return f".{conn.name}({inner})"

    def _function(self, node: ast.FunctionDecl, depth: int) -> list[str]:
        pad = self._pad(depth)
        rng = self.range(node.range)
        rng = f" {rng}" if rng else ""
        signed = " signed" if node.signed else ""
        lines = [f"{pad}function{signed}{rng} {node.name};"]
        for item in node.items:
            lines.extend(self.item(item, depth + 1))
        lines.extend(self.stmt(node.body, depth + 1))
        lines.append(f"{pad}endfunction")
        return lines

    # -- modules ---------------------------------------------------------

    def module(self, node: ast.Module) -> str:
        header = f"module {node.name}"
        if node.params:
            rendered = []
            for param in node.params:
                rng = self.range(param.range)
                rng = f" {rng}" if rng else ""
                for assign in param.assignments:
                    rendered.append(f"parameter{rng} "
                                    f"{self._declarator(assign)}")
            header += " #(" + ", ".join(rendered) + ")"
        if node.ports:
            rendered_ports = []
            for port in node.ports:
                if port.decl is None:
                    rendered_ports.append(port.name)
                else:
                    rendered_ports.append(self._port_decl_text(port.decl))
            header += " (" + ", ".join(rendered_ports) + ")"
        else:
            header += " ()"
        lines = [header + ";"]
        for item in node.items:
            lines.extend(self.item(item, 1))
        lines.append("endmodule")
        return "\n".join(lines)

    def source(self, node: ast.SourceFile) -> str:
        return "\n\n".join(self.module(m) for m in node.modules) + "\n"


def unparse(node: ast.Node) -> str:
    """Render any AST node back to Verilog source text."""
    printer = Unparser()
    if isinstance(node, ast.SourceFile):
        return printer.source(node)
    if isinstance(node, ast.Module):
        return printer.module(node) + "\n"
    if isinstance(node, ast.Expr):
        return printer.expr(node)
    if isinstance(node, ast.Stmt):
        return "\n".join(printer.stmt(node, 0))
    return "\n".join(printer.item(node, 0))
