"""Token definitions for the Verilog-2001 subset handled by this repo.

The lexer produces a flat list of :class:`Token`.  Token *kinds* are coarse
(identifier, number, keyword, operator, …); the ``value`` field carries the
exact source text so the unparser and the mutation engine can round-trip
token streams losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenKind(Enum):
    """Lexical category of a token."""

    ID = "identifier"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OP = "operator"
    SYSTEM_ID = "system identifier"   # $display, $time, ...
    EOF = "end of file"


#: Verilog-2001 keywords recognised by the parser.  This is the subset that
#: covers synthesisable RTL plus the testbench constructs our simulator runs.
KEYWORDS = frozenset({
    "module", "endmodule", "input", "output", "inout",
    "wire", "reg", "integer", "real", "time", "genvar",
    "parameter", "localparam", "defparam",
    "assign", "always", "initial",
    "begin", "end", "if", "else", "case", "casez", "casex", "endcase",
    "default", "for", "while", "repeat", "forever", "wait", "disable",
    "posedge", "negedge", "or", "and", "not", "xor", "nand", "nor", "xnor",
    "buf", "function", "endfunction", "task", "endtask", "generate",
    "endgenerate", "signed", "unsigned", "fork", "join",
    "supply0", "supply1", "tri",
})

#: Multi-character operators, longest first so the lexer can use greedy match.
MULTI_CHAR_OPS = (
    "<<<", ">>>", "===", "!==", "**",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "~&", "~|", "~^", "^~", "+:", "-:", "->", "=>",
)

#: Single-character operators / punctuation.
SINGLE_CHAR_OPS = "+-*/%&|^~!<>=?:;,.#@()[]{}"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: TokenKind
    value: str
    line: int
    col: int

    def is_op(self, text: str) -> bool:
        return self.kind is TokenKind.OP and self.value == text

    def is_kw(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == word

    def describe(self) -> str:
        """Human-readable rendering used in syntax-error messages."""
        if self.kind is TokenKind.EOF:
            return "$end"
        return f"'{self.value}'"
