"""Verilog front-end: lexer, parser, typed AST, unparser.

This package is the stand-in for the ANTLR4 grammar + parse tree the paper
uses: it produces an abstract syntax tree over which the alignment rules
(:mod:`repro.nl`), the mutation engine (:mod:`repro.core.mutation`) and the
simulator (:mod:`repro.sim`) all operate.
"""

from . import ast_nodes as ast
from .errors import (VerilogError, VerilogLexError, VerilogSemanticError,
                     VerilogSyntaxError)
from .lexer import Lexer, tokenize
from .parser import Parser, parse, parse_module
from .tokens import KEYWORDS, Token, TokenKind
from .unparser import Unparser, unparse

__all__ = [
    "ast", "parse", "parse_module", "Parser", "tokenize", "Lexer",
    "unparse", "Unparser", "Token", "TokenKind", "KEYWORDS",
    "VerilogError", "VerilogLexError", "VerilogSyntaxError",
    "VerilogSemanticError",
]
