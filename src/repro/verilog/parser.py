"""Recursive-descent parser for the Verilog-2001 subset.

The grammar follows the shape shown in the paper's Fig. 5 (EBNF fragments of
``module_declaration`` / ``list_of_port_declarations`` / ``module_item``).
Error messages mimic yosys' bison front-end (``syntax error, unexpected ']'``)
so the repair-data generator can pair them with broken files verbatim.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import VerilogSyntaxError
from .lexer import tokenize
from .tokens import Token, TokenKind

_DECL_KINDS = frozenset({
    "wire", "reg", "integer", "real", "time", "genvar", "tri",
    "supply0", "supply1",
})

#: Binary operator binding powers (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4, "^~": 4, "~^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}

_UNARY_OPS = frozenset({"!", "~", "&", "~&", "|", "~|", "^", "~^", "^~",
                        "+", "-"})


def _number_from_token(tok: Token) -> ast.Number:
    """Interpret a NUMBER token's text into width/base/signed fields."""
    text = tok.value
    if "'" not in text:
        return ast.Number(text=text, width=None, base="d", line=tok.line)
    size_part, rest = text.split("'", 1)
    signed = rest[:1] in ("s", "S")
    if signed:
        rest = rest[1:]
    base = rest[0].lower()
    width = int(size_part.replace("_", "").strip()) if size_part.strip() else None
    return ast.Number(text=text, width=width, base=base, signed=signed,
                      line=tok.line)


class Parser:
    """Parse a token stream into a :class:`repro.verilog.ast_nodes.SourceFile`."""

    def __init__(self, text: str, filename: str = "<input>"):
        self.filename = filename
        self.tokens = tokenize(text, filename)
        self.idx = 0

    # -- cursor helpers ----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.idx]

    def _peek(self, offset: int = 1) -> Token:
        idx = min(self.idx + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        tok = self.cur
        if tok.kind is not TokenKind.EOF:
            self.idx += 1
        return tok

    def _error(self, expected: str | None = None) -> VerilogSyntaxError:
        tok = self.cur
        message = f"syntax error, unexpected {tok.describe()}"
        if expected:
            message += f", expecting {expected}"
        return VerilogSyntaxError(message, tok.line, tok.col, self.filename,
                                  unexpected=tok.value)

    def _expect_op(self, text: str) -> Token:
        if not self.cur.is_op(text):
            raise self._error(f"'{text}'")
        return self._advance()

    def _expect_kw(self, word: str) -> Token:
        if not self.cur.is_kw(word):
            raise self._error(f"'{word}'")
        return self._advance()

    def _expect_id(self) -> Token:
        if self.cur.kind is not TokenKind.ID:
            raise self._error("an identifier")
        return self._advance()

    def _accept_op(self, text: str) -> bool:
        if self.cur.is_op(text):
            self._advance()
            return True
        return False

    def _accept_kw(self, word: str) -> bool:
        if self.cur.is_kw(word):
            self._advance()
            return True
        return False

    # -- top level -----------------------------------------------------------

    def parse(self) -> ast.SourceFile:
        modules = []
        while self.cur.kind is not TokenKind.EOF:
            if self.cur.is_kw("module"):
                modules.append(self.parse_module())
            else:
                raise self._error("'module'")
        return ast.SourceFile(modules=modules, line=1)

    def parse_module(self) -> ast.Module:
        line = self._expect_kw("module").line
        name = self._expect_id().value
        params: list[ast.ParamDecl] = []
        if self._accept_op("#"):
            self._expect_op("(")
            params = self._parse_header_params()
            self._expect_op(")")
        ports: list[ast.Port] = []
        if self._accept_op("("):
            ports = self._parse_port_list()
            self._expect_op(")")
        self._expect_op(";")
        items: list[ast.Node] = []
        while not self.cur.is_kw("endmodule"):
            if self.cur.kind is TokenKind.EOF:
                raise self._error("'endmodule'")
            items.extend(self.parse_module_item())
        self._advance()  # endmodule
        return ast.Module(name=name, ports=ports, items=items, params=params,
                          line=line)

    def _parse_header_params(self) -> list[ast.ParamDecl]:
        params: list[ast.ParamDecl] = []
        while not self.cur.is_op(")"):
            line = self.cur.line
            self._expect_kw("parameter")
            signed = self._accept_kw("signed")
            rng = self._parse_range_opt()
            assigns = [self._parse_param_assignment()]
            # Commas may separate either further names of this parameter or
            # a new 'parameter' keyword.
            while self._accept_op(","):
                if self.cur.is_kw("parameter"):
                    self._expect_kw("parameter")
                    signed2 = self._accept_kw("signed")
                    rng2 = self._parse_range_opt()
                    params.append(ast.ParamDecl(
                        kind="parameter", range=rng, signed=signed,
                        assignments=assigns, line=line))
                    line, signed, rng = self.cur.line, signed2, rng2
                    assigns = [self._parse_param_assignment()]
                else:
                    assigns.append(self._parse_param_assignment())
            params.append(ast.ParamDecl(kind="parameter", range=rng,
                                        signed=signed, assignments=assigns,
                                        line=line))
        return params

    def _parse_param_assignment(self) -> ast.Declarator:
        name_tok = self._expect_id()
        self._expect_op("=")
        value = self.parse_expression()
        return ast.Declarator(name=name_tok.value, init=value,
                              line=name_tok.line)

    def _parse_port_list(self) -> list[ast.Port]:
        ports: list[ast.Port] = []
        if self.cur.is_op(")"):
            return ports
        while True:
            ports.append(self._parse_port())
            if not self._accept_op(","):
                return ports

    def _parse_port(self) -> ast.Port:
        tok = self.cur
        if tok.kind is TokenKind.KEYWORD and tok.value in ("input", "output",
                                                           "inout"):
            direction = self._advance().value
            net_kind = None
            if self.cur.is_kw("reg") or self.cur.is_kw("wire"):
                net_kind = self._advance().value
            signed = self._accept_kw("signed")
            rng = self._parse_range_opt()
            name_tok = self._expect_id()
            decl = ast.PortDecl(direction=direction, net_kind=net_kind,
                                signed=signed, range=rng,
                                names=[name_tok.value], line=tok.line)
            return ast.Port(name=name_tok.value, decl=decl, line=tok.line)
        name_tok = self._expect_id()
        return ast.Port(name=name_tok.value, decl=None, line=name_tok.line)

    # -- module items ----------------------------------------------------

    def parse_module_item(self) -> list[ast.Node]:
        """Parse one module item; returns a list (a decl can be one node)."""
        tok = self.cur
        if tok.kind is TokenKind.KEYWORD:
            if tok.value in ("input", "output", "inout"):
                return [self._parse_port_decl()]
            if tok.value in _DECL_KINDS:
                return [self._parse_decl()]
            if tok.value in ("parameter", "localparam"):
                return [self._parse_param_decl()]
            if tok.value == "assign":
                return [self._parse_continuous_assign()]
            if tok.value == "always":
                return [self._parse_always()]
            if tok.value == "initial":
                self._advance()
                return [ast.Initial(body=self.parse_statement(),
                                    line=tok.line)]
            if tok.value == "function":
                return [self._parse_function()]
            raise self._error()
        if tok.kind is TokenKind.ID:
            return [self._parse_instantiation()]
        raise self._error()

    def _parse_port_decl(self) -> ast.PortDecl:
        line = self.cur.line
        direction = self._advance().value
        net_kind = None
        if self.cur.is_kw("reg") or self.cur.is_kw("wire"):
            net_kind = self._advance().value
        signed = self._accept_kw("signed")
        rng = self._parse_range_opt()
        names = [self._expect_id().value]
        while self._accept_op(","):
            names.append(self._expect_id().value)
        self._expect_op(";")
        return ast.PortDecl(direction=direction, net_kind=net_kind,
                            signed=signed, range=rng, names=names, line=line)

    def _parse_decl(self) -> ast.Decl:
        line = self.cur.line
        kind = self._advance().value
        signed = self._accept_kw("signed")
        rng = self._parse_range_opt()
        declarators = [self._parse_declarator()]
        while self._accept_op(","):
            declarators.append(self._parse_declarator())
        self._expect_op(";")
        return ast.Decl(kind=kind, signed=signed, range=rng,
                        declarators=declarators, line=line)

    def _parse_declarator(self) -> ast.Declarator:
        name_tok = self._expect_id()
        array = None
        if self.cur.is_op("["):
            array = self._parse_range()
        init = None
        if self._accept_op("="):
            init = self.parse_expression()
        return ast.Declarator(name=name_tok.value, array=array, init=init,
                              line=name_tok.line)

    def _parse_param_decl(self) -> ast.ParamDecl:
        line = self.cur.line
        kind = self._advance().value
        signed = self._accept_kw("signed")
        rng = self._parse_range_opt()
        assigns = [self._parse_param_assignment()]
        while self._accept_op(","):
            assigns.append(self._parse_param_assignment())
        self._expect_op(";")
        return ast.ParamDecl(kind=kind, range=rng, signed=signed,
                             assignments=assigns, line=line)

    def _parse_continuous_assign(self) -> ast.ContinuousAssign:
        line = self._expect_kw("assign").line
        delay = None
        if self._accept_op("#"):
            delay = self._parse_delay_value()
        assignments = []
        while True:
            lhs = self._parse_lvalue()
            self._expect_op("=")
            rhs = self.parse_expression()
            assignments.append((lhs, rhs))
            if not self._accept_op(","):
                break
        self._expect_op(";")
        return ast.ContinuousAssign(assignments=assignments, delay=delay,
                                    line=line)

    def _parse_always(self) -> ast.Always:
        line = self._expect_kw("always").line
        senslist = None
        if self._accept_op("@"):
            senslist = self._parse_senslist()
        body = self.parse_statement()
        return ast.Always(senslist=senslist, body=body, line=line)

    def _parse_senslist(self) -> ast.SensList:
        line = self.cur.line
        if self._accept_op("*"):
            return ast.SensList(items=[ast.SensItem(edge=None, signal=None,
                                                    line=line)], line=line)
        if not self.cur.is_op("("):
            # Bare "@clk" form.
            sig = self._parse_primary()
            return ast.SensList(items=[ast.SensItem(edge=None, signal=sig,
                                                    line=line)], line=line)
        self._expect_op("(")
        if self._accept_op("*"):
            self._expect_op(")")
            return ast.SensList(items=[ast.SensItem(edge=None, signal=None,
                                                    line=line)], line=line)
        items = [self._parse_sens_item()]
        while self._accept_op(",") or self._accept_kw("or"):
            items.append(self._parse_sens_item())
        self._expect_op(")")
        return ast.SensList(items=items, line=line)

    def _parse_sens_item(self) -> ast.SensItem:
        line = self.cur.line
        edge = None
        if self.cur.is_kw("posedge") or self.cur.is_kw("negedge"):
            edge = self._advance().value
        signal = self.parse_expression()
        return ast.SensItem(edge=edge, signal=signal, line=line)

    def _parse_function(self) -> ast.FunctionDecl:
        line = self._expect_kw("function").line
        signed = self._accept_kw("signed")
        rng = self._parse_range_opt()
        name = self._expect_id().value
        self._expect_op(";")
        items: list[ast.Node] = []
        while (self.cur.kind is TokenKind.KEYWORD
               and self.cur.value in ("input", "output", "inout")):
            items.append(self._parse_port_decl())
        while (self.cur.kind is TokenKind.KEYWORD
               and self.cur.value in _DECL_KINDS):
            items.append(self._parse_decl())
        body = self.parse_statement()
        self._expect_kw("endfunction")
        return ast.FunctionDecl(name=name, range=rng, signed=signed,
                                items=items, body=body, line=line)

    def _parse_instantiation(self) -> ast.Instantiation:
        line = self.cur.line
        module_name = self._expect_id().value
        param_overrides: list[ast.PortConnection] = []
        if self._accept_op("#"):
            self._expect_op("(")
            param_overrides = self._parse_connections()
            self._expect_op(")")
        instances = [self._parse_instance()]
        while self._accept_op(","):
            instances.append(self._parse_instance())
        self._expect_op(";")
        return ast.Instantiation(module=module_name,
                                 param_overrides=param_overrides,
                                 instances=instances, line=line)

    def _parse_instance(self) -> ast.Instance:
        name_tok = self._expect_id()
        self._expect_op("(")
        connections = self._parse_connections()
        self._expect_op(")")
        return ast.Instance(name=name_tok.value, connections=connections,
                            line=name_tok.line)

    def _parse_connections(self) -> list[ast.PortConnection]:
        connections: list[ast.PortConnection] = []
        if self.cur.is_op(")"):
            return connections
        while True:
            line = self.cur.line
            if self._accept_op("."):
                name = self._expect_id().value
                self._expect_op("(")
                expr = None
                if not self.cur.is_op(")"):
                    expr = self.parse_expression()
                self._expect_op(")")
                connections.append(ast.PortConnection(name=name, expr=expr,
                                                      line=line))
            else:
                expr = self.parse_expression()
                connections.append(ast.PortConnection(name=None, expr=expr,
                                                      line=line))
            if not self._accept_op(","):
                return connections

    # -- statements ------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        tok = self.cur
        if tok.is_op(";"):
            self._advance()
            return ast.NullStmt(line=tok.line)
        if tok.is_kw("begin"):
            return self._parse_block()
        if tok.is_kw("if"):
            return self._parse_if()
        if tok.value in ("case", "casez", "casex") and \
                tok.kind is TokenKind.KEYWORD:
            return self._parse_case()
        if tok.is_kw("for"):
            return self._parse_for()
        if tok.is_kw("while"):
            self._advance()
            self._expect_op("(")
            cond = self.parse_expression()
            self._expect_op(")")
            return ast.WhileStmt(cond=cond, body=self.parse_statement(),
                                 line=tok.line)
        if tok.is_kw("repeat"):
            self._advance()
            self._expect_op("(")
            count = self.parse_expression()
            self._expect_op(")")
            return ast.RepeatStmt(count=count, body=self.parse_statement(),
                                  line=tok.line)
        if tok.is_kw("forever"):
            self._advance()
            return ast.ForeverStmt(body=self.parse_statement(), line=tok.line)
        if tok.is_kw("wait"):
            self._advance()
            self._expect_op("(")
            cond = self.parse_expression()
            self._expect_op(")")
            stmt = None
            if self.cur.is_op(";"):
                self._advance()
            else:
                stmt = self.parse_statement()
            return ast.WaitStmt(cond=cond, stmt=stmt, line=tok.line)
        if tok.is_kw("disable"):
            self._advance()
            target = self._expect_id().value
            self._expect_op(";")
            return ast.DisableStmt(target=target, line=tok.line)
        if tok.is_op("#"):
            self._advance()
            delay = self._parse_delay_value()
            if self.cur.is_op(";"):
                self._advance()
                return ast.DelayStmt(delay=delay, stmt=None, line=tok.line)
            return ast.DelayStmt(delay=delay, stmt=self.parse_statement(),
                                 line=tok.line)
        if tok.is_op("@"):
            self._advance()
            senslist = self._parse_senslist()
            if self.cur.is_op(";"):
                self._advance()
                return ast.EventControlStmt(senslist=senslist, stmt=None,
                                            line=tok.line)
            return ast.EventControlStmt(senslist=senslist,
                                        stmt=self.parse_statement(),
                                        line=tok.line)
        if tok.kind is TokenKind.SYSTEM_ID:
            return self._parse_systask()
        if tok.kind is TokenKind.ID or tok.is_op("{"):
            return self._parse_assignment_or_call()
        raise self._error("a statement")

    def _parse_block(self) -> ast.Block:
        line = self._expect_kw("begin").line
        name = None
        if self._accept_op(":"):
            name = self._expect_id().value
        stmts: list[ast.Stmt] = []
        # Named blocks may declare local variables (integer i; reg tmp; ...).
        while (self.cur.kind is TokenKind.KEYWORD
               and self.cur.value in _DECL_KINDS):
            stmts.append(self._parse_decl())
        while not self.cur.is_kw("end"):
            if self.cur.kind is TokenKind.EOF:
                raise self._error("'end'")
            stmts.append(self.parse_statement())
        self._advance()  # end
        return ast.Block(stmts=stmts, name=name, line=line)

    def _parse_if(self) -> ast.IfStmt:
        line = self._expect_kw("if").line
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        then_stmt = self.parse_statement()
        else_stmt = None
        if self._accept_kw("else"):
            else_stmt = self.parse_statement()
        return ast.IfStmt(cond=cond, then_stmt=then_stmt,
                          else_stmt=else_stmt, line=line)

    def _parse_case(self) -> ast.CaseStmt:
        line = self.cur.line
        kind = self._advance().value
        self._expect_op("(")
        expr = self.parse_expression()
        self._expect_op(")")
        items: list[ast.CaseItem] = []
        while not self.cur.is_kw("endcase"):
            if self.cur.kind is TokenKind.EOF:
                raise self._error("'endcase'")
            items.append(self._parse_case_item())
        self._advance()  # endcase
        return ast.CaseStmt(kind=kind, expr=expr, items=items, line=line)

    def _parse_case_item(self) -> ast.CaseItem:
        line = self.cur.line
        if self._accept_kw("default"):
            self._accept_op(":")
            return ast.CaseItem(exprs=[], stmt=self.parse_statement(),
                                line=line)
        exprs = [self.parse_expression()]
        while self._accept_op(","):
            exprs.append(self.parse_expression())
        self._expect_op(":")
        return ast.CaseItem(exprs=exprs, stmt=self.parse_statement(),
                            line=line)

    def _parse_for(self) -> ast.ForStmt:
        line = self._expect_kw("for").line
        self._expect_op("(")
        init = self._parse_plain_assign()
        self._expect_op(";")
        cond = self.parse_expression()
        self._expect_op(";")
        step = self._parse_plain_assign()
        self._expect_op(")")
        return ast.ForStmt(init=init, cond=cond, step=step,
                           body=self.parse_statement(), line=line)

    def _parse_plain_assign(self) -> ast.Stmt:
        """``lhs = rhs`` with no trailing semicolon (for-loop headers)."""
        line = self.cur.line
        lhs = self._parse_lvalue()
        self._expect_op("=")
        rhs = self.parse_expression()
        return ast.BlockingAssign(lhs=lhs, rhs=rhs, line=line)

    def _parse_systask(self) -> ast.SysTaskCall:
        tok = self._advance()
        args: list[ast.Expr] = []
        if self._accept_op("("):
            if not self.cur.is_op(")"):
                args.append(self.parse_expression())
                while self._accept_op(","):
                    args.append(self.parse_expression())
            self._expect_op(")")
        self._expect_op(";")
        return ast.SysTaskCall(name=tok.value, args=args, line=tok.line)

    def _parse_assignment_or_call(self) -> ast.Stmt:
        line = self.cur.line
        if self.cur.kind is TokenKind.ID:
            nxt = self._peek()
            # Task call: "name;" or "name(args);" where '(' is not part of
            # an lvalue (lvalues never start with '(' after the name).
            if nxt.is_op(";"):
                name = self._advance().value
                self._advance()  # ;
                return ast.TaskCall(name=name, line=line)
            if nxt.is_op("("):
                name = self._advance().value
                self._advance()  # (
                args: list[ast.Expr] = []
                if not self.cur.is_op(")"):
                    args.append(self.parse_expression())
                    while self._accept_op(","):
                        args.append(self.parse_expression())
                self._expect_op(")")
                self._expect_op(";")
                return ast.TaskCall(name=name, args=args, line=line)
        lhs = self._parse_lvalue()
        if self._accept_op("="):
            nonblocking = False
        elif self._accept_op("<="):
            nonblocking = True
        else:
            raise self._error("'=' or '<='")
        delay = None
        if self._accept_op("#"):
            delay = self._parse_delay_value()
        rhs = self.parse_expression()
        self._expect_op(";")
        if nonblocking:
            return ast.NonBlockingAssign(lhs=lhs, rhs=rhs, delay=delay,
                                         line=line)
        return ast.BlockingAssign(lhs=lhs, rhs=rhs, delay=delay, line=line)

    def _parse_lvalue(self) -> ast.Expr:
        """Lvalue: identifier with selects, or a concatenation of lvalues."""
        if self.cur.is_op("{"):
            line = self.cur.line
            self._advance()
            parts = [self._parse_lvalue()]
            while self._accept_op(","):
                parts.append(self._parse_lvalue())
            self._expect_op("}")
            return ast.Concat(parts=parts, line=line)
        name_tok = self._expect_id()
        expr: ast.Expr
        if self.cur.is_op("."):
            parts = [name_tok.value]
            while self._accept_op("."):
                parts.append(self._expect_id().value)
            expr = ast.HierarchicalId(parts=parts, line=name_tok.line)
        else:
            expr = ast.Identifier(name=name_tok.value, line=name_tok.line)
        expr = self._parse_postfix_selects(expr)
        return expr

    def _parse_delay_value(self) -> ast.Expr:
        tok = self.cur
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            return _number_from_token(tok)
        if tok.kind is TokenKind.ID:
            self._advance()
            return ast.Identifier(name=tok.value, line=tok.line)
        if tok.is_op("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_op(")")
            return expr
        raise self._error("a delay value")

    # -- expressions -------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept_op("?"):
            if_true = self._parse_ternary()
            self._expect_op(":")
            if_false = self._parse_ternary()
            return ast.Ternary(cond=cond, if_true=if_true, if_false=if_false,
                               line=cond.line)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self.cur
            if tok.kind is not TokenKind.OP:
                return left
            prec = _BINARY_PRECEDENCE.get(tok.value)
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(op=tok.value, left=left, right=right,
                              line=left.line)

    def _parse_unary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind is TokenKind.OP and tok.value in _UNARY_OPS:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=tok.value, operand=operand, line=tok.line)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            if "." in tok.value and "'" not in tok.value:
                return ast.RealLiteral(text=tok.value, line=tok.line)
            return _number_from_token(tok)
        if tok.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLiteral(value=tok.value, line=tok.line)
        if tok.kind is TokenKind.SYSTEM_ID:
            self._advance()
            args: list[ast.Expr] = []
            if self._accept_op("("):
                if not self.cur.is_op(")"):
                    args.append(self.parse_expression())
                    while self._accept_op(","):
                        args.append(self.parse_expression())
                self._expect_op(")")
            return ast.FunctionCall(name=tok.value, args=args,
                                    is_system=True, line=tok.line)
        if tok.kind is TokenKind.ID:
            return self._parse_id_expression()
        if tok.is_op("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_op(")")
            return expr
        if tok.is_op("{"):
            return self._parse_concat_or_repl()
        raise self._error("an expression")

    def _parse_id_expression(self) -> ast.Expr:
        name_tok = self._expect_id()
        # Function call.
        if self.cur.is_op("("):
            self._advance()
            args: list[ast.Expr] = []
            if not self.cur.is_op(")"):
                args.append(self.parse_expression())
                while self._accept_op(","):
                    args.append(self.parse_expression())
            self._expect_op(")")
            return ast.FunctionCall(name=name_tok.value, args=args,
                                    is_system=False, line=name_tok.line)
        expr: ast.Expr
        if self.cur.is_op("."):
            parts = [name_tok.value]
            while self._accept_op("."):
                parts.append(self._expect_id().value)
            expr = ast.HierarchicalId(parts=parts, line=name_tok.line)
        else:
            expr = ast.Identifier(name=name_tok.value, line=name_tok.line)
        return self._parse_postfix_selects(expr)

    def _parse_postfix_selects(self, expr: ast.Expr) -> ast.Expr:
        while self.cur.is_op("["):
            line = self.cur.line
            self._advance()
            first = self.parse_expression()
            if self.cur.is_op(":") or self.cur.is_op("+:") or \
                    self.cur.is_op("-:"):
                mode = self._advance().value
                second = self.parse_expression()
                self._expect_op("]")
                expr = ast.PartSelect(base=expr, msb=first, lsb=second,
                                      mode=mode, line=line)
            else:
                self._expect_op("]")
                expr = ast.Index(base=expr, index=first, line=line)
        return expr

    def _parse_concat_or_repl(self) -> ast.Expr:
        line = self._expect_op("{").line
        first = self.parse_expression()
        if self.cur.is_op("{"):
            # Replication: {count{a, b, ...}}
            self._advance()
            parts = [self.parse_expression()]
            while self._accept_op(","):
                parts.append(self.parse_expression())
            self._expect_op("}")
            self._expect_op("}")
            return ast.Repl(count=first, parts=parts, line=line)
        parts = [first]
        while self._accept_op(","):
            parts.append(self.parse_expression())
        self._expect_op("}")
        return ast.Concat(parts=parts, line=line)

    # -- range helpers -----------------------------------------------------

    def _parse_range_opt(self) -> ast.Range | None:
        if self.cur.is_op("["):
            return self._parse_range()
        return None

    def _parse_range(self) -> ast.Range:
        line = self._expect_op("[").line
        msb = self.parse_expression()
        self._expect_op(":")
        lsb = self.parse_expression()
        self._expect_op("]")
        return ast.Range(msb=msb, lsb=lsb, line=line)


def parse(text: str, filename: str = "<input>") -> ast.SourceFile:
    """Parse Verilog source into a :class:`SourceFile` AST."""
    return Parser(text, filename).parse()


def parse_module(text: str, filename: str = "<input>") -> ast.Module:
    """Parse source containing exactly one module and return it."""
    source = parse(text, filename)
    if len(source.modules) != 1:
        raise VerilogSyntaxError(
            f"expected exactly one module, found {len(source.modules)}",
            1, 1, filename)
    return source.modules[0]
