"""The built-in scenario zoo: paper sweeps + operational checks.

Families:

* ``sweep`` — paper-style fan-outs expressed as flow specs with
  ``foreach`` templates: the Fig-7 seed grid, the data-ablation
  matrix, the simulator backend matrix, the Table-5 model zoo.
* ``chaos`` — fault injection: SIGKILL a draining service process and
  prove the restart loses nothing and corrupts nothing.
* ``perf`` — operational floors: warm-cache reruns must hit every
  manifest (``misses == 0``), the gateway must sustain a conservative
  jobs/sec floor end to end.

Every scenario is tagged ``ci`` and runs in the CI scenario gate
(`repro scenarios run --tag ci`); the deterministic ones additionally
pin metric fingerprints in ``tests/golden/scenario_reports.json``.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

from .registry import Scenario, register
from .runner import ScenarioContext, manifest_counters

#: Self-checking testbench shared by the backend matrix: clocked
#: counter, $display transcript, $finish — exercises edge events,
#: scheduling and output capture on every backend.
COUNTER_TB = """module tb;
  reg clk;
  reg [3:0] count;
  initial begin
    clk = 0;
    count = 0;
  end
  always #5 clk = ~clk;
  always @(posedge clk) begin
    $display("count=%d", count);
    if (count == 4'd7) $finish;
    count <= count + 1;
  end
endmodule
"""


# -- sweep: seed grid ------------------------------------------------------

def _build_seed_grid(ctx: ScenarioContext) -> dict:
    corpus = ctx.corpus()
    return {"name": "aug-seed-grid", "nodes": [
        {"name": "aug-{seed}", "kind": "augment",
         "spec": {"paths": [corpus], "seed": "{seed}"},
         "foreach": {"seed": [0, 1, 2]}}]}


def _extract_seed_grid(results: dict, ctx: ScenarioContext) -> dict:
    records = [blob["records"] for blob in results.values()]
    digests = {blob["sha256"] for blob in results.values()}
    return {"runs": len(results), "min_records": min(records),
            "distinct_datasets": len(digests)}


register(Scenario(
    name="aug-seed-grid", family="sweep", tags=("ci", "paper"),
    description="Fig-7-style seed fan-out: three augmentation seeds "
                "over one corpus must yield three distinct datasets.",
    build=_build_seed_grid, extract=_extract_seed_grid,
    expected={"runs": (3, 3), "min_records": (20, 100000),
              "distinct_datasets": (3, 3)},
    pinned=("runs", "min_records", "distinct_datasets")))


# -- sweep: data-ablation matrix ------------------------------------------

def _build_ablation(ctx: ScenarioContext) -> dict:
    corpus = ctx.corpus()
    return {"name": "aug-ablation-matrix", "nodes": [
        {"name": "full", "kind": "augment",
         "spec": {"paths": [corpus], "seed": 0}},
        {"name": "completion-only", "kind": "augment",
         "spec": {"paths": [corpus], "seed": 0,
                  "completion_only": True}}]}


def _extract_ablation(results: dict, ctx: ScenarioContext) -> dict:
    full = results["full"]["records"]
    ablated = results["completion-only"]["records"]
    return {"full_records": full, "ablated_records": ablated,
            "augmentation_gain": full / max(ablated, 1)}


register(Scenario(
    name="aug-ablation-matrix", family="sweep", tags=("ci", "paper"),
    description="Data-augmentation ablation: the full pipeline must "
                "produce measurably more records than completion-only.",
    build=_build_ablation, extract=_extract_ablation,
    expected={"full_records": (20, 100000),
              "ablated_records": (1, 100000),
              "augmentation_gain": (1.1, 10.0)}))


# -- sweep: simulator backend matrix --------------------------------------

def _build_sim_matrix(ctx: ScenarioContext) -> dict:
    return {"name": "sim-backend-matrix", "nodes": [
        {"name": "sim-{backend}", "kind": "simulate",
         "spec": {"source": COUNTER_TB, "backend": "{backend}"},
         "foreach": {"backend": ["interp", "compiled", "codegen"]}}]}


def _extract_sim_matrix(results: dict, ctx: ScenarioContext) -> dict:
    outputs = {blob["output"] for blob in results.values()}
    return {"backends": len(results),
            "finished": sum(blob["finished"]
                            for blob in results.values()),
            "agreement": 1 if len(outputs) == 1 else 0,
            "transcript_lines": len(
                next(iter(results.values()))["output"].splitlines())}


register(Scenario(
    name="sim-backend-matrix", family="sweep", tags=("ci",),
    description="One testbench through interp/compiled/codegen as a "
                "flow fan-out: all must finish with identical output.",
    build=_build_sim_matrix, extract=_extract_sim_matrix,
    expected={"backends": (3, 3), "finished": (3, 3),
              "agreement": (1, 1), "transcript_lines": (8, 8)}))


# -- sweep: model zoo ------------------------------------------------------

def _build_model_zoo(ctx: ScenarioContext) -> dict:
    return {"name": "eval-model-zoo", "nodes": [
        {"name": "zoo", "kind": "evaluate",
         "spec": {"suite": "thakur", "models": ["ours-13b", "gpt-3.5"],
                  "samples": 2, "k": 2, "levels": ["middle"]}}]}


def _extract_model_zoo(results: dict, ctx: ScenarioContext) -> dict:
    scores = results["zoo"]["scores"]
    ours = scores["ours-13b"]["solve_rate"]
    baseline = scores["gpt-3.5"]["solve_rate"]
    return {"ours_solve_rate": ours, "baseline_solve_rate": baseline,
            "finetune_margin": ours - baseline}


register(Scenario(
    name="eval-model-zoo", family="sweep", tags=("ci", "paper"),
    description="Table-5 spot check: the finetuned column must beat "
                "the gpt-3.5 baseline on the thakur suite.",
    build=_build_model_zoo, extract=_extract_model_zoo,
    expected={"ours_solve_rate": (0.55, 0.95),
              "baseline_solve_rate": (0.45, 0.9),
              "finetune_margin": (0.01, 0.5)}))


# -- perf: warm-cache rerun -----------------------------------------------

def _ops_warm_cache(ctx: ScenarioContext) -> dict:
    from ..flow import run_flow_direct
    flow = {"name": "warm-cache-rerun", "nodes": [
        {"name": "augment", "kind": "augment",
         "spec": {"paths": [ctx.corpus()], "seed": 0}},
        {"name": "score", "kind": "evaluate",
         "spec": {"suite": "thakur", "models": ["ours-13b"],
                  "samples": 1, "k": 1, "levels": ["middle"]}}]}
    workdir = ctx.workdir()
    cold = run_flow_direct(flow, workdir, engine_jobs=ctx.jobs)
    cold_counters = manifest_counters(workdir)
    warm = run_flow_direct(flow, workdir, engine_jobs=ctx.jobs)
    warm_counters = manifest_counters(workdir)
    return {"identical_results": int(cold == warm),
            "manifests": len(warm_counters),
            "cold_misses": sum(c["misses"]
                               for c in cold_counters.values()),
            "warm_misses": sum(c["misses"]
                               for c in warm_counters.values()),
            "warm_hits": sum(c["hits"]
                             for c in warm_counters.values())}


register(Scenario(
    name="warm-cache-rerun", family="perf", tags=("ci",),
    description="Rerunning an identical augment+evaluate flow in a "
                "warm workdir must recompute nothing: misses == 0 in "
                "every cache manifest and byte-identical results.",
    ops=_ops_warm_cache,
    expected={"identical_results": (1, 1), "manifests": (2, 64),
              "cold_misses": (1, 100000), "warm_misses": (0, 0),
              "warm_hits": (1, 100000)},
    pinned=("identical_results", "warm_misses")))


# -- chaos: kill-worker recovery ------------------------------------------

_KILL_JOBS = 24


def _spawn_serve(store: str):
    import repro
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", store,
         "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    url = None
    while True:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            url = match.group(1)
            break
    if url is None:
        proc.kill()
        proc.wait()
        raise RuntimeError("serve subprocess failed to start")
    return proc, url


def _ops_kill_worker(ctx: ScenarioContext) -> dict:
    from ..serve import ServeClient
    from ..serve.executor import execute_job
    store = ctx.workdir("store")
    proc, url = _spawn_serve(store)
    try:
        client = ServeClient(url, timeout=10)
        ids = [client.submit("probe", {"payload": index,
                                       "sleep_ms": 40})["id"]
               for index in range(_KILL_JOBS)]
        deadline = time.monotonic() + 60
        done = 0
        while time.monotonic() < deadline:
            done = sum(job["state"] == "done"
                       for job in client.jobs(ids=ids))
            if done >= _KILL_JOBS // 4:
                break
            time.sleep(0.01)
        proc.kill()
        proc.wait()
        proc.stdout.close()
        proc, url = _spawn_serve(store)
        client = ServeClient(url, timeout=10)
        jobs = client.wait(ids, timeout=120)
        lost = sum(job["state"] != "done" for job in jobs.values())
        # The survivors must also be *right*: every blob byte-identical
        # to a direct execution of the same spec.
        reference = ctx.workdir("reference")
        mismatches = 0
        for index, job_id in enumerate(ids):
            expected = execute_job(
                "probe", {"payload": index, "sleep_ms": 0}, reference)
            if client.result(job_id) != expected:
                mismatches += 1
        return {"jobs": _KILL_JOBS, "done_before_kill": done,
                "lost": lost, "blob_mismatches": mismatches}
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
        proc.stdout.close()


register(Scenario(
    name="kill-worker-recovery", family="chaos", tags=("ci",),
    description="SIGKILL a draining service mid-flight; the restarted "
                "daemon must finish every job with correct results.",
    ops=_ops_kill_worker,
    expected={"jobs": (_KILL_JOBS, _KILL_JOBS),
              "done_before_kill": (1, _KILL_JOBS),
              "lost": (0, 0), "blob_mismatches": (0, 0)},
    pinned=("jobs", "lost", "blob_mismatches")))


# -- perf: gateway throughput floor ---------------------------------------

_GATEWAY_JOBS = 80


def _ops_gateway_floor(ctx: ScenarioContext) -> dict:
    from ..serve import Daemon, GatewayServer, ServeClient
    daemon = Daemon(ctx.workdir("store"), workers=2,
                    configure_sim_cache=False)
    server = GatewayServer(daemon).start()
    daemon.start()
    try:
        client = ServeClient(server.url, timeout=10)
        started = time.perf_counter()
        ids = [client.submit("probe", {"payload": index})["id"]
               for index in range(_GATEWAY_JOBS)]
        jobs = client.wait(ids, timeout=60)
        elapsed = time.perf_counter() - started
        lost = sum(job["state"] != "done" for job in jobs.values())
        return {"jobs": _GATEWAY_JOBS, "lost": lost,
                "elapsed_s": round(elapsed, 4),
                "jobs_per_sec": round(_GATEWAY_JOBS
                                      / max(elapsed, 1e-9), 1)}
    finally:
        server.stop()
        daemon.stop()


register(Scenario(
    name="gateway-stress-floor", family="perf", tags=("ci",),
    description="Serial submit+drain of a probe burst through the "
                "asyncio gateway must clear a conservative "
                "jobs/sec floor with nothing lost.",
    ops=_ops_gateway_floor,
    expected={"jobs": (_GATEWAY_JOBS, _GATEWAY_JOBS), "lost": (0, 0),
              "elapsed_s": (0.0, 30.0),
              "jobs_per_sec": (15.0, 1000000.0)}))
