"""Declarative scenario registry + runner (see ISSUE: one gated zoo).

``from repro.scenarios import run_scenarios`` runs a selection and
returns a :class:`~repro.scenarios.runner.ScenarioReport`; importing
this package registers the built-in zoo (:mod:`repro.scenarios.builtin`).
"""

from .registry import (Scenario, all_scenarios, get_scenario, register,
                       select_scenarios, unregister)
from .runner import (ScenarioContext, ScenarioReport, ScenarioResult,
                     manifest_counters, run_scenario, run_scenarios)
from . import builtin  # noqa: F401  — populates the registry

__all__ = [
    "Scenario", "ScenarioContext", "ScenarioReport", "ScenarioResult",
    "all_scenarios", "get_scenario", "manifest_counters", "register",
    "run_scenario", "run_scenarios", "select_scenarios", "unregister",
]
