"""Declarative scenario registry: (spec, scores, expected ranges).

A *scenario* is one regression-gated workload: either a flow spec
(built per-run so it can reference scratch dirs) plus a score
extractor, or — for operational scenarios that orchestrate their own
daemons (kill-worker recovery, gateway stress) — a self-contained
``ops`` driver.  Each declares ``expected`` ranges per metric; a score
outside its range (or missing) is a violation and fails the run.
Deterministic metrics can additionally be listed in ``pinned``: the
report fingerprints them (sha256) so golden tests catch silent drift
even *inside* the allowed range.

Adding a workload is a registry entry plus a spec — no orchestration
code.  ``repro scenarios run --all|--name|--tag`` executes entries
directly or through an in-process daemon and emits one
machine-readable report (:mod:`repro.scenarios.runner`) that CI gates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Scenario:
    """One registry entry.

    ``build(ctx)`` returns a flow spec blob; ``extract(results, ctx)``
    maps the per-node result blobs to a flat ``{metric: number}`` dict.
    Operational scenarios set ``ops(ctx)`` instead and drive their own
    service topology; ``build``/``extract`` are then unused.  ``family``
    is one of ``sweep`` (paper-style fan-out), ``chaos`` (fault
    injection), ``perf`` (floors/ceilings on operational metrics).
    """

    name: str
    family: str
    description: str
    expected: dict[str, tuple[float, float]]
    tags: tuple[str, ...] = ()
    build: Callable[["ScenarioContext"], dict] | None = None
    extract: Callable[[dict, "ScenarioContext"], dict] | None = None
    ops: Callable[["ScenarioContext"], dict] | None = None
    #: Metrics whose exact values are deterministic; fingerprinted by
    #: golden tests.
    pinned: tuple[str, ...] = ()

    def __post_init__(self):
        if self.family not in ("sweep", "chaos", "perf"):
            raise ValueError(f"bad scenario family '{self.family}'")
        if (self.ops is None) == (self.build is None):
            raise ValueError(
                f"scenario '{self.name}' needs exactly one of "
                "build+extract or ops")
        if self.build is not None and self.extract is None:
            raise ValueError(
                f"scenario '{self.name}' has build but no extract")
        unknown = [metric for metric in self.pinned
                   if metric not in self.expected]
        if unknown:
            raise ValueError(
                f"scenario '{self.name}' pins metrics without "
                f"expected ranges: {', '.join(unknown)}")

    def fingerprint(self, scores: dict) -> str:
        """Digest of the deterministic (pinned) metric values."""
        payload = {"scenario": self.name, "family": self.family,
                   "scores": {metric: scores.get(metric)
                              for metric in self.pinned}}
        encoded = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def violations(self, scores: dict) -> list[dict]:
        """Range check: every expected metric, in declared order."""
        found = []
        for metric, (low, high) in self.expected.items():
            value = scores.get(metric)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                found.append({"metric": metric, "value": value,
                              "low": low, "high": high,
                              "reason": "missing or non-numeric"})
            elif not (low <= value <= high):
                found.append({"metric": metric, "value": value,
                              "low": low, "high": high,
                              "reason": "out of range"})
        return found


_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario '{scenario.name}' already "
                         "registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def all_scenarios() -> list[Scenario]:
    """Every registered scenario, in registration order."""
    return list(_REGISTRY.values())


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "none"
        raise KeyError(f"unknown scenario '{name}' "
                       f"(registered: {known})") from None


def select_scenarios(names: list[str] | None = None,
                     tag: str | None = None) -> list[Scenario]:
    """Resolve a CLI selection; names are validated, tags filter."""
    if names:
        return [get_scenario(name) for name in names]
    scenarios = all_scenarios()
    if tag is not None:
        scenarios = [s for s in scenarios if tag in s.tags]
    return scenarios
