"""Execute registered scenarios and emit one machine-readable report.

Flow-backed scenarios run either *direct* (topo-serial in process, no
daemon — the determinism reference) or *daemon* (a private in-process
daemon + HTTP server per scenario, exercising the whole journaled
submit/schedule/batch path).  Operational scenarios (``ops``) always
drive their own topology — subprocess daemons to SIGKILL, gateway
front ends to stress — and ignore ``via``.

The report (:class:`ScenarioReport`) is what CI gates: per scenario
the scores, the declared ranges, every violation, the wall time, and
a fingerprint over the pinned (deterministic) metrics that golden
tests compare against ``tests/golden/scenario_reports.json``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field

from .registry import Scenario, select_scenarios

#: Tiny deterministic Verilog corpus shared by scenario specs — same
#: designs the pipeline e2e golden pins.
MODULE_DFF = """module dff(input clk, input d, output reg q);
  always @(posedge clk) q <= d;
endmodule
"""

MODULE_MUX2 = """module mux2(input a, input b, input sel, output y);
  assign y = sel ? b : a;
endmodule
"""


@dataclass
class ScenarioContext:
    """Per-scenario scratch space + execution knobs.

    ``root`` is private to the scenario run; ``corpus()`` materialises
    the standard tiny corpus inside it, ``workdir()`` hands out named
    scratch dirs.  ``via``/``jobs`` steer flow-backed scenarios; ops
    scenarios are free to ignore them.
    """

    root: str
    via: str = "direct"
    jobs: int = 1

    def workdir(self, name: str = "work") -> str:
        path = os.path.join(self.root, name)
        os.makedirs(path, exist_ok=True)
        return path

    def corpus(self) -> str:
        corpus = os.path.join(self.root, "corpus")
        os.makedirs(corpus, exist_ok=True)
        for name, text in (("dff.v", MODULE_DFF),
                           ("mux2.v", MODULE_MUX2)):
            path = os.path.join(corpus, name)
            if not os.path.exists(path):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text)
        return corpus


def manifest_counters(workdir: str) -> dict[str, dict]:
    """``relative dir → last_run`` for every cache manifest found."""
    counters = {}
    for root, _, names in os.walk(workdir):
        if "manifest.json" not in names:
            continue
        with open(os.path.join(root, "manifest.json"),
                  encoding="utf-8") as handle:
            blob = json.load(handle)
        if "last_run" in blob:
            counters[os.path.relpath(root, workdir)] = blob["last_run"]
    return counters


def run_flow_daemon(flow: dict, store_dir: str, *,
                    workers: int = 2, engine_jobs: int = 1,
                    timeout: float = 600.0) -> dict[str, dict]:
    """Run one flow through a private in-process daemon + HTTP server."""
    from ..flow import run_flow
    from ..serve import Daemon, ServeClient, make_server

    daemon = Daemon(store_dir, workers=workers, engine_jobs=engine_jobs,
                    configure_sim_cache=False)
    server = make_server(daemon, port=0)
    daemon.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(
        f"http://127.0.0.1:{server.server_address[1]}")
    try:
        return run_flow(client, flow, timeout=timeout)
    finally:
        server.shutdown()
        server.server_close()
        daemon.stop()


@dataclass
class ScenarioResult:
    """One scenario's outcome inside a report."""

    name: str
    family: str
    via: str
    scores: dict
    expected: dict[str, tuple[float, float]]
    violations: list[dict]
    fingerprint: str
    duration_s: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations

    def to_dict(self) -> dict:
        return {"name": self.name, "family": self.family,
                "via": self.via, "ok": self.ok, "scores": self.scores,
                "expected": {metric: list(bounds) for metric, bounds
                             in self.expected.items()},
                "violations": self.violations,
                "fingerprint": self.fingerprint,
                "duration_s": round(self.duration_s, 3),
                "error": self.error}


@dataclass
class ScenarioReport:
    """Every result of one ``repro scenarios run`` invocation."""

    via: str
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def to_dict(self) -> dict:
        return {"version": 1, "via": self.via, "ok": self.ok,
                "scenarios": [result.to_dict()
                              for result in self.results],
                "violations": sum(len(result.violations)
                                  for result in self.results)}

    def render(self) -> str:
        lines = [f"{'scenario':24} {'family':6} {'ok':3} scores"]
        for result in self.results:
            shown = ", ".join(
                f"{metric}={value:.4g}" if isinstance(value,
                                                     (int, float))
                and not isinstance(value, bool)
                else f"{metric}={value}"
                for metric, value in result.scores.items())
            status = "ok" if result.ok else "FAIL"
            lines.append(f"{result.name:24} {result.family:6} "
                         f"{status:4} {shown}")
            for violation in result.violations:
                lines.append(
                    f"  !! {violation['metric']}="
                    f"{violation['value']} outside "
                    f"[{violation['low']}, {violation['high']}] "
                    f"({violation['reason']})")
            if result.error:
                lines.append(f"  !! error: {result.error}")
        return "\n".join(lines)


def run_scenario(scenario: Scenario, root: str, *, via: str = "direct",
                 jobs: int = 1) -> ScenarioResult:
    """Run one scenario in its own scratch dir under ``root``."""
    from ..flow import run_flow_direct

    ctx = ScenarioContext(root=os.path.join(root, scenario.name),
                          via=via, jobs=jobs)
    os.makedirs(ctx.root, exist_ok=True)
    started = time.monotonic()
    error = None
    scores: dict = {}
    try:
        if scenario.ops is not None:
            scores = scenario.ops(ctx)
        else:
            flow = scenario.build(ctx)
            if via == "daemon":
                results = run_flow_daemon(flow, ctx.workdir("store"),
                                          engine_jobs=jobs)
            else:
                results = run_flow_direct(flow, ctx.workdir("work"),
                                          engine_jobs=jobs)
            scores = scenario.extract(results, ctx)
    except Exception as exc:        # noqa: BLE001 — reported, not raised
        error = f"{type(exc).__name__}: {exc}"
    duration = time.monotonic() - started
    violations = scenario.violations(scores) if error is None else []
    return ScenarioResult(
        name=scenario.name, family=scenario.family, via=via,
        scores=scores, expected=dict(scenario.expected),
        violations=violations,
        fingerprint=scenario.fingerprint(scores),
        duration_s=duration, error=error)


def run_scenarios(names: list[str] | None = None,
                  tag: str | None = None, *, root: str | None = None,
                  via: str = "direct", jobs: int = 1) -> ScenarioReport:
    """Run a selection (see :func:`select_scenarios`) and report."""
    from . import builtin  # noqa: F401 — ensure registrations
    scenarios = select_scenarios(names, tag)
    owned = root is None
    if owned:
        root = tempfile.mkdtemp(prefix="repro-scenarios-")
    report = ScenarioReport(via=via)
    for scenario in scenarios:
        report.results.append(
            run_scenario(scenario, root, via=via, jobs=jobs))
    return report
