"""ChipGPT-FT reproduction: automated design-data augmentation for
chip-design LLMs ("Data is all you need", DAC 2024).

Subpackages
-----------
``repro.core``
    The paper's contribution: completion / NL-alignment / mutation /
    repair / EDA-script augmentation stages and the full pipeline.
``repro.verilog`` / ``repro.checker`` / ``repro.sim``
    Verilog front-end, yosys-style checker, event-driven simulator.
``repro.nl``
    AST → natural-language program-analysis rules (Fig. 5).
``repro.eda``
    Mini SiliconCompiler, gate-level synthesis, RTL-to-GDS flow.
``repro.llm``
    Real trainable LMs (n-gram, numpy transformer + LoRA) and the
    calibrated behavioural model zoo.
``repro.bench`` / ``repro.eval`` / ``repro.experiments``
    Benchmark suites, evaluation harness and per-table/figure drivers.
"""

from .core import (AugmentationPipeline, Dataset, PipelineConfig, Record,
                   Task)
from .nl import describe_module, describe_source
from .verilog import parse, parse_module, unparse

__version__ = "0.1.0"

__all__ = [
    "AugmentationPipeline", "PipelineConfig", "Dataset", "Record", "Task",
    "describe_module", "describe_source", "parse", "parse_module",
    "unparse", "__version__",
]
