"""pass@k estimation (Chen et al., 2021) and counting helpers."""

from __future__ import annotations

from math import comb


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased pass@k: probability ≥1 of k samples (of n, c correct) pass.

    >>> pass_at_k(5, 0, 5)
    0.0
    >>> pass_at_k(5, 5, 5)
    1.0
    """
    if n < 0 or c < 0 or c > n:
        raise ValueError("need 0 <= c <= n")
    if k <= 0:
        raise ValueError("k must be positive")
    if n == 0:
        return 0.0
    if k >= n:
        return 1.0 if c > 0 else 0.0
    if c == 0:
        return 0.0
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def success_rate(successes: int, total: int) -> float:
    """Fraction in [0, 1]; 0 when total == 0."""
    if total <= 0:
        return 0.0
    return successes / total


def format_pct(fraction: float, decimals: int = 1) -> str:
    """0.706 → '70.6%' (paper formatting)."""
    return f"{100 * fraction:.{decimals}f}%"
