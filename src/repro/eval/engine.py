"""The unified parallel evaluation engine.

One execution kernel behind every benchmark sweep (Tables 3–5): a sweep
is decomposed into :class:`EvalTask` units — one (model, payload, level,
sample budget) cell — which run on the generic
:class:`~repro.scale.runner.WorkPool` and persist through
:class:`EvalCache`, a :class:`~repro.scale.cache.ManifestCache` of one
JSON blob per cell.

Determinism rules (mirroring ``repro.scale``):

* every sample a behavioural model draws is seeded by a **stable hash**
  of (model, problem, level, sample index) and repair benchmarks are
  built from **content-derived** seeds (:func:`repro.eval.repair_eval.case_seed`)
  — a task's result is a pure function of the task, never of which
  worker ran it or in what order;
* results are re-assembled in the caller's task order, so reports are
  byte-identical across ``jobs`` settings, thread vs process pools, and
  cache hits vs recomputes.

Cache-invalidation rules:

* a cell's **slot** is its identity — (kind, model, payload name,
  level) — and its **key** hashes the engine format version, the model's
  full calibration profile, the sampling knobs and a content digest of
  the payload (reference, testbench, prompts, broken file, feedback, …);
* editing one problem therefore invalidates exactly that problem's
  cells; changing a model profile or sampling knob invalidates exactly
  the affected cells; an :data:`EVAL_CACHE_VERSION` bump discards the
  cache wholesale;
* entry files and the manifest are written atomically, and the manifest
  records ``last_run: {hits, misses}`` — a fully warm re-run is
  verifiable as ``misses == 0``.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass

from ..bench.problems import Problem
from ..bench.scgen import ScriptTask
from ..llm.behavioral import BehavioralModel
from ..scale.cache import ManifestCache
from ..scale.runner import WorkPool
from .repair_eval import BrokenCase, evaluate_repair_cell
from .script_eval import iterations_to_correct
from .verilog_eval import evaluate_cell

#: Bump when the cell blob format (or evaluation semantics) changes;
#: discards old eval caches wholesale.
#: v2: trained artefacts evaluate real sampled transformer output
#: (repro.infer) instead of the behavioural bridge.
EVAL_CACHE_VERSION = 2

_SLOT_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _digest(*parts: object) -> str:
    return hashlib.sha256(
        "\x1f".join(str(p) for p in parts).encode("utf-8")).hexdigest()


def payload_digest(payload: Problem | BrokenCase | ScriptTask) -> str:
    """Content digest of one task payload.

    Hashes every field that can change the verdict; for script tasks the
    reference script stands in for its (non-hashable) expectation
    predicate, which is derived from it.
    """
    if isinstance(payload, Problem):
        prompts = json.dumps(payload.prompts, sort_keys=True)
        return _digest("problem", payload.name, payload.suite,
                       payload.tier, payload.difficulty, prompts,
                       payload.reference, payload.testbench)
    if isinstance(payload, BrokenCase):
        return _digest("broken-case", payload_digest(payload.problem),
                       payload.broken, payload.feedback)
    if isinstance(payload, ScriptTask):
        return _digest("script-task", payload.name, payload.prompt,
                       payload.reference)
    raise TypeError(f"unsupported payload type {type(payload).__name__}")


def profile_digest(model: BehavioralModel) -> str:
    """Digest of a model's full identity for cache keying.

    Behavioural models hash their calibration profile + sampling seed.
    Sampling-backed models (:class:`repro.infer.SampledModel`) expose
    ``eval_fingerprint`` — sha256 weights digest + decode knobs — which
    is folded in so two trained artefacts registered under the *same*
    spec name can never share cells: the weights, not the name, are the
    identity.
    """
    blob = json.dumps(asdict(model.profile), sort_keys=True)
    fingerprint = getattr(model, "eval_fingerprint", None)
    if fingerprint:
        return _digest("profile", blob, model.seed, fingerprint)
    return _digest("profile", blob, model.seed)


@dataclass(frozen=True, eq=False)
class EvalTask:
    """One unit of evaluation work: a single benchmark cell.

    ``n_samples`` is the sample budget — candidate samples for
    generation/repair, ``max_attempts`` for scripts.  Tasks are
    picklable (payloads are plain dataclasses; script expectations are
    module-level functions) so they can cross a process boundary.
    """

    kind: str                                   #: generation|repair|script
    model: BehavioralModel
    payload: Problem | BrokenCase | ScriptTask
    level: str = "middle"                       #: generation only
    n_samples: int = 5
    #: Simulator backend (``"compiled"``/``"interp"``/None = default).
    #: Deliberately excluded from :meth:`key`: the backends are proven
    #: output-identical (tests/test_sim_differential.py), so cached
    #: cells are shared across ``--sim-backend`` settings.
    sim_backend: str | None = None

    @property
    def name(self) -> str:
        if isinstance(self.payload, BrokenCase):
            return self.payload.problem.name
        return self.payload.name

    def slot(self) -> str:
        """Stable identity: which cell this is (not what it computed).

        Sampling-backed models qualify the name with a fragment of
        their weights fingerprint: two artefacts under one registered
        name occupy *different* slots, so a retrained pipeline adds
        cells instead of overwriting (and possibly aliasing) the old
        artefact's entries.
        """
        fingerprint = getattr(self.model, "eval_fingerprint", None)
        model_tag = self.model.name if not fingerprint \
            else f"{self.model.name}@{_digest(fingerprint)[:8]}"
        identity = f"{self.kind}-{model_tag}-{self.name}" + (
            f"-{self.level}" if self.level else "")
        return _SLOT_SAFE.sub("_", identity)

    def key(self) -> str:
        """Content key: everything the cell's verdict depends on."""
        return _digest(EVAL_CACHE_VERSION, self.kind,
                       profile_digest(self.model), self.level,
                       self.n_samples, payload_digest(self.payload))


def run_eval_task_traced(task: EvalTask) -> tuple[dict, "object"]:
    """Execute one cell and capture its simulator-backend counters.

    Returns ``(blob, stats_delta)`` where ``stats_delta`` is the
    :class:`repro.sim.BackendStats` increment this cell caused *in the
    executing thread*.  Counters are thread-local (each pool worker —
    thread or process — owns its own), so per-task deltas are exact and
    summing them over the result stream recovers the true totals no
    matter where the work ran.  Module-level (picklable) so the
    :class:`WorkPool` can run it in a worker process.
    """
    from ..sim import backend_stats
    stats = backend_stats()
    before = stats.copy()
    blob = run_eval_task(task)
    return blob, stats.delta_since(before)


def run_eval_task(task: EvalTask) -> dict:
    """Execute one cell; returns its JSON-serialisable result blob.

    Module-level (picklable) so the :class:`WorkPool` can run it in a
    worker process.
    """
    if task.kind == "generation":
        return evaluate_cell(task.model, task.payload, task.level,
                             task.n_samples,
                             sim_backend=task.sim_backend).to_dict()
    if task.kind == "repair":
        return evaluate_repair_cell(task.model, task.payload,
                                    task.n_samples,
                                    sim_backend=task.sim_backend) \
            .to_dict()
    if task.kind == "script":
        return iterations_to_correct(task.model, task.payload,
                                     task.n_samples).to_dict()
    raise ValueError(f"unknown eval task kind '{task.kind}'")


class EvalCache(ManifestCache):
    """On-disk cell cache: ``cells/cell-<slot>-<key8>.json`` + manifest."""

    version = EVAL_CACHE_VERSION
    subdir = "cells"
    file_prefix = "cell-"
    file_suffix = ".json"

    def _encode(self, payload: dict) -> str:
        return json.dumps(payload, ensure_ascii=False, sort_keys=True) \
            + "\n"

    #: Field sets a cell blob must carry to round-trip through one of
    #: the report from_dict constructors.
    _SHAPES = ({"syntax_errors", "function_rate"},
               {"syntax_iteration", "function_iteration"})

    def _decode(self, text: str) -> dict:
        blob = json.loads(text)
        if not isinstance(blob, dict) or not any(
                shape <= blob.keys() for shape in self._SHAPES):
            # Wrong-shape blobs degrade to a miss instead of crashing
            # later inside a report constructor.
            raise ValueError("unrecognised cell blob shape")
        return blob


def engine_fingerprint() -> str:
    """Manifest fingerprint: format only — result-affecting config lives
    in each entry's key, so knob changes invalidate cells, not caches."""
    return _digest("repro.eval.engine", EVAL_CACHE_VERSION)


@dataclass
class EngineStats:
    """Accounting for one :meth:`EvalEngine.run` call."""

    tasks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    computed: int = 0
    jobs: int = 1
    cache_enabled: bool = False

    def summary(self) -> str:
        cache = (f"cache {self.cache_hits} hit(s) / "
                 f"{self.cache_misses} miss(es)"
                 if self.cache_enabled else "cache disabled")
        return (f"{self.tasks} cell(s) [{self.computed} computed, "
                f"jobs={self.jobs}, {cache}]")


class EvalEngine:
    """Cached, sharded execution of benchmark cells.

    ``jobs`` maps cells over a process pool (threads with
    ``use_threads=True``); ``cache_dir`` makes re-runs incremental.
    Both are purely operational: the result list is byte-identical for
    any setting.
    """

    def __init__(self, jobs: int = 1, cache_dir: str | None = None,
                 use_threads: bool = False):
        from ..sim import BackendStats
        self.jobs = max(1, jobs)
        self.cache_dir = cache_dir
        self.use_threads = use_threads
        self.stats = EngineStats(jobs=self.jobs)
        #: Simulator-backend counters aggregated across *all* workers of
        #: every :meth:`run` on this engine (exact with ``jobs > 1``,
        #: unlike the per-thread ``repro.sim.backend_stats()`` counters,
        #: which only ever see the calling thread's own work).
        self.sim_stats = BackendStats()

    def run(self, tasks: list[EvalTask]) -> list[dict]:
        """Evaluate every task; returns result blobs in task order."""
        from ..sim import BackendStats
        cache = (EvalCache(self.cache_dir, engine_fingerprint())
                 if self.cache_dir else None)
        results: list[dict | None] = [None] * len(tasks)
        keys: dict[int, str] = {}
        dirty: dict[int, EvalTask] = {}
        for index, task in enumerate(tasks):
            keys[index] = task.key()
            cached = (cache.lookup(task.slot(), keys[index])
                      if cache is not None else None)
            if cached is not None:
                results[index] = cached
            else:
                dirty[index] = task

        sim_stats = BackendStats()
        if dirty:
            done = 0

            def on_done(index: int, traced: tuple[dict, object]) -> None:
                nonlocal done
                sim_stats.add(traced[1])
                if cache is not None:
                    cache.store(tasks[index].slot(), keys[index],
                                traced[0])
                    done += 1
                    # Periodic flush keeps an interrupted run warm
                    # without rewriting the manifest per cell (O(n^2)
                    # on big sweeps); the final flush below is the
                    # authoritative write.
                    if done % 32 == 0:
                        cache.flush()

            pool = WorkPool(jobs=self.jobs, use_threads=self.use_threads)
            for index, traced in pool.map(run_eval_task_traced, dirty,
                                          on_done=on_done).items():
                results[index] = traced[0]
        if cache is not None:
            cache.flush()
        self.sim_stats.add(sim_stats)

        self.stats = EngineStats(
            tasks=len(tasks),
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
            computed=len(dirty), jobs=self.jobs,
            cache_enabled=cache is not None)
        return results
