"""Table renderers matching the paper's evaluation section layout."""

from __future__ import annotations

from ..bench.problems import PROMPT_LEVELS
from ..llm.registry import get_profile
from .passk import format_pct
from .repair_eval import RepairReport
from .script_eval import IterationResult, ScriptReport
from .verilog_eval import GenerationReport

#: Paper Table 1 (qualitative comparison), reproduced statically.
TABLE1_ROWS = [
    ("ChipNeMo", "Verilog Generation", "Llama 2", "Verilog",
     "Private", "no"),
    ("Thakur et al.", "Verilog Completion", "CodeGen", "Verilog",
     "Github etc.", "no"),
    ("ChatEDA", "EDA Script Generation", "Llama 2",
     "ChatEDA (Python DSL)", "Custom", "no"),
    ("Ours", "Verilog Gen/Repair, EDA Script", "Llama 2",
     "Verilog, SiliconCompiler (Python DSL)", "Github etc.", "yes"),
]


def render_table1() -> str:
    header = (f"{'Work':<14} {'Target Task':<30} {'Base Model':<10} "
              f"{'Target Language':<38} {'Data':<12} {'Auto Aug.':<9}")
    lines = [header, "-" * len(header)]
    for row in TABLE1_ROWS:
        lines.append(f"{row[0]:<14} {row[1]:<30} {row[2]:<10} "
                     f"{row[3]:<38} {row[4]:<12} {row[5]:<9}")
    return "\n".join(lines)


def _display(model: str) -> str:
    return get_profile(model).display


def render_table5(report: GenerationReport,
                  thakur_names: list[str], rtllm_names: list[str],
                  levels: tuple[str, ...] = PROMPT_LEVELS,
                  pass_k: int = 5) -> str:
    """Paper Table 5: Thakur rows (triple cells) + RTLLM rows + totals,
    plus overall pass@1 / pass@k rows."""
    models = list(report.cells)
    syn_w, fn_w = 9, 18
    col_w = syn_w + fn_w
    header = f"{'benchmark':<18}" + "".join(
        f"{_display(m):>{col_w}}" for m in models)
    sub = f"{'name':<18}" + "".join(
        f"{'syntax':>{syn_w}}{'function':>{fn_w}}" for _ in models)
    lines = [header, sub, "-" * len(sub)]
    for name in thakur_names:
        row = f"{name:<18}"
        for model in models:
            cells = [report.cell(model, name, level) for level in levels]
            syntax = "/".join(str(c.syntax_errors) for c in cells)
            func = "/".join(format_pct(c.function_rate, 0)
                            for c in cells)
            row += f"{syntax:>{syn_w}}{func:>{fn_w}}"
        lines.append(row)
    lines.append(f"{'success rate':<18}" + "".join(
        f"{'':>{syn_w}}"
        f"{format_pct(report.success_rate(m, thakur_names)):>{fn_w}}"
        for m in models))
    lines.append("-" * len(sub))
    for name in rtllm_names:
        row = f"{name:<18}"
        for model in models:
            level = levels[len(levels) // 2] if len(levels) > 1 \
                else levels[0]
            cell = report.cell(model, name, level)
            row += (f"{cell.syntax_errors:>{syn_w}}"
                    f"{format_pct(cell.function_rate, 0):>{fn_w}}")
        lines.append(row)
    lines.append(f"{'success rate':<18}" + "".join(
        f"{'':>{syn_w}}"
        f"{format_pct(report.success_rate(m, rtllm_names)):>{fn_w}}"
        for m in models))
    lines.append("-" * len(sub))
    all_names = thakur_names + rtllm_names
    lines.append(f"{'All success':<18}" + "".join(
        f"{'':>{syn_w}}"
        f"{format_pct(report.success_rate(m, all_names)):>{fn_w}}"
        for m in models))
    ks = [1] if pass_k <= 1 else [1, pass_k]
    for k in ks:
        lines.append(f"{f'pass@{k}':<18}" + "".join(
            f"{'':>{syn_w}}"
            f"{format_pct(report.pass_at_k(m, k, all_names)):>{fn_w}}"
            for m in models))
    return "\n".join(lines)


def render_table3(report: RepairReport,
                  problem_names: list[str]) -> str:
    """Paper Table 3: per-design repair syntax/function + success rate."""
    models = list(report.cells)
    header = f"{'Benchmark':<18}" + "".join(
        f"{_display(m):>24}" for m in models)
    sub = f"{'':<18}" + "".join(
        f"{'syntax':>12}{'function':>12}" for _ in models)
    lines = [header, sub, "-" * len(sub)]
    for name in problem_names:
        row = f"{name:<18}"
        for model in models:
            cell = report.cells[model][name]
            row += (f"{cell.syntax_errors:>12}"
                    f"{format_pct(cell.function_rate, 0):>12}")
        lines.append(row)
    lines.append("-" * len(sub))
    lines.append(f"{'success rate':<18}" + "".join(
        f"{'':>12}{format_pct(report.success_rate(m)):>12}"
        for m in models))
    return "\n".join(lines)


def render_table4(report: ScriptReport, task_names: list[str]) -> str:
    """Paper Table 4: iterations to syntax-/function-correct scripts."""
    models = list(report.results)
    header = f"{'benchmark':<14}" + "".join(
        f"{_display(m):>22}" for m in models)
    sub = f"{'':<14}" + "".join(f"{'syn.':>11}{'func.':>11}"
                                for _ in models)
    lines = [header, sub, "-" * len(sub)]
    for task in task_names:
        row = f"{task:<14}"
        for model in models:
            result = report.results[model][task]
            row += (f"{IterationResult.render(result.syntax_iteration, report.max_attempts):>11}"
                    f"{IterationResult.render(result.function_iteration, report.max_attempts):>11}")
        lines.append(row)
    lines.append("-" * len(sub))
    avg_row = f"{'avg pass@k':<14}"
    for model in models:
        avg_syn, avg_func = report.average(model)
        avg_row += (
            f"{(f'{avg_syn:.1f}' if avg_syn is not None else f'>{report.max_attempts}'):>11}"
            f"{(f'{avg_func:.1f}' if avg_func is not None else f'>{report.max_attempts}'):>11}")
    lines.append(avg_row)
    return "\n".join(lines)
