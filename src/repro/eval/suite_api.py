"""One shared "run benchmark suite X" entry point.

``repro evaluate`` and the job service (:mod:`repro.serve`) both need
the same operation — resolve a suite by registry name, sweep it through
the shared :class:`~repro.eval.engine.EvalEngine`, and render the
paper-style table — so it lives here once.  The split into
:func:`suite_report` / :func:`subset_report` / :func:`render_suite`
exists for the service's batching: several same-suite jobs evaluate as
*one* engine pass over the union of their models, then each job renders
its own model subset — byte-identical to running that job alone,
because every model's cells are independent and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Prompt levels swept by generation suites (paper order).
DEFAULT_LEVELS = ("low", "middle", "high")


def suite_models(suite: str, names: list[str] | None = None) -> list[str]:
    """Model names for a suite — the paper's column order by default."""
    if names:
        return list(names)
    from ..llm import (TABLE3_MODEL_ORDER, TABLE4_MODEL_ORDER,
                       TABLE5_MODEL_ORDER)
    if suite == "repair":
        return list(TABLE3_MODEL_ORDER)
    if suite == "scripts":
        return list(TABLE4_MODEL_ORDER)
    return list(TABLE5_MODEL_ORDER)


def default_samples(suite: str) -> int:
    """Sample budget per cell (the paper's pass@10 for scripts)."""
    return 10 if suite == "scripts" else 5


@dataclass
class SuiteResult:
    """A rendered suite evaluation plus the report it came from."""

    suite: str
    models: list[str]
    rendered: str
    report: object


def suite_report(suite: str, model_names: list[str],
                 samples: int | None = None,
                 levels: tuple[str, ...] | None = None, seed: int = 0,
                 engine=None, sim_backend: str | None = None):
    """Evaluate ``suite`` for ``model_names`` in one engine pass."""
    from ..bench import GENERATION_SUITES, generation_suite, scgen_suite
    from ..llm import get_model
    from .repair_eval import evaluate_repair
    from .script_eval import evaluate_scripts
    from .verilog_eval import evaluate_generation
    models = [get_model(name) for name in model_names]
    samples = samples if samples is not None else default_samples(suite)
    if suite in GENERATION_SUITES:
        return evaluate_generation(
            models, list(generation_suite(suite)),
            levels=tuple(levels) if levels else DEFAULT_LEVELS,
            n_samples=samples, engine=engine, sim_backend=sim_backend)
    if suite == "repair":
        from ..bench import rtllm_suite
        return evaluate_repair(models, list(rtllm_suite()), seed=seed,
                               n_samples=samples, engine=engine,
                               sim_backend=sim_backend)
    if suite == "scripts":
        return evaluate_scripts(models, list(scgen_suite()),
                                max_attempts=samples, engine=engine)
    raise KeyError(f"unknown eval suite '{suite}'")


def subset_report(suite: str, report, model_names: list[str]):
    """The sub-report for ``model_names``, in that order.

    Cells are per-model and deterministic, so a subset of a union-run
    report is byte-identical to a report computed for the subset alone.
    """
    from .repair_eval import RepairReport
    from .script_eval import ScriptReport
    from .verilog_eval import GenerationReport
    if isinstance(report, GenerationReport):
        return GenerationReport(
            cells={name: report.cells[name] for name in model_names})
    if isinstance(report, RepairReport):
        return RepairReport(
            cells={name: report.cells[name] for name in model_names})
    if isinstance(report, ScriptReport):
        return ScriptReport(
            results={name: report.results[name] for name in model_names},
            max_attempts=report.max_attempts)
    raise TypeError(f"unsupported report type {type(report).__name__}")


def render_suite(suite: str, report,
                 levels: tuple[str, ...] | None = None,
                 pass_k: int = 5) -> str:
    """Render the paper-style table for an already-computed report."""
    from ..bench import GENERATION_SUITES, generation_suite, scgen_suite
    from .reporting import render_table3, render_table4, render_table5
    if suite in GENERATION_SUITES:
        problems = list(generation_suite(suite))
        thakur = [p.name for p in problems if p.suite == "thakur"]
        rtllm = [p.name for p in problems if p.suite == "rtllm"]
        return render_table5(report, thakur, rtllm,
                             levels=tuple(levels) if levels
                             else DEFAULT_LEVELS,
                             pass_k=pass_k)
    if suite == "repair":
        from ..bench import rtllm_suite
        return render_table3(report,
                             [p.name for p in rtllm_suite()])
    if suite == "scripts":
        return render_table4(report,
                             [t.name for t in scgen_suite()])
    raise KeyError(f"unknown eval suite '{suite}'")


def suite_scores(suite: str, report, k: int = 5) -> dict[str, dict]:
    """Machine-readable per-model metrics for one suite report.

    The rendered tables are for humans; scenario gating and service
    result blobs need numbers.  Every value is a plain float (or
    ``None`` where a script model produced no passing run), computed
    from the same cells the table renders — so the scores are exactly
    as deterministic as the report.
    """
    from .repair_eval import RepairReport
    from .script_eval import ScriptReport
    from .verilog_eval import GenerationReport
    if isinstance(report, GenerationReport):
        return {model: {"solve_rate": report.success_rate(model),
                        "pass_at_k": report.pass_at_k(model, k)}
                for model in report.cells}
    if isinstance(report, RepairReport):
        return {model: {"solve_rate": report.success_rate(model)}
                for model in report.cells}
    if isinstance(report, ScriptReport):
        scores = {}
        for model in report.results:
            avg_syntax, avg_function = report.average(model)
            scores[model] = {"avg_syntax_iterations": avg_syntax,
                             "avg_function_iterations": avg_function}
        return scores
    raise TypeError(f"unsupported report type {type(report).__name__}")


def run_suite(suite: str, models: list[str] | None = None,
              samples: int | None = None, k: int = 5,
              levels: tuple[str, ...] | None = None, seed: int = 0,
              engine=None, sim_backend: str | None = None,
              artifacts: list[dict] | None = None) -> SuiteResult:
    """Evaluate one suite end-to-end and render its table.

    ``artifacts`` are training artefacts
    (:func:`repro.train.artifact.build_artifact` blobs) registered
    before model resolution, so freshly finetuned models appear in
    ``models`` — and the rendered table — like any built-in.  With no
    explicit ``models`` the artefact names are appended to the suite's
    paper column order.
    """
    registered = []
    if artifacts:
        from ..llm import register_artifact
        registered = [register_artifact(artifact).name
                      for artifact in artifacts]
    names = suite_models(suite, models)
    if models is None:
        names += [name for name in registered if name not in names]
    report = suite_report(suite, names, samples=samples, levels=levels,
                          seed=seed, engine=engine,
                          sim_backend=sim_backend)
    rendered = render_suite(suite, report, levels=levels, pass_k=k)
    return SuiteResult(suite=suite, models=names, rendered=rendered,
                       report=report)
