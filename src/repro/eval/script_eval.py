"""EDA-script generation evaluation (drives Table 4).

For each task the model generates scripts attempt by attempt; the script
runner (real Python compile + mini-SiliconCompiler execution + task
expectation) judges each one.  The reported numbers are the first
iteration with correct *syntax* and with correct *function* under
pass@10 — ``None`` renders as the paper's ``>10``.

Each (model, task) pair is one :class:`EvalTask` on the shared
evaluation engine, so the Table-4 sweep parallelises and caches like
the generation/repair sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.scgen import ScriptTask
from ..eda import run_script
from ..llm.behavioral import BehavioralModel


@dataclass(frozen=True)
class IterationResult:
    """First syntax-correct / function-correct attempt (None = >max)."""

    syntax_iteration: int | None
    function_iteration: int | None

    @staticmethod
    def render(iteration: int | None, max_attempts: int = 10) -> str:
        return str(iteration) if iteration is not None \
            else f">{max_attempts}"

    def to_dict(self) -> dict:
        return {"syntax_iteration": self.syntax_iteration,
                "function_iteration": self.function_iteration}

    @staticmethod
    def from_dict(blob: dict) -> "IterationResult":
        return IterationResult(
            syntax_iteration=blob["syntax_iteration"],
            function_iteration=blob["function_iteration"])


@dataclass
class ScriptReport:
    """model → task → IterationResult."""

    results: dict[str, dict[str, IterationResult]] = \
        field(default_factory=dict)
    max_attempts: int = 10

    def average(self, model: str) -> tuple[float | None, float | None]:
        """Mean iterations (None if any task never succeeded)."""
        rows = self.results[model].values()
        syn = [r.syntax_iteration for r in rows]
        func = [r.function_iteration for r in rows]
        avg_syn = None if any(v is None for v in syn) \
            else sum(syn) / len(syn)
        avg_func = None if any(v is None for v in func) \
            else sum(func) / len(func)
        return avg_syn, avg_func


def iterations_to_correct(model: BehavioralModel, task: ScriptTask,
                          max_attempts: int = 10) -> IterationResult:
    """Generate-check loop for one (model, task) pair."""
    syntax_iteration = None
    function_iteration = None
    for attempt in range(1, max_attempts + 1):
        script = model.generate_script(task.name, task.reference, attempt)
        check = run_script(script, expectation=task.expectation)
        if syntax_iteration is None and check.syntax_ok:
            syntax_iteration = attempt
        if check.function_ok:
            function_iteration = attempt
            break
    return IterationResult(syntax_iteration=syntax_iteration,
                           function_iteration=function_iteration)


def evaluate_scripts(models: list[BehavioralModel],
                     tasks: list[ScriptTask],
                     max_attempts: int = 10, engine=None) -> ScriptReport:
    """Full Table-4 sweep on the shared engine."""
    from .engine import EvalEngine, EvalTask
    engine = engine if engine is not None else EvalEngine()
    eval_tasks = [EvalTask(kind="script", model=model, payload=task,
                           level="", n_samples=max_attempts)
                  for model in models for task in tasks]
    blobs = iter(engine.run(eval_tasks))
    report = ScriptReport(max_attempts=max_attempts)
    for model in models:
        report.results[model.name] = {
            task.name: IterationResult.from_dict(next(blobs))
            for task in tasks
        }
    return report
