"""Verilog-generation evaluation (drives Table 5).

For every (model, problem, prompt level) cell the harness draws five
samples, counts **syntax** failures with the yosys-style checker and takes
the best testbench **function** pass fraction — exactly the two numbers
each Table 5 cell reports.  Verdicts are produced only by the checker and
simulator; results are memoised per (problem, candidate) in a bounded
LRU since correct candidates repeat.

The full sweep is executed by the shared evaluation engine
(:mod:`repro.eval.engine`): every cell becomes an :class:`EvalTask` on a
work pool, so ``evaluate_generation`` parallelises across cells and can
serve warm re-runs from the engine's on-disk cache — with output
byte-identical to the serial path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..bench.problems import PROMPT_LEVELS, Problem
from ..checker import check_source
from ..llm.behavioral import BehavioralModel
from ..scale.cache import LRUCache
from ..sim import DEFAULT_BACKEND, run_testbench, run_testbench_batch
from .passk import pass_at_k


@dataclass(frozen=True)
class CandidateResult:
    syntax_ok: bool
    pass_fraction: float

    @property
    def passed(self) -> bool:
        return self.syntax_ok and self.pass_fraction >= 0.999


@dataclass
class CellResult:
    """One Table 5 cell: syntax-error count + best function rate."""

    syntax_errors: int
    function_rate: float
    samples: int = 5
    passes: int = 0     #: samples that fully passed the testbench

    @property
    def solved(self) -> bool:
        return self.function_rate >= 0.999

    def to_dict(self) -> dict:
        return {"syntax_errors": self.syntax_errors,
                "function_rate": self.function_rate,
                "samples": self.samples, "passes": self.passes}

    @staticmethod
    def from_dict(blob: dict) -> "CellResult":
        return CellResult(syntax_errors=blob["syntax_errors"],
                          function_rate=blob["function_rate"],
                          samples=blob.get("samples", 5),
                          passes=blob.get("passes", 0))


@dataclass
class GenerationReport:
    """model → problem → level → CellResult."""

    cells: dict[str, dict[str, dict[str, CellResult]]] = \
        field(default_factory=dict)

    def cell(self, model: str, problem: str, level: str) -> CellResult:
        return self.cells[model][problem][level]

    def problem_solved(self, model: str, problem: str) -> bool:
        levels = self.cells[model][problem]
        return any(cell.solved for cell in levels.values())

    def success_rate(self, model: str,
                     problems: list[str] | None = None) -> float:
        names = problems if problems is not None \
            else list(self.cells[model])
        if not names:
            return 0.0
        solved = sum(self.problem_solved(model, name) for name in names)
        return solved / len(names)

    def pass_at_k(self, model: str, k: int = 1,
                  problems: list[str] | None = None,
                  levels: tuple[str, ...] | None = None) -> float:
        """Mean unbiased pass@k over every (problem, level) cell."""
        names = problems if problems is not None \
            else list(self.cells[model])
        cells = [cell
                 for name in names
                 for level, cell in self.cells[model][name].items()
                 if levels is None or level in levels]
        if not cells:
            return 0.0
        return sum(pass_at_k(c.samples, min(c.passes, c.samples), k)
                   for c in cells) / len(cells)


#: In-memory layer of candidate memoisation.  Bounded (LRU) so sweeps
#: over arbitrarily many candidates cannot grow without limit; the
#: persistent layer is the engine's on-disk cell cache.
_CANDIDATE_CACHE_SIZE = 4096
_CACHE: LRUCache[tuple[str, str], CandidateResult] = \
    LRUCache(maxsize=_CANDIDATE_CACHE_SIZE)


def _candidate_key(code: str, problem: Problem,
                   backend: str) -> tuple[str, str, str]:
    # The verdict depends on the candidate AND the problem's testbench —
    # hashing both keeps memoisation honest if a problem is edited
    # in-process under an unchanged name.
    return (problem.name, backend,
            hashlib.sha256(f"{problem.testbench}\x1f{code}"
                           .encode()).hexdigest())


def _verdict_result(verdict) -> CandidateResult:
    if not verdict.ok:
        return CandidateResult(syntax_ok=True, pass_fraction=0.0)
    return CandidateResult(syntax_ok=True,
                           pass_fraction=verdict.pass_fraction)


def evaluate_candidate(code: str, problem: Problem,
                       sim_backend: str | None = None) -> CandidateResult:
    """Syntax-check then simulate one candidate against the testbench.

    ``sim_backend`` selects the simulator backend (compiled by default);
    verdicts are backend-independent — the differential harness proves
    it — but the backend is part of the memoisation key for honesty.
    """
    backend = sim_backend or DEFAULT_BACKEND
    key = _candidate_key(code, problem, backend)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    check = check_source(code, f"./{problem.name}.v")
    if not check.ok:
        result = CandidateResult(syntax_ok=False, pass_fraction=0.0)
    else:
        verdict = run_testbench(code, problem.testbench, backend=backend)
        result = _verdict_result(verdict)
    _CACHE.put(key, result)
    return result


def evaluate_candidates(codes: list[str], problem: Problem,
                        sim_backend: str | None = None
                        ) -> list[CandidateResult]:
    """Vectorized :func:`evaluate_candidate` over one shared testbench.

    Evaluation's dominant pattern — many sampled candidates × one
    bench — routes through :func:`repro.sim.run_testbench_batch`, which
    parses the testbench once and shares its module list across every
    candidate elaboration.  Memoisation keys, verdicts and cache-digest
    space are identical to per-candidate calls, so batched and serial
    sweeps stay byte-identical.
    """
    backend = sim_backend or DEFAULT_BACKEND
    results: dict[int, CandidateResult] = {}
    to_sim: list[tuple[int, str]] = []
    for pos, code in enumerate(codes):
        cached = _CACHE.get(_candidate_key(code, problem, backend))
        if cached is not None:
            results[pos] = cached
        elif not check_source(code, f"./{problem.name}.v").ok:
            result = CandidateResult(syntax_ok=False, pass_fraction=0.0)
            _CACHE.put(_candidate_key(code, problem, backend), result)
            results[pos] = result
        else:
            to_sim.append((pos, code))
    if to_sim:
        verdicts = run_testbench_batch([code for _, code in to_sim],
                                       problem.testbench,
                                       backend=backend)
        for (pos, code), verdict in zip(to_sim, verdicts):
            result = _verdict_result(verdict)
            _CACHE.put(_candidate_key(code, problem, backend), result)
            results[pos] = result
    return [results[pos] for pos in range(len(codes))]


def evaluate_cell(model: BehavioralModel, problem: Problem, level: str,
                  n_samples: int = 5,
                  sim_backend: str | None = None) -> CellResult:
    """One benchmark cell: n samples → syntax count + best function."""
    samples = model.generate_verilog(
        problem.reference, problem.tier, problem.difficulty, level=level,
        n_samples=n_samples, problem_name=problem.name,
        prompt=problem.prompt(level))
    syntax_errors = 0
    passes = 0
    best = 0.0
    for outcome in evaluate_candidates(list(samples), problem,
                                       sim_backend=sim_backend):
        if not outcome.syntax_ok:
            syntax_errors += 1
        if outcome.passed:
            passes += 1
        best = max(best, outcome.pass_fraction)
    return CellResult(syntax_errors=syntax_errors, function_rate=best,
                      samples=n_samples, passes=passes)


def evaluate_generation(models: list[BehavioralModel],
                        problems: list[Problem],
                        levels: tuple[str, ...] = PROMPT_LEVELS,
                        n_samples: int = 5,
                        engine=None,
                        sim_backend: str | None = None
                        ) -> GenerationReport:
    """Full Table-5 style sweep through the shared evaluation engine.

    ``engine`` is an :class:`repro.eval.engine.EvalEngine` (defaults to a
    serial, uncached one).  The report is byte-identical regardless of
    the engine's ``jobs`` setting, cache state or ``sim_backend``.
    """
    from .engine import EvalEngine, EvalTask
    engine = engine if engine is not None else EvalEngine()
    tasks = [EvalTask(kind="generation", model=model, payload=problem,
                      level=level, n_samples=n_samples,
                      sim_backend=sim_backend)
             for model in models
             for problem in problems
             for level in levels]
    blobs = iter(engine.run(tasks))
    report = GenerationReport()
    for model in models:
        model_cells: dict[str, dict[str, CellResult]] = {}
        for problem in problems:
            model_cells[problem.name] = {
                level: CellResult.from_dict(next(blobs))
                for level in levels
            }
        report.cells[model.name] = model_cells
    return report


def clear_cache() -> None:
    """Test hook: drop the in-memory candidate verdict layer."""
    _CACHE.clear()
