"""Verilog-generation evaluation (drives Table 5).

For every (model, problem, prompt level) cell the harness draws five
samples, counts **syntax** failures with the yosys-style checker and takes
the best testbench **function** pass fraction — exactly the two numbers
each Table 5 cell reports.  Verdicts are produced only by the checker and
simulator; results are memoised per (problem, candidate) since correct
candidates repeat.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..bench.problems import PROMPT_LEVELS, Problem
from ..checker import check_source
from ..llm.behavioral import BehavioralModel
from ..sim import run_testbench


@dataclass(frozen=True)
class CandidateResult:
    syntax_ok: bool
    pass_fraction: float


@dataclass
class CellResult:
    """One Table 5 cell: syntax-error count + best function rate."""

    syntax_errors: int
    function_rate: float
    samples: int = 5

    @property
    def solved(self) -> bool:
        return self.function_rate >= 0.999


@dataclass
class GenerationReport:
    """model → problem → level → CellResult."""

    cells: dict[str, dict[str, dict[str, CellResult]]] = \
        field(default_factory=dict)

    def cell(self, model: str, problem: str, level: str) -> CellResult:
        return self.cells[model][problem][level]

    def problem_solved(self, model: str, problem: str) -> bool:
        levels = self.cells[model][problem]
        return any(cell.solved for cell in levels.values())

    def success_rate(self, model: str,
                     problems: list[str] | None = None) -> float:
        names = problems if problems is not None \
            else list(self.cells[model])
        if not names:
            return 0.0
        solved = sum(self.problem_solved(model, name) for name in names)
        return solved / len(names)


_CACHE: dict[tuple[str, str], CandidateResult] = {}


def evaluate_candidate(code: str, problem: Problem) -> CandidateResult:
    """Syntax-check then simulate one candidate against the testbench."""
    key = (problem.name,
           hashlib.sha256(code.encode()).hexdigest())
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    check = check_source(code, f"./{problem.name}.v")
    if not check.ok:
        result = CandidateResult(syntax_ok=False, pass_fraction=0.0)
    else:
        verdict = run_testbench(code, problem.testbench)
        if not verdict.ok:
            result = CandidateResult(syntax_ok=True, pass_fraction=0.0)
        else:
            result = CandidateResult(syntax_ok=True,
                                     pass_fraction=verdict.pass_fraction)
    _CACHE[key] = result
    return result


def evaluate_cell(model: BehavioralModel, problem: Problem, level: str,
                  n_samples: int = 5) -> CellResult:
    """One benchmark cell: n samples → syntax count + best function."""
    samples = model.generate_verilog(
        problem.reference, problem.tier, problem.difficulty, level=level,
        n_samples=n_samples, problem_name=problem.name)
    syntax_errors = 0
    best = 0.0
    for code in samples:
        outcome = evaluate_candidate(code, problem)
        if not outcome.syntax_ok:
            syntax_errors += 1
        best = max(best, outcome.pass_fraction)
    return CellResult(syntax_errors=syntax_errors, function_rate=best,
                      samples=n_samples)


def evaluate_generation(models: list[BehavioralModel],
                        problems: list[Problem],
                        levels: tuple[str, ...] = PROMPT_LEVELS,
                        n_samples: int = 5) -> GenerationReport:
    """Full Table-5 style sweep."""
    report = GenerationReport()
    for model in models:
        model_cells: dict[str, dict[str, CellResult]] = {}
        for problem in problems:
            model_cells[problem.name] = {
                level: evaluate_cell(model, problem, level, n_samples)
                for level in levels
            }
        report.cells[model.name] = model_cells
    return report


def clear_cache() -> None:
    _CACHE.clear()
