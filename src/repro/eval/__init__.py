"""Evaluation harness: the shared engine, pass@k, suite evals, renderers."""

from .engine import (EVAL_CACHE_VERSION, EngineStats, EvalCache, EvalEngine,
                     EvalTask, engine_fingerprint, payload_digest,
                     profile_digest, run_eval_task, run_eval_task_traced)
from .passk import format_pct, pass_at_k, success_rate
from .repair_eval import (BrokenCase, RepairCell, RepairReport, case_seed,
                          evaluate_repair, evaluate_repair_cell,
                          make_broken_case)
from .reporting import (render_table1, render_table3, render_table4,
                        render_table5)
from .script_eval import (IterationResult, ScriptReport, evaluate_scripts,
                          iterations_to_correct)
from .suite_api import (SuiteResult, render_suite, run_suite,
                        subset_report, suite_models, suite_report)
from .verilog_eval import (CandidateResult, CellResult, GenerationReport,
                           clear_cache, evaluate_candidate, evaluate_cell,
                           evaluate_generation)

__all__ = [
    "EvalEngine", "EvalTask", "EvalCache", "EngineStats", "run_eval_task",
    "run_eval_task_traced",
    "engine_fingerprint", "payload_digest", "profile_digest",
    "EVAL_CACHE_VERSION",
    "SuiteResult", "run_suite", "suite_models", "suite_report",
    "render_suite", "subset_report",
    "pass_at_k", "success_rate", "format_pct",
    "evaluate_candidate", "evaluate_cell", "evaluate_generation",
    "CandidateResult", "CellResult", "GenerationReport", "clear_cache",
    "make_broken_case", "case_seed", "evaluate_repair",
    "evaluate_repair_cell", "BrokenCase", "RepairCell", "RepairReport",
    "iterations_to_correct", "evaluate_scripts", "IterationResult",
    "ScriptReport",
    "render_table1", "render_table3", "render_table4", "render_table5",
]
