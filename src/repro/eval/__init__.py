"""Evaluation harness: pass@k, generation/repair/script evals, renderers."""

from .passk import format_pct, pass_at_k, success_rate
from .repair_eval import (BrokenCase, RepairCell, RepairReport,
                          evaluate_repair, evaluate_repair_cell,
                          make_broken_case)
from .reporting import (render_table1, render_table3, render_table4,
                        render_table5)
from .script_eval import (IterationResult, ScriptReport, evaluate_scripts,
                          iterations_to_correct)
from .verilog_eval import (CandidateResult, CellResult, GenerationReport,
                           clear_cache, evaluate_candidate, evaluate_cell,
                           evaluate_generation)

__all__ = [
    "pass_at_k", "success_rate", "format_pct",
    "evaluate_candidate", "evaluate_cell", "evaluate_generation",
    "CandidateResult", "CellResult", "GenerationReport", "clear_cache",
    "make_broken_case", "evaluate_repair", "evaluate_repair_cell",
    "BrokenCase", "RepairCell", "RepairReport",
    "iterations_to_correct", "evaluate_scripts", "IterationResult",
    "ScriptReport",
    "render_table1", "render_table3", "render_table4", "render_table5",
]
