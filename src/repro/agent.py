"""The chip-design agent loop of the paper's Fig. 1.

A finetuned model acting as an EDA-tool agent: generate Verilog from a
natural-language prompt, submit it to the tool chain, and react to
feedback — repair on checker errors, re-sample on functional failures —
until the design passes its testbench; optionally push the survivor
through the RTL-to-GDS flow for a PPA report.

This module stitches together every substrate in the repo the way the
paper's system diagram does:

    model → checker (yosys) → repair ↺ → simulator (VCS) → flow (OpenLane)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bench.problems import Problem
from .checker import check_source
from .eda import Flow, FlowConstraints, FlowResult, SynthesisError
from .llm import BehavioralModel, get_model
from .sim import run_testbench


@dataclass
class AgentStep:
    """One tool interaction in the loop."""

    stage: str                 # generate | check | repair | simulate | flow
    ok: bool
    detail: str = ""


@dataclass
class AgentResult:
    """Outcome of one agent session."""

    design: str | None
    passed: bool
    rounds: int
    steps: list[AgentStep] = field(default_factory=list)
    flow_result: FlowResult | None = None

    @property
    def transcript(self) -> str:
        lines = []
        for step in self.steps:
            status = "ok" if step.ok else "FAIL"
            lines.append(f"[{step.stage:<9}] {status:<5} {step.detail}")
        return "\n".join(lines)


class ChipAgent:
    """Drive a model through the generate→feedback→repair→verify loop."""

    def __init__(self, model: BehavioralModel | str = "ours-13b",
                 max_rounds: int = 3, samples_per_round: int = 5,
                 run_flow: bool = False,
                 clock_period_ns: float = 10.0):
        if isinstance(model, str):
            model = get_model(model)
        self.model = model
        self.max_rounds = max_rounds
        self.samples_per_round = samples_per_round
        self.run_flow = run_flow
        self.clock_period_ns = clock_period_ns

    def build(self, problem: Problem,
              level: str = "high") -> AgentResult:
        """Run the loop for one benchmark problem."""
        steps: list[AgentStep] = []
        best: str | None = None
        passed = False
        rounds = 0
        for round_index in range(self.max_rounds):
            rounds = round_index + 1
            candidates = self.model.generate_verilog(
                problem.reference, problem.tier, problem.difficulty,
                level=level, n_samples=self.samples_per_round,
                problem_name=f"{problem.name}#r{round_index}")
            steps.append(AgentStep(
                "generate", True,
                f"round {rounds}: {len(candidates)} candidates from "
                f"prompt level '{level}'"))
            survivors: list[str] = []
            for position, candidate in enumerate(candidates):
                report = check_source(candidate,
                                      f"./{problem.name}.v")
                if report.ok:
                    survivors.append(candidate)
                    continue
                feedback = report.first_error()
                steps.append(AgentStep("check", False,
                                       feedback or "checker error"))
                repairs = self.model.repair_verilog(
                    candidate, feedback or "", problem.reference,
                    problem.difficulty, n_samples=1,
                    problem_name=f"{problem.name}#r{round_index}"
                                 f"#c{position}")
                repaired = repairs[0]
                if check_source(repaired).ok:
                    steps.append(AgentStep("repair", True,
                                           "checker accepts repair"))
                    survivors.append(repaired)
                else:
                    steps.append(AgentStep("repair", False,
                                           "repair still rejected"))
            for candidate in survivors:
                verdict = run_testbench(candidate, problem.testbench)
                if verdict.all_passed:
                    steps.append(AgentStep(
                        "simulate", True,
                        f"{verdict.passed} checks passed"))
                    best = candidate
                    passed = True
                    break
                steps.append(AgentStep(
                    "simulate", False,
                    f"{verdict.failed} failing checks"
                    if verdict.ok else f"sim error: {verdict.error}"))
            if passed:
                break
        flow_result = None
        if passed and self.run_flow and best is not None:
            flow_result = self._run_flow(best, steps)
        return AgentResult(design=best, passed=passed, rounds=rounds,
                           steps=steps, flow_result=flow_result)

    def _run_flow(self, design: str,
                  steps: list[AgentStep]) -> FlowResult | None:
        try:
            result = Flow().run(design, None, FlowConstraints(
                clock_period_ns=self.clock_period_ns))
        except SynthesisError as exc:
            steps.append(AgentStep("flow", False, str(exc)))
            return None
        if result.ok and result.ppa is not None:
            steps.append(AgentStep(
                "flow", True,
                f"GDS out: {result.ppa.num_cells} cells, "
                f"{result.ppa.die_area_um2:.0f} um^2, "
                f"fmax {result.ppa.fmax_mhz:.0f} MHz"))
        else:
            failed = [s for s in result.stages if not s.ok]
            steps.append(AgentStep(
                "flow", False,
                failed[0].error if failed else "flow failed"))
        return result
