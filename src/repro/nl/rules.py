"""Program-analysis rules translating Verilog AST nodes to natural language.

This is the paper's Sec. 3.1.2 core: each rule compiles one syntax shape
(module header, port declaration, always block, …) into a templated English
sentence.  The rule set intentionally does **not** capture full Verilog
semantics — the paper notes it "does not capture full Verilog syntax",
mirroring how designers describe only core details.

Rules are registered by name so ablation experiments can enable subsets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..verilog import ast, unparse
from . import templates as T


@dataclass(frozen=True)
class DescriptionLine:
    """One generated sentence, tagged with its source line and rule."""

    line: int
    rule: str
    text: str


RULE_ORDER = (
    "module_ports",
    "port_widths",
    "output_decls",
    "variable_decls",
    "parameters",
    "trigger_blocks",
    "behavior",
    "continuous_assigns",
    "instances",
    "functions",
)


class Ruleset:
    """Apply a configurable subset of the translation rules to a module."""

    def __init__(self, enabled: set[str] | None = None):
        if enabled is None:
            enabled = set(RULE_ORDER)
        unknown = enabled - set(RULE_ORDER)
        if unknown:
            raise ValueError(f"unknown rules: {sorted(unknown)}")
        self.enabled = enabled

    def apply(self, module: ast.Module) -> list[DescriptionLine]:
        lines: list[DescriptionLine] = []
        for rule in RULE_ORDER:
            if rule in self.enabled:
                lines.extend(getattr(self, f"rule_{rule}")(module))
        return lines

    # -- structure helpers -------------------------------------------------

    @staticmethod
    def _port_decls(module: ast.Module) -> list[ast.PortDecl]:
        decls = [p.decl for p in module.ports if p.decl is not None]
        decls.extend(module.items_of_type(ast.PortDecl))
        return decls

    @staticmethod
    def _decl_width(rng: ast.Range | None) -> str:
        if rng is None:
            return "1"
        try:
            msb = int(unparse(rng.msb))
            lsb = int(unparse(rng.lsb))
            return str(abs(msb - lsb) + 1)
        except ValueError:
            return f"({unparse(rng.msb)})-({unparse(rng.lsb)})+1"

    @staticmethod
    def _range_text(rng: ast.Range) -> str:
        return f"{unparse(rng.msb)}:{unparse(rng.lsb)}"

    # -- rules: module & port declaration (paper bullet 1) -----------------

    def rule_module_ports(self, module: ast.Module) -> list[DescriptionLine]:
        if not module.ports:
            text = T.MODULE_NO_PORTS.format(name=module.name)
        else:
            names = [p.name for p in module.ports]
            text = T.MODULE_PORTS.format(
                name=module.name, count=T.number_word(len(names)),
                names=T.join_names(names))
        return [DescriptionLine(module.line, "module_ports", text)]

    def rule_port_widths(self, module: ast.Module) -> list[DescriptionLine]:
        inputs: list[tuple[str, str, int]] = []
        for decl in self._port_decls(module):
            if decl.direction != "input":
                continue
            width = self._decl_width(decl.range)
            for name in decl.names:
                inputs.append((name, width, decl.line))
        if not inputs:
            return []
        total = len(module.ports) or len(inputs)
        sentences = [T.INPUT_LIST.format(
            count=T.number_word(total),
            names=T.join_names([name for name, _, _ in inputs]))]
        sentences.extend(
            T.INPUT_WIDTH.format(name=name, width=width)
            for name, width, _ in inputs)
        line = inputs[0][2]
        return [DescriptionLine(line, "port_widths", " ".join(sentences))]

    def rule_output_decls(self, module: ast.Module) -> list[DescriptionLine]:
        out: list[DescriptionLine] = []
        for decl in self._port_decls(module):
            if decl.direction == "input":
                continue
            kind = decl.net_kind or "wire"
            for name in decl.names:
                if decl.direction == "inout":
                    text = T.INOUT_SIGNAL.format(
                        name=name, width=self._decl_width(decl.range))
                elif decl.range is not None:
                    text = T.OUTPUT_SIGNAL.format(
                        name=name, width=self._decl_width(decl.range),
                        range=self._range_text(decl.range), kind=kind)
                else:
                    text = T.OUTPUT_SIGNAL_SCALAR.format(name=name,
                                                         kind=kind)
                out.append(DescriptionLine(decl.line, "output_decls", text))
        return out

    # -- rules: variable declaration (paper bullet 3) -----------------------

    def rule_variable_decls(self,
                            module: ast.Module) -> list[DescriptionLine]:
        port_names = {p.name for p in module.ports}
        out: list[DescriptionLine] = []
        for item in module.items_of_type(ast.Decl):
            if item.kind == "genvar":
                continue
            for decl in item.declarators:
                if decl.name in port_names:
                    continue
                if decl.array is not None:
                    depth_msb = unparse(decl.array.msb)
                    depth_lsb = unparse(decl.array.lsb)
                    try:
                        depth = str(abs(int(depth_msb) - int(depth_lsb)) + 1)
                    except ValueError:
                        depth = f"{depth_msb}..{depth_lsb}"
                    text = T.MEMORY_DECL.format(
                        name=decl.name, depth=depth,
                        width=self._decl_width(item.range), kind=item.kind)
                elif item.range is not None:
                    text = T.VARIABLE_DECL.format(
                        name=decl.name, width=self._decl_width(item.range),
                        range=self._range_text(item.range), kind=item.kind)
                else:
                    text = T.VARIABLE_DECL_SCALAR.format(name=decl.name,
                                                         kind=item.kind)
                out.append(DescriptionLine(item.line, "variable_decls",
                                           text))
        return out

    def rule_parameters(self, module: ast.Module) -> list[DescriptionLine]:
        out: list[DescriptionLine] = []
        decls = list(module.params) + module.items_of_type(ast.ParamDecl)
        for decl in decls:
            for assign in decl.assignments:
                text = T.PARAMETER_DECL.format(
                    kind=decl.kind, name=assign.name,
                    value=unparse(assign.init) if assign.init else "0")
                out.append(DescriptionLine(decl.line, "parameters", text))
        return out

    # -- rules: always block declaration (paper bullet 2) -------------------

    def rule_trigger_blocks(self,
                            module: ast.Module) -> list[DescriptionLine]:
        always_blocks = module.items_of_type(ast.Always)
        if not always_blocks:
            return []
        out = [DescriptionLine(
            always_blocks[0].line, "trigger_blocks",
            T.TRIGGER_COUNT.format(
                count=T.number_word(len(always_blocks)),
                block_word="block" if len(always_blocks) == 1
                else "blocks"))]
        for pos, block in enumerate(always_blocks, start=1):
            out.append(DescriptionLine(
                block.line, "trigger_blocks",
                self._describe_senslist(block.senslist, pos)))
        return out

    @staticmethod
    def _describe_senslist(senslist: ast.SensList | None,
                           position: int) -> str:
        ordinal = T.ordinal_word(position)
        if senslist is None or senslist.is_star:
            return T.TRIGGER_SENS_STAR.format(ordinal=ordinal)
        edges = {item.edge for item in senslist.items}
        signals = T.join_names([unparse(item.signal)
                                for item in senslist.items
                                if item.signal is not None])
        if edges == {"posedge"}:
            return T.TRIGGER_SENS_EDGE.format(ordinal=ordinal,
                                              edge="positive",
                                              signals=signals)
        if edges == {"negedge"}:
            return T.TRIGGER_SENS_EDGE.format(ordinal=ordinal,
                                              edge="negative",
                                              signals=signals)
        if None in edges:
            return T.TRIGGER_SENS_LEVEL.format(ordinal=ordinal,
                                               signals=signals)
        return T.TRIGGER_SENS_EDGE.format(ordinal=ordinal,
                                          edge="corresponding",
                                          signals=signals)

    # -- rules: behaviour inside always blocks -------------------------------

    def rule_behavior(self, module: ast.Module) -> list[DescriptionLine]:
        out: list[DescriptionLine] = []
        for block in module.items_of_type(ast.Always):
            text = describe_statement(block.body, top_level=True)
            if text:
                out.append(DescriptionLine(block.body.line
                                           if block.body else block.line,
                                           "behavior", text))
        for init in module.items_of_type(ast.Initial):
            body = describe_statement(init.body, top_level=False)
            if body:
                out.append(DescriptionLine(
                    init.line, "behavior",
                    T.INITIAL_BLOCK.format(actions=body)))
        return out

    def rule_continuous_assigns(self,
                                module: ast.Module) -> list[DescriptionLine]:
        out: list[DescriptionLine] = []
        for item in module.items_of_type(ast.ContinuousAssign):
            for lhs, rhs in item.assignments:
                out.append(DescriptionLine(
                    item.line, "continuous_assigns",
                    T.CONTINUOUS_ASSIGN.format(lhs=unparse(lhs),
                                               rhs=unparse(rhs))))
        return out

    def rule_instances(self, module: ast.Module) -> list[DescriptionLine]:
        out: list[DescriptionLine] = []
        for item in module.items_of_type(ast.Instantiation):
            for instance in item.instances:
                conns = []
                for conn in instance.connections:
                    if conn.name is not None and conn.expr is not None:
                        conns.append(f"<{conn.name}> to "
                                     f"<{unparse(conn.expr)}>")
                    elif conn.expr is not None:
                        conns.append(f"<{unparse(conn.expr)}>")
                out.append(DescriptionLine(
                    item.line, "instances",
                    T.INSTANCE_DECL.format(
                        module=item.module, instance=instance.name,
                        connections=T.join_names(conns) or "nothing")))
        return out

    def rule_functions(self, module: ast.Module) -> list[DescriptionLine]:
        out: list[DescriptionLine] = []
        for fn in module.items_of_type(ast.FunctionDecl):
            out.append(DescriptionLine(
                fn.line, "functions",
                T.FUNCTION_DECL.format(name=fn.name,
                                       width=self._decl_width(fn.range))))
        return out


# --------------------------------------------------------------------------
# Statement → phrase translation
# --------------------------------------------------------------------------

def _assignment_phrase(lhs: ast.Expr, rhs: ast.Expr) -> str:
    """Describe one assignment the way the paper's Fig. 5 does."""
    target = unparse(lhs)
    # count <= count + k  →  "add <k> to the count"
    if isinstance(rhs, ast.Binary) and rhs.op in ("+", "-"):
        left_text = unparse(rhs.left)
        if left_text == target:
            amount = unparse(rhs.right)
            template = T.ADD_ACTION if rhs.op == "+" else T.SUB_ACTION
            return template.format(amount=amount, target=target)
    # q <= {q[n-1:0], d}  →  shift left;  q <= {d, q[n:1]}  →  shift right
    if isinstance(rhs, ast.Concat) and len(rhs.parts) == 2:
        first, second = rhs.parts
        if _selects_target(first, target):
            return T.SHIFT_ACTION.format(target=target, direction="left",
                                         value=unparse(second))
        if _selects_target(second, target):
            return T.SHIFT_ACTION.format(target=target, direction="right",
                                         value=unparse(first))
    verb = "initialize" if isinstance(rhs, ast.Number) else "set"
    return T.SET_ACTION.format(verb=f"<{verb}>", target=target,
                               value=unparse(rhs)).replace("<<", "<")


def _selects_target(expr: ast.Expr, target: str) -> bool:
    return (isinstance(expr, ast.PartSelect)
            and isinstance(expr.base, ast.Identifier)
            and expr.base.name == target)


def describe_statement(stmt: ast.Stmt | None, top_level: bool = False) -> str:
    """Render a behavioural statement as an English phrase."""
    if stmt is None or isinstance(stmt, ast.NullStmt):
        return ""
    if isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
        phrase = _assignment_phrase(stmt.lhs, stmt.rhs)
        if top_level:
            return f"In this <always> block, {phrase}."
        return phrase
    if isinstance(stmt, ast.Block):
        parts = [describe_statement(s) for s in stmt.stmts
                 if isinstance(s, ast.Stmt)]
        parts = [p for p in parts if p]
        joined = ", then ".join(parts)
        if top_level and joined:
            return f"In this <always> block, {joined}."
        return joined
    if isinstance(stmt, ast.IfStmt):
        cond = unparse(stmt.cond)
        then_part = (describe_statement(stmt.then_stmt)
                     or "do nothing").rstrip(".")
        if stmt.else_stmt is None:
            text = T.IF_NO_ELSE.format(cond=cond, then_part=then_part)
        else:
            else_part = (describe_statement(stmt.else_stmt)
                         or "do nothing").rstrip(".")
            text = T.IF_ASSIGN.format(cond=cond, then_part=then_part,
                                      else_part=else_part)
        if not top_level:
            return text[len("In this <always> block, "):]
        return text
    if isinstance(stmt, ast.CaseStmt):
        branches = []
        for item in stmt.items:
            action = describe_statement(item.stmt) or "do nothing"
            if item.exprs:
                label = " or ".join(unparse(e) for e in item.exprs)
                branches.append(T.CASE_BRANCH.format(label=label,
                                                     action=action))
            else:
                branches.append(T.CASE_DEFAULT.format(action=action))
        text = T.CASE_INTRO.format(kind=stmt.kind,
                                   selector=unparse(stmt.expr),
                                   count=T.number_word(len(stmt.items)),
                                   branches="; ".join(branches))
        if not top_level:
            return text[len("In this <always> block, "):]
        return text
    if isinstance(stmt, ast.ForStmt):
        init = describe_statement(stmt.init)
        step = describe_statement(stmt.step)
        body = describe_statement(stmt.body) or "nothing"
        text = T.FOR_LOOP.format(
            var=unparse(stmt.init.lhs) if isinstance(
                stmt.init, ast.BlockingAssign) else "index",
            init=init, cond=unparse(stmt.cond), step=step, body=body)
        if top_level:
            return f"In this <always> block, {text}."
        return text
    if isinstance(stmt, (ast.DelayStmt, ast.EventControlStmt)):
        inner = describe_statement(stmt.stmt)
        if isinstance(stmt, ast.DelayStmt):
            prefix = f"after <{unparse(stmt.delay)}> time units"
            phrase = f"{prefix}, {inner}" if inner else prefix
        else:
            phrase = inner
        if top_level and phrase:
            return f"In this <always> block, {phrase}."
        return phrase
    if isinstance(stmt, ast.SysTaskCall):
        if stmt.name in ("$display", "$write", "$monitor"):
            return "print a message"
        if stmt.name in ("$finish", "$stop"):
            return "finish the simulation"
        return ""
    if isinstance(stmt, (ast.WhileStmt, ast.RepeatStmt, ast.ForeverStmt)):
        body = describe_statement(stmt.body) or "nothing"
        if isinstance(stmt, ast.WhileStmt):
            return f"while <{unparse(stmt.cond)}> holds, repeat: {body}"
        if isinstance(stmt, ast.RepeatStmt):
            return f"repeat <{unparse(stmt.count)}> times: {body}"
        return f"forever repeat: {body}"
    return ""
