"""Module-level natural-language description generation.

``describe_module`` is the function the paper writes as
``Description = Rule(Verilog)`` — it runs the program-analysis rule set
over a parsed module and joins the per-construct sentences into the
aligned natural-language description used by the Verilog-generation
dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..verilog import ast, parse_module
from .rules import RULE_ORDER, DescriptionLine, Ruleset


@dataclass
class ModuleDescription:
    """The generated description plus per-line provenance."""

    module_name: str
    lines: list[DescriptionLine] = field(default_factory=list)

    @property
    def text(self) -> str:
        return " ".join(line.text for line in self.lines)

    def by_rule(self, rule: str) -> list[DescriptionLine]:
        return [line for line in self.lines if line.rule == rule]

    def annotated(self) -> str:
        """Fig. 5-style output: ``Line N: sentence`` per source line."""
        return "\n".join(f"Line {line.line}: {line.text}"
                         for line in self.lines)


def describe_module(module: ast.Module,
                    rules: set[str] | None = None) -> ModuleDescription:
    """Translate ``module`` to natural language using the rule set."""
    lines = Ruleset(enabled=rules).apply(module)
    return ModuleDescription(module_name=module.name, lines=lines)


def describe_source(text: str,
                    rules: set[str] | None = None) -> ModuleDescription:
    """Parse a single-module source string and describe it."""
    return describe_module(parse_module(text), rules=rules)


def available_rules() -> tuple[str, ...]:
    """Names of all registered translation rules (for ablations)."""
    return RULE_ORDER
