"""AST → natural language translation (paper Sec. 3.1.2, Fig. 5).

``describe_module`` compiles each syntax node of a parsed Verilog module to
an English sentence via the registered program-analysis rules; the result
is the aligned natural-language half of the Verilog-generation dataset.
"""

from .generator import (ModuleDescription, available_rules, describe_module,
                        describe_source)
from .rules import RULE_ORDER, DescriptionLine, Ruleset, describe_statement

__all__ = [
    "describe_module", "describe_source", "ModuleDescription",
    "available_rules", "Ruleset", "RULE_ORDER", "DescriptionLine",
    "describe_statement",
]
