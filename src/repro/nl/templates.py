"""Text templates for the AST→natural-language rules.

The phrasings follow the paper's Fig. 5 case study verbatim where it shows
them (module/port/variable/trigger-block sentences) and extend the same
style to the remaining constructs (assignments, case, loops, instances).
"""

from __future__ import annotations

#: number words for small counts, as used in the paper's example output
#: ("module <counter> has <four> ports").
_NUMBER_WORDS = (
    "zero", "one", "two", "three", "four", "five", "six", "seven",
    "eight", "nine", "ten", "eleven", "twelve",
)

_ORDINAL_WORDS = (
    "zeroth", "first", "second", "third", "fourth", "fifth", "sixth",
    "seventh", "eighth", "ninth", "tenth",
)


def number_word(count: int) -> str:
    """``4`` → ``"four"`` (falls back to digits for large counts)."""
    if 0 <= count < len(_NUMBER_WORDS):
        return _NUMBER_WORDS[count]
    return str(count)


def ordinal_word(index: int) -> str:
    """``1`` → ``"first"`` (1-based, falls back to ``"3th"`` style)."""
    if 0 <= index < len(_ORDINAL_WORDS):
        return _ORDINAL_WORDS[index]
    return f"{index}th"


def join_names(names: list[str]) -> str:
    """``[a, b, c]`` → ``"a, b and c"`` (paper: "clk, rst, en and count")."""
    if not names:
        return ""
    if len(names) == 1:
        return names[0]
    return ", ".join(names[:-1]) + " and " + names[-1]


MODULE_PORTS = ("module <{name}> has <{count}> ports, their names are "
                "<{names}>.")
MODULE_NO_PORTS = "module <{name}> has no ports."
INPUT_LIST = "In the <{count}> ports, <{names}> are inputs."
INPUT_WIDTH = "<{name}> has <{width}>-bit width."
OUTPUT_SIGNAL = ("<Output> signal <{name}> has <{width}>-bit width in range "
                 "<{range}>. It is a <{kind}> variable.")
OUTPUT_SIGNAL_SCALAR = ("<Output> signal <{name}> has <1>-bit width. "
                        "It is a <{kind}> variable.")
INOUT_SIGNAL = "<Inout> signal <{name}> has <{width}>-bit width."
VARIABLE_DECL = ("Signal <{name}> has <{width}>-bit width in range "
                 "<{range}>. It is a <{kind}> variable.")
VARIABLE_DECL_SCALAR = "Signal <{name}> is a <1>-bit <{kind}> variable."
MEMORY_DECL = ("Signal <{name}> is a memory of <{depth}> entries, each "
               "<{width}>-bit wide. It is a <{kind}> array.")
PARAMETER_DECL = "The {kind} <{name}> has default value <{value}>."
TRIGGER_COUNT = "This module has <{count}> trigger {block_word}."
TRIGGER_SENS_EDGE = ("The sensitive list in <{ordinal}> trigger block is "
                     "<on the {edge} edge> of <{signals}>.")
TRIGGER_SENS_LEVEL = ("The sensitive list in <{ordinal}> trigger block is "
                      "<level-sensitive> to <{signals}>.")
TRIGGER_SENS_STAR = ("The <{ordinal}> trigger block is combinational and "
                     "reacts to any of its inputs.")
CONTINUOUS_ASSIGN = "The module continuously assigns <{rhs}> to <{lhs}>."
IF_ASSIGN = ("In this <always> block, <if> <{cond}> is 1, then {then_part}, "
             "else {else_part}.")
IF_NO_ELSE = "In this <always> block, <if> <{cond}> is 1, then {then_part}."
CASE_INTRO = ("In this <always> block, a <{kind}> statement selects on "
              "<{selector}> with <{count}> branches: {branches}.")
CASE_BRANCH = "when <{label}> then {action}"
CASE_DEFAULT = "by default {action}"
FOR_LOOP = ("a loop over <{var}> from <{init}> while <{cond}> stepping "
            "<{step}> that repeats {body}")
SET_ACTION = "{verb} <{target}> to <{value}>"
ADD_ACTION = "<add> <{amount}> to the {target}"
SUB_ACTION = "<subtract> <{amount}> from the {target}"
SHIFT_ACTION = "shift <{target}> {direction} inserting <{value}>"
INSTANCE_DECL = ("The module instantiates <{module}> as <{instance}> "
                 "connecting {connections}.")
INITIAL_BLOCK = "An initial block sets up: {actions}."
FUNCTION_DECL = ("The module defines a function <{name}> returning "
                 "<{width}> bits.")
