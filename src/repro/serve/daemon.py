"""The long-lived job daemon and its JSON-over-HTTP API.

One :class:`Daemon` owns a :class:`~repro.serve.store.JobStore`, a
:class:`~repro.serve.scheduler.Scheduler` and a small pool of worker
threads.  Workers claim scheduler batches under a shared condition
lock, execute them *outside* the lock (the heavy lifting parallelises
through the subsystems' own pools), and commit the outcomes back
through the store — so every transition is journaled and a SIGKILL at
any point resumes cleanly on the next start (interrupted jobs are
requeued by the store; see ``repro.serve.store``).

API surface (all JSON)::

    POST /api/submit            {kind, spec, priority?, after?} → job
    GET  /api/jobs              [job, ...]
    GET  /api/job/<id>          job
    GET  /api/result/<id>       result blob (409 until done)
    POST /api/cancel/<id>       job (409 unless still queued)
    GET  /api/health            queues, budgets, counts, caches, sim

The health payload reports queue depths and in-flight batches per
kind, job-state counts, ``last_run`` hit/miss counters from every
cache manifest under the work dir, and the daemon's aggregated
simulator-backend stats.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .executor import execute_batch
from .jobs import SpecError, validate_spec
from .scheduler import DEFAULT_BATCH_LIMIT, Scheduler
from .store import JobStore

#: Default API port (`repro serve` / clients agree through here).
DEFAULT_PORT = 8471


class Daemon:
    """Crash-safe job service: store + scheduler + worker threads."""

    def __init__(self, store_dir: str, budgets: dict[str, int] | None = None,
                 engine_jobs: int = 1, workers: int = 2,
                 batch_limit: int = DEFAULT_BATCH_LIMIT,
                 configure_sim_cache: bool = True):
        from ..sim import BackendStats
        self.store_dir = store_dir
        self.work_dir = os.path.join(store_dir, "work")
        self.engine_jobs = max(1, engine_jobs)
        self.workers = max(1, workers)
        os.makedirs(self.work_dir, exist_ok=True)
        if configure_sim_cache:
            # Persist compile verdicts next to the job caches so warm
            # restarts skip doomed compile attempts (PR 3 layer).
            from ..sim import configure_design_cache
            configure_design_cache(
                root=os.path.join(self.work_dir, "sim-designs"))
        self.store = JobStore(store_dir)
        self.scheduler = Scheduler(budgets=budgets,
                                   batch_limit=batch_limit,
                                   state_fn=self._job_state)
        self.sim_stats = BackendStats()
        self._cond = threading.Condition()
        self._stop = False
        self._threads: list[threading.Thread] = []
        # Resume: everything the previous daemon left queued (including
        # jobs the store just requeued) goes straight back on the queue.
        for job in self.store.queued():
            self.scheduler.submit(job)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker,
                                      name=f"serve-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop workers after their current batch, then compact the
        store.  Queued jobs stay journaled and resume on next start."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads.clear()
        with self._cond:
            self.store.close()

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no work is queued or in flight (True), or until
        the timeout elapses (False)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not len(self.scheduler)
                and not sum(self.scheduler.in_flight.values()),
                timeout=timeout)

    def _job_state(self, job_id: str) -> str | None:
        """Dependency state lookup the scheduler gates dispatch on."""
        job = self.store.jobs.get(job_id)
        return job.state if job is not None else None

    # -- operations (thread-safe) -----------------------------------------

    def submit(self, kind: str, spec: dict, priority: int = 0,
               after: list[str] | None = None):
        spec = validate_spec(kind, spec)
        after = list(after or ())
        with self._cond:
            for dep in after:
                if dep not in self.store.jobs:
                    raise SpecError(f"unknown dependency job '{dep}'")
            job = self.store.submit(kind, spec, priority=priority,
                                    after=after)
            self.scheduler.submit(job)
            self._cond.notify_all()
            return job.to_dict()

    def cancel(self, job_id: str) -> dict | None:
        """Cancel a queued job; None if it is not cancellable."""
        with self._cond:
            if not self.scheduler.cancel(job_id):
                return None
            job = self.store.mark_cancelled(job_id)
            self._cond.notify_all()
            return job.to_dict()

    def job(self, job_id: str) -> dict | None:
        with self._cond:
            job = self.store.jobs.get(job_id)
            return job.to_dict() if job is not None else None

    def jobs(self) -> list[dict]:
        with self._cond:
            return [job.to_dict() for job in
                    sorted(self.store.jobs.values(),
                           key=lambda j: j.seq)]

    def result(self, job_id: str) -> dict | None:
        with self._cond:
            return self.store.result(job_id)

    def health(self) -> dict:
        with self._cond:
            stats = self.sim_stats
            return {
                "queue_depths": self.scheduler.queue_depths(),
                "in_flight": dict(self.scheduler.in_flight),
                "budgets": {kind: self.scheduler.budget_for(kind)
                            for kind in self.scheduler.budgets},
                "jobs": self.store.counts(),
                "recovered": list(self.store.recovered),
                "caches": self._cache_health(),
                "sim_backend": {
                    "summary": stats.summary(),
                    "compiled_runs": stats.compiled_runs,
                    "interp_runs": stats.interp_runs,
                    "fallbacks": stats.fallbacks,
                    "compiles": stats.compiles,
                    "cache_hits": stats.cache_hits,
                },
            }

    def _cache_health(self) -> dict[str, dict]:
        """``last_run`` hit/miss counters from every cache manifest the
        work dir has accumulated (augment shards, eval cells, compile
        verdicts)."""
        caches: dict[str, dict] = {}
        try:
            names = sorted(os.listdir(self.work_dir))
        except OSError:
            return caches
        for name in names:
            manifest = os.path.join(self.work_dir, name, "manifest.json")
            try:
                with open(manifest, encoding="utf-8") as handle:
                    blob = json.load(handle)
            except (OSError, ValueError):
                continue
            caches[name] = blob.get("last_run", {})
        return caches

    # -- workers ----------------------------------------------------------

    def _fail_doomed_locked(self) -> None:
        """Fail queued jobs whose dependencies can no longer succeed.

        Loops because failing one job may doom its own dependents —
        the cascade settles before any dispatch decision.
        """
        while True:
            doomed = self.scheduler.doomed()
            if not doomed:
                return
            for job in doomed:
                if not self.scheduler.cancel(job.id):
                    continue
                states = {dep: self._job_state(dep) for dep in job.after}
                broken = ", ".join(
                    f"{dep} is {state or 'unknown'}"
                    for dep, state in states.items()
                    if state != "done")
                try:
                    self.store.mark_failed(
                        job.id, f"dependency failed: {broken}")
                except Exception as exc:
                    print(f"serve: failed to journal dependency "
                          f"failure of {job.id}: {exc}",
                          file=sys.stderr)
            self._cond.notify_all()

    def _claim(self):
        with self._cond:
            while not self._stop:
                self._fail_doomed_locked()
                batch = self.scheduler.next_batch()
                if batch is not None:
                    for job in batch.jobs:
                        try:
                            self.store.mark_running(job.id)
                        except Exception as exc:
                            # Non-fatal: execution proceeds and the
                            # done/fail transition is legal straight
                            # from `queued`.
                            print(f"serve: failed to journal start of "
                                  f"{job.id}: {exc}", file=sys.stderr)
                    return batch
                self._cond.wait(0.1)
            return None

    def _commit(self, batch, result) -> None:
        """Journal a batch's outcomes.  A store write failing (e.g.
        disk full) must not kill the worker: the job simply stays
        ``running`` and is requeued on the next daemon start."""
        for job in batch.jobs:
            outcome = result.outcomes.get(job.id)
            try:
                if outcome is not None and outcome.ok:
                    self.store.mark_done(job.id, outcome.blob)
                else:
                    error = outcome.error if outcome is not None \
                        else "no outcome produced"
                    self.store.mark_failed(job.id, error)
            except Exception as exc:
                print(f"serve: failed to journal outcome of "
                      f"{job.id}: {exc}", file=sys.stderr)
        if result.sim_stats is not None:
            self.sim_stats.add(result.sim_stats)

    def _worker(self) -> None:
        while True:
            batch = self._claim()
            if batch is None:
                return
            try:
                result = execute_batch(batch.kind, batch.jobs,
                                       self.work_dir,
                                       engine_jobs=self.engine_jobs,
                                       resolve=self.store.result)
                with self._cond:
                    self._commit(batch, result)
            finally:
                # The budget slot is released no matter what failed
                # above — a wedged kind would otherwise outlive the
                # error that wedged it.
                with self._cond:
                    self.scheduler.finish(batch)
                    self._cond.notify_all()


# --------------------------------------------------------------------------
# HTTP layer
# --------------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    """JSON request/response plumbing around one :class:`Daemon`."""

    daemon_ref: Daemon = None       # set by make_server
    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:     # quiet by default
        pass

    def _reply(self, code: int, payload) -> None:
        body = (json.dumps(payload, ensure_ascii=False, sort_keys=True)
                + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0") or 0)
        if not length:
            return {}
        blob = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(blob, dict):
            raise ValueError("request body must be a JSON object")
        return blob

    def do_GET(self) -> None:
        daemon = self.daemon_ref
        path = self.path.rstrip("/")
        if path == "/api/health":
            self._reply(200, daemon.health())
        elif path == "/api/jobs":
            self._reply(200, daemon.jobs())
        elif path.startswith("/api/job/"):
            job = daemon.job(path.rsplit("/", 1)[1])
            if job is None:
                self._reply(404, {"error": "unknown job"})
            else:
                self._reply(200, job)
        elif path.startswith("/api/result/"):
            job_id = path.rsplit("/", 1)[1]
            job = daemon.job(job_id)
            if job is None:
                self._reply(404, {"error": "unknown job"})
            elif job["state"] != "done":
                self._reply(409, {"error": f"job is {job['state']}",
                                  "job": job})
            else:
                result = daemon.result(job_id)
                if result is None:
                    self._reply(500, {"error": "result unavailable"})
                else:
                    self._reply(200, result)
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:
        daemon = self.daemon_ref
        path = self.path.rstrip("/")
        try:
            if path == "/api/submit":
                body = self._body()
                after = body.get("after") or []
                if not (isinstance(after, list)
                        and all(isinstance(a, str) for a in after)):
                    raise ValueError("'after' must be a list of job ids")
                job = daemon.submit(body.get("kind", ""),
                                    body.get("spec", {}),
                                    priority=int(body.get("priority",
                                                          0)),
                                    after=after)
                self._reply(200, job)
            elif path.startswith("/api/cancel/"):
                job_id = path.rsplit("/", 1)[1]
                job = daemon.cancel(job_id)
                if job is not None:
                    self._reply(200, job)
                elif daemon.job(job_id) is None:
                    self._reply(404, {"error": "unknown job"})
                else:
                    self._reply(409, {"error": "job is not queued",
                                      "job": daemon.job(job_id)})
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})
        except SpecError as exc:
            self._reply(400, {"error": str(exc)})
        except ValueError as exc:
            self._reply(400, {"error": f"bad request: {exc}"})


def make_server(daemon: Daemon, host: str = "127.0.0.1",
                port: int = DEFAULT_PORT) -> ThreadingHTTPServer:
    """Bind (but do not run) the daemon's HTTP server.

    ``port=0`` binds an ephemeral port; read it back from
    ``server.server_address``.
    """
    handler = type("BoundHandler", (_Handler,), {"daemon_ref": daemon})
    return ThreadingHTTPServer((host, port), handler)
