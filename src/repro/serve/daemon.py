"""The long-lived job daemon and its JSON-over-HTTP API.

One :class:`Daemon` owns a :class:`~repro.serve.store.JobStore`, a
:class:`~repro.serve.scheduler.Scheduler` and a small pool of worker
threads.  Workers claim scheduler batches under the scheduler condition
lock, execute them *outside* the lock (the heavy lifting parallelises
through the subsystems' own pools), and commit the outcomes back
through the store — so every transition is journaled and a SIGKILL at
any point resumes cleanly on the next start (interrupted jobs are
requeued by the store; see ``repro.serve.store``).

**Locking discipline.**  Two locks, never nested:

* ``_cond`` — the scheduler condition lock.  Guards the in-memory
  queue/budget state and is the only thing workers sleep on; it is
  *never* held across disk I/O, so a slow journal fsync or health scan
  cannot stall dispatch or the API.
* ``_store_lock`` — serialises :class:`JobStore` access (the journal
  is single-writer).  Journal appends, result-blob writes and result
  reads happen here, off the scheduler lock.

Idle workers block on ``_cond.wait()`` with **no timeout**; every
transition that could make new work dispatchable (submit, cancel,
batch finish, dependency doom) notifies, so an idle daemon burns no
CPU.

State transitions can be observed via :meth:`Daemon.add_listener`
(each listener is called with the job dict after the transition is
journaled, outside all locks) — the asyncio gateway uses this to
stream SSE job-progress events and keep per-tenant accounting live.

API surface (all JSON)::

    POST /api/submit            {kind, spec, priority?, after?} → job
    POST /api/flow              DAG spec → {flow, nodes: {name: job}}
    GET  /api/jobs[?ids=a,b]    [job, ...] (optionally only those ids)
    GET  /api/job/<id>          job
    GET  /api/result/<id>       result blob (409 until done)
    POST /api/cancel/<id>       job (409 unless still queued)
    GET  /api/health            queues, budgets, counts, caches, sim

The asyncio front end (:mod:`repro.serve.gateway`) serves the same
surface plus tenants, SSE streaming and admission control on one event
loop; this threaded server remains as the minimal-dependency fallback
and the execution backend either way.

The health payload reports queue depths and in-flight batches per
kind, job-state counts, ``last_run`` hit/miss counters from every
cache manifest under the work dir, and the daemon's aggregated
simulator-backend stats.  Cache manifests are read from disk *outside*
the locks — a slow health scan never blocks workers or API calls.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .executor import execute_batch
from .jobs import SpecError, validate_spec
from .scheduler import DEFAULT_BATCH_LIMIT, Scheduler
from .store import JobStore

#: Default API port (`repro serve` / clients agree through here).
DEFAULT_PORT = 8471


class Daemon:
    """Crash-safe job service: store + scheduler + worker threads."""

    def __init__(self, store_dir: str, budgets: dict[str, int] | None = None,
                 engine_jobs: int = 1, workers: int = 2,
                 batch_limit: int = DEFAULT_BATCH_LIMIT,
                 configure_sim_cache: bool = True):
        from ..sim import BackendStats
        self.store_dir = store_dir
        self.work_dir = os.path.join(store_dir, "work")
        self.engine_jobs = max(1, engine_jobs)
        self.workers = max(1, workers)
        os.makedirs(self.work_dir, exist_ok=True)
        if configure_sim_cache:
            # Persist compile verdicts next to the job caches so warm
            # restarts skip doomed compile attempts (PR 3 layer).
            from ..sim import configure_design_cache
            configure_design_cache(
                root=os.path.join(self.work_dir, "sim-designs"))
        self.store = JobStore(store_dir)
        self.scheduler = Scheduler(budgets=budgets,
                                   batch_limit=batch_limit,
                                   state_fn=self._job_state)
        self.sim_stats = BackendStats()
        self._cond = threading.Condition()
        self._store_lock = threading.RLock()
        self._listeners: list[Callable[[dict], None]] = []
        self._stop = False
        self._threads: list[threading.Thread] = []
        # Resume: everything the previous daemon left queued (including
        # jobs the store just requeued) goes straight back on the queue.
        for job in self.store.queued():
            self.scheduler.submit(job)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker,
                                      name=f"serve-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop workers after their current batch, then compact the
        store.  Queued jobs stay journaled and resume on next start."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads.clear()
        with self._store_lock:
            self.store.close()

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no work is queued or in flight (True), or until
        the timeout elapses (False)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not len(self.scheduler)
                and not sum(self.scheduler.in_flight.values()),
                timeout=timeout)

    def _job_state(self, job_id: str) -> str | None:
        """Dependency state lookup the scheduler gates dispatch on.

        Lock-free: states only mutate *after* their journal fsync
        (under the store lock), and a stale read merely delays the
        dependent to the next dispatch attempt.
        """
        job = self.store.jobs.get(job_id)
        return job.state if job is not None else None

    # -- transition listeners ---------------------------------------------

    def add_listener(self, listener: Callable[[dict], None]) -> None:
        """Register a callback fired (from arbitrary threads, outside
        all daemon locks) with the job dict after every journaled
        transition.  Listeners must not block; exceptions are dropped."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[dict], None]) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _emit(self, jobs) -> None:
        if not self._listeners or not jobs:
            return
        for job in jobs:
            blob = job.to_dict()
            for listener in list(self._listeners):
                try:
                    listener(blob)
                except Exception:
                    pass

    # -- operations (thread-safe) -----------------------------------------

    def submit(self, kind: str, spec: dict, priority: int = 0,
               after: list[str] | None = None):
        outcome = self.submit_many([(kind, spec, priority,
                                     list(after or ()))])[0]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def submit_many(self, requests: list[tuple[str, dict, int,
                                               list[str]]]
                    ) -> list[dict | Exception]:
        """Admit a group of submissions behind one journal fsync.

        ``requests`` is ``[(kind, spec, priority, after)]``; the return
        value is per-request and order-preserving: the submitted job
        dict, or the :class:`SpecError` (or store failure) that
        rejected it.  Validation runs outside every lock; the journal
        group commit runs under the store lock only; scheduler
        admission (+ worker wakeup) under the scheduler lock only.
        """
        outcomes: list[dict | Exception | None] = [None] * len(requests)
        valid = []
        for index, (kind, spec, priority, after) in enumerate(requests):
            try:
                valid.append((index, kind, validate_spec(kind, spec),
                              int(priority), list(after or ())))
            except SpecError as exc:
                outcomes[index] = exc
        jobs = []
        admitted = []
        with self._store_lock:
            for index, kind, spec, priority, after in valid:
                missing = [dep for dep in after
                           if dep not in self.store.jobs]
                if missing:
                    outcomes[index] = SpecError(
                        f"unknown dependency job '{missing[0]}'")
                else:
                    admitted.append((index, kind, spec, priority, after))
            if admitted:
                try:
                    jobs = self.store.submit_many(
                        [(kind, spec, priority, after)
                         for _, kind, spec, priority, after in admitted])
                except Exception as exc:
                    for index, *_ in admitted:
                        outcomes[index] = exc
                    admitted = []
        if jobs:
            with self._cond:
                for job in jobs:
                    self.scheduler.submit(job)
                self._cond.notify_all()
            for (index, *_), job in zip(admitted, jobs):
                outcomes[index] = job.to_dict()
            self._emit(jobs)
        return outcomes

    def submit_flow(self, blob: dict, boost: int = 0) -> dict:
        """Admit a whole DAG spec behind one journal fsync.

        Validates/expands the flow (:func:`repro.flow.validate_flow`,
        outside every lock — a bad graph raises :class:`SpecError`
        before anything is journaled), then under the store lock peeks
        the id allocator, resolves intra-graph ``after`` edges and
        ``@flow:`` spec references to real job ids, and journals the
        whole graph as one atomic ``submit_group`` line — a crash
        mid-commit leaves either the entire DAG or nothing, never a
        partial graph.  Scheduler admission happens in
        topological order, so the waiter index sees each dependency
        before its dependents.  ``boost`` is the gateway tenant's
        priority boost, applied uniformly on top of per-node
        priorities.  Returns ``{"flow": name, "nodes": {node: job}}``.
        """
        from ..flow.spec import flow_name, resolve_refs, validate_flow

        nodes = validate_flow(blob)
        with self._store_lock:
            ids = self.store.reserve_ids(len(nodes))
            id_map = {node.name: job_id
                      for node, job_id in zip(nodes, ids)}
            requests = []
            for node in nodes:
                requests.append((node.kind,
                                 resolve_refs(node.spec, id_map),
                                 node.priority + boost,
                                 [id_map[dep] for dep in node.after]))
            jobs = self.store.submit_group(requests)
        with self._cond:
            for job in jobs:
                self.scheduler.submit(job)
            self._cond.notify_all()
        self._emit(jobs)
        return {"flow": flow_name(blob),
                "nodes": {node.name: job.to_dict()
                          for node, job in zip(nodes, jobs)}}

    def cancel(self, job_id: str) -> dict | None:
        """Cancel a queued job; None if it is not cancellable."""
        with self._cond:
            if not self.scheduler.cancel(job_id):
                return None
        with self._store_lock:
            job = self.store.mark_cancelled(job_id)
        with self._cond:
            self._cond.notify_all()
        self._emit([job])
        return job.to_dict()

    def job(self, job_id: str) -> dict | None:
        job = self.store.jobs.get(job_id)
        return job.to_dict() if job is not None else None

    def jobs(self, ids: list[str] | None = None) -> list[dict]:
        """All jobs (or just ``ids``, unknown ids silently omitted) in
        submission order.  Lock-free snapshot read — pollers never
        stall behind a journal fsync."""
        if ids is not None:
            found = (self.store.jobs.get(job_id) for job_id in ids)
            table = [job for job in found if job is not None]
        else:
            table = list(self.store.jobs.values())
        return [job.to_dict()
                for job in sorted(table, key=lambda j: j.seq)]

    def result(self, job_id: str) -> dict | None:
        with self._store_lock:
            return self.store.result(job_id)

    def health(self) -> dict:
        # Snapshot the in-memory state under the scheduler lock, then
        # do every disk read (cache manifests) with no lock held — a
        # slow filesystem scan must not stall workers or API calls.
        with self._cond:
            queue_depths = self.scheduler.queue_depths()
            in_flight = dict(self.scheduler.in_flight)
            budgets = {kind: self.scheduler.budget_for(kind)
                       for kind in self.scheduler.budgets}
            stats = self.sim_stats.copy()
        counts = self.store.counts()
        recovered = list(self.store.recovered)
        return {
            "queue_depths": queue_depths,
            "in_flight": in_flight,
            "budgets": budgets,
            "jobs": counts,
            "recovered": recovered,
            "caches": self._cache_health(),
            "sim_backend": {
                "summary": stats.summary(),
                "compiled_runs": stats.compiled_runs,
                "interp_runs": stats.interp_runs,
                "fallbacks": stats.fallbacks,
                "compiles": stats.compiles,
                "cache_hits": stats.cache_hits,
                "codegen_hits": stats.codegen_hits,
                "codegen_misses": stats.codegen_misses,
            },
        }

    def _cache_health(self) -> dict[str, dict]:
        """``last_run`` hit/miss counters from every cache manifest the
        work dir has accumulated (augment shards, eval cells, compile
        verdicts).  Pure disk reads: called with no lock held."""
        caches: dict[str, dict] = {}
        try:
            names = sorted(os.listdir(self.work_dir))
        except OSError:
            return caches
        for name in names:
            manifest = os.path.join(self.work_dir, name, "manifest.json")
            try:
                with open(manifest, encoding="utf-8") as handle:
                    blob = json.load(handle)
            except (OSError, ValueError):
                continue
            caches[name] = blob.get("last_run", {})
        return caches

    # -- workers ----------------------------------------------------------

    def _doomed_locked(self) -> list[tuple]:
        """Claim queued jobs whose dependencies can no longer succeed
        (scheduler-side only; the journal writes happen outside the
        condition lock in :meth:`_fail_doomed`)."""
        claimed = []
        for job in self.scheduler.doomed():
            if not self.scheduler.cancel(job.id):
                continue
            states = {dep: self._job_state(dep) for dep in job.after}
            claimed.append((job, states))
        return claimed

    def _fail_doomed(self, claimed: list[tuple]) -> None:
        """Journal dependency failures for jobs :meth:`_doomed_locked`
        claimed.  Failing one job may doom its own dependents — the
        claim loop re-runs until the cascade settles."""
        failed = []
        with self._store_lock:
            for job, states in claimed:
                broken = ", ".join(
                    f"{dep} is {state or 'unknown'}"
                    for dep, state in states.items()
                    if state != "done")
                try:
                    failed.append(self.store.mark_failed(
                        job.id, f"dependency failed: {broken}"))
                except Exception as exc:
                    print(f"serve: failed to journal dependency "
                          f"failure of {job.id}: {exc}",
                          file=sys.stderr)
        with self._cond:
            self._cond.notify_all()
        self._emit(failed)

    def _mark_running(self, batch) -> None:
        """Journal the batch's ``start`` events (one fsync).  Non-fatal
        on failure: execution proceeds and the done/fail transition is
        legal straight from ``queued``."""
        running = []
        with self._store_lock:
            try:
                running = self.store.mark_running_many(batch.ids)
            except Exception as exc:
                print(f"serve: failed to journal start of "
                      f"{'/'.join(batch.ids)}: {exc}", file=sys.stderr)
        self._emit(running)

    def _claim(self):
        """Block until a batch is dispatchable (or the daemon stops).

        The wait carries **no timeout**: every transition that could
        unblock dispatch (submit, cancel, finish, doom) notifies the
        condition, so idle workers sleep instead of polling.  All
        journal writes happen outside the condition lock.
        """
        while True:
            doomed = []
            batch = None
            with self._cond:
                while not self._stop:
                    doomed = self._doomed_locked()
                    if doomed:
                        break
                    batch = self.scheduler.next_batch()
                    if batch is not None:
                        break
                    self._cond.wait()
                if self._stop:
                    return None
            if doomed:
                self._fail_doomed(doomed)
                continue
            self._mark_running(batch)
            return batch

    def _commit(self, batch, result) -> None:
        """Journal a batch's outcomes behind one fsync per event group.

        Runs under the store lock only — API calls and dispatch never
        wait on the commit's disk latency.  A store write failing
        (e.g. disk full) must not kill the worker: the jobs simply stay
        ``running`` and are requeued on the next daemon start.
        """
        done, failed = [], []
        for job in batch.jobs:
            outcome = result.outcomes.get(job.id)
            if outcome is not None and outcome.ok:
                done.append((job.id, outcome.blob))
            else:
                failed.append((job.id,
                               outcome.error if outcome is not None
                               else "no outcome produced"))
        committed = []
        with self._store_lock:
            if done:
                try:
                    committed.extend(self.store.mark_done_many(done))
                except Exception as exc:
                    print(f"serve: failed to journal outcome of "
                          f"{'/'.join(job_id for job_id, _ in done)}: "
                          f"{exc}", file=sys.stderr)
            if failed:
                try:
                    committed.extend(
                        self.store.mark_failed_many(failed))
                except Exception as exc:
                    print(f"serve: failed to journal failure of "
                          f"{'/'.join(job_id for job_id, _ in failed)}: "
                          f"{exc}", file=sys.stderr)
        if result.sim_stats is not None:
            with self._cond:
                self.sim_stats.add(result.sim_stats)
        self._emit(committed)

    def _worker(self) -> None:
        while True:
            batch = self._claim()
            if batch is None:
                return
            try:
                result = execute_batch(batch.kind, batch.jobs,
                                       self.work_dir,
                                       engine_jobs=self.engine_jobs,
                                       resolve=self.result)
                self._commit(batch, result)
            finally:
                # The budget slot is released no matter what failed
                # above — a wedged kind would otherwise outlive the
                # error that wedged it.
                with self._cond:
                    self.scheduler.finish(batch)
                    self._cond.notify_all()


# --------------------------------------------------------------------------
# HTTP layer
# --------------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    """JSON request/response plumbing around one :class:`Daemon`."""

    daemon_ref: Daemon = None       # set by make_server
    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:     # quiet by default
        pass

    def _reply(self, code: int, payload) -> None:
        """Send one JSON response; a client that hung up mid-response
        is dropped silently (handler threads must survive disconnects,
        not spray tracebacks)."""
        body = (json.dumps(payload, ensure_ascii=False, sort_keys=True)
                + "\n").encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0") or 0)
        if not length:
            return {}
        blob = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(blob, dict):
            raise ValueError("request body must be a JSON object")
        return blob

    def do_GET(self) -> None:
        try:
            self._route_get()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _route_get(self) -> None:
        daemon = self.daemon_ref
        url = urlsplit(self.path)
        path = url.path.rstrip("/")
        if path == "/api/health":
            self._reply(200, daemon.health())
        elif path == "/api/jobs":
            ids_raw = parse_qs(url.query).get("ids")
            ids = None
            if ids_raw:
                ids = [job_id for chunk in ids_raw
                       for job_id in chunk.split(",") if job_id]
            self._reply(200, daemon.jobs(ids))
        elif path.startswith("/api/job/"):
            job = daemon.job(path.rsplit("/", 1)[1])
            if job is None:
                self._reply(404, {"error": "unknown job"})
            else:
                self._reply(200, job)
        elif path.startswith("/api/result/"):
            job_id = path.rsplit("/", 1)[1]
            job = daemon.job(job_id)
            if job is None:
                self._reply(404, {"error": "unknown job"})
            elif job["state"] != "done":
                self._reply(409, {"error": f"job is {job['state']}",
                                  "job": job})
            else:
                result = daemon.result(job_id)
                if result is None:
                    self._reply(500, {"error": "result unavailable"})
                else:
                    self._reply(200, result)
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:
        daemon = self.daemon_ref
        path = urlsplit(self.path).path.rstrip("/")
        try:
            if path == "/api/submit":
                body = self._body()
                after = body.get("after") or []
                if not (isinstance(after, list)
                        and all(isinstance(a, str) for a in after)):
                    raise ValueError("'after' must be a list of job ids")
                job = daemon.submit(body.get("kind", ""),
                                    body.get("spec", {}),
                                    priority=int(body.get("priority",
                                                          0)),
                                    after=after)
                self._reply(200, job)
            elif path == "/api/flow":
                self._reply(200, daemon.submit_flow(self._body()))
            elif path.startswith("/api/cancel/"):
                job_id = path.rsplit("/", 1)[1]
                job = daemon.cancel(job_id)
                if job is not None:
                    self._reply(200, job)
                elif daemon.job(job_id) is None:
                    self._reply(404, {"error": "unknown job"})
                else:
                    self._reply(409, {"error": "job is not queued",
                                      "job": daemon.job(job_id)})
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})
        except SpecError as exc:
            self._reply(400, {"error": str(exc)})
        except (ValueError, TypeError) as exc:
            self._reply(400, {"error": f"bad request: {exc}"})
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True


def make_server(daemon: Daemon, host: str = "127.0.0.1",
                port: int = DEFAULT_PORT) -> ThreadingHTTPServer:
    """Bind (but do not run) the daemon's threaded HTTP server.

    ``port=0`` binds an ephemeral port; read it back from
    ``server.server_address``.  For the asyncio front end (tenants,
    SSE, backpressure) see :func:`repro.serve.gateway.serve_gateway`.
    """
    handler = type("BoundHandler", (_Handler,), {"daemon_ref": daemon})
    return ThreadingHTTPServer((host, port), handler)
