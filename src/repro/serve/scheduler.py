"""Priority/FIFO scheduling with per-kind budgets and compat batching.

Invariants (property-tested in ``tests/test_serve_scheduler.py``):

* **Priority order** — :meth:`Scheduler.next_batch` always leads with
  the queued job that has the highest priority (ties broken FIFO by
  submission ``seq``) among kinds that still have budget.
* **Budget** — at most ``budget[kind]`` batches of a kind are in
  flight at once; a batch occupies one slot regardless of size (it is
  executed as one shared run).
* **Batch homogeneity** — every job in a batch has the same kind *and*
  the same compatibility fingerprint (:func:`repro.serve.executor.compat_key`),
  so e.g. augment requests with different
  :meth:`~repro.core.PipelineConfig.fingerprint` values never share a
  run, while same-suite evaluate requests share one engine pass.
* **Dependency gating** — a job with ``after`` edges is invisible to
  dispatch (as leader *or* batch mate) until every dependency is
  ``done``; a failed/cancelled dependency surfaces the job through
  :meth:`Scheduler.doomed` so the daemon can fail it (transitively).

Dependency readiness is tracked through a waiter index (dependency job
id → waiting job ids): each dispatch polls each *distinct unresolved*
dependency once, instead of re-querying every dependency of every
queued job.  A dependency observed ``done`` is resolved permanently and
never polled again (job states never leave a terminal state), so a
deep ``after`` chain costs O(unresolved deps) per dispatch, not
O(queue × deps).  Polling stays lazy — no notification is required;
state changes are picked up on the next dispatch attempt.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from .jobs import CANCELLED, DONE, FAILED, Job

#: Concurrent batches allowed per kind.  Augment/evaluate/train runs
#: manage their own worker pools, so one in-flight batch each keeps the
#: machine busy without oversubscription; simulations are single-design
#: and cheap enough to overlap.
DEFAULT_BUDGETS = {"augment": 1, "train": 1, "evaluate": 1,
                   "infer": 1, "simulate": 2, "experiment": 1,
                   "probe": 2}

#: Jobs grouped into one shared run, at most.
DEFAULT_BATCH_LIMIT = 8


@dataclass
class Batch:
    """Jobs executed as one shared run (same kind, same compat key)."""

    kind: str
    compat: str
    jobs: list[Job] = field(default_factory=list)

    @property
    def ids(self) -> list[str]:
        return [job.id for job in self.jobs]


class Scheduler:
    """In-memory queue discipline (persistence lives in the JobStore).

    Not thread-safe by itself — the daemon serialises calls under its
    condition lock.
    """

    def __init__(self, budgets: dict[str, int] | None = None,
                 batch_limit: int = DEFAULT_BATCH_LIMIT,
                 compat_fn: Callable[[Job], str] | None = None,
                 state_fn: Callable[[str], str | None] | None = None):
        self.budgets = dict(DEFAULT_BUDGETS)
        self.budgets.update(budgets or {})
        self.batch_limit = max(1, batch_limit)
        if compat_fn is None:
            from .executor import compat_key as compat_fn
        self._compat_fn = compat_fn
        #: Resolves a dependency job id to its current state (the
        #: daemon wires the store in); None = no dependency tracking,
        #: every job is immediately ready.
        self._state_fn = state_fn
        self._queued: dict[str, Job] = {}
        self._compat: dict[str, str] = {}
        #: Waiter index: queued job id → its still-unresolved dep ids,
        #: and the inverse (dep id → queued job ids waiting on it).
        #: Dispatch polls each distinct unresolved dep once; a dep seen
        #: ``done`` leaves the index for good.
        self._blocked: dict[str, set[str]] = {}
        self._waiting: dict[str, set[str]] = {}
        #: Queued job id → the broken dependency that dooms it.
        self._doomed: dict[str, str] = {}
        self.in_flight: dict[str, int] = {}

    def budget_for(self, kind: str) -> int:
        """A kind's concurrent-batch cap; 0 disables dispatch (queued
        jobs of that kind wait until the budget is raised)."""
        return max(0, self.budgets.get(kind, 1))

    # -- queue ------------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Track a queued job (its compat key is computed once, here)."""
        self._queued[job.id] = job
        self._compat[job.id] = self._compat_fn(job)
        if job.after and self._state_fn is not None:
            deps = set(job.after)
            self._blocked[job.id] = deps
            for dep in deps:
                self._waiting.setdefault(dep, set()).add(job.id)

    def cancel(self, job_id: str) -> bool:
        """Drop a queued job; False if it is not queued here (e.g.
        already running — running work is never torn down mid-batch)."""
        if self._queued.pop(job_id, None) is None:
            return False
        self._compat.pop(job_id, None)
        self._unindex(job_id)
        self._doomed.pop(job_id, None)
        return True

    def _unindex(self, job_id: str) -> None:
        """Drop a job's waiter-index entries (it left the queue)."""
        for dep in self._blocked.pop(job_id, ()):
            waiters = self._waiting.get(dep)
            if waiters is not None:
                waiters.discard(job_id)
                if not waiters:
                    del self._waiting[dep]

    def queue_depths(self) -> dict[str, int]:
        depths: dict[str, int] = {}
        for job in self._queued.values():
            depths[job.kind] = depths.get(job.kind, 0) + 1
        return depths

    def __len__(self) -> int:
        return len(self._queued)

    # -- dependencies -----------------------------------------------------

    def _refresh(self) -> None:
        """Poll each distinct unresolved dependency once (lazily, at
        dispatch time — no notification needed).

        ``done`` resolves the dep permanently (states never leave a
        terminal state, so it is not polled again); failed/cancelled/
        unknown dooms every waiter and stops tracking their remaining
        deps; queued/running deps stay indexed for the next refresh.
        """
        if self._state_fn is None or not self._waiting:
            return
        for dep in list(self._waiting):
            waiters = self._waiting.get(dep)
            if not waiters:
                self._waiting.pop(dep, None)
                continue
            state = self._state_fn(dep)
            if state == DONE:
                for job_id in self._waiting.pop(dep):
                    blocked = self._blocked.get(job_id)
                    if blocked is not None:
                        blocked.discard(dep)
                        if not blocked:
                            del self._blocked[job_id]
            elif state in (FAILED, CANCELLED) or state is None:
                for job_id in self._waiting.pop(dep):
                    self._doomed.setdefault(job_id, dep)
                    for other in self._blocked.pop(job_id, ()):
                        others = self._waiting.get(other)
                        if others is not None and other != dep:
                            others.discard(job_id)
                            if not others:
                                del self._waiting[other]

    def _ready(self, job: Job) -> bool:
        """Every dependency resolved done (call :meth:`_refresh` first)."""
        return job.id not in self._blocked and job.id not in self._doomed

    def doomed(self) -> list[Job]:
        """Queued jobs that can never run: a dependency failed, was
        cancelled, or is unknown.  The daemon fails these (which may
        doom *their* dependents on the next call)."""
        self._refresh()
        return sorted((self._queued[job_id] for job_id in self._doomed
                       if job_id in self._queued),
                      key=lambda job: job.seq)

    # -- dispatch ---------------------------------------------------------

    def next_batch(self) -> Batch | None:
        """Claim the next runnable batch, or None if nothing fits.

        The leader is the best-ranked *ready* queued job whose kind has
        budget; its batch is every compatible ready queued job (same
        kind + compat key) in rank order, up to ``batch_limit``.
        """
        self._refresh()
        eligible = [job for job in self._queued.values()
                    if self.in_flight.get(job.kind, 0)
                    < self.budget_for(job.kind) and self._ready(job)]
        if not eligible:
            return None
        leader = min(eligible, key=lambda job: job.sort_key)
        compat = self._compat[leader.id]
        mates = sorted((job for job in self._queued.values()
                        if job.kind == leader.kind
                        and self._compat[job.id] == compat
                        and self._ready(job)),
                       key=lambda job: job.sort_key)
        batch = Batch(kind=leader.kind, compat=compat,
                      jobs=mates[:self.batch_limit])
        for job in batch.jobs:
            del self._queued[job.id]
            del self._compat[job.id]
        self.in_flight[batch.kind] = \
            self.in_flight.get(batch.kind, 0) + 1
        return batch

    def finish(self, batch: Batch) -> None:
        """Release the batch's budget slot."""
        count = self.in_flight.get(batch.kind, 0) - 1
        if count > 0:
            self.in_flight[batch.kind] = count
        else:
            self.in_flight.pop(batch.kind, None)
