"""Batch execution: jobs → deterministic result blobs.

**Determinism contract.**  A job's result blob is a pure function of
its (canonical) spec — never of the daemon, the batch it shared, the
cache state, or how many crash/resume cycles it survived.  That holds
because every subsystem underneath already guarantees cache- and
parallelism-invariant output (``repro.scale``, ``repro.eval``,
``repro.sim``; see ROADMAP), and blobs only carry result-derived
fields — no timings, no hit counters.  The fault-injection harness
(``tests/test_serve_recovery.py``) compares daemon blobs byte-for-byte
against :func:`execute_job` run directly in a fresh process.

**Batching.**  A batch shares one run per kind: augment jobs with the
same :meth:`~repro.core.PipelineConfig.fingerprint` share a shard
cache (so overlapping corpora compute once), same-suite evaluate jobs
become a single :class:`~repro.eval.engine.EvalEngine` pass over the
union of their models (each job then renders its own model subset),
and experiments share the engine's cell cache.  Train jobs never batch
(each owns a checkpoint store) but *read* the augment shard cache for
their corpus config — a pipeline's train stage re-augments nothing.
Jobs that must not mix get different :func:`compat_key` values, which
the scheduler respects.

**Dependencies.**  ``resolve`` maps a finished job id to its result
blob; the evaluate executor uses it to load the trained artefact a
``spec["trained"]`` entry points at and register it with
``repro.llm.registry`` before the engine pass.
"""

from __future__ import annotations

import hashlib
import json
import os
import traceback
from collections.abc import Callable
from dataclasses import dataclass, field

from .jobs import Job, _train_config


def _config_from_spec(spec: dict):
    from ..core import PipelineConfig
    if spec.get("completion_only"):
        return PipelineConfig.completion_only()
    return PipelineConfig(seed=spec.get("seed", 0))


def _augment_cache_dir(workdir: str, config) -> str:
    """The shard cache shared by every run of one augment config —
    augment batches warm it, train runs read it back."""
    return os.path.join(workdir, f"aug-{config.fingerprint()[-12:]}")


def compat_key(job: Job) -> str:
    """Batching fingerprint: jobs may share a run iff keys match."""
    spec = job.spec
    if job.kind == "augment":
        return f"augment-{_config_from_spec(spec).fingerprint()}"
    if job.kind == "train":
        return f"train-{job.id}"        # own checkpoints: never batch
    if job.kind == "evaluate":
        knobs = json.dumps(
            [spec["suite"], spec["samples"], spec["levels"],
             spec["seed"], spec["sim_backend"],
             spec.get("trained")], sort_keys=True)
        digest = hashlib.sha256(knobs.encode("utf-8")).hexdigest()
        return f"evaluate-{spec['suite']}-{digest[:12]}"
    if job.kind == "infer":
        # One train job = one weights digest, so keying on the trained
        # job id batches by weights identity before any result exists:
        # same-model requests share one decode batch (and one ModelHost
        # load); per-job prompts/knobs ride along per row.
        return f"infer-{spec['trained']['job']}"
    if job.kind == "simulate":
        return "simulate"
    if job.kind == "probe":
        return "probe"                  # all probes batch freely
    if job.kind == "experiment":
        return f"experiment-quick{int(bool(job.spec.get('quick', True)))}"
    return f"{job.kind}-{job.id}"       # unknown kinds never batch


@dataclass
class JobOutcome:
    """What one job produced: a blob, or an error string."""

    ok: bool
    blob: dict | None = None
    error: str | None = None


@dataclass
class BatchResult:
    """Per-job outcomes plus the batch's simulator-backend counters."""

    outcomes: dict[str, JobOutcome] = field(default_factory=dict)
    sim_stats: object = None


def _augment_blob(spec: dict, cache_dir: str, jobs: int) -> dict:
    from ..scale import augment_distributed
    from ..scale.store import DEFAULT_NUM_SHARDS
    report = augment_distributed(
        spec["paths"], config=_config_from_spec(spec), jobs=jobs,
        cache_dir=cache_dir,
        num_shards=spec.get("shards") or DEFAULT_NUM_SHARDS)
    text = report.dataset.to_jsonl()
    per_task = {task.value: count for task, count
                in report.dataset.task_counts().items()}
    return {"kind": "augment", "records": len(report.dataset),
            "per_task": per_task,
            "sha256": hashlib.sha256(
                text.encode("utf-8")).hexdigest(),
            "dataset_jsonl": text}


def _train_blob(spec: dict, workdir: str, jobs: int) -> dict:
    """Run (or resume) one training job; pure in the canonical spec.

    The corpus loads through the shared augment shard cache — warm
    after the pipeline's augment stage, so nothing re-augments — and
    checkpoints live under a spec-keyed directory, so a job requeued by
    crash recovery resumes instead of restarting (byte-identical either
    way).  Invocation-dependent fields (``resumed_steps``, cache
    counters) are deliberately excluded from the blob.

    ``pool``/``pool_jobs`` spec knobs (the tuner's output) override the
    daemon's default pool for this job — operational only, the blob is
    identical either way (determinism contract, repro.train.service).
    """
    from ..scale.store import DEFAULT_NUM_SHARDS
    from ..train import build_artifact, corpus_dataset, train_run
    config = _config_from_spec(spec)
    spec_digest = hashlib.sha256(
        json.dumps(spec, sort_keys=True).encode("utf-8")).hexdigest()
    dataset, _ = corpus_dataset(
        spec["paths"], config=config,
        cache_dir=_augment_cache_dir(workdir, config), jobs=jobs,
        num_shards=spec.get("shards") or DEFAULT_NUM_SHARDS)
    report = train_run(
        dataset, _train_config(spec),
        jobs=spec.get("pool_jobs") or jobs,
        use_threads=spec.get("pool") == "threads",
        checkpoint_dir=os.path.join(workdir,
                                    f"train-{spec_digest[:12]}"))
    artifact = build_artifact(spec["register_as"], report, dataset)
    return {"kind": "train", "register_as": spec["register_as"],
            "steps": report.steps, "records": report.records,
            "trained_tokens": report.trained_tokens,
            "final_loss": report.final_loss,
            "losses": report.losses, "val_losses": report.val_losses,
            "weights_sha256": report.weights_sha256,
            "dataset_digest": report.dataset_digest,
            "artifact": artifact}


def _resolve_trained(spec: dict,
                     resolve: Callable[[str], dict | None] | None) -> None:
    """Register the trained model an evaluate spec depends on."""
    from ..llm import register_artifact
    trained = spec.get("trained")
    if trained is None:
        return
    blob = resolve(trained["job"]) if resolve is not None else None
    if blob is None or "artifact" not in blob:
        raise RuntimeError(
            f"trained model '{trained['name']}' needs the artefact of "
            f"job {trained['job']}, which has no result")
    artifact = blob["artifact"]
    if artifact.get("name") != trained["name"]:
        raise RuntimeError(
            f"job {trained['job']} trained "
            f"'{artifact.get('name')}', not '{trained['name']}'")
    register_artifact(artifact)


def _trained_weights(spec: dict,
                     resolve: Callable[[str], dict | None] | None) -> dict:
    """The weights bundle the spec's ``trained`` reference points at."""
    trained = spec["trained"]
    blob = resolve(trained["job"]) if resolve is not None else None
    if blob is None or "artifact" not in blob:
        raise RuntimeError(
            f"trained model '{trained['name']}' needs the artefact of "
            f"job {trained['job']}, which has no result")
    artifact = blob["artifact"]
    if artifact.get("name") != trained["name"]:
        raise RuntimeError(
            f"job {trained['job']} trained "
            f"'{artifact.get('name')}', not '{trained['name']}'")
    weights = artifact.get("weights")
    if weights is None:
        raise RuntimeError(
            f"artefact of job {trained['job']} carries no weights "
            "bundle (trained by a pre-inference repro.train?)")
    return weights


def _execute_infer(jobs: list[Job],
                   resolve: Callable[[str], dict | None] | None
                   ) -> dict[str, JobOutcome]:
    """One shared decode batch for every prompt in the batch's jobs.

    The batch shares one compat key (= one trained job = one weights
    digest), so all rows decode against one :class:`ModelHost` entry in
    a single :func:`sample_tokens` call.  Each row's seed derives from
    its *own* job's spec (never from batch composition), and KV-cache
    decoding is token-identical to solo decoding — so a job's blob is
    the same whether it ran alone or shared a batch.
    """
    from ..infer import sample_tokens, shared_host
    from ..train.data import stable_seed
    weights = _trained_weights(jobs[0].spec, resolve)
    loaded = shared_host().load_bundle(weights)
    tokenizer = loaded.tokenizer
    rows, temps, seeds, spans = [], [], [], []
    for job in jobs:
        start = len(rows)
        for index, prompt in enumerate(job.spec["prompts"]):
            rows.append([tokenizer.bos_id] + tokenizer.encode(prompt))
            temps.append(job.spec["temperature"])
            seeds.append(stable_seed("infer", loaded.digest,
                                     job.spec["seed"], index, prompt))
        spans.append((job, start, len(rows)))
    outs = sample_tokens(loaded.model, rows,
                         max_tokens=max(job.spec["max_tokens"]
                                        for job in jobs),
                         temperature=temps, seeds=seeds,
                         stop_token=tokenizer.eos_id)
    outcomes = {}
    for job, start, end in spans:
        completions = []
        for row in range(start, end):
            generated = outs[row][len(rows[row]):]
            generated = generated[:job.spec["max_tokens"]]
            completions.append(
                {"prompt": job.spec["prompts"][row - start],
                 "text": tokenizer.decode(generated),
                 "tokens": len(generated)})
        outcomes[job.id] = JobOutcome(ok=True, blob={
            "kind": "infer", "model": job.spec["trained"]["name"],
            "weights_sha256": loaded.digest,
            "max_tokens": job.spec["max_tokens"],
            "temperature": job.spec["temperature"],
            "seed": job.spec["seed"], "completions": completions})
    return outcomes


def _probe_blob(spec: dict) -> dict:
    """Echo the payload plus its canonical-JSON sha256.

    ``sleep_ms`` delays execution (drain/kill-worker scenarios) but is
    excluded from the blob: the result is a pure function of the
    payload, as the determinism contract requires.
    """
    import time
    if spec["sleep_ms"]:
        time.sleep(spec["sleep_ms"] / 1000.0)
    encoded = json.dumps(spec["payload"], sort_keys=True)
    return {"kind": "probe", "payload": spec["payload"],
            "sha256": hashlib.sha256(encoded.encode("utf-8")).hexdigest()}


def _simulate_blob(spec: dict) -> dict:
    from ..sim import run_simulation
    result = run_simulation(spec["source"], top=spec.get("top"),
                            trace=bool(spec.get("vcd")),
                            backend=spec.get("backend"))
    return {"kind": "simulate", "ok": result.ok,
            "finished": result.finished, "time": result.time,
            "output": result.output if result.ok else "",
            "error": result.error, "vcd": result.vcd}


def _execute_evaluate(jobs: list[Job], engine) -> dict[str, JobOutcome]:
    """One engine pass over the union of the batch's models."""
    from ..eval.suite_api import (render_suite, subset_report,
                                  suite_report, suite_scores)
    leader = jobs[0].spec
    union: list[str] = []
    for job in jobs:
        for name in job.spec["models"]:
            if name not in union:
                union.append(name)
    levels = tuple(leader["levels"]) if leader["levels"] else None
    report = suite_report(leader["suite"], union,
                          samples=leader["samples"], levels=levels,
                          seed=leader["seed"], engine=engine,
                          sim_backend=leader["sim_backend"])
    outcomes = {}
    for job in jobs:
        sub = subset_report(leader["suite"], report, job.spec["models"])
        rendered = render_suite(leader["suite"], sub, levels=levels,
                                pass_k=job.spec["k"])
        outcomes[job.id] = JobOutcome(ok=True, blob={
            "kind": "evaluate", "suite": leader["suite"],
            "models": job.spec["models"], "k": job.spec["k"],
            "scores": suite_scores(leader["suite"], sub,
                                   k=job.spec["k"]),
            "rendered": rendered})
    return outcomes


def execute_batch(kind: str, jobs: list[Job], workdir: str,
                  engine_jobs: int = 1,
                  resolve: Callable[[str], dict | None] | None = None
                  ) -> BatchResult:
    """Run one scheduler batch; every job gets an outcome.

    ``resolve`` maps a done job id to its result blob (the daemon wires
    the store's result reader in); evaluate and infer jobs use it to
    reach their ``trained`` dependency's artefact.  ``sim_stats`` on the returned
    result is the batch's exact simulator accounting: the engine's
    worker-aggregated counters for engine-based kinds, the executing
    thread's delta for direct simulations (the two sources never
    overlap — counters are thread-local).
    """
    from ..eval import EvalEngine
    from ..sim import BackendStats, backend_stats
    os.makedirs(workdir, exist_ok=True)
    result = BatchResult(sim_stats=BackendStats())
    if kind == "augment":
        cache_dir = _augment_cache_dir(
            workdir, _config_from_spec(jobs[0].spec))
        for job in jobs:
            try:
                result.outcomes[job.id] = JobOutcome(
                    ok=True, blob=_augment_blob(job.spec, cache_dir,
                                                engine_jobs))
            except Exception as exc:
                result.outcomes[job.id] = JobOutcome(
                    ok=False, error=_describe(exc))
    elif kind == "train":
        for job in jobs:
            try:
                result.outcomes[job.id] = JobOutcome(
                    ok=True, blob=_train_blob(job.spec, workdir,
                                              engine_jobs))
            except Exception as exc:
                result.outcomes[job.id] = JobOutcome(
                    ok=False, error=_describe(exc))
    elif kind == "infer":
        try:
            result.outcomes = _execute_infer(jobs, resolve)
        except Exception as exc:
            error = _describe(exc)
            result.outcomes = {job.id: JobOutcome(ok=False, error=error)
                               for job in jobs}
    elif kind == "simulate":
        stats = backend_stats()
        before = stats.copy()
        for job in jobs:
            try:
                result.outcomes[job.id] = JobOutcome(
                    ok=True, blob=_simulate_blob(job.spec))
            except Exception as exc:
                result.outcomes[job.id] = JobOutcome(
                    ok=False, error=_describe(exc))
        result.sim_stats = stats.delta_since(before)
    elif kind == "evaluate":
        engine = EvalEngine(jobs=engine_jobs,
                            cache_dir=os.path.join(workdir,
                                                   "eval-cache"))
        try:
            # The whole batch shares one compat key, so the leader's
            # trained dependency is everyone's.
            _resolve_trained(jobs[0].spec, resolve)
            result.outcomes = _execute_evaluate(jobs, engine)
        except Exception as exc:
            error = _describe(exc)
            result.outcomes = {job.id: JobOutcome(ok=False, error=error)
                               for job in jobs}
        result.sim_stats = engine.sim_stats
    elif kind == "probe":
        for job in jobs:
            try:
                result.outcomes[job.id] = JobOutcome(
                    ok=True, blob=_probe_blob(job.spec))
            except Exception as exc:
                result.outcomes[job.id] = JobOutcome(
                    ok=False, error=_describe(exc))
    elif kind == "experiment":
        from ..experiments import run_selected
        engine = EvalEngine(jobs=engine_jobs,
                            cache_dir=os.path.join(workdir,
                                                   "eval-cache"))
        for job in jobs:
            name = job.spec["name"]
            try:
                rendered = run_selected(
                    [name], quick=job.spec["quick"],
                    engine=engine)[name]
                result.outcomes[job.id] = JobOutcome(
                    ok=True, blob={"kind": "experiment", "name": name,
                                   "rendered": rendered})
            except Exception as exc:
                result.outcomes[job.id] = JobOutcome(
                    ok=False, error=_describe(exc))
        result.sim_stats = engine.sim_stats
    else:
        for job in jobs:
            result.outcomes[job.id] = JobOutcome(
                ok=False, error=f"unknown job kind '{kind}'")
    return result


def _describe(exc: Exception) -> str:
    line = traceback.format_exception_only(type(exc), exc)[-1].strip()
    return line


def execute_job(kind: str, spec: dict, workdir: str,
                engine_jobs: int = 1,
                resolve: Callable[[str], dict | None] | None = None
                ) -> dict:
    """Direct (no store, no daemon) execution of one job spec.

    The reference path the fault-injection tests compare daemon results
    against; also handy for dry-running a spec before submitting it.
    ``resolve`` supplies dependency results for evaluate/infer specs
    with a ``trained`` entry (e.g. ``{train_id: train_blob}.get``).
    """
    from .jobs import validate_spec
    job = Job(id="direct", seq=0, kind=kind,
              spec=validate_spec(kind, spec))
    outcome = execute_batch(kind, [job], workdir,
                            engine_jobs=engine_jobs,
                            resolve=resolve).outcomes[job.id]
    if not outcome.ok:
        raise RuntimeError(outcome.error)
    return outcome.blob
