"""Asyncio multi-tenant serving gateway in front of the job daemon.

One event loop accepts thousands of concurrent HTTP/1.1 connections
and serves the daemon's whole JSON API plus the multi-user features
the threaded server lacks:

* **Tenants** — requests carry an ``X-Repro-Tenant`` header resolved
  against configured :class:`TenantPolicy` entries (token-bucket rate
  limit, active-job quota, priority boost).  Unknown tenants either
  get the default policy (``allow_unknown_tenants=True``) or ``403``.
* **Admission control / backpressure** — a submit is rejected with
  ``429`` + ``Retry-After`` the moment the global active-job depth or
  the tenant's own budget/bucket is exhausted, *before* it touches the
  journal.  Clients are expected to honour ``Retry-After`` and retry.
* **SSE streaming** — ``GET /api/events/<id>`` returns
  ``text/event-stream``: an immediate snapshot of the job, then one
  ``event: state`` message per journaled transition until the job
  reaches a terminal state.  Delivery is at-least-once (the snapshot
  may duplicate a transition that raced it); heartbeat comments keep
  idle streams alive.
* **Group-committed submits** — the loop never blocks on the journal.
  Submits queue to a committer thread that drains them into
  :meth:`Daemon.submit_many` groups, so N concurrent submits share one
  journal fsync; results resolve back onto the loop via
  ``call_soon_threadsafe``.

The execution backend is untouched: the same worker threads,
:class:`~repro.serve.scheduler.Scheduler` and journal-first
:class:`~repro.serve.store.JobStore` run behind the loop, bridged with
``loop.run_in_executor`` for lock-taking reads and daemon transition
listeners for push events.  Job results are byte-identical to the
threaded front end — the gateway adds no execution semantics.

Routes::

    POST /api/submit            admission-controlled submit (tenant aware)
    GET  /api/jobs[?ids=a,b]    lock-free job table (or subset) snapshot
    GET  /api/job/<id>          one job
    GET  /api/result/<id>       result blob (409 until done)
    GET  /api/events/<id>       SSE job progress stream
    POST /api/cancel/<id>       cancel a queued job
    GET  /api/health            daemon health (disk scan off-loop)
    GET  /api/gateway           gateway/tenant admission counters

Quickstart: ``examples/gateway_quickstart.py``; benchmark scenarios:
``benchmarks/bench_gateway.py``.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

from .daemon import Daemon
from .jobs import TERMINAL_STATES, SpecError

_REASONS = {200: "OK", 400: "Bad Request", 403: "Forbidden",
            404: "Not Found", 409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error"}

#: Bound on the map of terminal events that arrived before their
#: submit future resolved (worker threads race the committer).  Also
#: absorbs terminal events for jobs submitted outside the gateway.
_EARLY_TERMINAL_CAP = 8192


class _BadRequest(Exception):
    """Client-side protocol error → 400 and close."""


@dataclass(frozen=True)
class TenantPolicy:
    """Admission policy for one tenant name.

    ``rate`` is sustained submits/second refilled into a bucket of
    ``burst`` tokens (``None`` = unlimited).  ``max_active`` caps the
    tenant's queued+running jobs (``None`` = unlimited).
    ``priority_boost`` is added to every submitted job's priority, so
    a paid tier can outrank best-effort traffic in the scheduler.
    """

    name: str = "default"
    rate: float | None = None
    burst: int = 64
    max_active: int | None = None
    priority_boost: int = 0


@dataclass
class GatewayConfig:
    """Gateway admission and transport knobs."""

    #: Global queued+running ceiling before submits get 429s.
    max_queue_depth: int = 512
    #: Named tenant policies; requests resolve via ``X-Repro-Tenant``.
    tenants: dict[str, TenantPolicy] = field(default_factory=dict)
    #: Policy applied to requests without a (known) tenant header.
    default_tenant: TenantPolicy = field(default_factory=TenantPolicy)
    #: ``False`` → an unrecognised ``X-Repro-Tenant`` is a 403.
    allow_unknown_tenants: bool = True
    #: ``Retry-After`` seconds suggested on queue-depth/quota 429s.
    retry_after: float = 0.25
    max_body_bytes: int = 8 * 1024 * 1024
    #: Max submits group-committed behind one journal fsync.
    submit_group_limit: int = 128
    #: Idle SSE streams emit a comment at this period (seconds).
    sse_heartbeat: float = 15.0


class _TenantState:
    """Mutable per-tenant accounting: token bucket + active jobs."""

    __slots__ = ("policy", "tokens", "last", "active", "submitted",
                 "throttled", "rejected")

    def __init__(self, policy: TenantPolicy):
        self.policy = policy
        self.tokens = float(policy.burst)
        self.last = time.monotonic()
        self.active = 0
        self.submitted = 0
        self.throttled = 0
        self.rejected = 0

    def admit(self, now: float) -> float:
        """Take one token; 0.0 if admitted, else seconds to retry."""
        rate = self.policy.rate
        if rate is None:
            return 0.0
        self.tokens = min(float(self.policy.burst),
                          self.tokens + (now - self.last) * rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return max((1.0 - self.tokens) / rate, 0.001)

    def stats(self) -> dict:
        return {"active": self.active, "submitted": self.submitted,
                "throttled": self.throttled, "rejected": self.rejected,
                "rate": self.policy.rate,
                "max_active": self.policy.max_active,
                "priority_boost": self.policy.priority_boost}


@dataclass
class _SubmitItem:
    tenant: _TenantState
    kind: str
    spec: dict
    priority: int
    after: list[str]
    future: asyncio.Future


_STOP = object()


class Gateway:
    """The asyncio front end.  Construct, ``await start()``, serve."""

    def __init__(self, daemon: Daemon, host: str = "127.0.0.1",
                 port: int = 0, config: GatewayConfig | None = None):
        self.daemon = daemon
        self.host = host
        self.port = port
        self.config = config or GatewayConfig()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._tenants: dict[str, _TenantState] = {
            name: _TenantState(policy)
            for name, policy in self.config.tenants.items()}
        self._default_tenant = _TenantState(self.config.default_tenant)
        self._active_jobs = 0
        self._job_owner: dict[str, _TenantState] = {}
        self._early_terminal: dict[str, str] = {}
        self._watchers: dict[str, list[asyncio.Queue]] = {}
        self._transition_lock = threading.Lock()
        self._transition_buf: list[dict] = []
        self._transition_scheduled = False
        self._submit_queue: queue.SimpleQueue = queue.SimpleQueue()
        self._committer: threading.Thread | None = None
        self._conns: set[asyncio.Task] = set()
        self._disconnects = 0
        self._requests = 0
        self._rejected_depth = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._committer = threading.Thread(
            target=self._commit_loop, name="gateway-committer",
            daemon=True)
        self._committer.start()
        self.daemon.add_listener(self._on_transition)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def close(self) -> None:
        self.daemon.remove_listener(self._on_transition)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
        if self._committer is not None:
            self._submit_queue.put(_STOP)
            await asyncio.get_running_loop().run_in_executor(
                None, self._committer.join)
            self._committer = None

    async def serve_forever(self) -> None:
        """Run until cancelled (foreground mode for the CLI)."""
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # -- submit path ------------------------------------------------------

    def _tenant_for(self, headers: dict) -> _TenantState | None:
        """Resolve the request's tenant; ``None`` means 403."""
        name = headers.get("x-repro-tenant")
        if name is None or name == self.config.default_tenant.name:
            return self._default_tenant
        state = self._tenants.get(name)
        if state is not None:
            return state
        if not self.config.allow_unknown_tenants:
            return None
        if len(self._tenants) < 4096:
            # Each unknown tenant gets its own bucket under the default
            # policy — one noisy stranger cannot starve the others.
            state = self._tenants[name] = _TenantState(
                self.config.default_tenant)
            return state
        return self._default_tenant

    def _release(self, tenant: _TenantState) -> None:
        tenant.active -= 1
        self._active_jobs -= 1

    async def _handle_submit(self, headers: dict, body: dict):
        tenant = self._tenant_for(headers)
        if tenant is None:
            return 403, {"error": "unknown tenant "
                         f"'{headers.get('x-repro-tenant')}'"}, ()
        after = body.get("after") or []
        if not (isinstance(after, list)
                and all(isinstance(a, str) for a in after)):
            return 400, {"error": "'after' must be a list of job ids"}, ()
        try:
            priority = int(body.get("priority", 0))
        except (ValueError, TypeError):
            return 400, {"error": "'priority' must be an integer"}, ()
        retry = tenant.admit(time.monotonic())
        if retry > 0.0:
            tenant.throttled += 1
            return 429, {"error": "tenant rate limit exceeded",
                         "retry_after": round(retry, 3)}, (
                ("Retry-After", f"{retry:.3f}"),)
        policy = tenant.policy
        if (policy.max_active is not None
                and tenant.active >= policy.max_active):
            tenant.rejected += 1
            return 429, {"error": "tenant active-job quota exceeded",
                         "retry_after": self.config.retry_after}, (
                ("Retry-After", f"{self.config.retry_after:.3f}"),)
        if self._active_jobs >= self.config.max_queue_depth:
            self._rejected_depth += 1
            return 429, {"error": "queue depth exceeded",
                         "retry_after": self.config.retry_after}, (
                ("Retry-After", f"{self.config.retry_after:.3f}"),)
        tenant.active += 1
        self._active_jobs += 1
        future = self._loop.create_future()
        self._submit_queue.put(_SubmitItem(
            tenant, body.get("kind", ""), body.get("spec", {}),
            priority + policy.priority_boost, after, future))
        try:
            job = await future
        except SpecError as exc:
            return 400, {"error": str(exc)}, ()
        except Exception as exc:            # journal failure etc.
            return 500, {"error": f"submit failed: {exc}"}, ()
        return 200, job, ()

    async def _handle_flow(self, headers: dict, body: dict):
        """Admit a whole DAG spec (``POST /api/flow``).

        One bucket token per request, but quota/depth admission charges
        the *expanded node count* — a 3×3 sweep occupies nine active
        slots, so a tenant cannot smuggle a fleet past ``max_active``
        inside one flow.  ``daemon.submit_flow`` is already a single
        group commit, so the request skips the committer queue and
        runs on the executor directly.
        """
        from ..flow.spec import validate_flow

        tenant = self._tenant_for(headers)
        if tenant is None:
            return 403, {"error": "unknown tenant "
                         f"'{headers.get('x-repro-tenant')}'"}, ()
        try:
            nodes = await self._loop.run_in_executor(
                None, validate_flow, body)
        except SpecError as exc:
            return 400, {"error": str(exc)}, ()
        count = len(nodes)
        retry = tenant.admit(time.monotonic())
        if retry > 0.0:
            tenant.throttled += 1
            return 429, {"error": "tenant rate limit exceeded",
                         "retry_after": round(retry, 3)}, (
                ("Retry-After", f"{retry:.3f}"),)
        policy = tenant.policy
        if (policy.max_active is not None
                and tenant.active + count > policy.max_active):
            tenant.rejected += 1
            return 429, {"error": "tenant active-job quota exceeded",
                         "retry_after": self.config.retry_after}, (
                ("Retry-After", f"{self.config.retry_after:.3f}"),)
        if self._active_jobs + count > self.config.max_queue_depth:
            self._rejected_depth += 1
            return 429, {"error": "queue depth exceeded",
                         "retry_after": self.config.retry_after}, (
                ("Retry-After", f"{self.config.retry_after:.3f}"),)
        tenant.active += count
        self._active_jobs += count
        try:
            payload = await self._loop.run_in_executor(
                None, lambda: self.daemon.submit_flow(
                    body, boost=policy.priority_boost))
        except SpecError as exc:
            for _ in range(count):
                self._release(tenant)
            return 400, {"error": str(exc)}, ()
        except Exception as exc:            # journal failure etc.
            for _ in range(count):
                self._release(tenant)
            return 500, {"error": f"flow submit failed: {exc}"}, ()
        tenant.submitted += count
        for job in payload["nodes"].values():
            # Same race as _resolve_submits: a worker may already have
            # finished a node; its terminal event is parked in
            # _early_terminal and must release the slot now.
            if self._early_terminal.pop(job["id"], None) is not None:
                self._release(tenant)
            else:
                self._job_owner[job["id"]] = tenant
        return 200, payload, ()

    def _commit_loop(self) -> None:
        """Committer thread: drain queued submits into group commits.

        Runs ``daemon.submit_many`` (journal fsync) off the loop; under
        load the drain naturally batches every submit that arrived
        while the previous group was fsyncing.
        """
        while True:
            item = self._submit_queue.get()
            if item is _STOP:
                return
            items = [item]
            while len(items) < self.config.submit_group_limit:
                try:
                    extra = self._submit_queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    self._submit_queue.put(extra)
                    break
                items.append(extra)
            try:
                outcomes = self.daemon.submit_many(
                    [(it.kind, it.spec, it.priority, it.after)
                     for it in items])
            except Exception as exc:
                outcomes = [exc] * len(items)
            self._loop.call_soon_threadsafe(self._resolve_submits,
                                            items, outcomes)

    def _resolve_submits(self, items: list[_SubmitItem],
                         outcomes: list) -> None:
        """Loop-side: settle submit futures + start tenant accounting."""
        for item, outcome in zip(items, outcomes):
            if isinstance(outcome, Exception):
                self._release(item.tenant)
                if not item.future.done():
                    item.future.set_exception(outcome)
                continue
            job_id = outcome["id"]
            item.tenant.submitted += 1
            # A worker may have finished the job before this callback
            # ran; the terminal event is parked in _early_terminal.
            if self._early_terminal.pop(job_id, None) is not None:
                self._release(item.tenant)
            else:
                self._job_owner[job_id] = item.tenant
            if not item.future.done():
                item.future.set_result(outcome)

    # -- transition fan-out ----------------------------------------------

    def _on_transition(self, blob: dict) -> None:
        """Daemon listener (worker threads) → loop-side fan-out.

        Transitions are buffered and drained with one loop wakeup per
        burst — under load a 64-job batch commit is 64 events, and one
        ``call_soon_threadsafe`` socketpair write each would make the
        loop thrash."""
        with self._transition_lock:
            self._transition_buf.append(blob)
            if self._transition_scheduled:
                return
            self._transition_scheduled = True
        try:
            self._loop.call_soon_threadsafe(self._drain_transitions)
        except RuntimeError:
            pass                            # loop already closed

    def _drain_transitions(self) -> None:
        with self._transition_lock:
            buffered = self._transition_buf
            self._transition_buf = []
            self._transition_scheduled = False
        for blob in buffered:
            self._fanout(blob)

    def _fanout(self, blob: dict) -> None:
        job_id = blob["id"]
        for watcher in self._watchers.get(job_id, ()):
            watcher.put_nowait(blob)
        if blob["state"] in TERMINAL_STATES:
            owner = self._job_owner.pop(job_id, None)
            if owner is not None:
                self._release(owner)
            else:
                self._early_terminal[job_id] = blob["state"]
                while len(self._early_terminal) > _EARLY_TERMINAL_CAP:
                    self._early_terminal.pop(
                        next(iter(self._early_terminal)))

    # -- HTTP plumbing ----------------------------------------------------

    def _client_connected(self, reader, writer) -> None:
        task = self._loop.create_task(self._serve_conn(reader, writer))
        self._conns.add(task)
        task.add_done_callback(self._conns.discard)

    async def _serve_conn(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, target, headers, body = request
                self._requests += 1
                keep = headers.get("connection", "").lower() != "close"
                if not await self._dispatch(method, target, headers,
                                            body, writer, keep):
                    return
                if not keep:
                    return
        except _BadRequest as exc:
            await self._send_json(writer, 400, {"error": str(exc)},
                                  keep_alive=False)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            self._disconnects += 1
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            try:
                await self._send_json(writer, 500,
                                      {"error": f"internal: {exc}"},
                                      keep_alive=False)
            except (ConnectionResetError, BrokenPipeError):
                self._disconnects += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader):
        """Parse one request; ``None`` on clean EOF between requests."""
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _BadRequest("request line too long") from None
        if not line:
            return None
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest("malformed request line")
        method, target = parts[0], parts[1]
        headers: dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                raise _BadRequest("header line too long") from None
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise _BadRequest("truncated headers")
            name, sep, value = raw.decode("latin-1",
                                          "replace").partition(":")
            if not sep:
                raise _BadRequest("malformed header line")
            headers[name.strip().lower()] = value.strip()
            if len(headers) > 128:
                raise _BadRequest("too many headers")
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _BadRequest("invalid Content-Length") from None
        if length < 0:
            raise _BadRequest("invalid Content-Length")
        if length > self.config.max_body_bytes:
            raise _BadRequest("request body too large")
        data = b""
        while len(data) < length:
            chunk = await reader.read(length - len(data))
            if not chunk:
                break                       # client hung up early
            data += chunk
        return method, target, headers, data

    async def _send_json(self, writer, code: int, payload, *,
                         keep_alive: bool = True,
                         extra_headers=()) -> None:
        body = (json.dumps(payload, ensure_ascii=False,
                           sort_keys=True) + "\n").encode("utf-8")
        head = [f"HTTP/1.1 {code} {_REASONS.get(code, 'OK')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}"]
        head.extend(f"{name}: {value}" for name, value in extra_headers)
        if not keep_alive:
            head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    async def _dispatch(self, method, target, headers, body,
                        writer, keep) -> bool:
        """Route one request.  Returns False if the response owned the
        connection (SSE) and the keep-alive loop must stop."""
        daemon = self.daemon
        url = urlsplit(target)
        path = url.path.rstrip("/")
        send = lambda code, payload, extra=(): self._send_json(
            writer, code, payload, keep_alive=keep, extra_headers=extra)
        try:
            if method == "GET":
                if path == "/api/health":
                    blob = await self._loop.run_in_executor(
                        None, daemon.health)
                    await send(200, blob)
                elif path == "/api/jobs":
                    ids_raw = parse_qs(url.query).get("ids")
                    ids = None
                    if ids_raw:
                        ids = [job_id for chunk in ids_raw
                               for job_id in chunk.split(",") if job_id]
                    await send(200, daemon.jobs(ids))
                elif path == "/api/states":
                    # Minimal polling payload: id → state for the
                    # requested ids (unknown ids omitted).  High-rate
                    # pollers use this instead of full job dicts.
                    ids_raw = parse_qs(url.query).get("ids")
                    ids = [job_id for chunk in ids_raw or ()
                           for job_id in chunk.split(",") if job_id]
                    table = daemon.store.jobs
                    states = {}
                    for job_id in ids:
                        job = table.get(job_id)
                        if job is not None:
                            states[job_id] = job.state
                    await send(200, states)
                elif path == "/api/gateway":
                    await send(200, self._gateway_stats())
                elif path.startswith("/api/events/"):
                    await self._handle_events(path.rsplit("/", 1)[1],
                                              writer)
                    return False
                elif path.startswith("/api/job/"):
                    job = daemon.job(path.rsplit("/", 1)[1])
                    if job is None:
                        await send(404, {"error": "unknown job"})
                    else:
                        await send(200, job)
                elif path.startswith("/api/result/"):
                    job_id = path.rsplit("/", 1)[1]
                    job = daemon.job(job_id)
                    if job is None:
                        await send(404, {"error": "unknown job"})
                    elif job["state"] != "done":
                        await send(409, {"error": f"job is "
                                         f"{job['state']}", "job": job})
                    else:
                        blob = await self._loop.run_in_executor(
                            None, daemon.result, job_id)
                        if blob is None:
                            await send(500,
                                       {"error": "result unavailable"})
                        else:
                            await send(200, blob)
                else:
                    await send(404, {"error": f"unknown path {target}"})
            elif method == "POST":
                if path == "/api/submit":
                    parsed = self._parse_body(body)
                    code, payload, extra = await self._handle_submit(
                        headers, parsed)
                    await send(code, payload, extra)
                elif path == "/api/flow":
                    parsed = self._parse_body(body)
                    code, payload, extra = await self._handle_flow(
                        headers, parsed)
                    await send(code, payload, extra)
                elif path.startswith("/api/cancel/"):
                    job_id = path.rsplit("/", 1)[1]
                    job = await self._loop.run_in_executor(
                        None, daemon.cancel, job_id)
                    if job is not None:
                        await send(200, job)
                    elif daemon.job(job_id) is None:
                        await send(404, {"error": "unknown job"})
                    else:
                        await send(409, {"error": "job is not queued",
                                         "job": daemon.job(job_id)})
                else:
                    await send(404, {"error": f"unknown path {target}"})
            else:
                await send(404, {"error": f"unsupported method "
                                 f"{method}"})
        except _BadRequest as exc:
            await self._send_json(writer, 400, {"error": str(exc)},
                                  keep_alive=False)
            return False
        return True

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            blob = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise _BadRequest("request body is not valid JSON") from None
        if not isinstance(blob, dict):
            raise _BadRequest("request body must be a JSON object")
        return blob

    def _gateway_stats(self) -> dict:
        return {
            "active_jobs": self._active_jobs,
            "max_queue_depth": self.config.max_queue_depth,
            "requests": self._requests,
            "disconnects": self._disconnects,
            "rejected_queue_depth": self._rejected_depth,
            "tenants": {name: state.stats()
                        for name, state in self._tenants.items()},
            "default_tenant": self._default_tenant.stats(),
        }

    # -- SSE --------------------------------------------------------------

    async def _handle_events(self, job_id: str, writer) -> None:
        """Stream ``event: state`` messages until the job is terminal.

        The watcher queue registers *before* the snapshot read, so a
        transition racing the snapshot is delivered (possibly twice —
        at-least-once is the contract) rather than lost.
        """
        watcher: asyncio.Queue = asyncio.Queue()
        queues = self._watchers.setdefault(job_id, [])
        queues.append(watcher)
        try:
            job = self.daemon.job(job_id)
            if job is None:
                await self._send_json(writer, 404,
                                      {"error": "unknown job"},
                                      keep_alive=False)
                return
            writer.write(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: text/event-stream\r\n"
                         b"Cache-Control: no-cache\r\n"
                         b"Connection: close\r\n\r\n")
            await self._write_event(writer, job)
            if job["state"] in TERMINAL_STATES:
                return
            while True:
                try:
                    blob = await asyncio.wait_for(
                        watcher.get(), self.config.sse_heartbeat)
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                await self._write_event(writer, blob)
                if blob["state"] in TERMINAL_STATES:
                    return
        except (ConnectionResetError, BrokenPipeError):
            self._disconnects += 1
        finally:
            queues.remove(watcher)
            if not queues:
                self._watchers.pop(job_id, None)

    async def _write_event(self, writer, blob: dict) -> None:
        data = json.dumps(blob, ensure_ascii=False, sort_keys=True)
        writer.write(f"event: state\ndata: {data}\n\n".encode("utf-8"))
        await writer.drain()


class GatewayServer:
    """Thread-hosted gateway for tests, benchmarks and embedding.

    ``start()`` blocks until the socket is bound (the bound port is in
    ``.port`` / ``.url``); ``stop()`` shuts the loop down and joins the
    thread.  The daemon's lifecycle stays the caller's job.
    """

    def __init__(self, daemon: Daemon, host: str = "127.0.0.1",
                 port: int = 0, config: GatewayConfig | None = None):
        self.gateway = Gateway(daemon, host=host, port=port,
                               config=config)
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.gateway.host

    @property
    def port(self) -> int:
        return self.gateway.port

    @property
    def url(self) -> str:
        return self.gateway.url

    def start(self) -> "GatewayServer":
        self._thread = threading.Thread(target=self._run,
                                        name="gateway-loop", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:       # surface bind errors etc.
            if not self._started.is_set():
                self._error = exc
                self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.gateway.start()
        self._started.set()
        await self._stop_event.wait()
        await self.gateway.close()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass
        self._thread.join()
        self._thread = None
