"""Thin stdlib HTTP client for the job daemon and the gateway.

Used by ``repro submit/status/result/cancel`` and by the test
harnesses; every method mirrors one endpoint of
:mod:`repro.serve.daemon` (the asyncio gateway serves the same
surface).  Construct with ``tenant="name"`` to stamp every request
with the gateway's ``X-Repro-Tenant`` header; a 429 from admission
control surfaces as :class:`ServeError` with ``retry_after`` set from
the ``Retry-After`` header.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from .daemon import DEFAULT_PORT
from .jobs import TERMINAL_STATES

DEFAULT_URL = f"http://127.0.0.1:{DEFAULT_PORT}"


class ServeError(RuntimeError):
    """The daemon answered with an error status."""

    def __init__(self, status: int, payload: dict,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status}: "
                         f"{payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        #: Seconds the gateway suggested waiting before retrying
        #: (backpressure 429s); ``None`` otherwise.
        self.retry_after = retry_after


class ServeClient:
    """Talk to one daemon/gateway at ``url`` (default local port)."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 30.0,
                 tenant: str | None = None):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.tenant = tenant

    def _request(self, path: str, body: dict | None = None):
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers,
            method="POST" if body is not None else "GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {"error": str(exc)}
            retry_after = None
            raw = exc.headers.get("Retry-After") if exc.headers else None
            if raw:
                try:
                    retry_after = float(raw)
                except ValueError:
                    pass
            raise ServeError(exc.code, payload,
                             retry_after=retry_after) from None

    # -- endpoints --------------------------------------------------------

    def submit(self, kind: str, spec: dict, priority: int = 0,
               after: list[str] | None = None) -> dict:
        """Submit one job; ``after`` lists dependency job ids."""
        body = {"kind": kind, "spec": spec, "priority": priority}
        if after:
            body["after"] = list(after)
        return self._request("/api/submit", body)

    def submit_flow(self, flow: dict) -> dict:
        """Submit a whole DAG spec (see :mod:`repro.flow.spec`).

        One request journals the entire graph in a single group
        commit; the reply maps node names to job dicts:
        ``{"flow": name, "nodes": {node: job}}``.
        """
        return self._request("/api/flow", flow)

    def status(self, job_id: str) -> dict:
        return self._request(f"/api/job/{job_id}")

    def jobs(self, ids: list[str] | None = None) -> list[dict]:
        """The job table, or just ``ids`` — one request either way."""
        if ids:
            return self._request("/api/jobs?ids=" + ",".join(ids))
        return self._request("/api/jobs")

    def result(self, job_id: str) -> dict:
        return self._request(f"/api/result/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request(f"/api/cancel/{job_id}", {})

    def health(self) -> dict:
        return self._request("/api/health")

    def gateway(self) -> dict:
        """Gateway admission stats (gateway front end only)."""
        return self._request("/api/gateway")

    # -- helpers ----------------------------------------------------------

    def wait(self, job_ids: list[str], timeout: float = 120.0,
             poll: float = 0.05) -> dict[str, dict]:
        """Poll until every job reaches a terminal state.

        One batched ``/api/jobs?ids=…`` query per tick — waiting on an
        N-job DAG is O(1) requests per poll, not O(N).  Returns
        ``id → job dict``; raises :class:`TimeoutError` if the deadline
        passes first.  A gateway 429 (admission backpressure) does not
        escape the loop: the client sleeps the advertised
        ``Retry-After`` (capped by the remaining deadline) and retries
        the batched query.
        """
        deadline = time.monotonic() + timeout
        jobs: dict[str, dict] = {}
        pending = list(job_ids)
        while pending:
            seen = set()
            try:
                batch = self.jobs(ids=pending)
            except ServeError as exc:
                if exc.status != 429:
                    raise
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"jobs not terminal after {timeout}s "
                        f"(rate-limited): {', '.join(pending)}") \
                        from None
                delay = exc.retry_after if exc.retry_after else poll
                time.sleep(max(0.0, min(delay, remaining)))
                continue
            for job in batch:
                seen.add(job["id"])
                if job["state"] in TERMINAL_STATES:
                    jobs[job["id"]] = job
            unknown = [job_id for job_id in pending
                       if job_id not in seen]
            if unknown:
                raise ServeError(404, {"error": "unknown job "
                                       f"{', '.join(unknown)}"})
            pending = [job_id for job_id in pending
                       if job_id not in jobs]
            if pending:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"jobs not terminal after {timeout}s: "
                        f"{', '.join(pending)}")
                time.sleep(poll)
        return jobs
