"""Thin stdlib HTTP client for the job daemon.

Used by ``repro submit/status/result/cancel`` and by the test
harnesses; every method mirrors one endpoint of
:mod:`repro.serve.daemon`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from .daemon import DEFAULT_PORT
from .jobs import TERMINAL_STATES

DEFAULT_URL = f"http://127.0.0.1:{DEFAULT_PORT}"


class ServeError(RuntimeError):
    """The daemon answered with an error status."""

    def __init__(self, status: int, payload: dict):
        super().__init__(f"HTTP {status}: "
                         f"{payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Talk to one daemon at ``url`` (default local, default port)."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, body: dict | None = None):
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.url + path, data=data,
            headers={"Content-Type": "application/json"},
            method="POST" if body is not None else "GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {"error": str(exc)}
            raise ServeError(exc.code, payload) from None

    # -- endpoints --------------------------------------------------------

    def submit(self, kind: str, spec: dict, priority: int = 0,
               after: list[str] | None = None) -> dict:
        """Submit one job; ``after`` lists dependency job ids."""
        body = {"kind": kind, "spec": spec, "priority": priority}
        if after:
            body["after"] = list(after)
        return self._request("/api/submit", body)

    def status(self, job_id: str) -> dict:
        return self._request(f"/api/job/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("/api/jobs")

    def result(self, job_id: str) -> dict:
        return self._request(f"/api/result/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request(f"/api/cancel/{job_id}", {})

    def health(self) -> dict:
        return self._request("/api/health")

    # -- helpers ----------------------------------------------------------

    def wait(self, job_ids: list[str], timeout: float = 120.0,
             poll: float = 0.05) -> dict[str, dict]:
        """Poll until every job reaches a terminal state.

        Returns ``id → job dict``; raises :class:`TimeoutError` if the
        deadline passes first.
        """
        deadline = time.monotonic() + timeout
        jobs: dict[str, dict] = {}
        pending = list(job_ids)
        while pending:
            still = []
            for job_id in pending:
                job = self.status(job_id)
                if job["state"] in TERMINAL_STATES:
                    jobs[job_id] = job
                else:
                    still.append(job_id)
            pending = still
            if pending:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"jobs not terminal after {timeout}s: "
                        f"{', '.join(pending)}")
                time.sleep(poll)
        return jobs
