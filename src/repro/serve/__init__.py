"""Crash-safe job service over augment / train / evaluate / simulate.

The service front-end the ROADMAP's production north star needs: the
batch subsystems (``repro.scale``, ``repro.train``, ``repro.eval``,
``repro.sim``) become first-class *jobs* behind a long-lived daemon,
chainable into dependency DAGs (``after``) — ``repro pipeline`` runs
augment → train → evaluate as one, with the evaluate stage scoring the
freshly trained model —

* :mod:`jobs`      — job model + spec validation + dependency edges
* :mod:`store`     — :class:`JobStore`: append-only JSONL journal +
  atomic snapshot; every transition journaled (group-committed: N
  events behind one fsync), kill-and-resume safe
* :mod:`scheduler` — priority/FIFO queues, per-kind budgets,
  fingerprint-compatible batching
* :mod:`executor`  — deterministic job execution (results are pure
  functions of the spec; byte-identical direct vs daemon vs resumed)
* :mod:`daemon`    — worker threads + threaded JSON-over-HTTP API
* :mod:`gateway`   — asyncio multi-tenant front end: one event loop
  for thousands of connections, ``X-Repro-Tenant`` token-bucket rate
  limits and quotas, SSE job-progress streams
  (``GET /api/events/<id>``), and 429 + ``Retry-After`` backpressure
  once queue depth or a tenant budget is exhausted — same execution
  backend, byte-identical results
* :mod:`client`    — stdlib client used by the CLI and tests (batched
  ``wait()``, tenant header support)

Proven by the fault-injection harness in
``tests/test_serve_recovery.py`` (both front ends) and stress-tested
by the scenario benchmarks in ``benchmarks/bench_gateway.py``; see
ROADMAP "repro.serve".
"""

from .client import DEFAULT_URL, ServeClient, ServeError
from .daemon import DEFAULT_PORT, Daemon, make_server
from .executor import (BatchResult, JobOutcome, compat_key, execute_batch,
                       execute_job)
from .gateway import Gateway, GatewayConfig, GatewayServer, TenantPolicy
from .jobs import (JOB_KINDS, JOB_STATES, TERMINAL_STATES, Job, SpecError,
                   validate_spec)
from .scheduler import (DEFAULT_BATCH_LIMIT, DEFAULT_BUDGETS, Batch,
                        Scheduler)
from .store import (CRASH_AFTER_ENV, CRASH_MODE_ENV,
                    STORE_FORMAT_VERSION, JobStore, StoreError)

__all__ = [
    "Job", "JOB_KINDS", "JOB_STATES", "TERMINAL_STATES", "SpecError",
    "validate_spec",
    "JobStore", "StoreError", "STORE_FORMAT_VERSION",
    "CRASH_AFTER_ENV", "CRASH_MODE_ENV",
    "Scheduler", "Batch", "DEFAULT_BUDGETS", "DEFAULT_BATCH_LIMIT",
    "compat_key", "execute_batch", "execute_job", "JobOutcome",
    "BatchResult",
    "Daemon", "make_server", "DEFAULT_PORT",
    "Gateway", "GatewayConfig", "GatewayServer", "TenantPolicy",
    "ServeClient", "ServeError", "DEFAULT_URL",
]
