"""Crash-safe job persistence: append-only journal + atomic snapshot.

Layout under the store root::

    journal.jsonl        append-only event log (fsync'd per event)
    snapshot.json        atomic checkpoint of the full job table
    results/<id>.json    one atomically-written blob per finished job

**Write discipline.**  Every state transition is journaled *before* the
in-memory table changes (journal-first), each journal line is flushed
and fsync'd before the call returns, and every non-append write
(snapshot, result blobs) goes through the same temp-file + ``os.replace``
path as ``repro.scale`` (:func:`repro.core.records.atomic_write_text`).
A result blob is written *before* its ``done`` event, and the event
records the blob's sha256 — so a ``done`` job always has a verified
result, and a crash between the two writes merely re-runs the job,
which rewrites the identical bytes (results are pure functions of the
spec; see ``repro.serve.executor``).

**Recovery.**  Loading a store replays ``snapshot + journal suffix``:
events numbered at or below the snapshot's watermark are skipped, a
torn final line (the signature of a crash mid-append) is ignored, and
jobs left ``running`` — or ``done`` with a missing/corrupt result blob —
are requeued (journaled as ``requeue`` events, so the next snapshot is
consistent).  No event is ever rewritten, so a crashed writer can lose
at most the single transition it was writing — never a previously
acknowledged one, and never a whole job.

**Fault injection.**  The test harness drives the crash hooks via
``REPRO_SERVE_CRASH_AFTER`` (crash on the Nth journal append) and
``REPRO_SERVE_CRASH_MODE``: ``kill`` (SIGKILL after a complete append),
``torn`` (SIGKILL halfway through the line — a torn write), or
``raise`` (an injected :class:`OSError` before the write, simulating a
failing disk).  See ``tests/test_serve_recovery.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time

from ..core.records import atomic_write_text
from .jobs import (CANCELLED, DONE, FAILED, QUEUED, RUNNING,
                   TERMINAL_STATES, Job)

#: Bump when the journal/snapshot format changes; old stores are
#: rejected rather than misread.
STORE_FORMAT_VERSION = 1

#: Environment hooks for fault-injection tests.
CRASH_AFTER_ENV = "REPRO_SERVE_CRASH_AFTER"
CRASH_MODE_ENV = "REPRO_SERVE_CRASH_MODE"


class StoreError(RuntimeError):
    """The on-disk store is unusable (wrong version, not a store…)."""


class JobStore:
    """The persistent job table.

    Not thread-safe by itself — the daemon serialises access under its
    store lock.  Exactly one process may own a store at a time.
    """

    #: Snapshot every N journal events to bound replay cost.
    SNAPSHOT_EVERY = 64
    #: Result blobs whose canonical text fits this ride *inside* the
    #: fsync'd ``done`` event (and the snapshot) instead of costing a
    #: separate atomic file write (~93µs each — the dominant per-job
    #: store cost at probe rates).  Large results keep the file path.
    INLINE_RESULT_LIMIT = 4096
    #: ... but never more often than this (seconds).  A snapshot is
    #: O(job table); at gateway rates the event counter alone would
    #: demand hundreds per second, each stalling the journal for the
    #: full table dump.  Replay is cheap (~100k events/s), so letting
    #: the journal run a couple of seconds ahead costs nothing.
    SNAPSHOT_MIN_INTERVAL = 2.0

    def __init__(self, root: str, crash_after: int | None = None,
                 crash_mode: str | None = None):
        self.root = root
        self.jobs: dict[str, Job] = {}
        #: Small result blobs journaled inline with their done event.
        self._inline: dict[str, dict] = {}
        self.recovered: list[str] = []      #: job ids requeued on load
        self._journal_path = os.path.join(root, "journal.jsonl")
        self._snapshot_path = os.path.join(root, "snapshot.json")
        self._results_dir = os.path.join(root, "results")
        self._next_job_seq = 1
        self._next_event_n = 1
        self._since_snapshot = 0
        if crash_after is None:
            crash_after = int(os.environ.get(CRASH_AFTER_ENV, "0") or 0)
            crash_mode = crash_mode or os.environ.get(CRASH_MODE_ENV)
        self._crash_after = crash_after or 0
        self._crash_mode = crash_mode or "kill"
        self._appends = 0
        self._last_snapshot = 0.0
        os.makedirs(self._results_dir, exist_ok=True)
        self._acquire_lock()
        self._load()
        self._journal = open(self._journal_path, "a", encoding="utf-8")
        self._recover_interrupted()

    # -- ownership --------------------------------------------------------

    def _acquire_lock(self) -> None:
        """Enforce single ownership: a second live process on the same
        store corrupts the journal, so fail fast instead."""
        self._lock_path = os.path.join(self.root, "lock")
        my_pid = os.getpid()
        while True:
            try:
                fd = os.open(self._lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    with open(self._lock_path,
                              encoding="utf-8") as handle:
                        owner = int(handle.read().strip() or 0)
                except (OSError, ValueError):
                    owner = 0
                alive = False
                if owner and owner != my_pid:
                    try:
                        os.kill(owner, 0)
                        alive = True
                    except OSError:
                        alive = False
                if alive:
                    raise StoreError(
                        f"store {self.root} is owned by live process "
                        f"{owner}; exactly one daemon may serve it")
                # Stale (crashed owner) or our own earlier handle:
                # steal the lock.
                try:
                    os.unlink(self._lock_path)
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"{my_pid}\n")
            return

    def _release_lock(self) -> None:
        try:
            os.unlink(self._lock_path)
        except OSError:
            pass

    # -- load / replay ----------------------------------------------------

    def _load(self) -> None:
        applied = 0
        try:
            with open(self._snapshot_path, encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except OSError:
            snapshot = None
        except ValueError:
            raise StoreError(f"corrupt snapshot {self._snapshot_path}")
        if snapshot is not None:
            if snapshot.get("version") != STORE_FORMAT_VERSION:
                raise StoreError(
                    f"store format {snapshot.get('version')!r} != "
                    f"{STORE_FORMAT_VERSION} in {self._snapshot_path}")
            self.jobs = {job_id: Job.from_dict(blob)
                         for job_id, blob in snapshot["jobs"].items()}
            self._inline = dict(snapshot.get("results", {}))
            self._next_job_seq = snapshot["next_job_seq"]
            applied = snapshot["applied_n"]
        self._next_event_n = applied + 1
        try:
            with open(self._journal_path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            text = ""
        lines = text.splitlines()
        kept = 0
        for line in lines:
            if not line.strip():
                kept += 1
                continue
            try:
                event = json.loads(line)
            except ValueError:
                # A torn final line is the expected signature of a crash
                # mid-append; everything after it cannot exist (appends
                # are sequential), so stop replaying here.
                break
            n = event.get("n", 0)
            if n < self._next_event_n:
                kept += 1
                continue        # already folded into the snapshot
            if n != self._next_event_n:
                break           # gap: refuse to replay past it
            self._apply(event)
            self._next_event_n = n + 1
            kept += 1
        if kept < len(lines) or (text and not text.endswith("\n")):
            # Drop the torn/unreplayable tail *on disk* too — appending
            # after a partial line would merge into it and make the next
            # replay lose acknowledged events that follow.
            good = "".join(line + "\n" for line in lines[:kept])
            atomic_write_text(self._journal_path, good)

    def _apply(self, event: dict) -> None:
        """Fold one journal event into the in-memory table."""
        kind = event["event"]
        if kind == "submit":
            job = Job.from_dict(event["job"])
            self.jobs.setdefault(job.id, job)
            self._next_job_seq = max(self._next_job_seq, job.seq + 1)
            return
        if kind == "submit_group":
            for blob in event["jobs"]:
                job = Job.from_dict(blob)
                self.jobs.setdefault(job.id, job)
                self._next_job_seq = max(self._next_job_seq,
                                         job.seq + 1)
            return
        job = self.jobs.get(event.get("id", ""))
        if job is None:
            return
        if kind == "start":
            job.state = RUNNING
            job.attempts += 1
        elif kind == "done":
            job.state = DONE
            job.error = None
            job.result_sha256 = event.get("sha256")
            if "blob" in event:
                self._inline[job.id] = event["blob"]
        elif kind == "fail":
            job.state = FAILED
            job.error = event.get("error")
        elif kind == "cancel":
            job.state = CANCELLED
        elif kind == "requeue":
            job.state = QUEUED
            self._inline.pop(job.id, None)

    def _recover_interrupted(self) -> None:
        """Requeue work a crashed daemon left behind.

        ``running`` jobs were mid-execution; ``done`` jobs whose result
        blob is missing or fails its digest check lost a race with the
        crash.  Both re-run from scratch — results are deterministic,
        so the retry produces byte-identical output.
        """
        for job in sorted(self.jobs.values(), key=lambda j: j.seq):
            requeue = job.state == RUNNING
            if job.state == DONE and self._result_text(job.id) is None:
                requeue = True
            if requeue:
                self.requeue(job.id)
                self.recovered.append(job.id)

    # -- journal ----------------------------------------------------------

    def _crash(self, line: str) -> None:
        """Fault-injection point: fire the configured crash."""
        if self._crash_mode == "raise":
            raise OSError("injected journal write failure")
        if self._crash_mode == "torn":
            self._journal.write(line[:max(1, len(line) // 2)])
        else:                   # "kill": the append itself completes
            self._journal.write(line + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    def _append(self, event: dict) -> None:
        self._append_group([event])

    def _append_group(self, events: list[dict]) -> None:
        """Group commit: journal N events behind ONE flush+fsync.

        The journal-first discipline is untouched — no event is applied
        to the in-memory table (and no caller may acknowledge anything)
        before the group's fsync returns.  A crash inside the group can
        only lose *unacknowledged* transitions: callers treat the whole
        group as acknowledged-or-not atomically.

        Fault injection: the crash counter still advances one notch per
        *event*, so configured crash points land on the same journal
        line whether appends arrive solo or grouped.  ``raise`` mode
        aborts before any of the group's lines are buffered (a clean
        all-or-nothing failure); ``kill``/``torn`` fire mid-group with
        the preceding lines flushed, exactly like a real crash between
        two appends.
        """
        if not events:
            return
        numbered = [{"n": self._next_event_n + index, **event}
                    for index, event in enumerate(events)]
        lines = [json.dumps(event, ensure_ascii=False, sort_keys=True)
                 for event in numbered]
        crash_at = None
        if self._crash_after:
            for index in range(len(lines)):
                if self._appends + index + 1 >= self._crash_after:
                    crash_at = index
                    break
        self._appends += len(lines)
        if crash_at is not None:
            if self._crash_mode == "raise":
                raise OSError("injected journal write failure")
            for line in lines[:crash_at]:
                self._journal.write(line + "\n")
            self._crash(lines[crash_at])
        for line in lines:
            self._journal.write(line + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())
        for event in numbered:
            self._next_event_n += 1
            self._apply(event)
        self._since_snapshot += len(numbered)
        if self._since_snapshot >= self.SNAPSHOT_EVERY and \
                time.monotonic() - self._last_snapshot \
                >= self.SNAPSHOT_MIN_INTERVAL:
            self.write_snapshot()

    # -- transitions (journal-first) --------------------------------------

    def submit(self, kind: str, spec: dict, priority: int = 0,
               after: list[str] | None = None) -> Job:
        return self.submit_many([(kind, spec, priority,
                                  list(after or ()))])[0]

    def reserve_ids(self, count: int) -> list[str]:
        """The ids the next ``submit_many`` of ``count`` jobs will get.

        Lets a flow submission resolve intra-graph references (node →
        job id) *before* journaling, so the whole DAG lands in one
        group commit with its edges already pointing at real ids.
        Callers must hold the daemon's store lock between the peek and
        the submit — nothing else may allocate ids in between.
        """
        return [f"job-{self._next_job_seq + index:06d}"
                for index in range(count)]

    def submit_many(self, requests: list[tuple[str, dict, int,
                                               list[str]]]) -> list[Job]:
        """Journal a group of submissions behind one fsync.

        ``requests`` is ``[(kind, canonical_spec, priority, after)]``;
        the returned jobs are in request order.  The gateway's
        committer thread folds every submit that arrived while the
        previous fsync was in flight into one group, which is what
        keeps admission latency flat under thousands of submits/sec.
        """
        jobs = []
        for index, (kind, spec, priority, after) in enumerate(requests):
            seq = self._next_job_seq + index
            jobs.append(Job(id=f"job-{seq:06d}", seq=seq, kind=kind,
                            spec=spec, priority=priority,
                            after=list(after or ())))
        self._append_group([{"event": "submit", "job": job.to_dict()}
                            for job in jobs])
        return [self.jobs[job.id] for job in jobs]

    def submit_group(self, requests: list[tuple[str, dict, int,
                                                list[str]]]
                     ) -> list[Job]:
        """Journal a whole DAG as ONE journal line (atomic commit).

        ``submit_many`` writes N independent ``submit`` events behind
        one fsync — a crash inside the group can land a prefix, which
        is fine for unrelated submits (each unacknowledged event is an
        independent loss) but not for a flow, whose nodes reference
        each other by id.  A single ``submit_group`` line is
        all-or-nothing by construction: replay drops a torn final line
        whole, so either the entire graph exists after recovery or
        none of it does.
        """
        jobs = []
        for index, (kind, spec, priority, after) in enumerate(requests):
            seq = self._next_job_seq + index
            jobs.append(Job(id=f"job-{seq:06d}", seq=seq, kind=kind,
                            spec=spec, priority=priority,
                            after=list(after or ())))
        self._append({"event": "submit_group",
                      "jobs": [job.to_dict() for job in jobs]})
        return [self.jobs[job.id] for job in jobs]

    def _transition(self, job_id: str, event: dict,
                    allowed: tuple[str, ...]) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job '{job_id}'")
        if job.state not in allowed:
            raise ValueError(f"{job_id} is {job.state}, expected one "
                             f"of {allowed}")
        self._append({"id": job_id, **event})
        return job

    def _check_transition(self, job_id: str,
                          allowed: tuple[str, ...]) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job '{job_id}'")
        if job.state not in allowed:
            raise ValueError(f"{job_id} is {job.state}, expected one "
                             f"of {allowed}")
        return job

    def mark_running(self, job_id: str) -> Job:
        return self._transition(job_id, {"event": "start"}, (QUEUED,))

    def mark_running_many(self, job_ids: list[str]) -> list[Job]:
        """Journal a batch's ``start`` events behind one fsync."""
        for job_id in job_ids:
            self._check_transition(job_id, (QUEUED,))
        self._append_group([{"id": job_id, "event": "start"}
                            for job_id in job_ids])
        return [self.jobs[job_id] for job_id in job_ids]

    def mark_done(self, job_id: str, blob: dict) -> Job:
        return self.mark_done_many([(job_id, blob)])[0]

    def mark_done_many(self,
                       outcomes: list[tuple[str, dict]]) -> list[Job]:
        """Write every result blob, then journal all ``done`` events
        behind one fsync.  Blob-before-event holds for the whole group:
        a crash between the two merely re-runs the jobs, which rewrite
        identical bytes (results are pure functions of the spec)."""
        events = []
        for job_id, blob in outcomes:
            self._check_transition(job_id, (RUNNING, QUEUED))
            text = json.dumps(blob, ensure_ascii=False,
                              sort_keys=True) + "\n"
            digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
            event = {"id": job_id, "event": "done", "sha256": digest}
            if len(text) <= self.INLINE_RESULT_LIMIT:
                # Small blob: ride inside the fsync'd event itself —
                # durable atomically with the transition, no file I/O.
                event["blob"] = blob
            else:
                # Result first, then the event that promises it exists.
                atomic_write_text(self._result_path(job_id), text)
            events.append(event)
        self._append_group(events)
        return [self.jobs[job_id] for job_id, _ in outcomes]

    def mark_failed(self, job_id: str, error: str) -> Job:
        return self.mark_failed_many([(job_id, error)])[0]

    def mark_failed_many(self,
                         failures: list[tuple[str, str]]) -> list[Job]:
        """Journal a group of ``fail`` events behind one fsync."""
        events = []
        for job_id, error in failures:
            self._check_transition(job_id, (RUNNING, QUEUED))
            events.append({"id": job_id, "event": "fail",
                           "error": str(error)})
        self._append_group(events)
        return [self.jobs[job_id] for job_id, _ in failures]

    def mark_cancelled(self, job_id: str) -> Job:
        return self._transition(job_id, {"event": "cancel"}, (QUEUED,))

    def requeue(self, job_id: str) -> Job:
        return self._transition(job_id, {"event": "requeue"},
                                (RUNNING, DONE, FAILED))

    # -- results ----------------------------------------------------------

    def _result_path(self, job_id: str) -> str:
        return os.path.join(self._results_dir, f"{job_id}.json")

    def _result_text(self, job_id: str) -> str | None:
        """The verified raw result text, or None if absent/corrupt."""
        inline = self._inline.get(job_id)
        if inline is not None:
            # Came through the fsync'd journal (or snapshot): canonical
            # re-serialisation reproduces the digested text exactly.
            return json.dumps(inline, ensure_ascii=False,
                              sort_keys=True) + "\n"
        try:
            with open(self._result_path(job_id),
                      encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        job = self.jobs.get(job_id)
        expected = job.result_sha256 if job is not None else None
        if expected is not None and hashlib.sha256(
                text.encode("utf-8")).hexdigest() != expected:
            return None
        return text

    def result(self, job_id: str) -> dict | None:
        """The result blob of a ``done`` job, or None."""
        job = self.jobs.get(job_id)
        if job is None or job.state != DONE:
            return None
        text = self._result_text(job_id)
        if text is None:
            return None
        try:
            return json.loads(text)
        except ValueError:
            return None

    # -- queries ----------------------------------------------------------

    def queued(self) -> list[Job]:
        return sorted((job for job in list(self.jobs.values())
                       if job.state == QUEUED), key=lambda j: j.sort_key)

    def counts(self) -> dict[str, int]:
        # list() snapshots the table atomically (C-level, no GIL
        # release), so readers never race a concurrent submit's resize.
        counts: dict[str, int] = {}
        for job in list(self.jobs.values()):
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # -- snapshot / lifecycle ---------------------------------------------

    def write_snapshot(self) -> None:
        """Atomic checkpoint: replay can skip everything up to here."""
        snapshot = {
            "version": STORE_FORMAT_VERSION,
            "applied_n": self._next_event_n - 1,
            "next_job_seq": self._next_job_seq,
            "jobs": {job_id: job.to_dict()
                     for job_id, job in sorted(self.jobs.items())},
            # Inline result blobs must survive journal compaction —
            # after close() the journal is empty and the snapshot is
            # the only durable copy.
            "results": {job_id: blob
                        for job_id, blob in sorted(self._inline.items())
                        if job_id in self.jobs},
        }
        atomic_write_text(self._snapshot_path,
                          json.dumps(snapshot, indent=2, sort_keys=True)
                          + "\n")
        self._since_snapshot = 0
        self._last_snapshot = time.monotonic()

    def close(self) -> None:
        """Clean shutdown: snapshot, compact the journal, release it.

        Compaction order is crash-safe: the snapshot that covers every
        journal event is durably in place *before* the journal is
        emptied, so dying between the two steps loses nothing.
        """
        self.write_snapshot()
        self._journal.close()
        atomic_write_text(self._journal_path, "")
        self._release_lock()
