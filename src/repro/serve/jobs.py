"""Job model: kinds, states, spec validation, dependencies.

A *job* is one unit of service work — an augmentation run, a training
run, a benchmark suite evaluation, an inference (decode) request, a
simulation, or a registered experiment — identified by a stable
``job-<seq>`` id.  Specs are
normalised at submit time (defaults filled in, names validated against
the registries) so that a job's spec is canonical from the moment it
is journaled: batching fingerprints and resume behaviour never depend
on when defaults were applied.

``after`` lists job ids that must reach ``done`` before a job becomes
runnable — the DAG edges ``repro pipeline`` uses to chain
augment → train → evaluate.  A failed or cancelled dependency fails
its dependents (transitively).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Every kind the service executes (see ``repro.serve.executor``).
JOB_KINDS = ("augment", "train", "evaluate", "infer", "simulate",
             "experiment", "probe")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class SpecError(ValueError):
    """A submitted job spec is invalid (unknown kind, suite, model…)."""


@dataclass
class Job:
    """One service job.  ``seq`` is the submission counter (FIFO order);
    ``attempts`` counts executions across crash/resume cycles;
    ``after`` lists dependency job ids gating dispatch."""

    id: str
    seq: int
    kind: str
    spec: dict
    priority: int = 0
    state: str = QUEUED
    error: str | None = None
    attempts: int = 0
    after: list[str] = field(default_factory=list)
    #: sha256 of the result blob text promised by the ``done`` event.
    result_sha256: str | None = None

    @property
    def sort_key(self) -> tuple[int, int]:
        """Scheduling order: higher priority first, then FIFO."""
        return (-self.priority, self.seq)

    def to_dict(self) -> dict:
        return {"id": self.id, "seq": self.seq, "kind": self.kind,
                "spec": self.spec, "priority": self.priority,
                "state": self.state, "error": self.error,
                "attempts": self.attempts, "after": list(self.after),
                "result_sha256": self.result_sha256}

    @staticmethod
    def from_dict(blob: dict) -> "Job":
        return Job(id=blob["id"], seq=blob["seq"], kind=blob["kind"],
                   spec=blob["spec"], priority=blob.get("priority", 0),
                   state=blob.get("state", QUEUED),
                   error=blob.get("error"),
                   attempts=blob.get("attempts", 0),
                   after=list(blob.get("after", ())),
                   result_sha256=blob.get("result_sha256"))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _as_int(spec: dict, key: str, default: int) -> int:
    value = spec.get(key, default)
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"'{key}' must be an integer")
    return value


def _normalize_augment(spec: dict) -> dict:
    paths = spec.get("paths")
    _require(isinstance(paths, list) and paths
             and all(isinstance(p, str) for p in paths),
             "'paths' must be a non-empty list of strings")
    return {"paths": list(paths),
            "seed": _as_int(spec, "seed", 0),
            "completion_only": bool(spec.get("completion_only", False)),
            "shards": (spec["shards"] if isinstance(spec.get("shards"),
                                                    int) else None)}


def _normalize_train(spec: dict) -> dict:
    """Corpus knobs shared with augment + the training hyper-knobs."""
    from ..llm.behavioral import PROFILES
    from ..train import TrainConfig
    base = _normalize_augment(spec)
    name = spec.get("register_as", "trained")
    _require(isinstance(name, str) and name.strip()
             and name not in PROFILES,
             "'register_as' must be a non-empty name that does not "
             "shadow a built-in model")
    defaults = TrainConfig()
    knobs = {"epochs": _as_int(spec, "epochs", defaults.epochs),
             "batch_size": _as_int(spec, "batch_size",
                                   defaults.batch_size),
             "micro_batch": _as_int(spec, "micro_batch",
                                    defaults.micro_batch),
             "seq_len": _as_int(spec, "seq_len", defaults.seq_len),
             "vocab_size": _as_int(spec, "vocab_size",
                                   defaults.vocab_size),
             "d_model": _as_int(spec, "d_model", defaults.d_model),
             "n_heads": _as_int(spec, "n_heads", defaults.n_heads),
             "n_layers": _as_int(spec, "n_layers", defaults.n_layers),
             "d_ff": _as_int(spec, "d_ff", defaults.d_ff),
             "checkpoint_every": _as_int(spec, "checkpoint_every",
                                         defaults.checkpoint_every),
             "train_seed": _as_int(spec, "train_seed", defaults.seed)}
    lr = spec.get("lr", defaults.lr)
    _require(isinstance(lr, (int, float)) and not isinstance(lr, bool)
             and lr > 0, "'lr' must be a positive number")
    max_records = spec.get("max_records", defaults.max_records)
    _require(max_records is None
             or (isinstance(max_records, int)
                 and not isinstance(max_records, bool)
                 and max_records > 0),
             "'max_records' must be a positive integer or null")
    pool = spec.get("pool")
    _require(pool in (None, "threads", "procs"),
             "'pool' must be null, 'threads', or 'procs'")
    pool_jobs = spec.get("pool_jobs")
    _require(pool_jobs is None
             or (isinstance(pool_jobs, int)
                 and not isinstance(pool_jobs, bool) and pool_jobs >= 1),
             "'pool_jobs' must be a positive integer or null")
    spec_out = dict(base)
    spec_out.update(knobs)
    spec_out.update({"lr": float(lr), "max_records": max_records,
                     "register_as": name,
                     # Operational execution knobs (pool type / width).
                     # Determinism makes them output-invariant — the
                     # result blob is identical for every setting — so
                     # they may live in the spec without breaking blob
                     # purity.  The tuner profiles over them.
                     "pool": pool, "pool_jobs": pool_jobs})
    try:        # one authoritative consistency check (heads divide, …)
        _train_config(spec_out).validate()
    except ValueError as exc:
        raise SpecError(str(exc)) from None
    return spec_out


def _train_config(spec: dict):
    """The :class:`repro.train.TrainConfig` a train spec describes."""
    from ..train import TrainConfig
    return TrainConfig(
        epochs=spec["epochs"], batch_size=spec["batch_size"],
        micro_batch=spec["micro_batch"], seq_len=spec["seq_len"],
        lr=spec["lr"], seed=spec["train_seed"],
        vocab_size=spec["vocab_size"], d_model=spec["d_model"],
        n_heads=spec["n_heads"], n_layers=spec["n_layers"],
        d_ff=spec["d_ff"], max_records=spec["max_records"],
        checkpoint_every=spec["checkpoint_every"])


def _trained_ref(trained) -> dict | None:
    """Canonical ``{'name', 'job'}`` reference to a train job's artefact
    (shared by the evaluate and infer specs)."""
    if trained is None:
        return None
    from ..llm.behavioral import PROFILES
    _require(isinstance(trained, dict)
             and isinstance(trained.get("name"), str)
             and trained["name"].strip()
             and isinstance(trained.get("job"), str)
             and trained["job"].strip(),
             "'trained' must be {'name': <model>, 'job': <job id>} "
             "naming the train job whose artefact to score")
    _require(trained["name"] not in PROFILES,
             f"trained name '{trained['name']}' shadows a built-in "
             f"model")
    return {"name": trained["name"], "job": trained["job"]}


def _normalize_infer(spec: dict) -> dict:
    """Decode completions from a trained artefact's weights."""
    prompts = spec.get("prompts")
    _require(isinstance(prompts, list) and prompts
             and all(isinstance(p, str) and p.strip() for p in prompts),
             "'prompts' must be a non-empty list of non-empty strings")
    trained = _trained_ref(spec.get("trained"))
    _require(trained is not None,
             "'trained' is required: {'name': <model>, 'job': <job id>} "
             "naming the train job whose weights to decode from")
    max_tokens = _as_int(spec, "max_tokens", 32)
    _require(max_tokens > 0, "'max_tokens' must be >= 1")
    temperature = spec.get("temperature", 0.0)
    _require(isinstance(temperature, (int, float))
             and not isinstance(temperature, bool) and temperature >= 0,
             "'temperature' must be a number >= 0")
    return {"prompts": list(prompts), "trained": trained,
            "max_tokens": max_tokens,
            "temperature": float(temperature),
            "seed": _as_int(spec, "seed", 0)}


def _normalize_evaluate(spec: dict) -> dict:
    from ..bench import EVAL_SUITES, GENERATION_SUITES
    from ..eval.suite_api import (DEFAULT_LEVELS, default_samples,
                                  suite_models)
    from ..llm import get_model
    suite = spec.get("suite")
    _require(suite in EVAL_SUITES,
             f"unknown suite '{suite}'; available: "
             f"{', '.join(EVAL_SUITES)}")
    trained = _trained_ref(spec.get("trained"))
    models = suite_models(suite, spec.get("models"))
    for name in models:
        if trained is not None and name == trained["name"]:
            continue        # registered at execution, from the artefact
        try:
            get_model(name)
        except KeyError:
            raise SpecError(f"unknown model '{name}'") from None
    levels = spec.get("levels")
    if suite in GENERATION_SUITES:
        if levels:
            _require(isinstance(levels, list)
                     and all(level in DEFAULT_LEVELS
                             for level in levels),
                     f"'levels' must be a list drawn from "
                     f"{', '.join(DEFAULT_LEVELS)}")
            levels = list(levels)
        else:
            levels = list(DEFAULT_LEVELS)
    else:
        levels = []
    backend = spec.get("sim_backend")
    _require(backend in (None, "compiled", "codegen", "interp"),
             f"unknown sim backend '{backend}'")
    samples = spec.get("samples")
    if samples is None:
        samples = default_samples(suite)
    _require(isinstance(samples, int) and samples > 0,
             "'samples' must be a positive integer")
    out = {"suite": suite, "models": models, "samples": samples,
           "k": _as_int(spec, "k", 5), "levels": levels,
           "seed": _as_int(spec, "seed", 0), "sim_backend": backend}
    if trained is not None:
        out["trained"] = trained
    return out


def _normalize_simulate(spec: dict) -> dict:
    source = spec.get("source")
    _require(isinstance(source, str) and source.strip(),
             "'source' must be non-empty Verilog text")
    # Accept "sim_backend" too: evaluate specs (and every CLI flag)
    # spell it that way, and silently dropping it here sent explicit
    # backend choices to the default.
    backend = spec.get("backend", spec.get("sim_backend"))
    _require(backend in (None, "compiled", "codegen", "interp"),
             f"unknown sim backend '{backend}'")
    top = spec.get("top")
    _require(top is None or isinstance(top, str),
             "'top' must be a string module name")
    return {"source": source, "top": top, "backend": backend,
            "vcd": bool(spec.get("vcd", False))}


#: Probe payloads are admission-tested data, not work — keep them small.
_PROBE_PAYLOAD_LIMIT = 16 * 1024


def _normalize_probe(spec: dict) -> dict:
    """Near-zero-cost serving probe: echo a payload (+ its sha256).

    The serving-tier benchmarks and health checks need a job whose
    execution cost is negligible next to the gateway/journal path being
    measured.  ``sleep_ms`` (optional) simulates a long-running job for
    drain/kill scenarios; it is excluded from the result blob so the
    determinism contract holds.
    """
    import json as _json
    payload = spec.get("payload", "")
    try:
        encoded = _json.dumps(payload, sort_keys=True)
    except (TypeError, ValueError):
        raise SpecError("'payload' must be JSON-serialisable") from None
    _require(len(encoded) <= _PROBE_PAYLOAD_LIMIT,
             f"'payload' must encode to <= {_PROBE_PAYLOAD_LIMIT} bytes")
    sleep_ms = _as_int(spec, "sleep_ms", 0)
    _require(0 <= sleep_ms <= 60000,
             "'sleep_ms' must be between 0 and 60000")
    return {"payload": payload, "sleep_ms": sleep_ms}


def _normalize_experiment(spec: dict) -> dict:
    from ..experiments import EXPERIMENTS
    name = spec.get("name")
    _require(name in EXPERIMENTS,
             f"unknown experiment '{name}'; available: "
             f"{', '.join(EXPERIMENTS)}")
    return {"name": name, "quick": bool(spec.get("quick", True))}


_NORMALIZERS = {
    "augment": _normalize_augment,
    "train": _normalize_train,
    "evaluate": _normalize_evaluate,
    "infer": _normalize_infer,
    "simulate": _normalize_simulate,
    "experiment": _normalize_experiment,
    "probe": _normalize_probe,
}


def validate_spec(kind: str, spec: dict) -> dict:
    """Canonical spec for ``kind`` (defaults filled, names validated).

    Raises :class:`SpecError` on anything a daemon shouldn't accept —
    validation happens at submit time so the journal only ever holds
    runnable jobs.
    """
    if kind not in JOB_KINDS:
        raise SpecError(f"unknown job kind '{kind}'; available: "
                        f"{', '.join(JOB_KINDS)}")
    if not isinstance(spec, dict):
        raise SpecError("spec must be a JSON object")
    return _NORMALIZERS[kind](spec)
