"""Job model: kinds, states, spec validation.

A *job* is one unit of service work — an augmentation run, a benchmark
suite evaluation, a simulation, or a registered experiment — identified
by a stable ``job-<seq>`` id.  Specs are normalised at submit time
(defaults filled in, names validated against the registries) so that a
job's spec is canonical from the moment it is journaled: batching
fingerprints and resume behaviour never depend on when defaults were
applied.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Every kind the service executes (see ``repro.serve.executor``).
JOB_KINDS = ("augment", "evaluate", "simulate", "experiment")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class SpecError(ValueError):
    """A submitted job spec is invalid (unknown kind, suite, model…)."""


@dataclass
class Job:
    """One service job.  ``seq`` is the submission counter (FIFO order);
    ``attempts`` counts executions across crash/resume cycles."""

    id: str
    seq: int
    kind: str
    spec: dict
    priority: int = 0
    state: str = QUEUED
    error: str | None = None
    attempts: int = 0
    #: sha256 of the result blob text promised by the ``done`` event.
    result_sha256: str | None = None

    @property
    def sort_key(self) -> tuple[int, int]:
        """Scheduling order: higher priority first, then FIFO."""
        return (-self.priority, self.seq)

    def to_dict(self) -> dict:
        return {"id": self.id, "seq": self.seq, "kind": self.kind,
                "spec": self.spec, "priority": self.priority,
                "state": self.state, "error": self.error,
                "attempts": self.attempts,
                "result_sha256": self.result_sha256}

    @staticmethod
    def from_dict(blob: dict) -> "Job":
        return Job(id=blob["id"], seq=blob["seq"], kind=blob["kind"],
                   spec=blob["spec"], priority=blob.get("priority", 0),
                   state=blob.get("state", QUEUED),
                   error=blob.get("error"),
                   attempts=blob.get("attempts", 0),
                   result_sha256=blob.get("result_sha256"))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _as_int(spec: dict, key: str, default: int) -> int:
    value = spec.get(key, default)
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"'{key}' must be an integer")
    return value


def _normalize_augment(spec: dict) -> dict:
    paths = spec.get("paths")
    _require(isinstance(paths, list) and paths
             and all(isinstance(p, str) for p in paths),
             "'paths' must be a non-empty list of strings")
    return {"paths": list(paths),
            "seed": _as_int(spec, "seed", 0),
            "completion_only": bool(spec.get("completion_only", False)),
            "shards": (spec["shards"] if isinstance(spec.get("shards"),
                                                    int) else None)}


def _normalize_evaluate(spec: dict) -> dict:
    from ..bench import EVAL_SUITES, GENERATION_SUITES
    from ..eval.suite_api import (DEFAULT_LEVELS, default_samples,
                                  suite_models)
    from ..llm import get_model
    suite = spec.get("suite")
    _require(suite in EVAL_SUITES,
             f"unknown suite '{suite}'; available: "
             f"{', '.join(EVAL_SUITES)}")
    models = suite_models(suite, spec.get("models"))
    for name in models:
        try:
            get_model(name)
        except KeyError:
            raise SpecError(f"unknown model '{name}'") from None
    levels = spec.get("levels")
    if suite in GENERATION_SUITES:
        if levels:
            _require(isinstance(levels, list)
                     and all(level in DEFAULT_LEVELS
                             for level in levels),
                     f"'levels' must be a list drawn from "
                     f"{', '.join(DEFAULT_LEVELS)}")
            levels = list(levels)
        else:
            levels = list(DEFAULT_LEVELS)
    else:
        levels = []
    backend = spec.get("sim_backend")
    _require(backend in (None, "compiled", "interp"),
             f"unknown sim backend '{backend}'")
    samples = spec.get("samples")
    if samples is None:
        samples = default_samples(suite)
    _require(isinstance(samples, int) and samples > 0,
             "'samples' must be a positive integer")
    return {"suite": suite, "models": models, "samples": samples,
            "k": _as_int(spec, "k", 5), "levels": levels,
            "seed": _as_int(spec, "seed", 0), "sim_backend": backend}


def _normalize_simulate(spec: dict) -> dict:
    source = spec.get("source")
    _require(isinstance(source, str) and source.strip(),
             "'source' must be non-empty Verilog text")
    backend = spec.get("backend")
    _require(backend in (None, "compiled", "interp"),
             f"unknown sim backend '{backend}'")
    top = spec.get("top")
    _require(top is None or isinstance(top, str),
             "'top' must be a string module name")
    return {"source": source, "top": top, "backend": backend,
            "vcd": bool(spec.get("vcd", False))}


def _normalize_experiment(spec: dict) -> dict:
    from ..experiments import EXPERIMENTS
    name = spec.get("name")
    _require(name in EXPERIMENTS,
             f"unknown experiment '{name}'; available: "
             f"{', '.join(EXPERIMENTS)}")
    return {"name": name, "quick": bool(spec.get("quick", True))}


_NORMALIZERS = {
    "augment": _normalize_augment,
    "evaluate": _normalize_evaluate,
    "simulate": _normalize_simulate,
    "experiment": _normalize_experiment,
}


def validate_spec(kind: str, spec: dict) -> dict:
    """Canonical spec for ``kind`` (defaults filled, names validated).

    Raises :class:`SpecError` on anything a daemon shouldn't accept —
    validation happens at submit time so the journal only ever holds
    runnable jobs.
    """
    if kind not in JOB_KINDS:
        raise SpecError(f"unknown job kind '{kind}'; available: "
                        f"{', '.join(JOB_KINDS)}")
    if not isinstance(spec, dict):
        raise SpecError("spec must be a JSON object")
    return _NORMALIZERS[kind](spec)
