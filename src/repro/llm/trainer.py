"""Training loops connecting the augmentation datasets to the real LMs.

* ``records_to_text`` serialises instruction records the way the paper's
  finetuning does (instruct + input + output in one context window);
* ``train_ngram`` / ``train_transformer`` fit the two real models;
* ``scaling_curve`` reproduces Fig. 3's loss-vs-data-size trend;
* ``TrainResult.final_loss`` is the quantity the ablation (Fig. 7) and
  scaling experiments compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.records import Dataset, Record
from .ngram import NGramModel
from .tiny_transformer import Adam, TinyTransformerLM, TransformerConfig
from .tokenizer import Tokenizer


def record_to_text(record: Record) -> str:
    """One training document per record, paper's three-field layout."""
    return (f"### instruct: {record.instruct}\n"
            f"### input: {record.input}\n"
            f"### output: {record.output}")


def records_to_text(dataset: Dataset) -> list[str]:
    return [record_to_text(record) for record in dataset]


def split_dataset(dataset: Dataset, val_fraction: float = 0.1,
                  seed: int = 0) -> tuple[Dataset, Dataset]:
    """Deterministic train/validation split."""
    import random
    records = list(dataset)
    random.Random(seed).shuffle(records)
    cut = max(1, int(len(records) * (1 - val_fraction)))
    return Dataset(records=records[:cut]), Dataset(records=records[cut:])


@dataclass
class TrainResult:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    trained_tokens: int = 0

    @property
    def final_loss(self) -> float:
        if self.val_losses:
            return self.val_losses[-1]
        return self.losses[-1] if self.losses else float("inf")


# --------------------------------------------------------------------------
# n-gram path (fast — used by Fig. 3 / Fig. 7 benches)
# --------------------------------------------------------------------------

def train_ngram(train_set: Dataset, val_set: Dataset,
                tokenizer: Tokenizer | None = None,
                order: int = 3) -> tuple[NGramModel, TrainResult, Tokenizer]:
    """Fit a backoff n-gram on the dataset; loss = validation NLL/token."""
    texts = records_to_text(train_set)
    if tokenizer is None:
        tokenizer = Tokenizer.train(texts)
    sequences = [tokenizer.encode(text, add_special=True) for text in texts]
    model = NGramModel(order=order)
    model.fit(sequences, vocab_size=len(tokenizer))
    val_sequences = [tokenizer.encode(text, add_special=True)
                     for text in records_to_text(val_set)]
    result = TrainResult(trained_tokens=model.trained_tokens)
    result.val_losses.append(model.cross_entropy(val_sequences))
    return model, result, tokenizer


# --------------------------------------------------------------------------
# transformer path (slower — quickstart/example scale)
# --------------------------------------------------------------------------

@dataclass
class TransformerTrainConfig:
    epochs: int = 3
    batch_size: int = 8
    seq_len: int = 64
    lr: float = 3e-3
    seed: int = 0
    max_batches_per_epoch: int | None = None


def _batches(sequences: list[list[int]], pad_id: int, seq_len: int,
             batch_size: int, seed: int):
    """Yield (ids, targets) next-token batches; targets −1 where padded."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(sequences))
    batch_ids, batch_targets = [], []
    for index in order:
        sequence = sequences[index][:seq_len + 1]
        if len(sequence) < 2:
            continue
        ids = sequence[:-1]
        targets = sequence[1:]
        pad = seq_len - len(ids)
        batch_ids.append(ids + [pad_id] * pad)
        batch_targets.append(targets + [-1] * pad)
        if len(batch_ids) == batch_size:
            yield np.array(batch_ids), np.array(batch_targets)
            batch_ids, batch_targets = [], []
    if batch_ids:
        yield np.array(batch_ids), np.array(batch_targets)


def train_transformer(model: TinyTransformerLM, train_set: Dataset,
                      val_set: Dataset, tokenizer: Tokenizer,
                      config: TransformerTrainConfig | None = None
                      ) -> TrainResult:
    """Gradient-descent finetuning (full or LoRA, per model's freeze state)."""
    config = config or TransformerTrainConfig()
    optimizer = Adam(model.params(), lr=config.lr)
    train_sequences = [tokenizer.encode(text, add_special=True)
                       for text in records_to_text(train_set)]
    val_sequences = [tokenizer.encode(text, add_special=True)
                     for text in records_to_text(val_set)]
    result = TrainResult(
        trained_tokens=sum(len(s) for s in train_sequences))
    for epoch in range(config.epochs):
        batch_count = 0
        for ids, targets in _batches(train_sequences, tokenizer.pad_id,
                                     config.seq_len, config.batch_size,
                                     config.seed + epoch):
            optimizer.zero_grad()
            loss = model.loss_and_backward(ids, targets)
            optimizer.step()
            result.losses.append(loss)
            batch_count += 1
            if config.max_batches_per_epoch is not None and \
                    batch_count >= config.max_batches_per_epoch:
                break
        result.val_losses.append(
            evaluate_transformer(model, val_sequences, tokenizer.pad_id,
                                 config.seq_len))
    return result


def evaluate_transformer(model: TinyTransformerLM,
                         sequences: list[list[int]], pad_id: int,
                         seq_len: int) -> float:
    losses = []
    for ids, targets in _batches(sequences, pad_id, seq_len, 8, seed=0):
        losses.append(model.evaluate_loss(ids, targets))
    return float(np.mean(losses)) if losses else float("inf")


# --------------------------------------------------------------------------
# Fig. 3: scaling law
# --------------------------------------------------------------------------

def scaling_curve(dataset: Dataset, fractions: list[float],
                  seed: int = 0, order: int = 3
                  ) -> list[tuple[int, float]]:
    """(train tokens, val loss) at growing dataset fractions (n-gram).

    A shared validation split and tokenizer keep the points comparable;
    the paper's Fig. 3 claim is that loss decreases monotonically-ish as
    data volume grows.
    """
    train_all, val = split_dataset(dataset, val_fraction=0.15, seed=seed)
    texts = records_to_text(train_all)
    tokenizer = Tokenizer.train(texts)
    points: list[tuple[int, float]] = []
    for fraction in fractions:
        count = max(1, int(len(train_all.records) * fraction))
        subset = Dataset(records=train_all.records[:count])
        model, result, _ = train_ngram(subset, val, tokenizer=tokenizer,
                                       order=order)
        points.append((result.trained_tokens, result.final_loss))
    return points
