"""Calibrated behavioural models for the pass-rate benchmarks.

Running a real Llama-2 is impossible offline, so the benchmark tables are
regenerated with *behavioural* models: per-model policies that emit Verilog
/ scripts with calibrated error characteristics.  Three properties keep the
evaluation honest (see DESIGN.md):

1. models never see testbenches or checkers — they only emit code;
2. all verdicts come from the real checker / simulator / EDA flow;
3. broken outputs are produced by the *same* mutation machinery the
   augmentation framework uses, so syntax errors are genuine syntax errors.

Calibration: each profile carries per-tier *solve rates* taken from the
paper's aggregate results (Tables 3–5).  A problem of difficulty ``d`` is
solved iff ``solve_rate > d``; difficulties are evenly spaced per suite, so
aggregate success rates land on the paper's numbers while stronger models
solve supersets of weaker models' problems — the qualitative shape of the
tables.  ``derived_solve_rate`` documents how these rates connect to the
augmented-dataset volume via a saturating scaling-law link.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field

from ..core.mutation import Mutator
from ..verilog import VerilogError, ast, parse, unparse

#: Prompt detail affects sample *noise*, not solvability: sparse prompts
#: make weak samples sloppier (more syntax errors), detailed prompts
#: cleaner.  Multipliers applied to the profile's syntax-noise rates.
LEVEL_BONUS = {"low": 1.5, "middle": 1.0, "high": 0.7}


@dataclass(frozen=True)
class ScriptSkill:
    """Attempts needed until a syntactically / functionally correct script.

    Values > 10 mean "not within pass@10" and render as ``>10``.
    """

    syntax_attempt: int
    function_attempt: int


@dataclass
class ModelProfile:
    """Calibrated behaviour of one model."""

    name: str
    display: str
    params_b: int
    solve_rate: dict[str, float]
    #: P(sample has a syntax error) on problems the model solves
    solved_syntax_noise: float
    #: P(sample is syntax-broken rather than functionally wrong) when the
    #: model cannot solve the problem
    failed_syntax_rate: float
    repair_rate: float
    script_skill: dict[str, ScriptSkill] = field(default_factory=dict)


def _stable_hash(*parts: object) -> int:
    digest = hashlib.sha256("::".join(str(p) for p in parts).encode())
    return int.from_bytes(digest.digest()[:8], "big")


# --------------------------------------------------------------------------
# Functional (parse-preserving) corruption
# --------------------------------------------------------------------------

_OP_SWAPS = {"+": "-", "-": "+", "&": "|", "|": "&", "^": "&",
             "<": ">", ">": "<", "==": "!=", "!=": "==",
             "<=": ">=", ">=": "<="}


def _functional_edits(source: ast.SourceFile, rng: random.Random,
                      count: int = 1) -> bool:
    """Apply up to ``count`` distinct semantic edits in place.

    Distinct edit sites are sampled without replacement so repeated edits
    never cancel each other out (swapping the same operator twice would
    restore the original semantics).
    """
    # Candidates carry a *group* id: edits in the same group can cancel
    # each other semantically (e.g. negating an if plus swapping the
    # comparison inside its condition), so sampling takes at most one
    # edit per group.
    candidates: list[tuple[str, ast.Node, int]] = []
    group_stack: list[int] = [0]

    def walk_expr(expr: ast.Expr) -> None:
        group = group_stack[-1] or id(expr)
        if isinstance(expr, ast.Binary):
            if expr.op in _OP_SWAPS:
                candidates.append(("swap_op", expr, group))
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, ast.Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.Ternary):
            candidates.append(("swap_branches", expr, group))
            walk_expr(expr.cond)
            walk_expr(expr.if_true)
            walk_expr(expr.if_false)
        elif isinstance(expr, (ast.Concat,)):
            for part in expr.parts:
                walk_expr(part)
        elif isinstance(expr, ast.Number) and expr.width is not None \
                and expr.width > 1:
            # Width-1 constants are usually zero-extension guards whose
            # perturbations cancel arithmetically; skip them.
            candidates.append(("tweak_const", expr, group))

    assignments: list[ast.Node] = []

    def walk_stmt(stmt: ast.Stmt | None) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                if isinstance(child, ast.Stmt):
                    walk_stmt(child)
        elif isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
            assignments.append(stmt)
            walk_expr(stmt.rhs)
        elif isinstance(stmt, ast.IfStmt):
            candidates.append(("negate_if", stmt, id(stmt)))
            group_stack.append(id(stmt))
            walk_expr(stmt.cond)
            group_stack.pop()
            walk_stmt(stmt.then_stmt)
            walk_stmt(stmt.else_stmt)
        elif isinstance(stmt, ast.CaseStmt):
            for item in stmt.items:
                walk_stmt(item.stmt)
        elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.RepeatStmt,
                               ast.ForeverStmt)):
            walk_stmt(stmt.body)
        elif isinstance(stmt, (ast.DelayStmt, ast.EventControlStmt)):
            walk_stmt(stmt.stmt)

    for module in source.modules:
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                for pair_index in range(len(item.assignments)):
                    assignments.append((item, pair_index))
                    walk_expr(item.assignments[pair_index][1])
            elif isinstance(item, (ast.Always, ast.Initial)):
                walk_stmt(item.body)
    if not candidates and assignments:
        # Fallback for expression-free designs (pure moves/shifts):
        # bit-invert the right-hand side of one assignment.
        candidates.extend(("invert_rhs", node, index)
                          for index, node in enumerate(assignments))
    if not candidates:
        return False
    shuffled = list(candidates)
    rng.shuffle(shuffled)
    picked = []
    used_groups: set[int] = set()
    for kind, node, group in shuffled:
        if group in used_groups:
            continue
        used_groups.add(group)
        picked.append((kind, node))
        if len(picked) >= max(count, 1):
            break
    applied = False
    for kind, node in picked:
        if kind == "swap_op":
            node.op = _OP_SWAPS[node.op]
            applied = True
        elif kind == "swap_branches":
            node.if_true, node.if_false = node.if_false, node.if_true
            applied = True
        elif kind == "negate_if":
            node.cond = ast.Unary(op="!", operand=node.cond)
            applied = True
        elif kind == "tweak_const":
            digits = node.digits
            try:
                value = int(digits, {"b": 2, "o": 8, "d": 10,
                                     "h": 16}[node.base])
            except ValueError:
                continue
            node.text = f"{node.width}'d{value + 1}"
            node.base = "d"
            applied = True
        elif kind == "invert_rhs":
            if isinstance(node, tuple):
                item, pair_index = node
                lhs, rhs = item.assignments[pair_index]
                item.assignments[pair_index] = (
                    lhs, ast.Unary(op="~", operand=rhs))
            else:
                node.rhs = ast.Unary(op="~", operand=node.rhs)
            applied = True
    return applied


def corrupt_functionally(text: str, seed: int, attempts: int = 5,
                         edits: int = 2) -> str:
    """A parse-clean but semantically wrong variant of ``text``.

    Applies ``edits`` independent semantic edits (a badly wrong model
    rarely makes exactly one mistake); retries with derived seeds until
    the canonical form actually changes.  Returns the original text only
    for degenerate inputs.
    """
    try:
        canonical = unparse(parse(text))
    except VerilogError:
        return text
    for attempt in range(attempts):
        rng = random.Random(seed + attempt * 7919)
        source = parse(text)
        if _functional_edits(source, rng, count=edits):
            mutated = unparse(source)
            if mutated != canonical:
                return mutated
    return text


def corrupt_syntax(text: str, seed: int) -> str:
    """A variant of ``text`` that should not pass the checker."""
    mutator = Mutator(seed=seed,
                      rules=("word_missing", "additional_word",
                             "type_error"))
    result = mutator.mutate(text, count=2)
    return result.mutated if result.changed else text + "\nsyntax garbage"


# --------------------------------------------------------------------------
# The behavioural model
# --------------------------------------------------------------------------

class BehavioralModel:
    """Emit benchmark candidates according to a calibrated profile."""

    def __init__(self, profile: ModelProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    @property
    def name(self) -> str:
        return self.profile.name

    # -- Verilog generation (Table 5) -------------------------------------

    def solves(self, tier: str, difficulty: float,
               level: str = "middle") -> bool:
        return self.profile.solve_rate.get(tier, 0.0) > difficulty

    def generate_verilog(self, reference: str, tier: str,
                         difficulty: float, level: str = "middle",
                         n_samples: int = 5, problem_name: str = "",
                         prompt: str = "") -> list[str]:
        """``n_samples`` candidate implementations for one problem.

        A model that cannot solve a problem converges on one wrong design
        (real LLMs repeat their misunderstanding across samples), so the
        functional corruption seed is fixed per (model, problem); only
        the syntax noise varies per sample and prompt level.  ``prompt``
        (the NL problem description) is accepted for interface parity
        with :class:`repro.infer.SampledModel` and ignored — behaviour
        here is driven by the calibrated profile, not the prompt text.
        """
        solved = self.solves(tier, difficulty, level)
        noise_scale = LEVEL_BONUS.get(level, 1.0)
        func_seed = _stable_hash(self.name, problem_name, "func",
                                 self.seed)
        samples: list[str] = []
        for k in range(n_samples):
            sample_seed = _stable_hash(self.name, problem_name, level, k,
                                       self.seed)
            rng = random.Random(sample_seed)
            if solved:
                if rng.random() < \
                        self.profile.solved_syntax_noise * noise_scale:
                    samples.append(corrupt_syntax(reference, sample_seed))
                else:
                    samples.append(reference)
            else:
                if rng.random() < \
                        self.profile.failed_syntax_rate * noise_scale:
                    samples.append(corrupt_syntax(reference, sample_seed))
                else:
                    samples.append(corrupt_functionally(reference,
                                                        func_seed))
        return samples

    # -- Verilog repair (Table 3) -----------------------------------------

    def repair_verilog(self, broken: str, feedback: str, reference: str,
                       difficulty: float, n_samples: int = 5,
                       problem_name: str = "") -> list[str]:
        """Repair attempts for a broken file (feedback included in prompt)."""
        solved = self.profile.repair_rate > difficulty
        func_seed = _stable_hash(self.name, "repair-func", problem_name,
                                 self.seed)
        samples: list[str] = []
        for k in range(n_samples):
            sample_seed = _stable_hash(self.name, "repair", problem_name,
                                       k, self.seed)
            rng = random.Random(sample_seed)
            if solved:
                if rng.random() < self.profile.solved_syntax_noise / 2:
                    samples.append(corrupt_syntax(reference, sample_seed))
                else:
                    samples.append(reference)
            else:
                if rng.random() < self.profile.failed_syntax_rate:
                    # Model "repairs" into a still-broken file.
                    samples.append(corrupt_syntax(broken, sample_seed))
                else:
                    samples.append(corrupt_functionally(reference,
                                                        func_seed))
        return samples

    # -- EDA script generation (Table 4) ------------------------------------

    def generate_script(self, task_name: str, reference_script: str,
                        attempt: int) -> str:
        """The script emitted on 1-based ``attempt`` for a Table-4 task."""
        skill = self.profile.script_skill.get(
            task_name, ScriptSkill(syntax_attempt=99, function_attempt=99))
        if attempt >= skill.function_attempt:
            return reference_script
        seed = _stable_hash(self.name, "script", task_name, attempt,
                            self.seed)
        if attempt >= skill.syntax_attempt:
            return _semantically_wrong_script(reference_script, seed)
        return _syntactically_wrong_script(reference_script, seed)


def _semantically_wrong_script(script: str, seed: int) -> str:
    """Valid Python, wrong SiliconCompiler semantics (bad keypath/value)."""
    rng = random.Random(seed)
    lines = script.splitlines()
    call_lines = [i for i, line in enumerate(lines)
                  if ".set(" in line or ".clock(" in line
                  or ".input(" in line]
    if not call_lines:
        return script + "\nchip.set('bogus')\n"
    index = rng.choice(call_lines)
    line = lines[index]
    if ".clock(" in line:
        lines[index] = line.replace(".clock(", ".clock_pin(")
    elif ".input(" in line:
        lines[index] = line.replace(".input(", ".source(")
    else:
        lines[index] = line.replace(".set(", ".set('undocumented', ", 1)
    return "\n".join(lines)


def _syntactically_wrong_script(script: str, seed: int) -> str:
    """Not even valid Python (what Verilog-tuned baselines tend to emit)."""
    rng = random.Random(seed)
    breakers = [
        lambda s: s.replace("(", "", 1),
        lambda s: s + "\nmodule top(); endmodule\n",
        lambda s: "chip = Chip('x'\n" + s,
        lambda s: s.replace(":", "", 1) if ":" in s else s + "\ndef :",
    ]
    return rng.choice(breakers)(script)


# --------------------------------------------------------------------------
# Scaling-law link between dataset volume and solve rate
# --------------------------------------------------------------------------

def derived_solve_rate(base_rate: float, aligned_records: int,
                       total_records: int, params_b: int) -> float:
    """Skill uplift from augmented data (documents the Table-5 calibration).

    A saturating log-linear law: gains grow with the log of aligned-pair
    volume and total data volume, capped by model capacity.  With the
    paper's Table-2 dataset (124k aligned / ~7M total) this lifts the
    Llama-2-13B intermediate-tier base rate (0.25) to ≈0.70 — the ours-13B
    profile below.
    """
    gain = (0.12 * math.log10(1 + max(aligned_records, 0))
            + 0.05 * math.log10(1 + max(total_records, 0)))
    cap = 0.32 if params_b >= 13 else 0.25
    return min(base_rate + min(gain, cap), 0.98)


# --------------------------------------------------------------------------
# Profiles (calibrated against Tables 3, 4 and 5)
# --------------------------------------------------------------------------

_OURS_SCRIPTS = {
    "Basic": ScriptSkill(1, 1),
    "Layout": ScriptSkill(1, 1),
    "Clock Period": ScriptSkill(1, 1),
    "Core Area": ScriptSkill(1, 1),
    "Mixed": ScriptSkill(2, 2),
}

_GPT35_SCRIPTS = {
    "Basic": ScriptSkill(8, 9),
    "Layout": ScriptSkill(9, 10),
    "Clock Period": ScriptSkill(10, 99),
    "Core Area": ScriptSkill(99, 99),
    "Mixed": ScriptSkill(99, 99),
}

_NEVER_SCRIPTS = {name: ScriptSkill(99, 99) for name in _OURS_SCRIPTS}

PROFILES: dict[str, ModelProfile] = {
    "ours-13b": ModelProfile(
        name="ours-13b", display="Ours-13B", params_b=13,
        solve_rate={"basic": 1.0, "intermediate": 0.55, "advanced": 0.80,
                    "rtllm": 0.13},
        solved_syntax_noise=0.08, failed_syntax_rate=0.45,
        repair_rate=0.724, script_skill=dict(_OURS_SCRIPTS)),
    "ours-7b": ModelProfile(
        name="ours-7b", display="Ours-7B", params_b=7,
        solve_rate={"basic": 1.0, "intermediate": 0.50, "advanced": 0.45,
                    "rtllm": 0.03},
        solved_syntax_noise=0.10, failed_syntax_rate=0.50,
        repair_rate=0.517, script_skill=dict(_OURS_SCRIPTS)),
    "gpt-3.5": ModelProfile(
        name="gpt-3.5", display="GPT3.5", params_b=175,
        solve_rate={"basic": 1.0, "intermediate": 0.50, "advanced": 0.60,
                    "rtllm": 0.17},
        solved_syntax_noise=0.07, failed_syntax_rate=0.40,
        repair_rate=0.31, script_skill=dict(_GPT35_SCRIPTS)),
    "thakur": ModelProfile(
        name="thakur", display="Thakur et al.", params_b=16,
        solve_rate={"basic": 1.0, "intermediate": 0.45, "advanced": 0.50,
                    "rtllm": 0.03},
        solved_syntax_noise=0.12, failed_syntax_rate=0.40,
        repair_rate=0.02, script_skill=dict(_NEVER_SCRIPTS)),
    "llama2-13b": ModelProfile(
        name="llama2-13b", display="Llama2-13B", params_b=13,
        solve_rate={"basic": 1.0, "intermediate": 0.25, "advanced": 0.20,
                    "rtllm": 0.03},
        solved_syntax_noise=0.15, failed_syntax_rate=0.55,
        repair_rate=0.04, script_skill=dict(_NEVER_SCRIPTS)),
    "llama2-general-aug": ModelProfile(
        name="llama2-general-aug", display="Llama2-General Aug.",
        params_b=13,
        solve_rate={"basic": 0.90, "intermediate": 0.15, "advanced": 0.40,
                    "rtllm": 0.03},
        solved_syntax_noise=0.12, failed_syntax_rate=0.45,
        repair_rate=0.10, script_skill=dict(_NEVER_SCRIPTS)),
}
