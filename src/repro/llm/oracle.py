"""The "existing LLM" (GPT-3.5) stand-in for EDA-script understanding.

Paper Sec. 3.3 observes that a general LLM *cannot generate* valid
SiliconCompiler scripts but *can describe* them, and uses that asymmetry
to build the script dataset (Eq. 1: ``GeneralLLM(script) = description``).

:class:`DescriptionOracle` fills GPT-3.5's role offline: it parses the
Python script with the stdlib ``ast`` module and renders an accurate
natural-language description of every SiliconCompiler API call it finds.
Being program analysis, its descriptions are always faithful — exactly the
property the paper relies on GPT-3.5 for.
"""

from __future__ import annotations

import ast as python_ast


def _literal(node: python_ast.expr) -> str:
    try:
        value = python_ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return python_ast.unparse(node)
    return repr(value) if isinstance(value, str) else str(value)


class DescriptionOracle:
    """Describe a mini-SiliconCompiler Python script in English."""

    def describe(self, script: str) -> str:
        try:
            tree = python_ast.parse(script)
        except SyntaxError:
            return ""
        sentences: list[str] = []
        chip_vars: set[str] = set()
        for node in python_ast.walk(tree):
            if isinstance(node, python_ast.Assign) and \
                    isinstance(node.value, python_ast.Call):
                callee = node.value.func
                if isinstance(callee, python_ast.Name) and \
                        callee.id == "Chip" or \
                        isinstance(callee, python_ast.Attribute) and \
                        callee.attr == "Chip":
                    design = (_literal(node.value.args[0])
                              if node.value.args else "'design'")
                    sentences.append(
                        f"Create a SiliconCompiler chip object for design "
                        f"{design}.")
                    for target in node.targets:
                        if isinstance(target, python_ast.Name):
                            chip_vars.add(target.id)
        for node in python_ast.walk(tree):
            if not isinstance(node, python_ast.Call):
                continue
            func = node.func
            if not isinstance(func, python_ast.Attribute):
                continue
            if not (isinstance(func.value, python_ast.Name)
                    and func.value.id in chip_vars):
                continue
            sentence = self._describe_call(func.attr, node)
            if sentence:
                sentences.append(sentence)
        return " ".join(sentences)

    # -- per-method renderers ----------------------------------------------

    def _describe_call(self, method: str, node: python_ast.Call) -> str:
        args = [_literal(a) for a in node.args]
        kwargs = {kw.arg: _literal(kw.value) for kw in node.keywords
                  if kw.arg}
        if method == "input":
            return f"Add {args[0]} as a design input source file." \
                if args else "Add a design input source file."
        if method == "output":
            return f"Write outputs to {args[0]}." if args else ""
        if method == "clock":
            pin = args[0] if args else kwargs.get("pin", "'clk'")
            period = kwargs.get("period",
                                args[1] if len(args) > 1 else "?")
            return (f"Define the clock on pin {pin} with a period of "
                    f"{period} nanoseconds.")
        if method == "load_target":
            return f"Load the compilation target {args[0]}." if args else ""
        if method == "set":
            return self._describe_set(args, kwargs)
        if method == "add":
            if len(args) >= 2:
                return (f"Append {args[-1]} to the "
                        f"{' / '.join(args[:-1])} parameter list.")
            return ""
        if method == "run":
            return "Run the compilation flow."
        if method == "summary":
            return "Print the post-run summary with the PPA report."
        if method == "write_manifest":
            return "Write the manifest file."
        return ""

    @staticmethod
    def _describe_set(args: list[str], kwargs: dict[str, str]) -> str:
        if len(args) < 2:
            return ""
        *keypath, value = args
        path = " / ".join(part.strip("'\"") for part in keypath)
        table = {
            "design": f"Set the design name to {value}.",
            "option / frontend": f"Select the {value} front end.",
            "asic / diearea": f"Set the die area to {value}.",
            "asic / corearea": f"Set the core area to {value}.",
            "constraint / outline": f"Set the floorplan outline to {value}.",
            "constraint / coremargin":
                f"Set the core margin to {value} microns.",
            "constraint / density":
                f"Set the placement density target to {value} percent.",
            "constraint / aspectratio":
                f"Set the floorplan aspect ratio to {value}.",
            "option / relax": f"Set relaxed checking to {value}.",
            "option / quiet": f"Set quiet mode to {value}.",
            "option / jobname": f"Name the job {value}.",
            "clock / period": f"Set the clock period to {value}.",
        }
        if path in table:
            return table[path]
        return f"Set parameter {path} to {value}."
