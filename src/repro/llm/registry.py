"""Model registry: one place to look up behavioural models by name.

Two layers back the lookup:

* the built-in :data:`~repro.llm.behavioral.PROFILES` calibrated
  against the paper's tables, and
* a process-local *runtime* registry of trained profiles — what the
  training service (:mod:`repro.train`) registers so a freshly
  finetuned artefact can be scored by the same evaluation engine and
  renderers as the built-ins.

Built-in names are authoritative: registering over one is refused, so
a pipeline can never silently shadow a calibrated baseline.
"""

from __future__ import annotations

from .behavioral import (PROFILES, BehavioralModel, ModelProfile,
                         ScriptSkill)

#: Column order used by the Table-5 / Table-3 / Table-4 renderers.
TABLE5_MODEL_ORDER = ("gpt-3.5", "ours-7b", "ours-13b", "thakur",
                      "llama2-13b", "llama2-general-aug")
TABLE3_MODEL_ORDER = ("ours-13b", "ours-7b", "gpt-3.5", "llama2-13b")
TABLE4_MODEL_ORDER = ("gpt-3.5", "thakur", "ours-7b", "llama2-13b",
                      "ours-13b")

#: Runtime-registered (trained) profiles; see :func:`register_profile`.
_RUNTIME_PROFILES: dict[str, ModelProfile] = {}

#: Weight bundles for runtime names whose artefact carried one —
#: :func:`get_model` resolves these to sampling-backed models.
_RUNTIME_WEIGHTS: dict[str, dict] = {}


def available_models() -> tuple[str, ...]:
    return tuple(sorted(set(PROFILES) | set(_RUNTIME_PROFILES)))


def registered_models() -> tuple[str, ...]:
    """Names added at runtime (trained artefacts), sorted."""
    return tuple(sorted(_RUNTIME_PROFILES))


def register_profile(profile: ModelProfile) -> ModelProfile:
    """Make ``profile`` resolvable by name for this process.

    Re-registering a runtime name replaces it (an updated artefact for
    the same pipeline slot); built-in names are refused.
    """
    if profile.name in PROFILES:
        raise ValueError(f"'{profile.name}' is a built-in model and "
                         f"cannot be replaced")
    _RUNTIME_PROFILES[profile.name] = profile
    return profile


def unregister_profile(name: str) -> None:
    """Drop a runtime registration (test isolation hook)."""
    _RUNTIME_PROFILES.pop(name, None)
    _RUNTIME_WEIGHTS.pop(name, None)


def profile_from_dict(blob: dict) -> ModelProfile:
    """Rebuild a profile from its ``dataclasses.asdict`` form."""
    return ModelProfile(
        name=blob["name"], display=blob["display"],
        params_b=blob["params_b"],
        solve_rate=dict(blob["solve_rate"]),
        solved_syntax_noise=blob["solved_syntax_noise"],
        failed_syntax_rate=blob["failed_syntax_rate"],
        repair_rate=blob["repair_rate"],
        script_skill={task: ScriptSkill(**skill)
                      for task, skill in blob["script_skill"].items()})


def register_artifact(artifact: dict) -> ModelProfile:
    """Register the model a training artefact describes.

    ``artifact`` is the blob built by
    :func:`repro.train.artifact.build_artifact` (a ``profile`` field in
    ``asdict`` form, under the artefact's ``name``).
    """
    if not isinstance(artifact, dict) or "profile" not in artifact:
        raise ValueError("not a training artefact (no 'profile' field)")
    profile = profile_from_dict(artifact["profile"])
    if profile.name != artifact.get("name"):
        raise ValueError(f"artefact name '{artifact.get('name')}' does "
                         f"not match its profile '{profile.name}'")
    register_profile(profile)
    weights = artifact.get("weights")
    if weights is not None:
        _RUNTIME_WEIGHTS[profile.name] = weights
    else:
        _RUNTIME_WEIGHTS.pop(profile.name, None)
    return profile


def get_profile(name: str) -> ModelProfile:
    profile = PROFILES.get(name) or _RUNTIME_PROFILES.get(name)
    if profile is None:
        raise KeyError(f"unknown model '{name}'; available: "
                       f"{', '.join(available_models())}")
    return profile


def get_model(name: str, seed: int = 0) -> BehavioralModel:
    """The scorable model for ``name``.

    Built-ins (and artefacts without weights) resolve to the calibrated
    :class:`BehavioralModel`; a trained artefact that carried a weights
    bundle resolves to a :class:`repro.infer.SampledModel` that decodes
    from the actual transformer.  The import is deferred — ``repro.llm``
    must not depend on ``repro.infer`` at import time.
    """
    profile = get_profile(name)
    weights = _RUNTIME_WEIGHTS.get(name)
    if weights is not None:
        from ..infer.sampled import SampledModel
        return SampledModel(profile, weights, seed=seed)
    return BehavioralModel(profile, seed=seed)
