"""Model registry: one place to look up behavioural models by name."""

from __future__ import annotations

from .behavioral import PROFILES, BehavioralModel, ModelProfile

#: Column order used by the Table-5 / Table-3 / Table-4 renderers.
TABLE5_MODEL_ORDER = ("gpt-3.5", "ours-7b", "ours-13b", "thakur",
                      "llama2-13b", "llama2-general-aug")
TABLE3_MODEL_ORDER = ("ours-13b", "ours-7b", "gpt-3.5", "llama2-13b")
TABLE4_MODEL_ORDER = ("gpt-3.5", "thakur", "ours-7b", "llama2-13b",
                      "ours-13b")


def available_models() -> tuple[str, ...]:
    return tuple(sorted(PROFILES))


def get_profile(name: str) -> ModelProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown model '{name}'; available: "
                       f"{', '.join(available_models())}") from None


def get_model(name: str, seed: int = 0) -> BehavioralModel:
    return BehavioralModel(get_profile(name), seed=seed)
