"""LoRA adapters (Hu et al., ICLR 2022) for the numpy transformer.

The paper finetunes Llama-2 with "LoraNet"; here the same mechanism is
applied to :class:`repro.llm.tiny_transformer.TinyTransformerLM`: freeze
the base weights and train only rank-``r`` factors ``B @ A`` added to the
attention q/v projections.
"""

from __future__ import annotations

import numpy as np

from .tiny_transformer import Linear, Param, TinyTransformerLM


class LoRAAdapter:
    """Low-rank delta ``y += (alpha / r) * x A^T B^T`` for one Linear."""

    def __init__(self, rng: np.random.Generator, d_in: int, d_out: int,
                 rank: int = 4, alpha: float = 8.0):
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.rank = rank
        self.scaling = alpha / rank
        # A is random, B starts at zero → adapter starts as identity.
        self.A = Param(rng.normal(0, 1.0 / np.sqrt(d_in), (rank, d_in)))
        self.B = Param(np.zeros((d_out, rank)))
        self._x = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return (x @ self.A.value.T) @ self.B.value.T * self.scaling

    def backward(self, grad_y: np.ndarray) -> np.ndarray:
        x = self._x
        flat_x = x.reshape(-1, x.shape[-1])
        flat_g = grad_y.reshape(-1, grad_y.shape[-1]) * self.scaling
        xa = flat_x @ self.A.value.T                      # (N, r)
        if self.B.trainable:
            self.B.grad += flat_g.T @ xa
        if self.A.trainable:
            self.A.grad += (flat_g @ self.B.value).T @ flat_x
        return ((grad_y * self.scaling) @ self.B.value) @ self.A.value

    def params(self) -> list[Param]:
        return [self.A, self.B]

    def merged_delta(self) -> np.ndarray:
        """The dense weight delta this adapter represents."""
        return self.scaling * (self.B.value @ self.A.value)


def attach_lora(model: TinyTransformerLM, rank: int = 4,
                alpha: float = 8.0, seed: int = 0,
                freeze_base: bool = True) -> list[LoRAAdapter]:
    """Attach LoRA adapters to the model's attention q/v projections.

    Returns the adapters; with ``freeze_base`` the base network is frozen
    so only adapter factors receive gradient updates (the paper's setup).
    """
    if freeze_base:
        model.freeze_base()
    rng = np.random.default_rng(seed)
    adapters = []
    for linear in model.attention_linears():
        d_out, d_in = linear.weight.value.shape
        adapter = LoRAAdapter(rng, d_in, d_out, rank=rank, alpha=alpha)
        linear.lora = adapter
        adapters.append(adapter)
    return adapters


def merge_lora(model: TinyTransformerLM) -> None:
    """Fold adapters into the base weights and remove them."""
    for linear in model.attention_linears():
        if linear.lora is not None:
            linear.weight.value += linear.lora.merged_delta()
            linear.lora = None


def detach_lora(model: TinyTransformerLM) -> None:
    """Remove adapters without merging (back to the pre-trained base)."""
    for linear in model.attention_linears():
        linear.lora = None


def count_lora_params(adapters: list[LoRAAdapter]) -> int:
    return sum(a.A.value.size + a.B.value.size for a in adapters)
