"""A small decoder-only transformer in pure numpy, with manual backprop.

This is the repo's stand-in for Llama-2: a *genuinely trainable* causal LM
used to demonstrate the paper's data-side claims with real gradient
descent — the Fig. 3 scaling law (loss falls as augmented data grows) and
the Fig. 7 ablation (aligned data beats completion-only at equal size).

Architecture: token + positional embeddings → N pre-LN blocks (causal
multi-head attention, ReLU MLP) → LN → output projection.  LoRA adapters
(:mod:`repro.llm.lora`) can be attached to the attention projections so
finetuning updates only low-rank factors, as the paper does with LoraNet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Param:
    """A tensor with gradient and Adam state."""

    value: np.ndarray
    grad: np.ndarray = None            # type: ignore[assignment]
    m: np.ndarray = None               # type: ignore[assignment]
    v: np.ndarray = None               # type: ignore[assignment]
    trainable: bool = True

    def __post_init__(self):
        self.grad = np.zeros_like(self.value)
        self.m = np.zeros_like(self.value)
        self.v = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class Linear:
    """y = x W^T + b, with optional LoRA delta (see attach_lora)."""

    def __init__(self, rng: np.random.Generator, d_in: int, d_out: int):
        scale = 1.0 / np.sqrt(d_in)
        self.weight = Param(rng.normal(0, scale, (d_out, d_in)))
        self.bias = Param(np.zeros(d_out))
        self.lora = None               # set by repro.llm.lora.attach_lora
        self._x = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        y = x @ self.weight.value.T + self.bias.value
        if self.lora is not None:
            y = y + self.lora.forward(x)
        return y

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward: same arithmetic as :meth:`forward`
        (same expression order, so results are bit-identical) without
        caching ``x`` — safe to call concurrently and mid-training."""
        y = x @ self.weight.value.T + self.bias.value
        if self.lora is not None:
            y = y + (x @ self.lora.A.value.T) @ self.lora.B.value.T \
                * self.lora.scaling
        return y

    def backward(self, grad_y: np.ndarray) -> np.ndarray:
        x = self._x
        flat_x = x.reshape(-1, x.shape[-1])
        flat_g = grad_y.reshape(-1, grad_y.shape[-1])
        if self.weight.trainable:
            self.weight.grad += flat_g.T @ flat_x
            self.bias.grad += flat_g.sum(axis=0)
        grad_x = grad_y @ self.weight.value
        if self.lora is not None:
            grad_x = grad_x + self.lora.backward(grad_y)
        return grad_x

    def params(self) -> list[Param]:
        out = [self.weight, self.bias]
        if self.lora is not None:
            out.extend(self.lora.params())
        return out


class LayerNorm:
    def __init__(self, dim: int):
        self.gamma = Param(np.ones(dim))
        self.beta = Param(np.zeros(dim))
        self.eps = 1e-5
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        xhat = (x - mu) / np.sqrt(var + self.eps)
        self._cache = (xhat, var)
        return xhat * self.gamma.value + self.beta.value

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward, bit-identical to :meth:`forward`
        (statistics are row-local) without touching ``_cache``."""
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        xhat = (x - mu) / np.sqrt(var + self.eps)
        return xhat * self.gamma.value + self.beta.value

    def backward(self, grad_y: np.ndarray) -> np.ndarray:
        xhat, var = self._cache
        dim = xhat.shape[-1]
        if self.gamma.trainable:
            self.gamma.grad += (grad_y * xhat).reshape(-1, dim).sum(axis=0)
            self.beta.grad += grad_y.reshape(-1, dim).sum(axis=0)
        dxhat = grad_y * self.gamma.value
        inv_std = 1.0 / np.sqrt(var + self.eps)
        return inv_std * (dxhat
                          - dxhat.mean(axis=-1, keepdims=True)
                          - xhat * (dxhat * xhat).mean(axis=-1,
                                                       keepdims=True))

    def params(self) -> list[Param]:
        return [self.gamma, self.beta]


class CausalSelfAttention:
    def __init__(self, rng: np.random.Generator, d_model: int,
                 n_heads: int):
        if d_model % n_heads:
            raise ValueError("d_model must divide n_heads")
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.q_proj = Linear(rng, d_model, d_model)
        self.k_proj = Linear(rng, d_model, d_model)
        self.v_proj = Linear(rng, d_model, d_model)
        self.out_proj = Linear(rng, d_model, d_model)
        self._cache = None

    def _split(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.n_heads, self.d_head) \
            .transpose(0, 2, 1, 3)

    def _merge(self, x: np.ndarray) -> np.ndarray:
        batch, heads, seq, d_head = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * d_head)

    def forward(self, x: np.ndarray) -> np.ndarray:
        q = self._split(self.q_proj.forward(x))
        k = self._split(self.k_proj.forward(x))
        v = self._split(self.v_proj.forward(x))
        scale = 1.0 / np.sqrt(self.d_head)
        scores = q @ k.transpose(0, 1, 3, 2) * scale
        seq = x.shape[1]
        mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        scores = np.where(mask, -1e9, scores)
        scores -= scores.max(axis=-1, keepdims=True)
        probs = np.exp(scores)
        probs /= probs.sum(axis=-1, keepdims=True)
        context = probs @ v
        self._cache = (q, k, v, probs, scale)
        return self.out_proj.forward(self._merge(context))

    def backward(self, grad_y: np.ndarray) -> np.ndarray:
        q, k, v, probs, scale = self._cache
        grad_context = self._split(self.out_proj.backward(grad_y))
        grad_probs = grad_context @ v.transpose(0, 1, 3, 2)
        grad_v = probs.transpose(0, 1, 3, 2) @ grad_context
        # softmax backward
        grad_scores = probs * (grad_probs
                               - (grad_probs * probs).sum(axis=-1,
                                                          keepdims=True))
        grad_q = grad_scores @ k * scale
        grad_k = grad_scores.transpose(0, 1, 3, 2) @ q * scale
        return (self.q_proj.backward(self._merge(grad_q))
                + self.k_proj.backward(self._merge(grad_k))
                + self.v_proj.backward(self._merge(grad_v)))

    def params(self) -> list[Param]:
        return (self.q_proj.params() + self.k_proj.params()
                + self.v_proj.params() + self.out_proj.params())


class MLP:
    def __init__(self, rng: np.random.Generator, d_model: int, d_ff: int):
        self.fc1 = Linear(rng, d_model, d_ff)
        self.fc2 = Linear(rng, d_ff, d_model)
        self._pre_act = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        hidden = self.fc1.forward(x)
        self._pre_act = hidden
        return self.fc2.forward(np.maximum(hidden, 0.0))

    def backward(self, grad_y: np.ndarray) -> np.ndarray:
        grad_hidden = self.fc2.backward(grad_y)
        grad_hidden = grad_hidden * (self._pre_act > 0)
        return self.fc1.backward(grad_hidden)

    def params(self) -> list[Param]:
        return self.fc1.params() + self.fc2.params()


class Block:
    def __init__(self, rng: np.random.Generator, d_model: int,
                 n_heads: int, d_ff: int):
        self.ln1 = LayerNorm(d_model)
        self.attn = CausalSelfAttention(rng, d_model, n_heads)
        self.ln2 = LayerNorm(d_model)
        self.mlp = MLP(rng, d_model, d_ff)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attn.forward(self.ln1.forward(x))
        return x + self.mlp.forward(self.ln2.forward(x))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = grad + self.ln2.backward(self.mlp.backward(grad))
        return grad + self.ln1.backward(self.attn.backward(grad))

    def params(self) -> list[Param]:
        return (self.ln1.params() + self.attn.params()
                + self.ln2.params() + self.mlp.params())


@dataclass
class TransformerConfig:
    vocab_size: int
    d_model: int = 64
    n_heads: int = 2
    n_layers: int = 2
    d_ff: int = 128
    max_len: int = 128
    seed: int = 0


class TinyTransformerLM:
    """Decoder-only LM over integer token ids."""

    def __init__(self, config: TransformerConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        scale = 1.0 / np.sqrt(config.d_model)
        self.tok_emb = Param(rng.normal(0, scale, (config.vocab_size,
                                                   config.d_model)))
        self.pos_emb = Param(rng.normal(0, scale, (config.max_len,
                                                   config.d_model)))
        self.blocks = [Block(rng, config.d_model, config.n_heads,
                             config.d_ff)
                       for _ in range(config.n_layers)]
        self.ln_final = LayerNorm(config.d_model)
        self.head = Linear(rng, config.d_model, config.vocab_size)
        self._cache_ids = None

    # -- forward/backward -----------------------------------------------

    def forward(self, ids: np.ndarray) -> np.ndarray:
        """(B, T) ids → (B, T, V) logits."""
        if ids.shape[1] > self.config.max_len:
            raise ValueError("sequence longer than max_len")
        self._cache_ids = ids
        x = self.tok_emb.value[ids] + self.pos_emb.value[:ids.shape[1]]
        for block in self.blocks:
            x = block.forward(x)
        x = self.ln_final.forward(x)
        return self.head.forward(x)

    def loss_and_backward(self, ids: np.ndarray,
                          targets: np.ndarray) -> float:
        """Cross-entropy on next-token targets; backprop into grads."""
        logits = self.forward(ids)
        batch, seq, vocab = logits.shape
        flat = logits.reshape(-1, vocab)
        flat -= flat.max(axis=1, keepdims=True)
        exp = np.exp(flat)
        probs = exp / exp.sum(axis=1, keepdims=True)
        flat_targets = targets.reshape(-1)
        valid = flat_targets >= 0
        count = max(int(valid.sum()), 1)
        idx = np.arange(flat.shape[0])
        safe_targets = np.where(valid, flat_targets, 0)
        loss = -np.log(np.maximum(
            probs[idx, safe_targets], 1e-12))[valid].sum() / count
        grad = probs
        grad[idx[valid], safe_targets[valid]] -= 1.0
        grad[~valid] = 0.0
        grad /= count
        self.backward(grad.reshape(batch, seq, vocab))
        return float(loss)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = self.head.backward(grad_logits)
        grad = self.ln_final.backward(grad)
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        ids = self._cache_ids
        if self.tok_emb.trainable:
            np.add.at(self.tok_emb.grad, ids.reshape(-1),
                      grad.reshape(-1, grad.shape[-1]))
        if self.pos_emb.trainable:
            self.pos_emb.grad[:ids.shape[1]] += grad.sum(axis=0)

    def evaluate_loss(self, ids: np.ndarray, targets: np.ndarray) -> float:
        """Cross-entropy without touching gradients."""
        logits = self.forward(ids)
        vocab = logits.shape[-1]
        flat = logits.reshape(-1, vocab)
        flat -= flat.max(axis=1, keepdims=True)
        logz = np.log(np.exp(flat).sum(axis=1))
        flat_targets = targets.reshape(-1)
        valid = flat_targets >= 0
        idx = np.arange(flat.shape[0])
        safe = np.where(valid, flat_targets, 0)
        nll = (logz - flat[idx, safe])[valid]
        return float(nll.mean()) if nll.size else 0.0

    # -- parameter access --------------------------------------------------

    def params(self) -> list[Param]:
        out = [self.tok_emb, self.pos_emb]
        for block in self.blocks:
            out.extend(block.params())
        out.extend(self.ln_final.params())
        out.extend(self.head.params())
        return out

    def trainable_params(self) -> list[Param]:
        return [p for p in self.params() if p.trainable]

    def num_parameters(self, trainable_only: bool = False) -> int:
        pool = self.trainable_params() if trainable_only else self.params()
        return sum(p.value.size for p in pool)

    def freeze_base(self) -> None:
        """Freeze everything (LoRA adapters added afterwards stay live)."""
        for param in self.params():
            param.trainable = False

    def attention_linears(self) -> list[Linear]:
        """The q/v projections LoRA attaches to."""
        out = []
        for block in self.blocks:
            out.append(block.attn.q_proj)
            out.append(block.attn.v_proj)
        return out

    # -- generation --------------------------------------------------------

    def generate(self, prefix: list[int], max_tokens: int = 16,
                 temperature: float = 0.0, seed: int = 0) -> list[int]:
        rng = np.random.default_rng(seed)
        out = list(prefix)
        for _ in range(max_tokens):
            window = out[-self.config.max_len:]
            logits = self.forward(np.array([window]))[0, -1]
            if temperature <= 0:
                out.append(int(logits.argmax()))
            else:
                scaled = logits / temperature
                scaled -= scaled.max()
                probs = np.exp(scaled)
                probs /= probs.sum()
                out.append(int(rng.choice(len(probs), p=probs)))
        return out


class Adam:
    """Adam optimizer over :class:`Param` lists."""

    def __init__(self, params: list[Param], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8):
        self.params = [p for p in params if p.trainable]
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.step_count = 0

    def step(self) -> None:
        self.step_count += 1
        correction1 = 1 - self.beta1 ** self.step_count
        correction2 = 1 - self.beta2 ** self.step_count
        for param in self.params:
            param.m = self.beta1 * param.m + (1 - self.beta1) * param.grad
            param.v = self.beta2 * param.v + \
                (1 - self.beta2) * param.grad ** 2
            m_hat = param.m / correction1
            v_hat = param.v / correction2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()
