"""Language-model substrate.

Two layers (see DESIGN.md substitution table):

* **real models** — :class:`Tokenizer`, :class:`NGramModel` and
  :class:`TinyTransformerLM` (+ LoRA) trained by actual counting /
  gradient descent on augmented datasets; they power the Fig. 3 scaling
  law and the Fig. 7 ablation.
* **behavioural models** — calibrated per-model generation policies used
  to regenerate the pass-rate tables, honestly evaluated by the checker,
  simulator and EDA flow.
"""

from .behavioral import (LEVEL_BONUS, PROFILES, BehavioralModel,
                         ModelProfile, ScriptSkill, corrupt_functionally,
                         corrupt_syntax, derived_solve_rate)
from .lora import LoRAAdapter, attach_lora, count_lora_params, detach_lora, merge_lora
from .ngram import NGramModel
from .oracle import DescriptionOracle
from .progressive import (STAGE1_TASKS, STAGE2_TASKS,
                          ProgressiveResult, progressive_stages,
                          train_progressive)
from .registry import (TABLE3_MODEL_ORDER, TABLE4_MODEL_ORDER,
                       TABLE5_MODEL_ORDER, available_models, get_model,
                       get_profile, profile_from_dict, register_artifact,
                       register_profile, registered_models,
                       unregister_profile)
from .tiny_transformer import (Adam, TinyTransformerLM, TransformerConfig)
from .tokenizer import Tokenizer, pretokenize
from .trainer import (TrainResult, TransformerTrainConfig, record_to_text,
                      records_to_text, scaling_curve, split_dataset,
                      train_ngram, train_transformer)

__all__ = [
    "Tokenizer", "pretokenize", "NGramModel",
    "TinyTransformerLM", "TransformerConfig", "Adam",
    "LoRAAdapter", "attach_lora", "merge_lora", "detach_lora",
    "count_lora_params",
    "train_ngram", "train_transformer", "scaling_curve", "split_dataset",
    "TrainResult", "TransformerTrainConfig", "record_to_text",
    "records_to_text",
    "DescriptionOracle",
    "progressive_stages", "train_progressive", "ProgressiveResult",
    "STAGE1_TASKS", "STAGE2_TASKS",
    "BehavioralModel", "ModelProfile", "ScriptSkill", "PROFILES",
    "LEVEL_BONUS", "corrupt_functionally", "corrupt_syntax",
    "derived_solve_rate",
    "get_model", "get_profile", "available_models",
    "register_profile", "register_artifact", "unregister_profile",
    "registered_models", "profile_from_dict",
    "TABLE5_MODEL_ORDER", "TABLE3_MODEL_ORDER", "TABLE4_MODEL_ORDER",
]
