"""Progressive training schedule (paper Sec. 3.1).

"Our augmentation framework first exposes the model to larger quantities
of less refined data to expand its initial knowledge base. This is
followed by a second stage involving higher quality, more precisely
targeted samples."

Stage 1 = the bulk completion data (word/statement/module level + masked
repair); stage 2 = the precisely aligned data (NL↔Verilog, debug pairs
with tool feedback, EDA scripts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.records import Dataset, Task
from .tiny_transformer import TinyTransformerLM
from .tokenizer import Tokenizer
from .trainer import (TrainResult, TransformerTrainConfig,
                      train_transformer)

STAGE1_TASKS = frozenset({
    Task.WORD_COMPLETION, Task.STATEMENT_COMPLETION,
    Task.MODULE_COMPLETION, Task.MASK_COMPLETION,
})
STAGE2_TASKS = frozenset({
    Task.NL_VERILOG, Task.DEBUG, Task.EDA_SCRIPT,
})


def progressive_stages(dataset: Dataset) -> list[tuple[str, Dataset]]:
    """Split a mixed dataset into the paper's two training stages."""
    stage1 = Dataset(records=[r for r in dataset
                              if r.task in STAGE1_TASKS])
    stage2 = Dataset(records=[r for r in dataset
                              if r.task in STAGE2_TASKS])
    return [("stage1-completion", stage1), ("stage2-aligned", stage2)]


@dataclass
class ProgressiveResult:
    """Per-stage loss trajectories."""

    stages: dict[str, TrainResult] = field(default_factory=dict)

    @property
    def final_loss(self) -> float:
        last = list(self.stages.values())[-1]
        return last.final_loss


def train_progressive(model: TinyTransformerLM, dataset: Dataset,
                      val_set: Dataset, tokenizer: Tokenizer,
                      config: TransformerTrainConfig | None = None
                      ) -> ProgressiveResult:
    """Run the two-stage schedule on the transformer.

    The recency effect the paper cites (models weight recent examples)
    is why the aligned data comes *last*.
    """
    result = ProgressiveResult()
    for name, stage_set in progressive_stages(dataset):
        if not len(stage_set):
            continue
        result.stages[name] = train_transformer(
            model, stage_set, val_set, tokenizer, config)
    return result
